//! Batched-vs-per-cell parity: a [`BatchedEngine`] interleaves K lanes'
//! physics in shared chunks, and its entire claim is that the chunking
//! is invisible — every lane's histories, outcomes, stats, and ledgers
//! are **bit-identical** to running that lane's engine alone. This suite
//! pins the claim across the policy × backfill grid, with outages,
//! power caps, cooling, and traced telemetry in the mix, plus on random
//! lane compositions via proptest.

use proptest::prelude::*;
use sraps_core::{BatchedEngine, Engine, EngineMode, Outage, SimConfig, SimOutput, SimWindow};
use sraps_data::{adastra, lassen, marconi100, Dataset, WorkloadSpec};
use sraps_systems::{presets, SystemConfig};
use sraps_types::{NodeSet, SimDuration, SimTime};

/// Exact equality on every output a run produces (wall time and profile
/// excluded: they are measurement, not simulation).
fn assert_identical(solo: &SimOutput, lane: &SimOutput, what: &str) {
    assert_eq!(solo.times, lane.times, "{what}: times differ");
    assert_eq!(solo.power, lane.power, "{what}: power history differs");
    assert_eq!(
        solo.utilization, lane.utilization,
        "{what}: utilization differs"
    );
    assert_eq!(
        solo.queue_depth, lane.queue_depth,
        "{what}: queue depth differs"
    );
    assert_eq!(
        solo.queue_demand_nodes, lane.queue_demand_nodes,
        "{what}: queue demand differs"
    );
    assert_eq!(solo.cooling, lane.cooling, "{what}: cooling differs");
    assert_eq!(solo.outcomes, lane.outcomes, "{what}: outcomes differ");
    assert_eq!(solo.stats, lane.stats, "{what}: stats differ");
    assert_eq!(
        solo.sched_stats, lane.sched_stats,
        "{what}: scheduler stats differ"
    );
    assert_eq!(
        solo.accounts.to_json().unwrap(),
        lane.accounts.to_json().unwrap(),
        "{what}: account ledgers differ"
    );
    assert_eq!(solo.label, lane.label, "{what}: label differs");
}

fn workload(cfg: &SystemConfig, load: f64, hours: i64, seed: u64) -> Dataset {
    let mut spec = WorkloadSpec::for_system(cfg, load, seed);
    spec.span = SimDuration::hours(hours);
    match cfg.name.as_str() {
        "marconi100" => marconi100::synthesize(cfg, &spec),
        "lassen" => lassen::synthesize(cfg, &spec),
        _ => adastra::synthesize(cfg, &spec),
    }
}

/// Run `sims` once per cell and once as a single batch over a shared
/// window; every lane must match its solo twin exactly.
fn assert_batch_matches_solo(sims: Vec<SimConfig>, ds: &Dataset, what: &str) {
    let solo: Vec<SimOutput> = sims
        .iter()
        .map(|sim| Engine::new(sim.clone(), ds).unwrap().run().unwrap())
        .collect();
    let window = SimWindow::new(&sims[0], ds).unwrap();
    let engines: Vec<Engine> = sims
        .into_iter()
        .map(|sim| Engine::with_window(sim, &window).unwrap())
        .collect();
    let batched = BatchedEngine::new(engines).unwrap().run().unwrap();
    assert_eq!(solo.len(), batched.len(), "{what}: lane count");
    for (k, (s, b)) in solo.iter().zip(&batched).enumerate() {
        assert_identical(s, b, &format!("{what} lane {k} ({})", s.label));
    }
}

#[test]
fn batch_equals_solo_across_policy_backfill_grid() {
    // Summary-telemetry system (constant traces → hoisted physics path):
    // all nine {policy}×{backfill} cells as lanes of one batch.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.7, 6, 11);
    let mut sims = Vec::new();
    for policy in ["replay", "fcfs", "sjf"] {
        for backfill in ["none", "easy", "conservative"] {
            sims.push(SimConfig::new(cfg.clone(), policy, backfill).unwrap());
        }
    }
    assert_batch_matches_solo(sims, &ds, "adastra grid");
}

#[test]
fn batch_equals_solo_on_traced_telemetry() {
    // Marconi100 synthesizes per-job traces (non-constant telemetry →
    // the segment-cursor physics path, where chunk splits matter most).
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.6, 4, 3);
    let sims = vec![
        SimConfig::new(cfg.clone(), "replay", "none").unwrap(),
        SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap(),
        SimConfig::new(cfg.clone(), "sjf", "conservative").unwrap(),
    ];
    assert_batch_matches_solo(sims, &ds, "marconi100 traced");
}

#[test]
fn batch_equals_solo_with_outages_cooling_and_power_caps() {
    // Everything on at once, with per-lane differences in cap level so
    // lanes diverge early and the shared chunks stay small.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.5, 6, 19);
    let outages = vec![
        Outage {
            nodes: NodeSet::contiguous(0, cfg.total_nodes / 4),
            from: SimTime::seconds(3_600),
            until: SimTime::seconds(2 * 3_600),
        },
        Outage {
            // An edge deliberately off the tick grid.
            nodes: NodeSet::contiguous(cfg.total_nodes / 2, 8),
            from: SimTime::seconds(4 * 3_600 + 7),
            until: SimTime::seconds(5 * 3_600 + 131),
        },
    ];
    let base = SimConfig::new(cfg.clone(), "fcfs", "easy")
        .unwrap()
        .with_cooling()
        .with_outages(outages);
    let sims = vec![
        base.clone().with_power_cap(cfg.peak_it_power_kw() * 0.4),
        base.clone().with_power_cap(cfg.peak_it_power_kw() * 0.6),
        base,
    ];
    assert_batch_matches_solo(sims, &ds, "adastra +outages +cooling +caps");
}

#[test]
fn batch_equals_solo_with_windowed_prepopulation_and_accounts() {
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.8, 8, 5);
    // Window starts mid-dataset so every lane prepopulates.
    let start = SimTime::seconds(3 * 3600);
    let sims: Vec<SimConfig> = [("fcfs", "firstfit"), ("sjf", "easy"), ("replay", "none")]
        .into_iter()
        .map(|(p, b)| {
            SimConfig::new(cfg.clone(), p, b)
                .unwrap()
                .with_accounts()
                .with_window(start, start + SimDuration::hours(3))
        })
        .collect();
    assert_batch_matches_solo(sims, &ds, "windowed marconi100 +accounts");
}

#[test]
fn batch_handles_mixed_engine_modes() {
    // A tick-mode lane forces one-tick chunks while it lives; event
    // lanes must still match their solo runs exactly.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.6, 3, 41);
    let sims = vec![
        SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap(),
        SimConfig::new(cfg.clone(), "fcfs", "easy")
            .unwrap()
            .with_engine(EngineMode::Tick),
        SimConfig::new(cfg.clone(), "sjf", "conservative").unwrap(),
    ];
    assert_batch_matches_solo(sims, &ds, "mixed engine modes");
}

#[test]
fn batch_rejects_empty_and_mismatched_windows() {
    assert!(BatchedEngine::new(Vec::new()).is_err(), "no lanes");
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.5, 4, 7);
    let whole = SimConfig::new(cfg.clone(), "fcfs", "none").unwrap();
    let clipped = whole
        .clone()
        .with_window(SimTime::seconds(3600), SimTime::seconds(2 * 3600));
    let engines = vec![
        Engine::new(whole, &ds).unwrap(),
        Engine::new(clipped.clone(), &ds).unwrap(),
    ];
    assert!(
        BatchedEngine::new(engines).is_err(),
        "mismatched windows must be rejected"
    );
    let window = SimWindow::new(&clipped, &ds).unwrap();
    let shifted = SimConfig::new(cfg, "fcfs", "none")
        .unwrap()
        .with_window(SimTime::seconds(0), SimTime::seconds(3600));
    assert!(
        Engine::with_window(shifted, &window).is_err(),
        "with_window must reject explicitly mismatched bounds"
    );
}

proptest! {
    /// Random lane compositions over random workloads: any subset of the
    /// {fcfs,sjf,replay}×{none,easy,conservative} grid, with optional
    /// outage and per-lane power caps, batched on both a constant- and a
    /// traced-telemetry system — always bit-identical to solo runs.
    #[test]
    fn random_lane_compositions_match_solo(
        traced in any::<bool>(),
        load in 0.2f64..1.1,
        seed in 0u64..1_000,
        lanes in prop::collection::vec((0usize..3, 0usize..3, 0.3f64..0.8, any::<bool>()), 1..5),
        outage in any::<bool>(),
    ) {
        let cfg = if traced { presets::marconi100() } else { presets::adastra() };
        let ds = workload(&cfg, load, 2, seed);
        let policies = ["fcfs", "sjf", "replay"];
        let backfills = ["none", "easy", "conservative"];
        let sims: Vec<SimConfig> = lanes
            .iter()
            .map(|&(p, b, cap_frac, capped)| {
                let mut sim = SimConfig::new(cfg.clone(), policies[p], backfills[b]).unwrap();
                if capped {
                    sim = sim.with_power_cap(cfg.peak_it_power_kw() * cap_frac);
                }
                if outage {
                    sim = sim.with_outages(vec![Outage {
                        nodes: NodeSet::contiguous(0, cfg.total_nodes / 3),
                        from: SimTime::seconds(1_800),
                        until: SimTime::seconds(5_400),
                    }]);
                }
                sim
            })
            .collect();
        assert_batch_matches_solo(sims, &ds, "random composition");
    }
}
