//! Tick-vs-event engine parity: the event core's entire claim is that it
//! produces **bit-identical** output to the paper's fixed-tick loop while
//! skipping the idle spans. This suite pins that claim across the policy ×
//! backfill grid and with every physics subsystem enabled at once.

use sraps_core::{Engine, EngineMode, Outage, SchedulerSelect, SimConfig, SimOutput};
use sraps_data::{adastra, lassen, marconi100, Dataset, WorkloadSpec};
use sraps_systems::{presets, SystemConfig};
use sraps_types::{NodeSet, SimDuration, SimTime};

/// Exact equality on every series and aggregate a run produces.
fn assert_identical(tick: &SimOutput, event: &SimOutput, what: &str) {
    assert_eq!(tick.times, event.times, "{what}: times differ");
    assert_eq!(tick.power, event.power, "{what}: power history differs");
    assert_eq!(
        tick.utilization, event.utilization,
        "{what}: utilization differs"
    );
    assert_eq!(
        tick.queue_depth, event.queue_depth,
        "{what}: queue depth differs"
    );
    assert_eq!(
        tick.queue_demand_nodes, event.queue_demand_nodes,
        "{what}: queue demand differs"
    );
    assert_eq!(tick.cooling, event.cooling, "{what}: cooling differs");
    assert_eq!(tick.outcomes, event.outcomes, "{what}: outcomes differ");
    assert_eq!(tick.stats, event.stats, "{what}: stats differ");
    // Scheduler *decisions* must match exactly. Invocation/recomputation
    // counts intentionally differ: skipping no-op scheduler calls is the
    // event core's point, so only the placement-derived counters compare.
    assert_eq!(
        tick.sched_stats.placements, event.sched_stats.placements,
        "{what}: placements differ"
    );
    assert_eq!(
        tick.sched_stats.backfilled, event.sched_stats.backfilled,
        "{what}: backfill decisions differ"
    );
    assert_eq!(
        tick.sched_stats.placement_fallbacks, event.sched_stats.placement_fallbacks,
        "{what}: replay fallbacks differ"
    );
    assert!(
        tick.sched_stats.invocations >= event.sched_stats.invocations,
        "{what}: the event core can only make fewer scheduler calls"
    );
    assert_eq!(tick.label, event.label);
}

fn run(sim: SimConfig, ds: &Dataset, mode: EngineMode) -> SimOutput {
    Engine::new(sim.with_engine(mode), ds)
        .unwrap()
        .run()
        .unwrap()
}

fn run_both(sim: &SimConfig, ds: &Dataset, what: &str) {
    let tick = run(sim.clone(), ds, EngineMode::Tick);
    let event = run(sim.clone(), ds, EngineMode::Event);
    assert_identical(&tick, &event, what);
}

fn workload(cfg: &SystemConfig, load: f64, hours: i64, seed: u64) -> Dataset {
    let mut spec = WorkloadSpec::for_system(cfg, load, seed);
    spec.span = SimDuration::hours(hours);
    match cfg.name.as_str() {
        "marconi100" => marconi100::synthesize(cfg, &spec),
        "lassen" => lassen::synthesize(cfg, &spec),
        _ => adastra::synthesize(cfg, &spec),
    }
}

#[test]
fn parity_across_policy_backfill_grid() {
    // Summary-telemetry system (constant traces → hoisted physics path).
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.7, 6, 11);
    for policy in ["replay", "fcfs", "sjf"] {
        for backfill in ["none", "easy", "conservative"] {
            let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
            run_both(&sim, &ds, &format!("adastra {policy}-{backfill}"));
        }
    }
}

#[test]
fn parity_on_trace_telemetry_dataset() {
    // Marconi100 synthesizes per-job traces (non-constant telemetry →
    // the per-tick sampling path of the physics batcher).
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.6, 4, 3);
    for (policy, backfill) in [
        ("replay", "none"),
        ("fcfs", "easy"),
        ("sjf", "conservative"),
    ] {
        let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
        run_both(&sim, &ds, &format!("marconi100 {policy}-{backfill}"));
    }
}

#[test]
fn parity_at_low_utilization_where_spans_are_long() {
    // The sparse case is where the event core actually skips: long idle
    // gaps between submissions.
    let cfg = presets::lassen();
    let ds = workload(&cfg, 0.1, 12, 7);
    for (policy, backfill) in [("replay", "none"), ("fcfs", "easy")] {
        let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
        run_both(&sim, &ds, &format!("sparse lassen {policy}-{backfill}"));
    }
}

#[test]
fn parity_with_outages_cooling_and_power_cap() {
    // Everything on at once: outage edges cut spans, cooling integrates
    // stateful per-tick physics, and the power-cap scheduler wraps the
    // builtin one.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.5, 6, 19);
    let outages = vec![
        Outage {
            nodes: NodeSet::contiguous(0, cfg.total_nodes / 4),
            from: SimTime::seconds(3_600),
            until: SimTime::seconds(2 * 3_600),
        },
        Outage {
            // An edge deliberately off the tick grid.
            nodes: NodeSet::contiguous(cfg.total_nodes / 2, 8),
            from: SimTime::seconds(4 * 3_600 + 7),
            until: SimTime::seconds(5 * 3_600 + 131),
        },
    ];
    let sim = SimConfig::new(cfg.clone(), "fcfs", "easy")
        .unwrap()
        .with_cooling()
        .with_power_cap(cfg.peak_it_power_kw() * 0.4)
        .with_outages(outages);
    run_both(&sim, &ds, "adastra fcfs-easy +outages +cooling +cap");
}

#[test]
fn parity_with_accounts_and_windowed_prepopulation() {
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.8, 8, 5);
    // Window starts mid-dataset so both cores prepopulate.
    let start = SimTime::seconds(3 * 3600);
    let sim = SimConfig::new(cfg, "fcfs", "firstfit")
        .unwrap()
        .with_accounts()
        .with_window(start, start + SimDuration::hours(3));
    let tick = run(sim.clone(), &ds, EngineMode::Tick);
    let event = run(sim, &ds, EngineMode::Event);
    assert_identical(&tick, &event, "windowed marconi100 +accounts");
    assert_eq!(
        tick.accounts.to_json().unwrap(),
        event.accounts.to_json().unwrap(),
        "account ledgers must serialize identically"
    );
}

#[test]
fn parity_with_external_scheduler_backends() {
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.4, 2, 23);
    for select in [SchedulerSelect::FastSim, SchedulerSelect::ScheduleFlow] {
        let sim = SimConfig::new(cfg.clone(), "fcfs", "none")
            .unwrap()
            .with_scheduler(select.clone());
        run_both(&sim, &ds, &format!("adastra external {select:?}"));
    }
}

#[test]
fn event_engine_is_not_slower_on_a_sparse_window() {
    // Not a benchmark (CI noise), just a sanity bound: on a very sparse
    // multi-day window the event core must visit far fewer loop
    // iterations, which shows up as a comfortably smaller wall time.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.05, 48, 13);
    let sim = SimConfig::new(cfg, "fcfs", "easy").unwrap();
    let tick = run(sim.clone(), &ds, EngineMode::Tick);
    let event = run(sim, &ds, EngineMode::Event);
    assert_identical(&tick, &event, "sparse 2-day adastra");
    assert!(
        event.wall_time <= tick.wall_time * 2,
        "event core should never be dramatically slower: {:?} vs {:?}",
        event.wall_time,
        tick.wall_time
    );
}
