//! Tick-vs-event engine parity: the event core's entire claim is that it
//! produces **bit-identical** output to the paper's fixed-tick loop while
//! skipping the idle spans. This suite pins that claim across the policy ×
//! backfill grid and with every physics subsystem enabled at once.

use proptest::prelude::*;
use sraps_core::{Engine, EngineMode, Outage, SchedulerSelect, SimConfig, SimOutput};
use sraps_data::{adastra, lassen, marconi100, Dataset, WorkloadSpec};
use sraps_systems::{presets, SystemConfig};
use sraps_types::{NodeSet, SimDuration, SimTime, Trace};

/// Exact equality on every series and aggregate a run produces.
fn assert_identical(tick: &SimOutput, event: &SimOutput, what: &str) {
    assert_eq!(tick.times, event.times, "{what}: times differ");
    assert_eq!(tick.power, event.power, "{what}: power history differs");
    assert_eq!(
        tick.utilization, event.utilization,
        "{what}: utilization differs"
    );
    assert_eq!(
        tick.queue_depth, event.queue_depth,
        "{what}: queue depth differs"
    );
    assert_eq!(
        tick.queue_demand_nodes, event.queue_demand_nodes,
        "{what}: queue demand differs"
    );
    assert_eq!(tick.cooling, event.cooling, "{what}: cooling differs");
    assert_eq!(tick.outcomes, event.outcomes, "{what}: outcomes differ");
    assert_eq!(tick.stats, event.stats, "{what}: stats differ");
    // Scheduler *decisions* must match exactly. Invocation/recomputation
    // counts intentionally differ: skipping no-op scheduler calls is the
    // event core's point, so only the placement-derived counters compare.
    assert_eq!(
        tick.sched_stats.placements, event.sched_stats.placements,
        "{what}: placements differ"
    );
    assert_eq!(
        tick.sched_stats.backfilled, event.sched_stats.backfilled,
        "{what}: backfill decisions differ"
    );
    assert_eq!(
        tick.sched_stats.placement_fallbacks, event.sched_stats.placement_fallbacks,
        "{what}: replay fallbacks differ"
    );
    assert!(
        tick.sched_stats.invocations >= event.sched_stats.invocations,
        "{what}: the event core can only make fewer scheduler calls"
    );
    assert_eq!(tick.label, event.label);
}

fn run(sim: SimConfig, ds: &Dataset, mode: EngineMode) -> SimOutput {
    Engine::new(sim.with_engine(mode), ds)
        .unwrap()
        .run()
        .unwrap()
}

fn run_both(sim: &SimConfig, ds: &Dataset, what: &str) {
    let tick = run(sim.clone(), ds, EngineMode::Tick);
    let event = run(sim.clone(), ds, EngineMode::Event);
    assert_identical(&tick, &event, what);
}

fn workload(cfg: &SystemConfig, load: f64, hours: i64, seed: u64) -> Dataset {
    let mut spec = WorkloadSpec::for_system(cfg, load, seed);
    spec.span = SimDuration::hours(hours);
    match cfg.name.as_str() {
        "marconi100" => marconi100::synthesize(cfg, &spec),
        "lassen" => lassen::synthesize(cfg, &spec),
        _ => adastra::synthesize(cfg, &spec),
    }
}

#[test]
fn parity_across_policy_backfill_grid() {
    // Summary-telemetry system (constant traces → hoisted physics path).
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.7, 6, 11);
    for policy in ["replay", "fcfs", "sjf"] {
        for backfill in ["none", "easy", "conservative"] {
            let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
            run_both(&sim, &ds, &format!("adastra {policy}-{backfill}"));
        }
    }
}

#[test]
fn parity_on_trace_telemetry_dataset() {
    // Marconi100 synthesizes per-job traces (non-constant telemetry →
    // the per-tick sampling path of the physics batcher).
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.6, 4, 3);
    for (policy, backfill) in [
        ("replay", "none"),
        ("fcfs", "easy"),
        ("sjf", "conservative"),
    ] {
        let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
        run_both(&sim, &ds, &format!("marconi100 {policy}-{backfill}"));
    }
}

#[test]
fn parity_at_low_utilization_where_spans_are_long() {
    // The sparse case is where the event core actually skips: long idle
    // gaps between submissions.
    let cfg = presets::lassen();
    let ds = workload(&cfg, 0.1, 12, 7);
    for (policy, backfill) in [("replay", "none"), ("fcfs", "easy")] {
        let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
        run_both(&sim, &ds, &format!("sparse lassen {policy}-{backfill}"));
    }
}

#[test]
fn parity_with_outages_cooling_and_power_cap() {
    // Everything on at once: outage edges cut spans, cooling integrates
    // stateful per-tick physics, and the power-cap scheduler wraps the
    // builtin one.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.5, 6, 19);
    let outages = vec![
        Outage {
            nodes: NodeSet::contiguous(0, cfg.total_nodes / 4),
            from: SimTime::seconds(3_600),
            until: SimTime::seconds(2 * 3_600),
        },
        Outage {
            // An edge deliberately off the tick grid.
            nodes: NodeSet::contiguous(cfg.total_nodes / 2, 8),
            from: SimTime::seconds(4 * 3_600 + 7),
            until: SimTime::seconds(5 * 3_600 + 131),
        },
    ];
    let sim = SimConfig::new(cfg.clone(), "fcfs", "easy")
        .unwrap()
        .with_cooling()
        .with_power_cap(cfg.peak_it_power_kw() * 0.4)
        .with_outages(outages);
    run_both(&sim, &ds, "adastra fcfs-easy +outages +cooling +cap");
}

#[test]
fn parity_with_accounts_and_windowed_prepopulation() {
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 0.8, 8, 5);
    // Window starts mid-dataset so both cores prepopulate.
    let start = SimTime::seconds(3 * 3600);
    let sim = SimConfig::new(cfg, "fcfs", "firstfit")
        .unwrap()
        .with_accounts()
        .with_window(start, start + SimDuration::hours(3));
    let tick = run(sim.clone(), &ds, EngineMode::Tick);
    let event = run(sim, &ds, EngineMode::Event);
    assert_identical(&tick, &event, "windowed marconi100 +accounts");
    assert_eq!(
        tick.accounts.to_json().unwrap(),
        event.accounts.to_json().unwrap(),
        "account ledgers must serialize identically"
    );
}

#[test]
fn parity_with_external_scheduler_backends() {
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.4, 2, 23);
    for select in [SchedulerSelect::FastSim, SchedulerSelect::ScheduleFlow] {
        let sim = SimConfig::new(cfg.clone(), "fcfs", "none")
            .unwrap()
            .with_scheduler(select.clone());
        run_both(&sim, &ds, &format!("adastra external {select:?}"));
    }
}

#[test]
fn parity_on_saturated_day_with_conservative_backfill() {
    // The queue never drains, so every skip the event core takes rides on
    // the conservative plan's next-reservation hint — the PR 4 headroom
    // case. Saturation also keeps reservations maturing mid-span.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 1.2, 8, 29);
    for policy in ["fcfs", "sjf"] {
        let sim = SimConfig::new(cfg.clone(), policy, "conservative").unwrap();
        run_both(
            &sim,
            &ds,
            &format!("saturated adastra {policy}-conservative"),
        );
    }
}

#[test]
fn parity_with_aging_policy() {
    // Uniform-rate aging must be event-bound: pairwise order never
    // changes between queue mutations (the key avoids `now` entirely).
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.9, 8, 31);
    for backfill in ["none", "firstfit", "easy", "conservative"] {
        let sim = SimConfig::new(cfg.clone(), "priority_aging", backfill).unwrap();
        run_both(&sim, &ds, &format!("adastra priority_aging-{backfill}"));
    }
}

#[test]
fn parity_under_binding_power_cap() {
    // A cap tight enough to defer placements continuously: the wrapper's
    // hint logic (inherit the inner deadline, pin when EASY deferrals
    // hold shadow nodes) has to agree with per-tick scheduling exactly.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 1.0, 8, 37);
    let cap = cfg.peak_it_power_kw() * 0.35;
    for backfill in ["none", "firstfit", "easy", "conservative"] {
        let sim = SimConfig::new(cfg.clone(), "fcfs", backfill)
            .unwrap()
            .with_power_cap(cap);
        run_both(&sim, &ds, &format!("capped adastra fcfs-{backfill}"));
    }
}

#[test]
fn parity_replay_under_power_cap() {
    // Replay wrapped by the cap: the recorded-start hint now flows
    // through the wrapper instead of the engine's old replay special
    // case.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.7, 6, 41);
    let sim = SimConfig::replay(cfg.clone()).with_power_cap(cfg.peak_it_power_kw() * 0.5);
    run_both(&sim, &ds, "capped adastra replay");
}

#[test]
fn parity_on_traced_saturated_day() {
    // Trace-telemetry (per-segment physics walk) under a never-draining
    // queue: both remaining hard paths at once.
    let cfg = presets::marconi100();
    let ds = workload(&cfg, 1.1, 6, 43);
    for (policy, backfill) in [("fcfs", "easy"), ("fcfs", "conservative")] {
        let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
        run_both(
            &sim,
            &ds,
            &format!("saturated marconi100 {policy}-{backfill}"),
        );
    }
}

proptest! {
    /// The segment iterator must reproduce per-tick `Trace::sample`
    /// exactly — it is the physics span's replacement for those calls.
    #[test]
    fn segments_reproduce_per_tick_samples(
        t0 in -60i64..120,
        dt in 1i64..45,
        values in prop::collection::vec(0.0f32..1500.0, 0..40),
        start in -90i64..600,
        step in 1i64..75,
        count in 0usize..300,
    ) {
        let trace = Trace::new(
            SimDuration::seconds(t0),
            SimDuration::seconds(dt),
            values,
        );
        let start = SimDuration::seconds(start);
        let step_d = SimDuration::seconds(step);
        let mut covered = 0usize;
        for seg in trace.segments(start, step_d, count) {
            prop_assert_eq!(seg.ticks.start, covered, "gap before segment");
            prop_assert!(seg.ticks.end > seg.ticks.start, "empty segment");
            for k in seg.ticks.clone() {
                let offset = start + SimDuration::seconds(step * k as i64);
                prop_assert_eq!(
                    seg.value,
                    trace.sample(offset),
                    "tick {} of {:?}", k, seg.ticks
                );
            }
            covered = seg.ticks.end;
        }
        prop_assert_eq!(covered, count, "segments must cover the span");
    }
}

#[test]
fn event_engine_is_not_slower_on_a_sparse_window() {
    // Not a benchmark (CI noise), just a sanity bound: on a very sparse
    // multi-day window the event core must visit far fewer loop
    // iterations, which shows up as a comfortably smaller wall time.
    let cfg = presets::adastra();
    let ds = workload(&cfg, 0.05, 48, 13);
    let sim = SimConfig::new(cfg, "fcfs", "easy").unwrap();
    let tick = run(sim.clone(), &ds, EngineMode::Tick);
    let event = run(sim, &ds, EngineMode::Event);
    assert_identical(&tick, &event, "sparse 2-day adastra");
    assert!(
        event.wall_time <= tick.wall_time * 2,
        "event core should never be dramatically slower: {:?} vs {:?}",
        event.wall_time,
        tick.wall_time
    );
}
