//! **S-RAPS**: the Scheduled Resource Allocator and Power Simulator — a
//! data-center digital twin with integrated batch scheduling (the paper's
//! primary contribution).
//!
//! The [`Engine`] runs the refactored simulation loop of §3.2.3:
//!
//! 1. **Preparation** — completed jobs are cleared, freeing resources;
//! 2. **Eligibility** — jobs submitted by the current simulation time join
//!    the queue (the scheduler never sees future jobs);
//! 3. **Schedule** — the selected [`sraps_sched::SchedulerBackend`]
//!    (built-in, experimental/incentive, or an external simulator via
//!    [`sraps_extsched`]) reorders the queue and places jobs through the
//!    resource manager;
//! 4. **Tick** — the physical models advance: utilization → power
//!    ([`sraps_power`]) → losses → cooling ([`sraps_cooling`]), and all
//!    histories/statistics are recorded.
//!
//! Two main-loop cores drive the steps ([`EngineMode`]): the default
//! hybrid **event** core skips idle spans (steps 1–3 only at event
//! times, physics batched in between) and the **tick** core runs the
//! paper's fixed-tick loop; their outputs are bit-identical.
//!
//! # Quickstart
//!
//! ```
//! use sraps_core::{Engine, SimConfig};
//! use sraps_data::{scenario, WorkloadSpec};
//! use sraps_systems::presets;
//!
//! // A small Adastra workload, rescheduled with FCFS + EASY backfill.
//! let cfg = presets::adastra();
//! let mut spec = WorkloadSpec::for_system(&cfg, 0.6, 42);
//! spec.span = sraps_types::SimDuration::hours(4);
//! let dataset = sraps_data::adastra::synthesize(&cfg, &spec);
//! let sim = SimConfig::new(cfg, "fcfs", "easy").unwrap();
//! let output = Engine::new(sim, &dataset).unwrap().run().unwrap();
//! assert!(output.stats.jobs_completed > 0);
//! ```

pub mod config;
pub mod engine;
pub mod fingerprint;
pub mod output;
pub mod snapshot;
pub mod validate;

pub use config::{EngineMode, Outage, SchedulerSelect, SimConfig};
pub use engine::{BatchedEngine, Engine, EngineBuilder, SimWindow};
pub use fingerprint::{Fingerprint, Fingerprinter, ENGINE_SCHEMA_VERSION};
pub use output::SimOutput;
pub use snapshot::{ActiveSnapshot, EngineSnapshot};
pub use validate::{compare_power, compare_series, compare_utilization, SeriesAgreement};
