//! Simulation configuration — the programmatic equivalent of the
//! artifact's CLI (`--system --policy --backfill --scheduler -ff -t
//! --accounts --accounts-json -c`).

use sraps_acct::Accounts;
use sraps_sched::{BackfillKind, PolicyKind};
use sraps_systems::SystemConfig;
use sraps_types::{NodeSet, Result, SimTime, SrapsError, Trace};

/// A node outage window: the nodes are down/drained in `[from, until)`.
///
/// The paper flags missing down/drain information as the main accuracy gap
/// of the open datasets ("this information could greatly increase the
/// accuracy of schedules"); outages let what-if studies model it.
#[derive(Debug, Clone, PartialEq)]
pub struct Outage {
    pub nodes: NodeSet,
    pub from: SimTime,
    pub until: SimTime,
}

impl Outage {
    /// Deterministically synthesize `count` outage windows over `span`:
    /// contiguous racks of 1–4 % of the machine, down for 30 min–6 h.
    /// Stand-in for the node-status feeds the open datasets lack.
    pub fn synthetic_set(seed: u64, total_nodes: u32, span: SimTime, count: usize) -> Vec<Outage> {
        // Tiny xorshift so sraps-core needs no RNG dependency.
        let mut state = seed | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        (0..count)
            .map(|_| {
                let width = ((next() % (total_nodes as u64 / 25).max(1)) as u32
                    + total_nodes / 100)
                    .max(1)
                    .min(total_nodes);
                let first = (next() % (total_nodes - width).max(1) as u64) as u32;
                let from = SimTime::seconds((next() % span.as_secs().max(1) as u64) as i64);
                let dur = 1800 + (next() % (6 * 3600)) as i64;
                Outage {
                    nodes: NodeSet::contiguous(first, width),
                    from,
                    until: from + sraps_types::SimDuration::seconds(dur),
                }
            })
            .collect()
    }
}

/// Which main-loop core drives the run (`--engine`).
///
/// Both cores produce bit-identical histories and outcomes; the event
/// core skips the idle spans of the §3.2.3 loop (ticks where nothing
/// schedulable can change) and batch-advances the physics across them,
/// which is what makes multi-day low-utilization sweeps cheap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// The paper's fixed-tick loop: steps 1–4 at every telemetry tick.
    Tick,
    /// Hybrid event/tick core: steps 1–3 only at event times (next
    /// submission, earliest completion, outage edge), step 4 batched
    /// across the span in between.
    #[default]
    Event,
}

impl EngineMode {
    /// Parse the `--engine` CLI value.
    pub fn parse(s: &str) -> Option<EngineMode> {
        match s {
            "tick" => Some(EngineMode::Tick),
            "event" => Some(EngineMode::Event),
            _ => None,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            EngineMode::Tick => "tick",
            EngineMode::Event => "event",
        }
    }
}

/// Which scheduler drives the run (`--scheduler`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchedulerSelect {
    /// The built-in scheduler with its policy + backfill options.
    Default,
    /// The account-incentive scheduler (§4.3); requires a loaded
    /// `accounts.json` collection.
    Experimental,
    /// External event-based ScheduleFlow integration (§4.2.1).
    ScheduleFlow,
    /// External FastSim plugin-mode integration (§4.2.2).
    FastSim,
}

impl SchedulerSelect {
    /// Stable CLI name — also the form cache fingerprints hash, so the
    /// strings must never be reused across variants.
    pub fn name(&self) -> &'static str {
        match self {
            SchedulerSelect::Default => "default",
            SchedulerSelect::Experimental => "experimental",
            SchedulerSelect::ScheduleFlow => "scheduleflow",
            SchedulerSelect::FastSim => "fastsim",
        }
    }
}

/// Full configuration for one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    pub system: SystemConfig,
    pub policy: PolicyKind,
    pub backfill: BackfillKind,
    pub scheduler: SchedulerSelect,
    /// Main-loop core (`--engine`); default is the hybrid event/tick core.
    pub engine: EngineMode,
    /// Simulation window start (`-ff` fast-forward), in dataset time.
    pub sim_start: Option<SimTime>,
    /// Simulation window end (`-t` duration from start).
    pub sim_end: Option<SimTime>,
    /// Run the cooling model (`-c`).
    pub cooling: bool,
    /// Track per-account statistics (`--accounts`).
    pub track_accounts: bool,
    /// Collection-phase account stats (`--accounts-json`), consumed by the
    /// experimental scheduler.
    pub accounts_in: Option<Accounts>,
    /// Reference node power for Fugaku-point accrual, kW; default derives
    /// from the system envelope midpoint.
    pub reference_node_power_kw: Option<f64>,
    /// Facility job-power cap, kW: wraps the built-in scheduler in
    /// [`sraps_sched::PowerCapScheduler`] (energy-aware extension).
    pub power_cap_kw: Option<f64>,
    /// Scheduled node outages applied during the run.
    pub outages: Vec<Outage>,
    /// Ambient wet-bulb temperature trace (°C, offsets relative to the
    /// simulation start). Without it the cooling model uses the system's
    /// constant design ambient.
    pub wetbulb_trace: Option<Trace>,
}

impl SimConfig {
    /// Convenience constructor with policy/backfill by artifact name.
    pub fn new(system: SystemConfig, policy: &str, backfill: &str) -> Result<SimConfig> {
        let policy = PolicyKind::parse(policy)
            .ok_or_else(|| SrapsError::Config(format!("unknown policy '{policy}'")))?;
        let backfill = BackfillKind::parse(backfill)
            .ok_or_else(|| SrapsError::Config(format!("unknown backfill '{backfill}'")))?;
        Ok(SimConfig {
            system,
            policy,
            backfill,
            scheduler: SchedulerSelect::Default,
            engine: EngineMode::default(),
            sim_start: None,
            sim_end: None,
            cooling: false,
            track_accounts: false,
            accounts_in: None,
            reference_node_power_kw: None,
            power_cap_kw: None,
            outages: Vec::new(),
            wetbulb_trace: None,
        })
    }

    /// Replay configuration (the original RAPS behaviour).
    pub fn replay(system: SystemConfig) -> SimConfig {
        SimConfig::new(system, "replay", "none").expect("replay/none are valid")
    }

    pub fn with_window(mut self, start: SimTime, end: SimTime) -> Self {
        self.sim_start = Some(start);
        self.sim_end = Some(end);
        self
    }

    pub fn with_cooling(mut self) -> Self {
        self.cooling = true;
        self
    }

    pub fn with_accounts(mut self) -> Self {
        self.track_accounts = true;
        self
    }

    pub fn with_accounts_json(mut self, accounts: Accounts) -> Self {
        self.accounts_in = Some(accounts);
        self.track_accounts = true;
        self
    }

    pub fn with_scheduler(mut self, scheduler: SchedulerSelect) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Select the main-loop core (tick vs hybrid event/tick).
    pub fn with_engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Enforce a facility job-power cap (kW) at scheduling time.
    pub fn with_power_cap(mut self, cap_kw: f64) -> Self {
        self.power_cap_kw = Some(cap_kw);
        self
    }

    /// Apply node outage windows during the run.
    pub fn with_outages(mut self, outages: Vec<Outage>) -> Self {
        self.outages = outages;
        self
    }

    /// Drive the cooling model's ambient from a wet-bulb trace.
    pub fn with_weather(mut self, wetbulb_trace: Trace) -> Self {
        self.wetbulb_trace = Some(wetbulb_trace);
        self
    }

    /// Default Fugaku-point reference: the node power at 60 % utilization.
    pub fn reference_power_kw(&self) -> f64 {
        self.reference_node_power_kw.unwrap_or_else(|| {
            let p = &self.system.node_power;
            (p.idle_node_w() + 0.6 * (p.peak_node_w() - p.idle_node_w())) / 1000.0
        })
    }

    /// Validate cross-field consistency.
    pub fn validate(&self) -> Result<()> {
        self.system.validate()?;
        if let (Some(s), Some(e)) = (self.sim_start, self.sim_end) {
            if e <= s {
                return Err(SrapsError::Config(format!(
                    "simulation window empty: {s} ≥ {e}"
                )));
            }
        }
        if let Some(cap) = self.power_cap_kw {
            if cap <= 0.0 {
                return Err(SrapsError::Config(format!("non-positive power cap {cap}")));
            }
            if self.scheduler != SchedulerSelect::Default {
                return Err(SrapsError::Config(
                    "power cap is implemented for the default scheduler only".into(),
                ));
            }
        }
        for o in &self.outages {
            if o.until <= o.from {
                return Err(SrapsError::Config(format!(
                    "empty outage window {}..{}",
                    o.from, o.until
                )));
            }
            if o.nodes.is_empty() {
                return Err(SrapsError::Config("outage with no nodes".into()));
            }
        }
        if self.scheduler == SchedulerSelect::Experimental {
            if !self.policy.needs_accounts() {
                return Err(SrapsError::Config(format!(
                    "experimental scheduler needs an account policy, got {}",
                    self.policy.name()
                )));
            }
            if self.accounts_in.is_none() {
                return Err(SrapsError::Config(
                    "experimental scheduler needs accounts_in (the collection run's accounts.json)"
                        .into(),
                ));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_systems::presets;

    #[test]
    fn engine_mode_parses_and_defaults_to_event() {
        assert_eq!(EngineMode::parse("tick"), Some(EngineMode::Tick));
        assert_eq!(EngineMode::parse("event"), Some(EngineMode::Event));
        assert_eq!(EngineMode::parse("warp"), None);
        let c = SimConfig::replay(presets::adastra());
        assert_eq!(c.engine, EngineMode::Event);
        let c = c.with_engine(EngineMode::Tick);
        assert_eq!(c.engine, EngineMode::Tick);
        assert_eq!(c.engine.name(), "tick");
    }

    #[test]
    fn new_parses_artifact_names() {
        let c = SimConfig::new(presets::adastra(), "fcfs", "easy").unwrap();
        assert_eq!(c.policy, PolicyKind::Fcfs);
        assert_eq!(c.backfill, BackfillKind::Easy);
        assert!(SimConfig::new(presets::adastra(), "nope", "easy").is_err());
        assert!(SimConfig::new(presets::adastra(), "fcfs", "nope").is_err());
    }

    #[test]
    fn replay_defaults() {
        let c = SimConfig::replay(presets::lassen());
        assert_eq!(c.policy, PolicyKind::Replay);
        c.validate().unwrap();
    }

    #[test]
    fn window_validation() {
        let c = SimConfig::replay(presets::lassen())
            .with_window(SimTime::seconds(100), SimTime::seconds(100));
        assert!(c.validate().is_err());
    }

    #[test]
    fn experimental_requires_accounts() {
        let mut c = SimConfig::new(presets::frontier(), "acct_edp", "firstfit").unwrap();
        c.scheduler = SchedulerSelect::Experimental;
        assert!(c.validate().is_err(), "missing accounts_in");
        let c = c.with_accounts_json(Accounts::new(1.0));
        c.validate().unwrap();
    }

    #[test]
    fn experimental_rejects_plain_policies() {
        let mut c = SimConfig::new(presets::frontier(), "fcfs", "firstfit").unwrap();
        c.scheduler = SchedulerSelect::Experimental;
        c.accounts_in = Some(Accounts::new(1.0));
        assert!(c.validate().is_err());
    }

    #[test]
    fn synthetic_outages_are_valid_and_deterministic() {
        let a = Outage::synthetic_set(7, 1000, SimTime::seconds(86_400), 10);
        let b = Outage::synthetic_set(7, 1000, SimTime::seconds(86_400), 10);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        for o in &a {
            assert!(!o.nodes.is_empty());
            assert!(o.until > o.from);
            assert!(o.nodes.as_slice().iter().all(|&n| n < 1000));
            // Each outage passes config validation.
            let sim = SimConfig::replay(presets::adastra()).with_outages(vec![o.clone()]);
            sim.validate().unwrap();
        }
    }

    #[test]
    fn reference_power_default_is_mid_envelope() {
        let c = SimConfig::replay(presets::fugaku());
        let p = &c.system.node_power;
        let expected = (p.idle_node_w() + 0.6 * (p.peak_node_w() - p.idle_node_w())) / 1000.0;
        assert!((c.reference_power_kw() - expected).abs() < 1e-12);
    }
}
