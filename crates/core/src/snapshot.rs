//! Serializable engine state: pause a run mid-window, persist it, and
//! rebuild an engine that continues bit-identically.
//!
//! [`EngineSnapshot`] is the full state of [`crate::Engine`] at a tick
//! boundary — everything [`crate::Engine::run`] mutates, and nothing it
//! can rebuild deterministically from the config and the shared window
//! (completion heap, running views, trace profiles, outage edges, the
//! physical models). Restore goes through
//! [`crate::EngineBuilder::resume`]; the snapshot carries
//! [`crate::fingerprint::ENGINE_SCHEMA_VERSION`], so a snapshot written
//! by an engine whose state layout has since changed is rejected (and
//! demoted to a cache miss by the sweep's snapshot store) instead of
//! silently resuming wrong.
//!
//! Because the serialized form is part of the cache contract, the schema
//! is pinned by a golden fixture in the repo's test suite: any field
//! change must bump `ENGINE_SCHEMA_VERSION`.

use serde::{Deserialize, Serialize};
use sraps_acct::{Accounts, JobOutcome};
use sraps_cooling::CoolingSample;
use sraps_power::PowerSample;
use sraps_sched::{JobQueue, ResourceManager, SchedulerState};
use sraps_types::{JobId, NodeSet, SimDuration, SimTime};

/// One running job as captured mid-run. The trace profile classification
/// and the scheduler-facing running view are recomputed on restore (both
/// are deterministic functions of the job's telemetry and these fields).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ActiveSnapshot {
    pub id: JobId,
    /// Index into the shared window job set — validated against the job
    /// id on restore.
    pub job: usize,
    pub nodes: NodeSet,
    pub start: SimTime,
    pub actual_end: SimTime,
    pub est_end: SimTime,
    pub telemetry_offset: SimDuration,
    pub energy_kwh: f64,
    pub node_power_sum_kw: f64,
    pub cpu_util_sum: f64,
    pub gpu_util_sum: f64,
    pub ticks: u64,
}

/// The full mid-run state of an [`crate::Engine`], taken by
/// [`crate::Engine::snapshot`] at a tick boundary.
///
/// Restoring over the same window and config continues the run
/// bit-identically to never having paused (histories, outcomes, and
/// scheduler counters included — the resume-parity suite pins this).
/// Restoring under a *different* late-binding config (a power cap, a
/// policy switch) forks the run at the captured instant: the scheduler
/// state round-trips across compatible backend variants, and the queue's
/// order stamp names its policy, so a cross-policy fork re-sorts exactly
/// once.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineSnapshot {
    /// [`crate::fingerprint::ENGINE_SCHEMA_VERSION`] at capture time.
    pub schema: u32,
    /// Size of the window job set the indices below refer to.
    pub jobs_len: usize,
    /// The paused instant (a tick boundary).
    pub now: SimTime,
    /// Tick instants left to visit.
    pub remaining: i64,
    /// Ticks of the current decided span not yet advanced — control
    /// already ran for them, so resume must not run it again.
    pub span_left: i64,
    /// Cursor into the window's pending-submission list.
    pub next_pending: usize,
    pub active: Vec<ActiveSnapshot>,
    pub queue: JobQueue,
    pub rm: ResourceManager,
    pub scheduler: SchedulerState,
    pub outage_active: Vec<bool>,
    pub outage_cursor: usize,
    pub outcomes: Vec<JobOutcome>,
    pub accounts: Accounts,
    pub power_hist: Vec<PowerSample>,
    pub cooling_hist: Vec<CoolingSample>,
    pub util_hist: Vec<f64>,
    pub queue_hist: Vec<usize>,
    pub queue_demand_hist: Vec<u64>,
    /// The cooling plant's integrated loop temperature, if cooling is on
    /// (its only mutable state; the plant itself rebuilds from the spec).
    pub cooling_loop_temp_c: Option<f64>,
}

impl EngineSnapshot {
    /// Simulated time still ahead of the paused instant, in ticks.
    pub fn ticks_remaining(&self) -> i64 {
        self.remaining
    }

    /// The paused instant.
    pub fn paused_at(&self) -> SimTime {
        self.now
    }
}
