//! Simulation output: the in-memory equivalent of the artifact's output
//! directory (`power_history.parquet`, `util.parquet`, `queue_history.csv`,
//! `cooling_model.parquet`, `job_history.csv`, `stats.out`,
//! `accounts.json`).

use sraps_acct::{Accounts, JobOutcome, SystemStats, Users};
use sraps_cooling::CoolingSample;
use sraps_power::PowerSample;
use sraps_sched::SchedulerStats;
use sraps_types::{SimDuration, SimTime};

/// Everything a run produces.
#[derive(Debug, Clone)]
pub struct SimOutput {
    /// `<policy>-<backfill>` label, e.g. `fcfs-easy`.
    pub label: String,
    pub scheduler_name: &'static str,
    /// Tick timestamps.
    pub times: Vec<SimTime>,
    /// Facility power per tick.
    pub power: Vec<PowerSample>,
    /// Cooling readings per tick (empty when the cooling model is off).
    pub cooling: Vec<CoolingSample>,
    /// Node-occupancy utilization per tick, in \[0,1\].
    pub utilization: Vec<f64>,
    /// Queued-job count per tick.
    pub queue_depth: Vec<usize>,
    /// Aggregate node demand of queued jobs per tick.
    pub queue_demand_nodes: Vec<u64>,
    /// Completed jobs.
    pub outcomes: Vec<JobOutcome>,
    pub stats: SystemStats,
    pub accounts: Accounts,
    /// Per-user statistics over the completed jobs.
    pub users: Users,
    pub sched_stats: SchedulerStats,
    /// Wall-clock cost of the run.
    pub wall_time: std::time::Duration,
    /// Simulated span.
    pub sim_span: SimDuration,
    /// This run's observability delta (phase timings + counters); `None`
    /// unless profiling was enabled (`sraps_obs::set_profile(true)`).
    pub profile: Option<sraps_obs::Profile>,
}

impl SimOutput {
    /// Simulation speedup over real time (the §4.2.2 "688×" metric).
    pub fn speedup(&self) -> f64 {
        let wall = self.wall_time.as_secs_f64();
        if wall <= 0.0 {
            f64::INFINITY
        } else {
            self.sim_span.as_secs_f64() / wall
        }
    }

    /// Mean total facility power over the run, kW.
    pub fn mean_power_kw(&self) -> f64 {
        if self.power.is_empty() {
            0.0
        } else {
            self.power.iter().map(|p| p.total_kw).sum::<f64>() / self.power.len() as f64
        }
    }

    /// Peak total facility power, kW.
    pub fn peak_power_kw(&self) -> f64 {
        self.power.iter().map(|p| p.total_kw).fold(0.0, f64::max)
    }

    /// Mean utilization over the run.
    pub fn mean_utilization(&self) -> f64 {
        if self.utilization.is_empty() {
            0.0
        } else {
            self.utilization.iter().sum::<f64>() / self.utilization.len() as f64
        }
    }

    /// Energy-weighted PUE over the whole run: Σ(IT + losses + cooling
    /// aux) / Σ IT. Per-tick PUE spikes at low load; the run-level number
    /// is what a facility reports (Frontier's actual average is ≈1.06).
    /// `None` when the cooling model was off.
    pub fn run_pue(&self) -> Option<f64> {
        if self.cooling.is_empty() || self.cooling.len() != self.power.len() {
            return None;
        }
        let (mut facility, mut it) = (0.0, 0.0);
        for (p, c) in self.power.iter().zip(&self.cooling) {
            facility += p.total_kw + c.fan_power_kw + c.pump_power_kw;
            it += p.it_power_kw;
        }
        (it > 0.0).then(|| facility / it)
    }

    /// Largest tick-to-tick power change, kW — the "power swing" metric the
    /// paper's smoothing claims are about.
    pub fn max_power_swing_kw(&self) -> f64 {
        self.power
            .windows(2)
            .map(|w| (w[1].total_kw - w[0].total_kw).abs())
            .fold(0.0, f64::max)
    }

    /// `power_history` as CSV (`t,it_kw,loss_kw,total_kw`).
    pub fn power_csv(&self) -> String {
        let mut s = String::with_capacity(self.times.len() * 32 + 64);
        s.push_str("t_secs,it_kw,loss_kw,total_kw\n");
        for (t, p) in self.times.iter().zip(&self.power) {
            s.push_str(&format!(
                "{},{:.3},{:.3},{:.3}\n",
                t.as_secs(),
                p.it_power_kw,
                p.loss_kw,
                p.total_kw
            ));
        }
        s
    }

    /// `util+queue` history as CSV
    /// (`t,utilization,queue_depth,queue_demand_nodes`).
    pub fn util_csv(&self) -> String {
        let mut s = String::with_capacity(self.times.len() * 28 + 48);
        s.push_str("t_secs,utilization,queue_depth,queue_demand_nodes\n");
        for i in 0..self.times.len() {
            s.push_str(&format!(
                "{},{:.4},{},{}\n",
                self.times[i].as_secs(),
                self.utilization[i],
                self.queue_depth.get(i).copied().unwrap_or(0),
                self.queue_demand_nodes.get(i).copied().unwrap_or(0)
            ));
        }
        s
    }

    /// `cooling_model` history as CSV (`t,pue,tower_return_c,fan_kw`).
    pub fn cooling_csv(&self) -> String {
        let mut s = String::with_capacity(self.cooling.len() * 32 + 48);
        s.push_str("t_secs,pue,tower_return_c,fan_kw,pump_kw\n");
        for (t, c) in self.times.iter().zip(&self.cooling) {
            s.push_str(&format!(
                "{},{:.4},{:.3},{:.2},{:.2}\n",
                t.as_secs(),
                c.pue,
                c.tower_return_c,
                c.fan_power_kw,
                c.pump_power_kw
            ));
        }
        s
    }

    /// `job_history` as CSV.
    pub fn job_csv(&self) -> String {
        let mut s = String::with_capacity(self.outcomes.len() * 64 + 96);
        s.push_str("job_id,account,nodes,submit,start,end,energy_kwh,avg_node_power_kw\n");
        for o in &self.outcomes {
            s.push_str(&format!(
                "{},{},{},{},{},{},{:.4},{:.4}\n",
                o.id.0,
                o.account.0,
                o.nodes,
                o.submit.as_secs(),
                o.start.as_secs(),
                o.end.as_secs(),
                o.energy_kwh,
                o.avg_node_power_kw
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn output() -> SimOutput {
        SimOutput {
            label: "fcfs-easy".into(),
            scheduler_name: "default",
            times: vec![
                SimTime::seconds(0),
                SimTime::seconds(60),
                SimTime::seconds(120),
            ],
            power: vec![
                PowerSample {
                    it_power_kw: 100.0,
                    loss_kw: 5.0,
                    total_kw: 105.0,
                    load_fraction: 0.5,
                },
                PowerSample {
                    it_power_kw: 200.0,
                    loss_kw: 10.0,
                    total_kw: 210.0,
                    load_fraction: 0.9,
                },
                PowerSample {
                    it_power_kw: 150.0,
                    loss_kw: 7.0,
                    total_kw: 157.0,
                    load_fraction: 0.7,
                },
            ],
            cooling: vec![],
            utilization: vec![0.5, 0.9, 0.7],
            queue_depth: vec![3, 1, 0],
            queue_demand_nodes: vec![12, 4, 0],
            outcomes: vec![],
            stats: SystemStats::default(),
            accounts: Accounts::new(1.0),
            users: Users::new(),
            sched_stats: SchedulerStats::default(),
            wall_time: std::time::Duration::from_millis(500),
            sim_span: SimDuration::seconds(180),
            profile: None,
        }
    }

    #[test]
    fn aggregate_metrics() {
        let o = output();
        assert!((o.mean_power_kw() - (105.0 + 210.0 + 157.0) / 3.0).abs() < 1e-9);
        assert_eq!(o.peak_power_kw(), 210.0);
        assert!((o.mean_utilization() - 0.7).abs() < 1e-9);
        assert!((o.max_power_swing_kw() - 105.0).abs() < 1e-9);
        assert!((o.speedup() - 360.0).abs() < 1e-9, "180 s in 0.5 s wall");
    }

    #[test]
    fn csv_renders_headers_and_rows() {
        let o = output();
        let p = o.power_csv();
        assert!(p.starts_with("t_secs,it_kw"));
        assert_eq!(p.lines().count(), 4);
        let u = o.util_csv();
        assert!(u.contains("0,0.5000,3,12"));
    }

    #[test]
    fn empty_histories_are_safe() {
        let mut o = output();
        o.power.clear();
        o.times.clear();
        o.utilization.clear();
        assert_eq!(o.mean_power_kw(), 0.0);
        assert_eq!(o.max_power_swing_kw(), 0.0);
        assert_eq!(o.mean_utilization(), 0.0);
        assert_eq!(o.run_pue(), None);
    }

    #[test]
    fn run_pue_is_energy_weighted() {
        let mut o = output();
        o.cooling = o
            .power
            .iter()
            .map(|_| sraps_cooling::CoolingSample {
                tower_return_c: 28.0,
                supply_c: 24.0,
                fan_power_kw: 5.0,
                pump_power_kw: 5.0,
                pue: 0.0, // per-tick value unused by run_pue
                heat_kw: 0.0,
            })
            .collect();
        let it: f64 = o.power.iter().map(|p| p.it_power_kw).sum();
        let fac: f64 = o.power.iter().map(|p| p.total_kw + 10.0).sum();
        assert!((o.run_pue().unwrap() - fac / it).abs() < 1e-12);
        assert!(o.run_pue().unwrap() > 1.0);
    }
}
