//! The S-RAPS simulation engine (§3.2.3): the four-step forward-time loop
//! driving scheduler, power model, and cooling model.
//!
//! Two main-loop cores share every step ([`crate::config::EngineMode`]):
//!
//! * **tick** — the paper's loop: steps 1–4 at every telemetry tick;
//! * **event** — the hybrid event/tick core: steps 1–3 (complete /
//!   enqueue / schedule) run only at *event times* — the next pending
//!   submission, the earliest completion in the heap, the next outage
//!   edge — and step 4's physics is batch-advanced across the idle span
//!   in between. Histories stay tick-resolution and bit-identical to the
//!   tick core; only the work of discovering that nothing schedulable
//!   changed is skipped.
//!
//! With an empty queue the skip is always sound. With a non-empty queue
//! it depends on the scheduler ([`SchedSkip`]): built-in policies with
//! none/first-fit/EASY backfill change their decisions only at events, so
//! a call that placed nothing skips ahead. Every other backend is asked
//! for its next internal deadline
//! ([`SchedulerBackend::next_decision_time`]) — conservative backfill
//! exposes its earliest future reservation, replay (also under a power
//! cap) the earliest future recorded start, external engines their next
//! internal event — and the skip horizon is bounded by that deadline.
//! Only backends that cannot bound their next decision (a conservative
//! plan whose matured reservation failed to allocate, an external engine
//! without an event hint) still force one-tick stepping.

use crate::config::{EngineMode, SchedulerSelect, SimConfig};
use crate::fingerprint::ENGINE_SCHEMA_VERSION;
use crate::output::SimOutput;
use crate::snapshot::{ActiveSnapshot, EngineSnapshot};
use sraps_acct::{Accounts, JobOutcome, SystemStats};
use sraps_cooling::CoolingPlant;
use sraps_data::Dataset;
use sraps_extsched::{ExternalAdapter, FastSim, ScheduleFlow};
use sraps_obs::{Counter, Phase as ObsPhase};
use sraps_power::{node_power_from_telemetry, node_power_w, PowerModel};
use sraps_sched::{
    BuiltinScheduler, ExperimentalScheduler, JobQueue, QueuedJob, ResourceManager, RunningView,
    SchedContext, SchedulerBackend,
};
use sraps_types::{
    Job, JobId, NodeSet, Result, SimDuration, SimTime, SrapsError, Trace, TraceSegments,
};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::{Arc, OnceLock};

/// How a job's telemetry drives the physics step.
#[derive(Debug, Clone, Copy)]
enum Profile {
    /// Every trace has at most one sample (the summary-dataset fidelity
    /// class: Fugaku / Lassen / Adastra): the job draws the same power at
    /// every offset, so it is sampled *once* at activation and its
    /// outcome integrates in closed form — the per-tick work shrinks to
    /// one cached add into the busy-power sum.
    Constant {
        node_w: f64,
        cpu: f64,
        gpu: f64,
        /// Cached `node_w × nodes` contribution to the busy-power sum.
        busy_w: f64,
    },
    /// Time-varying traces (Frontier / Marconi100): sampled every tick.
    Traced,
}

/// A job currently on the machine.
#[derive(Debug, Clone)]
struct Active {
    id: JobId,
    /// Index into [`Engine::jobs`] — the cached job handle, so the hot
    /// physics loop indexes a slice instead of hashing a `JobId`.
    job: usize,
    nodes: NodeSet,
    start: SimTime,
    /// When the job will actually complete (trace ground truth).
    actual_end: SimTime,
    /// What the scheduler believes (start + wall-time estimate).
    est_end: SimTime,
    /// Telemetry offset at `start` — non-zero for jobs prepopulated
    /// mid-execution (they resume their profile, not restart it).
    telemetry_offset: SimDuration,
    profile: Profile,
    // Accumulators for the job outcome (traced profiles only; constant
    // profiles integrate analytically at completion).
    energy_kwh: f64,
    node_power_sum_kw: f64,
    cpu_util_sum: f64,
    gpu_util_sum: f64,
    ticks: u64,
}

impl Active {
    fn new(
        id: JobId,
        job: usize,
        nodes: NodeSet,
        start: SimTime,
        actual_end: SimTime,
        est_end: SimTime,
        telemetry_offset: SimDuration,
    ) -> Active {
        Active {
            id,
            job,
            nodes,
            start,
            actual_end,
            est_end,
            telemetry_offset,
            profile: Profile::Traced,
            energy_kwh: 0.0,
            node_power_sum_kw: 0.0,
            cpu_util_sum: 0.0,
            gpu_util_sum: 0.0,
            ticks: 0,
        }
    }
}

/// A trace with at most one sample reads the same value at every offset —
/// the summary-dataset case whose sampling the physics batcher hoists out
/// of the per-tick loop.
fn is_constant(t: &Option<Trace>) -> bool {
    t.as_ref().is_none_or(|t| t.len() <= 1)
}

/// One maximal homogeneous run of a metric within a physics span: either
/// a constant hold or a straight slice of consecutive samples.
#[derive(Clone, Copy)]
enum MetricRun<'a> {
    /// The same value at every tick of the run.
    Hold(f32),
    /// Tick `k + j` of the run reads `samples[j]` (trace cadence equals
    /// the engine tick — the Marconi100/Frontier hot path).
    Stream(&'a [f32]),
}

impl MetricRun<'_> {
    #[inline]
    fn at(self, j: usize) -> f32 {
        match self {
            MetricRun::Hold(v) => v,
            MetricRun::Stream(s) => s[j],
        }
    }
}

/// Cursor over one metric's piecewise-constant value stream within a
/// physics span: traces are constant between samples, so the span walk
/// reads each metric once per *run* instead of re-sampling (divide,
/// clamp, branch) at every tick. Values are exactly [`Trace::sample`]'s
/// at each tick offset.
enum MetricCursor<'a> {
    /// One value across the whole span: metric missing, single-sample
    /// trace, or the span lies entirely in one sample's hold region.
    Constant(f32),
    /// `trace.dt == step` (trace cadence matches the tick): the sample
    /// index at tick `k` is `clamp(i0 + k, 0, len-1)` — a leading hold
    /// (before the trace), a streamed middle, a trailing hold (last
    /// value). This is the trace-dataset hot path (Marconi100/Frontier
    /// sample at exactly the engine tick).
    Aligned { values: &'a [f32], i0: i64 },
    /// Arbitrary cadence/alignment: the generic segment iterator.
    General {
        it: TraceSegments<'a>,
        end: usize,
        value: f32,
    },
}

impl<'a> MetricCursor<'a> {
    fn new(trace: Option<&'a Trace>, start: SimDuration, step: SimDuration, count: usize) -> Self {
        let Some(t) = trace.filter(|t| !t.is_empty()) else {
            return MetricCursor::Constant(0.0);
        };
        let n = t.values.len();
        if n == 1 {
            return MetricCursor::Constant(t.values[0]);
        }
        if t.dt == step {
            // idx(k) = floor((start - t0 + k·dt)/dt) = i0 + k, clamped —
            // identical to `sample` (trunc == floor for the positive
            // branch; non-positive clamps to the first value).
            let i0 = (start.as_secs() - t.t0.as_secs()).div_euclid(t.dt.as_secs());
            if i0 >= (n - 1) as i64 {
                return MetricCursor::Constant(t.values[n - 1]);
            }
            if count == 0 || i0 + (count as i64 - 1) <= 0 {
                return MetricCursor::Constant(t.values[0]);
            }
            return MetricCursor::Aligned {
                values: &t.values,
                i0,
            };
        }
        let mut it = t.segments(start, step, count);
        let (end, value) = it.next().map_or((count, 0.0), |s| (s.ticks.end, s.value));
        MetricCursor::General { it, end, value }
    }

    /// The maximal homogeneous run starting at tick `k` (ends capped at
    /// `count`); `k` must be non-decreasing across calls.
    #[inline]
    fn run_at(&mut self, k: usize, count: usize) -> (MetricRun<'a>, usize) {
        match self {
            MetricCursor::Constant(v) => (MetricRun::Hold(*v), count),
            MetricCursor::Aligned { values, i0 } => {
                let i = *i0 + k as i64;
                let last = values.len() - 1;
                if i <= 0 {
                    // The first value holds until the index turns 1.
                    (MetricRun::Hold(values[0]), ((1 - *i0) as usize).min(count))
                } else if i as usize >= last {
                    (MetricRun::Hold(values[last]), count)
                } else {
                    // Stream consecutive samples until the last sample's
                    // hold region begins.
                    let i = i as usize;
                    (MetricRun::Stream(&values[i..]), (k + (last - i)).min(count))
                }
            }
            MetricCursor::General { it, end, value } => {
                while k >= *end {
                    let s = it.next().expect("segments cover every tick");
                    *end = s.ticks.end;
                    *value = s.value;
                }
                (MetricRun::Hold(*value), *end)
            }
        }
    }
}

/// When may the event core skip scheduling ticks while the queue is
/// *non-empty*? (An empty queue always skips to the event horizon.)
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SchedSkip {
    /// Built-in policy (every ordering key is time-invariant between
    /// events — aging is uniform-rate) with none/first-fit/EASY backfill:
    /// a call that places nothing will keep placing nothing until the
    /// next completion/submission/outage event — EASY admission only
    /// hardens as `now` advances against a reservation built from static
    /// estimated ends. (A call that *did* place jobs can shift the
    /// reservation, so placements force a one-tick step.)
    OnEvents,
    /// Everything else — replay (queued jobs mature at recorded starts),
    /// conservative backfill (reservations mature on estimated ends),
    /// power-cap wrappers, experimental and external backends: ask the
    /// backend for its next internal deadline
    /// ([`SchedulerBackend::next_decision_time`]) after each no-op call
    /// and bound the skip horizon by it.
    Hinted,
}

impl SchedSkip {
    fn classify(sim: &SimConfig) -> SchedSkip {
        use sraps_sched::{BackfillKind, PolicyKind};
        if sim.scheduler != SchedulerSelect::Default
            || sim.power_cap_kw.is_some()
            || sim.policy == PolicyKind::Replay
        {
            return SchedSkip::Hinted;
        }
        match sim.backfill {
            BackfillKind::None | BackfillKind::FirstFit | BackfillKind::Easy => SchedSkip::OnEvents,
            BackfillKind::Conservative => SchedSkip::Hinted,
        }
    }
}

/// The simulation engine. Create with [`Engine::builder`] (or the
/// [`Engine::new`] shorthand), run with [`Engine::run`] — or drive it
/// incrementally with [`Engine::run_until`], capture the full state with
/// [`Engine::snapshot`], and continue a capture via
/// [`EngineBuilder::resume`] or [`Engine::fork`].
pub struct Engine {
    sim: SimConfig,
    /// Loop cursor: the next tick instant to visit.
    now: SimTime,
    /// Loop cursor: tick instants left to visit before `sim_end`.
    remaining: i64,
    /// Ticks of the current decided span whose physics has not advanced
    /// yet — control (steps 1–3) already ran for them. Non-zero between
    /// a control step and the completion of its physics span, i.e. when
    /// [`Engine::run_until`] or a batched chunk cut the span short.
    span_left: i64,
    scheduler: Box<dyn SchedulerBackend>,
    rm: ResourceManager,
    queue: JobQueue,
    /// All in-window jobs; [`Active::job`] and `pending` index into this.
    /// Shared: every engine over the same [`SimWindow`] reads one copy.
    jobs: Arc<Vec<Job>>,
    /// `JobId` → index in `jobs`; touched once per placement, never in
    /// the per-tick loops.
    job_index: Arc<HashMap<JobId, usize>>,
    /// Not-yet-submitted jobs (indices into `jobs`), ascending by submit.
    pending: Arc<Vec<usize>>,
    next_pending: usize,
    active: Vec<Active>,
    /// Position of each active job in `active`, so a completion popped
    /// from the heap removes in O(1) after the O(log n) pop.
    active_pos: HashMap<JobId, usize>,
    /// Min-heap of (actual_end, id): the completion side of the event
    /// horizon, replacing the O(active) scan per tick.
    completions: BinaryHeap<Reverse<(SimTime, JobId)>>,
    /// Scheduler-facing view of `active`, maintained in lockstep so
    /// schedule calls stop rebuilding it.
    running: Vec<RunningView>,
    power_model: PowerModel,
    cooling: Option<CoolingPlant>,
    accounts: Accounts,
    outcomes: Vec<JobOutcome>,
    sim_start: SimTime,
    sim_end: SimTime,
    /// Which configured outages are currently applied.
    outage_active: Vec<bool>,
    /// Every outage edge (`from` and `until`), pre-sorted ascending, so
    /// the event-horizon check is a cursor lookup instead of a scan.
    outage_edges: Vec<SimTime>,
    /// First entry of `outage_edges` strictly after the last horizon
    /// query; `now` is monotone in the run loop, so the cursor only
    /// advances — O(1) amortized.
    outage_cursor: usize,
    // Histories.
    times: Vec<SimTime>,
    power_hist: Vec<sraps_power::PowerSample>,
    cooling_hist: Vec<sraps_cooling::CoolingSample>,
    util_hist: Vec<f64>,
    queue_hist: Vec<usize>,
    queue_demand_hist: Vec<u64>,
    /// Scratch: per-tick aggregate busy power within one physics span.
    span_busy: Vec<f64>,
    /// Scratch: the scheduler's placement buffer, reused across calls.
    placements: Vec<sraps_sched::Placement>,
    /// How many actives carry a traced (per-tick sampled) profile.
    traced_active: usize,
    /// Non-empty-queue skip eligibility, classified once from the config.
    skip: SchedSkip,
}

/// The cell-independent slice of engine construction: the simulation
/// window bounds and the classified in-window job set, shareable across
/// every engine simulating the same (dataset, window) pair.
///
/// [`Engine::new`] builds one privately; the batched sweep path builds
/// one per lane group so K lanes stop re-cloning and re-sorting the same
/// jobs (telemetry traces included). Both construction paths route
/// through [`Engine::with_window`], so shared-window engines are
/// identical to standalone ones by construction.
pub struct SimWindow {
    sim_start: SimTime,
    sim_end: SimTime,
    /// All in-window jobs; `Active::job` and `pending` index into this.
    jobs: Arc<Vec<Job>>,
    /// `JobId` → index in `jobs`.
    job_index: Arc<HashMap<JobId, usize>>,
    /// Not-yet-submitted jobs, ascending by (submit, id).
    pending: Arc<Vec<usize>>,
    /// Jobs mid-run at the window start (dataset order) — prepopulation
    /// candidates; allocation is per-engine state and stays in
    /// [`Engine::with_window`].
    prepop: Vec<usize>,
    /// Per-job mean-power estimates (kW), the power-cap scheduler's
    /// input (§5). A pure fold over the jobs' telemetry traces, so it is
    /// computed once per window and shared: a forked power-cap scan
    /// builds many capped engines over one window.
    power_estimates: OnceLock<HashMap<JobId, f64>>,
}

impl SimWindow {
    /// Select the window and classify the dataset's in-window jobs once
    /// (§3.2.2): jobs submitted inside the window become `pending`, jobs
    /// mid-run at the window start become prepopulation candidates.
    pub fn new(sim: &SimConfig, dataset: &Dataset) -> Result<SimWindow> {
        let sim_start = sim.sim_start.unwrap_or(dataset.capture_start);
        let sim_end = sim.sim_end.unwrap_or(dataset.capture_end);
        if sim_end <= sim_start {
            return Err(SrapsError::Config(format!(
                "empty simulation window {sim_start}..{sim_end}"
            )));
        }
        // Dismiss out-of-window jobs (§3.2.2).
        let jobs: Vec<Job> = dataset
            .jobs_in_window(sim_start, sim_end)
            .cloned()
            .collect();
        let mut job_index = HashMap::with_capacity(jobs.len());
        let mut pending: Vec<usize> = Vec::with_capacity(jobs.len());
        let mut prepop = Vec::new();
        for (idx, job) in jobs.iter().enumerate() {
            if job.recorded_start < sim_start && job.recorded_end > sim_start {
                prepop.push(idx);
            } else {
                pending.push(idx);
            }
            job_index.insert(job.id, idx);
        }
        pending.sort_by_key(|&i| (jobs[i].submit, jobs[i].id));
        Ok(SimWindow {
            sim_start,
            sim_end,
            jobs: Arc::new(jobs),
            job_index: Arc::new(job_index),
            pending: Arc::new(pending),
            prepop,
            power_estimates: OnceLock::new(),
        })
    }

    /// Per-job power estimates: what a site would have from user
    /// estimates or fingerprinting (§5). Lazy — uncapped windows never
    /// pay for it — and memoized across every engine on this window.
    fn power_estimates(&self) -> &HashMap<JobId, f64> {
        self.power_estimates.get_or_init(|| {
            self.jobs
                .iter()
                .map(|j| {
                    let node_kw = j
                        .telemetry
                        .node_power_w
                        .as_ref()
                        .map_or(0.0, |t| t.mean() as f64 / 1000.0);
                    (j.id, node_kw * j.nodes_requested as f64)
                })
                .collect()
        })
    }
}

impl Engine {
    /// Initialize the system (§3.2.1): select the window, load in-window
    /// jobs, build the scheduler, and prepopulate jobs already running at
    /// the window start — "this allows us to represent the actual system
    /// condition as observed in the telemetry at start of the simulation".
    ///
    /// Shorthand for `Engine::builder(sim).build(dataset)`.
    pub fn new(sim: SimConfig, dataset: &Dataset) -> Result<Engine> {
        Engine::builder(sim).build(dataset)
    }

    /// Start building an engine. [`EngineBuilder`] is the single
    /// construction front: fresh engines, shared-window engines, and
    /// engines resumed from an [`EngineSnapshot`] all go through it.
    pub fn builder(sim: SimConfig) -> EngineBuilder<'static> {
        EngineBuilder {
            sim,
            snapshot: None,
        }
    }

    /// Like [`Engine::new`], but over a prebuilt [`SimWindow`] shared
    /// with other engines. Per-engine state (resource manager, scheduler,
    /// prepopulation allocations, histories) is still built here; only
    /// the immutable job set is shared.
    pub fn with_window(sim: SimConfig, window: &SimWindow) -> Result<Engine> {
        let mut engine = Engine::bare(sim, window)?;
        for &idx in &window.prepop {
            let job = &engine.jobs[idx];
            // Prepopulation: the job was mid-run when the window opens.
            let nodes = match &job.recorded_nodes {
                Some(set) if engine.rm.allocate_exact(set).is_ok() => set.clone(),
                _ => match engine.rm.allocate(job.nodes_requested) {
                    Ok(set) => set,
                    // An infeasible trace would land here; skip the job
                    // rather than corrupting occupancy (it stays in the
                    // shared job set but is never queued or activated).
                    Err(_) => continue,
                },
            };
            let est_end = (job.recorded_start + job.estimate())
                .max(engine.sim_start + engine.sim.system.tick);
            let a = Active::new(
                job.id,
                idx,
                nodes,
                engine.sim_start,
                job.recorded_end,
                est_end,
                engine.sim_start - job.recorded_start,
            );
            engine.activate(a);
        }
        Ok(engine)
    }

    /// The state-free part of construction shared by fresh starts and
    /// snapshot restores: everything derivable from the config and the
    /// window — scheduler, physical models, outage edges, reserved
    /// histories — with an idle machine and the cursor at the window
    /// start. No prepopulation, no activation.
    fn bare(sim: SimConfig, window: &SimWindow) -> Result<Engine> {
        sim.validate()?;
        let sim_start = sim.sim_start.unwrap_or(window.sim_start);
        let sim_end = sim.sim_end.unwrap_or(window.sim_end);
        if (sim_start, sim_end) != (window.sim_start, window.sim_end) {
            return Err(SrapsError::Config(format!(
                "engine window {sim_start}..{sim_end} does not match shared window {}..{}",
                window.sim_start, window.sim_end
            )));
        }
        let scheduler = Self::build_scheduler(&sim, window)?;
        let rm = ResourceManager::new(sim.system.total_nodes);
        let power_model = PowerModel::new(&sim.system);
        let cooling = sim.cooling.then(|| CoolingPlant::new(&sim.system.cooling));
        let accounts = sim
            .accounts_in
            .clone()
            .unwrap_or_else(|| Accounts::new(sim.reference_power_kw()));

        let outage_active = vec![false; sim.outages.len()];
        let mut outage_edges: Vec<SimTime> =
            sim.outages.iter().flat_map(|o| [o.from, o.until]).collect();
        outage_edges.sort_unstable();
        let mut engine = Engine {
            scheduler,
            rm,
            now: sim_start,
            remaining: 0,
            span_left: 0,
            queue: JobQueue::new(),
            jobs: Arc::clone(&window.jobs),
            job_index: Arc::clone(&window.job_index),
            pending: Arc::clone(&window.pending),
            next_pending: 0,
            active: Vec::new(),
            active_pos: HashMap::new(),
            completions: BinaryHeap::new(),
            running: Vec::new(),
            power_model,
            cooling,
            accounts,
            outcomes: Vec::new(),
            sim_start,
            sim_end,
            outage_active,
            outage_edges,
            outage_cursor: 0,
            times: Vec::new(),
            power_hist: Vec::new(),
            cooling_hist: Vec::new(),
            util_hist: Vec::new(),
            queue_hist: Vec::new(),
            queue_demand_hist: Vec::new(),
            span_busy: Vec::new(),
            placements: Vec::new(),
            traced_active: 0,
            skip: SchedSkip::classify(&sim),
            sim,
        };
        // Histories have a known final length: one sample per tick.
        engine.remaining = engine.ticks_total();
        let total_ticks = engine.remaining as usize;
        engine.times.reserve_exact(total_ticks);
        engine.power_hist.reserve_exact(total_ticks);
        engine.util_hist.reserve_exact(total_ticks);
        engine.queue_hist.reserve_exact(total_ticks);
        engine.queue_demand_hist.reserve_exact(total_ticks);
        if engine.cooling.is_some() {
            engine.cooling_hist.reserve_exact(total_ticks);
        }
        Ok(engine)
    }

    fn build_scheduler(sim: &SimConfig, window: &SimWindow) -> Result<Box<dyn SchedulerBackend>> {
        let jobs: &[Job] = &window.jobs;
        let tick = sim.system.tick;
        // Duration oracle for external emulators: ground-truth runtimes.
        // Deferred to the external branches — the builtin scheduler never
        // consults it, and the map costs O(jobs) per engine to assemble.
        let oracle = || {
            let durations: HashMap<JobId, SimDuration> =
                jobs.iter().map(|j| (j.id, j.duration())).collect();
            move |q: &QueuedJob| durations.get(&q.id).copied().unwrap_or(tick)
        };
        Ok(match sim.scheduler {
            SchedulerSelect::Default => {
                let builtin = BuiltinScheduler::new(sim.policy, sim.backfill);
                match sim.power_cap_kw {
                    Some(cap_kw) => Box::new(sraps_sched::PowerCapScheduler::new(
                        builtin,
                        cap_kw,
                        window.power_estimates().clone(),
                    )),
                    None => Box::new(builtin),
                }
            }
            SchedulerSelect::Experimental => Box::new(ExperimentalScheduler::new(
                sim.policy,
                sim.backfill,
                sim.accounts_in.clone().expect("validated"),
            )?),
            SchedulerSelect::ScheduleFlow => Box::new(ExternalAdapter::new(
                ScheduleFlow::new(sim.system.total_nodes),
                true, // strict: report over-allocation as error (§4.2.1 AE)
                "scheduleflow",
                Box::new(oracle()),
            )),
            SchedulerSelect::FastSim => Box::new(ExternalAdapter::new(
                FastSim::new(sim.system.total_nodes),
                false,
                "fastsim",
                Box::new(oracle()),
            )),
        })
    }

    /// Register a job as running: active list, scheduler view, position
    /// map, completion heap, and the scheduler's capacity timeline stay
    /// in lockstep. Constant-telemetry jobs are sampled here, once,
    /// instead of once per tick.
    fn activate(&mut self, mut a: Active) {
        self.scheduler
            .on_job_started(a.est_end, a.nodes.len() as u32);
        self.classify(&mut a);
        self.attach(a);
    }

    /// Set the job's physics profile from its telemetry — a pure function
    /// of the job and its offset, so restore re-derives it instead of
    /// serializing floats twice.
    fn classify(&self, a: &mut Active) {
        let tel = &self.jobs[a.job].telemetry;
        if is_constant(&tel.node_power_w)
            && is_constant(&tel.cpu_util)
            && is_constant(&tel.gpu_util)
        {
            let spec = &self.sim.system.node_power;
            let node_w = node_power_from_telemetry(spec, tel, a.telemetry_offset);
            a.profile = Profile::Constant {
                node_w,
                cpu: tel.cpu_util_at(a.telemetry_offset) as f64,
                gpu: tel.gpu_util_at(a.telemetry_offset) as f64,
                busy_w: node_w * a.nodes.len() as f64,
            };
        } else {
            a.profile = Profile::Traced;
        }
    }

    /// Index a classified [`Active`] into every engine-side structure.
    /// Restore uses this directly: the scheduler's own record of the job
    /// is already inside its snapshotted state, so no
    /// [`SchedulerBackend::on_job_started`] call happens here.
    fn attach(&mut self, a: Active) {
        if let Profile::Traced = a.profile {
            self.traced_active += 1;
        }
        self.completions.push(Reverse((a.actual_end, a.id)));
        self.active_pos.insert(a.id, self.active.len());
        self.running.push(RunningView {
            id: a.id,
            nodes: a.nodes.len() as u32,
            estimated_end: a.est_end,
        });
        self.active.push(a);
    }

    /// Apply/lift outage windows (part of step 1's state update).
    fn apply_outages(&mut self, now: SimTime) {
        for (i, o) in self.sim.outages.iter().enumerate() {
            let should_be_down = o.from <= now && now < o.until;
            if should_be_down && !self.outage_active[i] {
                self.rm.mark_down(&o.nodes);
                self.outage_active[i] = true;
            } else if !should_be_down && self.outage_active[i] {
                self.rm.mark_up(&o.nodes);
                self.outage_active[i] = false;
            }
        }
    }

    /// Step 1 — preparation: clear completed jobs, free their resources.
    /// Completions pop off the heap in (end, id) order: O(log n) per
    /// completed job, O(1) when nothing completes this tick.
    fn complete_jobs(&mut self, now: SimTime) {
        while let Some(&Reverse((end, id))) = self.completions.peek() {
            if end > now {
                break;
            }
            self.completions.pop();
            sraps_obs::bump(Counter::EngineHeapPops);
            let i = self
                .active_pos
                .remove(&id)
                .expect("every heap entry has an active job");
            let a = self.active.swap_remove(i);
            self.running.swap_remove(i);
            if i < self.active.len() {
                self.active_pos.insert(self.active[i].id, i);
            }
            if let Profile::Traced = a.profile {
                self.traced_active -= 1;
            }
            self.scheduler
                .on_job_completed(a.est_end, a.nodes.len() as u32);
            self.rm.release(&a.nodes);
            let outcome = Self::finish(&self.jobs[a.job], &a, self.sim.system.tick);
            if self.sim.track_accounts {
                self.accounts.record(&outcome);
            }
            self.outcomes.push(outcome);
        }
    }

    fn finish(job: &Job, a: &Active, dt: SimDuration) -> JobOutcome {
        let ticks = a.ticks.max(1) as f64;
        let (avg_kw, energy, cpu, gpu) = if a.ticks == 0 {
            // Sub-tick job: integrate analytically from the trace mean.
            let mean_w = job
                .telemetry
                .node_power_w
                .as_ref()
                .map_or(0.0, |t| t.mean() as f64);
            let hours = (a.actual_end - a.start).as_hours_f64();
            (
                mean_w / 1000.0,
                mean_w / 1000.0 * a.nodes.len() as f64 * hours,
                job.telemetry.cpu_util_at(SimDuration::ZERO) as f64,
                job.telemetry.gpu_util_at(SimDuration::ZERO) as f64,
            )
        } else if let Profile::Constant {
            node_w, cpu, gpu, ..
        } = a.profile
        {
            // Constant draw: the per-tick sums are a closed form.
            let kw = node_w / 1000.0;
            (
                kw,
                kw * a.nodes.len() as f64 * dt.as_hours_f64() * ticks,
                cpu,
                gpu,
            )
        } else {
            (
                a.node_power_sum_kw / ticks,
                a.energy_kwh,
                a.cpu_util_sum / ticks,
                a.gpu_util_sum / ticks,
            )
        };
        JobOutcome {
            id: a.id,
            user: job.user,
            account: job.account,
            nodes: a.nodes.len() as u32,
            submit: job.submit,
            start: a.start,
            end: a.actual_end,
            energy_kwh: energy,
            avg_node_power_kw: avg_kw,
            avg_cpu_util: cpu,
            avg_gpu_util: gpu,
            priority: job.priority,
        }
    }

    /// Step 2 — eligibility: queue jobs submitted by `now` (§3.2.3: "jobs
    /// can only be scheduled and placed once they have been submitted").
    fn enqueue_eligible(&mut self, now: SimTime) {
        let replaying = self.sim.policy == sraps_sched::PolicyKind::Replay;
        while self.next_pending < self.pending.len() {
            let idx = self.pending[self.next_pending];
            let job = &self.jobs[idx];
            if job.submit > now {
                break;
            }
            if replaying && job.recorded_end <= now {
                // The job ran entirely between two ticks. Placing it now
                // would occupy its recorded nodes a full tick late and
                // collide with the next tenant; account it directly on the
                // recorded timeline instead.
                let ghost = Active::new(
                    job.id,
                    idx,
                    job.recorded_nodes
                        .clone()
                        .unwrap_or_else(|| NodeSet::contiguous(0, job.nodes_requested)),
                    job.recorded_start,
                    job.recorded_end,
                    job.recorded_end,
                    SimDuration::ZERO,
                );
                let outcome = Self::finish(job, &ghost, self.sim.system.tick);
                if self.sim.track_accounts {
                    self.accounts.record(&outcome);
                }
                self.outcomes.push(outcome);
                self.next_pending += 1;
                continue;
            }
            self.queue.push(QueuedJob {
                id: job.id,
                account: job.account,
                submit: job.submit,
                nodes: job.nodes_requested,
                estimate: job.estimate(),
                priority: job.priority,
                ml_score: job.ml_score,
                recorded_start: job.recorded_start,
                recorded_nodes: job.recorded_nodes.clone(),
            });
            self.next_pending += 1;
        }
    }

    /// Step 3 — schedule: let the backend place jobs. Returns how many
    /// jobs were placed (the event core's skip condition).
    fn schedule(&mut self, now: SimTime) -> Result<usize> {
        if self.queue.is_empty() {
            return Ok(0);
        }
        let ctx = SchedContext {
            running: &self.running,
            accounts: self.sim.track_accounts.then_some(&self.accounts),
        };
        // The placement buffer is owned by the engine and reused across
        // calls, so a scheduler invocation allocates no list of its own.
        let mut placements = std::mem::take(&mut self.placements);
        placements.clear();
        self.scheduler
            .schedule(now, &mut self.queue, &mut self.rm, &ctx, &mut placements)?;
        let placed = placements.len();
        let replaying = self.sim.policy == sraps_sched::PolicyKind::Replay;
        for p in placements.drain(..) {
            let idx = self.job_index[&p.job];
            let job = &self.jobs[idx];
            // Replay anchors to the recorded timeline: placement may land
            // up to one tick late (quantization), but the job still ends at
            // its recorded end and samples telemetry on the recorded
            // clock — otherwise occupancy drifts and recorded placements
            // start colliding.
            let (actual_end, offset) = if replaying {
                (job.recorded_end.max(now), now - job.recorded_start)
            } else {
                (now + job.duration(), SimDuration::ZERO)
            };
            let est_end = now + job.estimate();
            self.activate(Active::new(
                p.job, idx, p.nodes, now, actual_end, est_end, offset,
            ));
        }
        self.placements = placements;
        Ok(placed)
    }

    /// Step 4 for the tick core — the paper's loop, one tick at a time:
    /// sample every active job's telemetry at this instant, sum busy
    /// power in active order, advance power/cooling, record histories.
    /// This is the reference implementation the parity suite validates
    /// the batched core against; [`Engine::advance_physics`] produces
    /// bit-identical output because constant traces sample to the same
    /// value at every offset and all accumulation orders match.
    fn tick_physics(&mut self, now: SimTime) {
        let dt = self.sim.system.tick;
        let dt_hours = dt.as_hours_f64();
        let spec = &self.sim.system.node_power;

        let mut busy = 0.0;
        let jobs = &self.jobs;
        for a in &mut self.active {
            let tel = &jobs[a.job].telemetry;
            let offset = (now - a.start) + a.telemetry_offset;
            let node_w = node_power_from_telemetry(spec, tel, offset);
            let n = a.nodes.len() as f64;
            busy += node_w * n;
            if let Profile::Traced = a.profile {
                a.energy_kwh += node_w / 1000.0 * n * dt_hours;
                a.node_power_sum_kw += node_w / 1000.0;
                a.cpu_util_sum += tel.cpu_util_at(offset) as f64;
                a.gpu_util_sum += tel.gpu_util_at(offset) as f64;
            }
            a.ticks += 1;
        }

        let sample = self.power_model.sample(busy, self.rm.free_count());
        if let Some(plant) = &mut self.cooling {
            let reading = match &self.sim.wetbulb_trace {
                Some(trace) => {
                    let ambient = trace.sample(now - self.sim_start) as f64;
                    plant.step_at_ambient(dt, sample.it_power_kw, sample.total_kw, ambient)
                }
                None => plant.step(dt, sample.it_power_kw, sample.total_kw),
            };
            self.cooling_hist.push(reading);
        }
        self.power_hist.push(sample);
        self.util_hist.push(self.rm.utilization());
        self.queue_hist.push(self.queue.len());
        self.queue_demand_hist.push(self.queue.demand_nodes());
    }

    /// Step 4 for the event core — physics batched across a span:
    /// advance the physical models and record histories for `ticks`
    /// consecutive tick instants starting at `from`.
    ///
    /// Between events the active set, occupancy, and queue are all
    /// constant. Constant-profile jobs (summary datasets) are already
    /// folded into `const_busy_w`, so the common idle span costs O(1)
    /// per tick: replicate one power sample and the constant history
    /// values. Traced jobs walk their overlapping trace *segments* once
    /// per span (job loop outside the tick loop): each segment's metrics
    /// are sampled once and its per-tick increments applied across the
    /// segment's tick range. Every floating-point operation happens with
    /// the same inputs and in the same order as the one-tick-at-a-time
    /// loop, keeping histories bit-identical across engine cores.
    fn advance_physics(&mut self, from: SimTime, ticks: usize) {
        let dt = self.sim.system.tick;
        let dt_secs = dt.as_secs();
        let dt_hours = dt.as_hours_f64();
        let spec = &self.sim.system.node_power;

        let free = self.rm.free_count();
        let util = self.rm.utilization();
        let qlen = self.queue.len();
        let qdemand = self.queue.demand_nodes();
        // (`times` is filled once at the end of the run: the tick grid
        // is fully determined by the window, not by the simulation.)
        // Constant-over-the-span series fill via resize (memset-grade).
        self.util_hist.resize(self.util_hist.len() + ticks, util);
        self.queue_hist.resize(self.queue_hist.len() + ticks, qlen);
        self.queue_demand_hist
            .resize(self.queue_demand_hist.len() + ticks, qdemand);

        if self.traced_active == 0 {
            // Only constant-profile jobs on the machine: every tick of
            // the span sees the same busy sum (summed in active order,
            // exactly as the one-tick loop would), so one (pure) power
            // sample serves the whole span.
            let mut busy = 0.0;
            for a in &mut self.active {
                if let Profile::Constant { busy_w, .. } = a.profile {
                    busy += busy_w;
                }
                a.ticks += ticks as u64;
            }
            let sample = self.power_model.sample(busy, free);
            self.power_hist
                .resize(self.power_hist.len() + ticks, sample);
            if let Some(plant) = &mut self.cooling {
                // The plant integrates state; it still steps per tick.
                match &self.sim.wetbulb_trace {
                    Some(trace) => {
                        for k in 0..ticks {
                            let now = from + SimDuration::seconds(dt_secs * k as i64);
                            let ambient = trace.sample(now - self.sim_start) as f64;
                            self.cooling_hist.push(plant.step_at_ambient(
                                dt,
                                sample.it_power_kw,
                                sample.total_kw,
                                ambient,
                            ));
                        }
                    }
                    // Constant heat, design ambient: the plant's batch
                    // entry point (same per-tick steps, hoisted dispatch).
                    None => plant.step_many(
                        dt,
                        sample.it_power_kw,
                        sample.total_kw,
                        ticks,
                        &mut self.cooling_hist,
                    ),
                }
            }
            return;
        }

        // Traced jobs present: walk each job's overlapping trace segments
        // once per span (traces are piecewise-constant between samples),
        // job-by-job in active order so the per-tick sums match the
        // one-tick loop exactly. Per segment the three metrics are read
        // once and the per-tick increments hoisted; the increments are
        // then applied per tick (repeated addition, not a closed form) so
        // every accumulator sees the same value sequence as the one-tick
        // loop — bit-identical histories *and* outcomes.
        let mut span_busy = std::mem::take(&mut self.span_busy);
        span_busy.clear();
        span_busy.resize(ticks, 0.0);
        let jobs = &self.jobs;
        for a in &mut self.active {
            match a.profile {
                Profile::Constant { busy_w, .. } => {
                    for b in span_busy.iter_mut() {
                        *b += busy_w;
                    }
                }
                Profile::Traced => {
                    let tel = &jobs[a.job].telemetry;
                    let n = a.nodes.len() as f64;
                    let base = (from - a.start) + a.telemetry_offset;
                    if ticks <= 3 {
                        // Short span (events a tick or two apart): the
                        // reference per-tick sampling is cheaper than
                        // setting up segment cursors it would barely use.
                        for (k, b) in span_busy.iter_mut().enumerate() {
                            let offset = base + SimDuration::seconds(dt_secs * k as i64);
                            let node_w = node_power_from_telemetry(spec, tel, offset);
                            *b += node_w * n;
                            a.energy_kwh += node_w / 1000.0 * n * dt_hours;
                            a.node_power_sum_kw += node_w / 1000.0;
                            a.cpu_util_sum += tel.cpu_util_at(offset) as f64;
                            a.gpu_util_sum += tel.gpu_util_at(offset) as f64;
                        }
                        a.ticks += ticks as u64;
                        continue;
                    }
                    // Joint walk over the (up to) three recorded metrics;
                    // a missing metric is one constant-0 run, exactly
                    // like the `*_at` accessors report 0.
                    let has_power = tel.node_power_w.is_some();
                    let mut power = MetricCursor::new(tel.node_power_w.as_ref(), base, dt, ticks);
                    let mut cpu = MetricCursor::new(tel.cpu_util.as_ref(), base, dt, ticks);
                    let mut gpu = MetricCursor::new(tel.gpu_util.as_ref(), base, dt, ticks);
                    let mut k = 0;
                    while k < ticks {
                        let (prun, pe) = power.run_at(k, ticks);
                        let (crun, ce) = cpu.run_at(k, ticks);
                        let (grun, ge) = gpu.run_at(k, ticks);
                        let end = pe.min(ce).min(ge);
                        if let (MetricRun::Hold(pw), MetricRun::Hold(cu), MetricRun::Hold(gu)) =
                            (prun, crun, grun)
                        {
                            // Constant across the run: hoist the per-tick
                            // increments once and apply them `end − k`
                            // times (repeated addition, not a closed
                            // form, so accumulators stay bit-identical
                            // to the one-tick loop).
                            let node_w = if has_power {
                                pw as f64
                            } else {
                                node_power_w(spec, cu as f64, gu as f64)
                            };
                            let busy_add = node_w * n;
                            let energy_add = node_w / 1000.0 * n * dt_hours;
                            let kw_add = node_w / 1000.0;
                            let cpu_add = cu as f64;
                            let gpu_add = gu as f64;
                            for b in &mut span_busy[k..end] {
                                *b += busy_add;
                            }
                            for _ in k..end {
                                a.energy_kwh += energy_add;
                                a.node_power_sum_kw += kw_add;
                                a.cpu_util_sum += cpu_add;
                                a.gpu_util_sum += gpu_add;
                            }
                        } else {
                            // At least one metric streams sample-per-tick:
                            // walk the slices directly — same arithmetic,
                            // same order as the one-tick loop, minus its
                            // per-tick sampling (divide/clamp/branch).
                            for (j, b) in span_busy[k..end].iter_mut().enumerate() {
                                let cu = crun.at(j) as f64;
                                let gu = grun.at(j) as f64;
                                // `node_power_from_telemetry`'s rule:
                                // recorded power wins, else the
                                // utilization→power model.
                                let node_w = if has_power {
                                    prun.at(j) as f64
                                } else {
                                    node_power_w(spec, cu, gu)
                                };
                                *b += node_w * n;
                                a.energy_kwh += node_w / 1000.0 * n * dt_hours;
                                a.node_power_sum_kw += node_w / 1000.0;
                                a.cpu_util_sum += cu;
                                a.gpu_util_sum += gu;
                            }
                        }
                        k = end;
                    }
                }
            }
            a.ticks += ticks as u64;
        }

        if self.cooling.is_none() {
            // No plant in the loop: the power model's batch entry point
            // maps the summed span directly (same per-element sample).
            self.power_model
                .sample_each(&span_busy, free, &mut self.power_hist);
        } else {
            for (k, &busy) in span_busy.iter().enumerate() {
                let sample = self.power_model.sample(busy, free);
                if let Some(plant) = &mut self.cooling {
                    let now = from + SimDuration::seconds(dt_secs * k as i64);
                    let reading = match &self.sim.wetbulb_trace {
                        Some(trace) => {
                            let ambient = trace.sample(now - self.sim_start) as f64;
                            plant.step_at_ambient(dt, sample.it_power_kw, sample.total_kw, ambient)
                        }
                        None => plant.step(dt, sample.it_power_kw, sample.total_kw),
                    };
                    self.cooling_hist.push(reading);
                }
                self.power_hist.push(sample);
            }
        }
        self.span_busy = span_busy;
    }

    /// The event horizon: earliest future instant at which steps 1–3 can
    /// do anything — the next pending submission, the earliest completion
    /// in the heap, or the next outage edge; `sim_end` bounds it. With a
    /// non-empty queue, `run` additionally bounds it by the scheduler's
    /// internal deadline and only skips when the scheduler is event-bound
    /// or hint-bounded ([`SchedSkip`]).
    ///
    /// Outage edges are pre-sorted at construction; since `now` is
    /// monotone across calls, a cursor over that list replaces the
    /// per-call scan of every configured outage (outage state only
    /// toggles at edges, so the next state change is exactly the first
    /// edge strictly after `now`).
    fn next_event_time(&mut self, now: SimTime) -> SimTime {
        let mut e = self.sim_end;
        if let Some(&idx) = self.pending.get(self.next_pending) {
            e = e.min(self.jobs[idx].submit);
        }
        if let Some(&Reverse((end, _))) = self.completions.peek() {
            e = e.min(end);
        }
        while self.outage_cursor < self.outage_edges.len()
            && self.outage_edges[self.outage_cursor] <= now
        {
            self.outage_cursor += 1;
        }
        if let Some(&edge) = self.outage_edges.get(self.outage_cursor) {
            e = e.min(edge);
        }
        e
    }

    /// Tick instants the run loop visits: `sim_start + k·dt` strictly
    /// before `sim_end`.
    fn ticks_total(&self) -> i64 {
        let dt_secs = self.sim.system.tick.as_secs();
        ((self.sim_end - self.sim_start).as_secs() + dt_secs - 1) / dt_secs
    }

    /// One control step at `now` — loop steps 1–3 plus the skip
    /// decision: completions, outage edges, eligibility, the scheduler
    /// invocation, and (in event mode) the event-horizon computation.
    /// Returns the decided span: how many ticks of physics are due
    /// before control must run again. Tick mode always decides 1.
    ///
    /// Shared by [`Engine::run`] and [`BatchedEngine::run`]; the caller
    /// owns advancing physics across the returned span.
    fn step_control(&mut self, now: SimTime, remaining: i64) -> Result<i64> {
        {
            let _s = sraps_obs::span(ObsPhase::EngineEvents);
            self.complete_jobs(now);
            self.apply_outages(now);
            self.enqueue_eligible(now);
        }
        let placed = {
            let _s = sraps_obs::span(ObsPhase::EngineScheduler);
            self.schedule(now)?
        };
        if self.sim.engine != EngineMode::Event {
            return Ok(1);
        }
        // Skip to the event horizon when steps 1–3 are provably
        // no-ops until then: always with an empty queue, and with a
        // non-empty one when this call placed nothing (placements can
        // shift backfill reservations, so they force a one-tick step)
        // and the scheduler is event-bound — outright (OnEvents) or
        // up to an internal deadline it reports, which then bounds
        // the horizon (Hinted).
        let dt_secs = self.sim.system.tick.as_secs();
        let span = {
            let _s = sraps_obs::span(ObsPhase::EngineHorizon);
            let mut deadline: Option<SimTime> = None;
            let can_skip = if self.queue.is_empty() {
                true
            } else if placed > 0 {
                false
            } else {
                match self.skip {
                    SchedSkip::OnEvents => true,
                    SchedSkip::Hinted => match self.scheduler.next_decision_time(now) {
                        None => true,
                        Some(t) if t > now => {
                            deadline = Some(t);
                            true
                        }
                        Some(_) => false,
                    },
                }
            };
            if can_skip {
                let mut horizon = self.next_event_time(now);
                if let Some(t) = deadline {
                    horizon = horizon.min(t);
                }
                let raw = (horizon - now).as_secs();
                ((raw + dt_secs - 1) / dt_secs).clamp(1, remaining)
            } else {
                1
            }
        };
        sraps_obs::add(Counter::EngineTicksSkipped, (span - 1) as u64);
        Ok(span)
    }

    /// Run to the end of the window and assemble the output. Works both
    /// on fresh engines and on engines resumed mid-run (the cursor picks
    /// up wherever the last [`Engine::run_until`] or snapshot left it).
    pub fn run(mut self) -> Result<SimOutput> {
        // The one timing pathway: the stopwatch always measures (its value
        // is `SimOutput::wall_time`); the capture snapshots the thread's
        // obs accumulators so the output carries this run's profile delta.
        let run_capture = sraps_obs::capture();
        let run_watch = sraps_obs::stopwatch(ObsPhase::EngineRun);
        self.run_until(self.sim_end)?;
        let now = self.now;
        self.assemble(now, move || (run_watch.finish(), run_capture.finish()))
    }

    /// Window start of this engine's run.
    pub fn sim_start(&self) -> SimTime {
        self.sim_start
    }

    /// The engine's current instant — a tick boundary, advanced by
    /// [`Engine::run_until`] (the window start on a fresh engine).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the simulation up to the first tick boundary at or past
    /// `until` (bounded by the window end), then pause. The engine stays
    /// usable: call again with a later target, [`Engine::snapshot`] the
    /// state, or hand the engine to [`Engine::run`] to finish.
    ///
    /// Pausing is invisible to the results: physics spans integrate tick
    /// by tick in tick order no matter how they are cut (the discipline
    /// the batch-parity suite pins), and a span cut mid-way is remembered
    /// in the cursor so control is not re-run at resume.
    pub fn run_until(&mut self, until: SimTime) -> Result<()> {
        let dt_secs = self.sim.system.tick.as_secs();
        let event_mode = self.sim.engine == EngineMode::Event;
        // The loop visits tick instants sim_start + k·dt strictly before
        // sim_end; `remaining` tracks the count instead of re-dividing.
        while self.remaining > 0 && self.now < until {
            if self.span_left == 0 {
                self.span_left = self.step_control(self.now, self.remaining)?;
            }
            // Ceiling-align the target to the tick grid so an unaligned
            // `until` cannot produce a zero-tick chunk and stall.
            let want = (((until - self.now).as_secs() + dt_secs - 1) / dt_secs).max(1);
            let chunk = if event_mode {
                self.span_left.min(want)
            } else {
                1
            };
            {
                let _s = sraps_obs::span(ObsPhase::EnginePhysics);
                if event_mode {
                    self.advance_physics(self.now, chunk as usize);
                } else {
                    self.tick_physics(self.now);
                }
            }
            self.now += SimDuration::seconds(dt_secs * chunk);
            self.remaining -= chunk;
            self.span_left -= chunk;
        }
        Ok(())
    }

    /// Capture the engine's full mid-run state at the current tick
    /// boundary. Fails when the scheduler backend cannot serialize its
    /// state ([`SchedulerBackend::snapshot_state`]).
    pub fn snapshot(&self) -> Result<EngineSnapshot> {
        Ok(EngineSnapshot {
            schema: ENGINE_SCHEMA_VERSION,
            jobs_len: self.jobs.len(),
            now: self.now,
            remaining: self.remaining,
            span_left: self.span_left,
            next_pending: self.next_pending,
            active: self
                .active
                .iter()
                .map(|a| ActiveSnapshot {
                    id: a.id,
                    job: a.job,
                    nodes: a.nodes.clone(),
                    start: a.start,
                    actual_end: a.actual_end,
                    est_end: a.est_end,
                    telemetry_offset: a.telemetry_offset,
                    energy_kwh: a.energy_kwh,
                    node_power_sum_kw: a.node_power_sum_kw,
                    cpu_util_sum: a.cpu_util_sum,
                    gpu_util_sum: a.gpu_util_sum,
                    ticks: a.ticks,
                })
                .collect(),
            queue: self.queue.clone(),
            rm: self.rm.clone(),
            scheduler: self.scheduler.snapshot_state()?,
            outage_active: self.outage_active.clone(),
            outage_cursor: self.outage_cursor,
            outcomes: self.outcomes.clone(),
            accounts: self.accounts.clone(),
            power_hist: self.power_hist.clone(),
            cooling_hist: self.cooling_hist.clone(),
            util_hist: self.util_hist.clone(),
            queue_hist: self.queue_hist.clone(),
            queue_demand_hist: self.queue_demand_hist.clone(),
            cooling_loop_temp_c: self.cooling.as_ref().map(|p| p.loop_temp_c()),
        })
    }

    /// Fork this engine at its current instant under a (possibly
    /// different) configuration, sharing the immutable window. The
    /// original engine is untouched; the fork continues from here.
    ///
    /// With the same config the fork finishes bit-identically to the
    /// original. Late-binding changes — a power cap applied or removed, a
    /// policy switch — take effect from the forked instant on: scheduler
    /// state round-trips across compatible backend variants, and the
    /// queue re-sorts under the new policy exactly once.
    pub fn fork(&self, sim: SimConfig) -> Result<Engine> {
        let snap = self.snapshot()?;
        self.resume_with(sim, &snap)
    }

    /// Rebuild an engine over this engine's shared window from `snap`
    /// under `sim`. Like [`Engine::fork`] but reusing a snapshot already
    /// taken — the prefix-sharing sweep forks K branches from one capture.
    pub fn resume_with(&self, sim: SimConfig, snap: &EngineSnapshot) -> Result<Engine> {
        let window = SimWindow {
            sim_start: self.sim_start,
            sim_end: self.sim_end,
            jobs: Arc::clone(&self.jobs),
            job_index: Arc::clone(&self.job_index),
            pending: Arc::clone(&self.pending),
            prepop: Vec::new(),
            power_estimates: OnceLock::new(),
        };
        let mut engine = Engine::bare(sim, &window)?;
        engine.apply_snapshot(snap)?;
        Ok(engine)
    }

    /// Overwrite a [`Engine::bare`] engine's state with a snapshot's.
    /// Validates the schema, the window job set, and the config before
    /// touching anything, so a stale or mismatched snapshot is an
    /// [`SrapsError::Snapshot`] rather than a wrong resume.
    fn apply_snapshot(&mut self, snap: &EngineSnapshot) -> Result<()> {
        if snap.schema != ENGINE_SCHEMA_VERSION {
            return Err(SrapsError::Snapshot(format!(
                "snapshot schema v{} does not match engine schema v{ENGINE_SCHEMA_VERSION}",
                snap.schema
            )));
        }
        if snap.jobs_len != self.jobs.len() {
            return Err(SrapsError::Snapshot(format!(
                "snapshot covers {} jobs, window has {}",
                snap.jobs_len,
                self.jobs.len()
            )));
        }
        if snap.rm.total_nodes() != self.sim.system.total_nodes {
            return Err(SrapsError::Snapshot(format!(
                "snapshot machine has {} nodes, config has {}",
                snap.rm.total_nodes(),
                self.sim.system.total_nodes
            )));
        }
        if snap.outage_active.len() != self.sim.outages.len() {
            return Err(SrapsError::Snapshot(format!(
                "snapshot tracks {} outages, config has {}",
                snap.outage_active.len(),
                self.sim.outages.len()
            )));
        }
        if snap.cooling_loop_temp_c.is_some() != self.cooling.is_some() {
            return Err(SrapsError::Snapshot(
                "snapshot and config disagree on cooling".into(),
            ));
        }
        if snap.next_pending > self.pending.len() {
            return Err(SrapsError::Snapshot(format!(
                "snapshot pending cursor {} out of range ({} pending jobs)",
                snap.next_pending,
                self.pending.len()
            )));
        }
        for a in &snap.active {
            if self.jobs.get(a.job).map(|j| j.id) != Some(a.id) {
                return Err(SrapsError::Snapshot(format!(
                    "snapshot active job {} does not match window index {}",
                    a.id, a.job
                )));
            }
        }
        self.scheduler.restore_state(&snap.scheduler)?;

        self.now = snap.now;
        self.remaining = snap.remaining;
        self.span_left = snap.span_left;
        self.next_pending = snap.next_pending;
        self.queue = snap.queue.clone();
        self.rm = snap.rm.clone();
        self.outage_active.clone_from(&snap.outage_active);
        self.outage_cursor = snap.outage_cursor.min(self.outage_edges.len());
        self.outcomes = snap.outcomes.clone();
        self.accounts = snap.accounts.clone();
        self.power_hist = snap.power_hist.clone();
        self.cooling_hist = snap.cooling_hist.clone();
        self.util_hist = snap.util_hist.clone();
        self.queue_hist = snap.queue_hist.clone();
        self.queue_demand_hist = snap.queue_demand_hist.clone();
        if let (Some(plant), Some(temp)) = (&mut self.cooling, snap.cooling_loop_temp_c) {
            plant.set_loop_temp_c(temp);
        }
        // Rebuild the derived structures: profiles reclassify from the
        // telemetry (deterministic), the completion heap's pop order is
        // fully determined by its total element order no matter the
        // insertion sequence, and the running views mirror `active`.
        for s in &snap.active {
            let mut a = Active::new(
                s.id,
                s.job,
                s.nodes.clone(),
                s.start,
                s.actual_end,
                s.est_end,
                s.telemetry_offset,
            );
            a.energy_kwh = s.energy_kwh;
            a.node_power_sum_kw = s.node_power_sum_kw;
            a.cpu_util_sum = s.cpu_util_sum;
            a.gpu_util_sum = s.gpu_util_sum;
            a.ticks = s.ticks;
            self.classify(&mut a);
            self.attach(a);
        }
        Ok(())
    }

    /// Post-loop assembly shared by [`Engine::run`] and
    /// [`BatchedEngine::run`]: final completion sweep, history time
    /// grid, facility stats, and the scheduler-stats fold. `finish`
    /// runs after the finalize-span work and supplies the run's wall
    /// time and profile delta — the per-cell path closes its stopwatch
    /// and capture there; batched lanes report the shared batch clock
    /// and no per-lane profile.
    fn assemble(
        mut self,
        now: SimTime,
        finish: impl FnOnce() -> (std::time::Duration, Option<sraps_obs::Profile>),
    ) -> Result<SimOutput> {
        let dt = self.sim.system.tick;
        let dt_secs = dt.as_secs();
        let finalize = sraps_obs::span(ObsPhase::EngineFinalize);
        // Final sweep so jobs ending exactly at the boundary complete.
        self.complete_jobs(now);
        // The tick grid the histories were sampled on.
        let total_ticks = self.power_hist.len();
        self.times.extend(
            (0..total_ticks as i64).map(|k| self.sim_start + SimDuration::seconds(dt_secs * k)),
        );
        // Jobs still on the machine were cut off by the window: surface
        // them instead of letting them vanish without an outcome.
        let jobs_censored = self.active.len() as u64;

        let span = self.sim_end - self.sim_start;
        let mut stats = SystemStats::from_outcomes(&self.outcomes, self.sim.system.total_nodes);
        stats.jobs_censored = jobs_censored;
        let n = self.power_hist.len().max(1) as f64;
        let avg_total = self.power_hist.iter().map(|p| p.total_kw).sum::<f64>() / n;
        let avg_loss = self.power_hist.iter().map(|p| p.loss_kw).sum::<f64>() / n;
        let energy_mwh = self
            .power_hist
            .iter()
            .map(|p| p.total_kw * dt.as_hours_f64() / 1000.0)
            .sum::<f64>();
        let avg_util = self.util_hist.iter().sum::<f64>() / self.util_hist.len().max(1) as f64;
        stats.set_facility(span, avg_total, avg_loss, energy_mwh, avg_util);

        let label = match self.sim.policy {
            sraps_sched::PolicyKind::Replay => "replay".to_string(),
            p => format!("{}-{}", p.name(), self.sim.backfill.name()),
        };
        // Fold the scheduler's own lifetime counters into the obs view
        // exactly once per run, so `--profile` shows invocations and
        // placements next to phase timings without double-counting.
        let sched_stats = self.scheduler.stats();
        sraps_obs::add(Counter::SchedInvocations, sched_stats.invocations);
        sraps_obs::add(Counter::SchedPlacements, sched_stats.placements);
        sraps_obs::add(Counter::SchedRecomputations, sched_stats.recomputations);
        sraps_obs::add(Counter::SchedBackfilled, sched_stats.backfilled);
        sraps_obs::add(
            Counter::SchedPlacementFallbacks,
            sched_stats.placement_fallbacks,
        );
        drop(finalize);
        let (wall_time, profile) = finish();
        Ok(SimOutput {
            label,
            scheduler_name: self.scheduler.name(),
            times: self.times,
            power: self.power_hist,
            cooling: self.cooling_hist,
            utilization: self.util_hist,
            queue_depth: self.queue_hist,
            queue_demand_nodes: self.queue_demand_hist,
            users: sraps_acct::Users::from_outcomes(&self.outcomes),
            outcomes: self.outcomes,
            stats,
            accounts: self.accounts,
            sched_stats,
            wall_time,
            sim_span: span,
            profile,
        })
    }
}

/// Builder for [`Engine`]: the single construction front unifying fresh
/// starts, shared-window construction, and snapshot resumes.
///
/// ```ignore
/// let engine = Engine::builder(sim).build(&dataset)?;            // fresh
/// let engine = Engine::builder(sim).resume(&snap).build(&ds)?;   // resumed
/// let engine = Engine::builder(sim).build_in_window(&window)?;   // shared
/// ```
pub struct EngineBuilder<'a> {
    sim: SimConfig,
    snapshot: Option<&'a EngineSnapshot>,
}

impl<'a> EngineBuilder<'a> {
    /// Continue from a previously captured [`EngineSnapshot`] instead of
    /// starting fresh. The snapshot must come from an engine over the
    /// same dataset window; the config may differ in late-binding axes
    /// (power cap, policy) — see [`Engine::fork`].
    pub fn resume<'b>(self, snap: &'b EngineSnapshot) -> EngineBuilder<'b> {
        EngineBuilder {
            sim: self.sim,
            snapshot: Some(snap),
        }
    }

    /// Build over `dataset`, selecting the window from the config.
    pub fn build(self, dataset: &Dataset) -> Result<Engine> {
        self.sim.validate()?;
        let window = SimWindow::new(&self.sim, dataset)?;
        self.build_in_window(&window)
    }

    /// Build over a prebuilt [`SimWindow`] shared with other engines.
    pub fn build_in_window(self, window: &SimWindow) -> Result<Engine> {
        match self.snapshot {
            None => Engine::with_window(self.sim, window),
            Some(snap) => {
                let mut engine = Engine::bare(self.sim, window)?;
                engine.apply_snapshot(snap)?;
                Ok(engine)
            }
        }
    }
}

/// K independent simulations stepped together.
///
/// Control (steps 1–3: completions, queues, scheduling) runs per lane
/// at each lane's own event instants — lanes never see each other's
/// state. Step-4 physics advances all lanes in shared chunks of
/// `min(span_left)` ticks, one pass over the lane array per chunk under
/// a single `physics.batched` span, with each lane's history arrays
/// contiguous. Chunking is invisible to the results: within a lane,
/// physics integrates tick by tick in tick order no matter how the span
/// is cut (the repeated-addition discipline the engine parity suite
/// pins), so outputs are bit-identical to running each engine alone —
/// the `batch_parity` suite asserts exactly that.
///
/// Lanes share the batch's wall clock (each lane's
/// [`SimOutput::wall_time`] measures from batch start to that lane's
/// assembly) and carry no per-lane profile; the sweep runner captures
/// one profile per lane group instead.
pub struct BatchedEngine {
    lanes: Vec<Engine>,
}

impl BatchedEngine {
    /// Group `engines` into one batched run. Lanes must share the tick
    /// grid and simulation window (the sweep runner's grouping by
    /// workload guarantees it); anything else is a config error.
    pub fn new(engines: Vec<Engine>) -> Result<BatchedEngine> {
        let Some(first) = engines.first() else {
            return Err(SrapsError::Config(
                "batched run needs at least one lane".into(),
            ));
        };
        let grid = (first.sim.system.tick, first.sim_start, first.sim_end);
        if let Some(lane) = engines
            .iter()
            .find(|e| (e.sim.system.tick, e.sim_start, e.sim_end) != grid)
        {
            return Err(SrapsError::Config(format!(
                "batched lanes must share the tick grid and window: \
                 {}..{} at {}s vs {}..{} at {}s",
                grid.1,
                grid.2,
                grid.0.as_secs(),
                lane.sim_start,
                lane.sim_end,
                lane.sim.system.tick.as_secs(),
            )));
        }
        Ok(BatchedEngine { lanes: engines })
    }

    /// Lanes in this batch.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Run every lane to the end of the window; outputs in lane order.
    pub fn run(mut self) -> Result<Vec<SimOutput>> {
        sraps_obs::bump(Counter::BatchLanes);
        sraps_obs::add(Counter::BatchCells, self.lanes.len() as u64);
        let batch_start = std::time::Instant::now();
        loop {
            // Control pass: every lane that exhausted its span decides
            // the next one; the shared chunk is the smallest span any
            // live lane still has open.
            let mut chunk = i64::MAX;
            for lane in &mut self.lanes {
                if lane.remaining == 0 {
                    continue;
                }
                if lane.span_left == 0 {
                    lane.span_left = lane.step_control(lane.now, lane.remaining)?;
                }
                chunk = chunk.min(lane.span_left);
            }
            if chunk == i64::MAX {
                break;
            }
            // Physics pass: advance every live lane by the chunk.
            let _s = sraps_obs::span(ObsPhase::PhysicsBatched);
            for lane in &mut self.lanes {
                if lane.remaining == 0 {
                    continue;
                }
                let dt_secs = lane.sim.system.tick.as_secs();
                if lane.sim.engine == EngineMode::Event {
                    lane.advance_physics(lane.now, chunk as usize);
                } else {
                    // Tick-mode lanes decide span 1, so the chunk is 1
                    // whenever one is live; step exactly as `run` would.
                    lane.tick_physics(lane.now);
                }
                lane.now += SimDuration::seconds(dt_secs * chunk);
                lane.remaining -= chunk;
                lane.span_left -= chunk;
            }
        }
        self.lanes
            .into_iter()
            .map(|lane| {
                let now = lane.now;
                lane.assemble(now, || (batch_start.elapsed(), None))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_data::{adastra, marconi100, scenario, WorkloadSpec};
    use sraps_systems::presets;

    fn small_adastra() -> (sraps_systems::SystemConfig, Dataset) {
        let cfg = presets::adastra();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.7, 5);
        spec.span = SimDuration::hours(4);
        let ds = adastra::synthesize(&cfg, &spec);
        (cfg, ds)
    }

    #[test]
    fn replay_and_reschedule_complete_jobs() {
        let (cfg, ds) = small_adastra();
        for (policy, backfill) in [("replay", "none"), ("fcfs", "easy"), ("sjf", "firstfit")] {
            let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
            let out = Engine::new(sim, &ds).unwrap().run().unwrap();
            assert!(
                out.stats.jobs_completed > 0,
                "{policy}-{backfill} completed nothing"
            );
            assert!(out.mean_power_kw() > cfg.idle_it_power_kw());
        }
    }

    #[test]
    fn replay_reproduces_recorded_starts() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::replay(cfg.clone());
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        let tick = cfg.tick.as_secs();
        for o in &out.outcomes {
            let recorded = ds.jobs.iter().find(|j| j.id == o.id).unwrap();
            let delta = (o.start - recorded.recorded_start).as_secs().abs();
            assert!(
                delta <= tick,
                "job {} started {}s off its recorded start",
                o.id,
                delta
            );
        }
    }

    #[test]
    fn reschedule_never_starts_before_submit() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "easy").unwrap();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        for o in &out.outcomes {
            assert!(o.start >= o.submit, "job {} ran before submission", o.id);
        }
    }

    #[test]
    fn windowed_run_prepopulates() {
        let cfg = presets::marconi100();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.9, 6);
        spec.span = SimDuration::hours(8);
        let ds = marconi100::synthesize(&cfg, &spec);
        // Start the window mid-dataset: jobs running at that instant must
        // occupy nodes from the first tick.
        let start = SimTime::seconds(4 * 3600);
        let sim = SimConfig::replay(cfg).with_window(start, start + SimDuration::hours(2));
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(
            out.utilization[0] > 0.0,
            "prepopulation must occupy nodes at t0"
        );
    }

    #[test]
    fn deterministic_runs() {
        let (cfg, ds) = small_adastra();
        let run = || {
            let sim = SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap();
            Engine::new(sim, &ds).unwrap().run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.jobs_completed, b.stats.jobs_completed);
        assert_eq!(a.power.len(), b.power.len());
        for (x, y) in a.power.iter().zip(&b.power) {
            assert_eq!(x.total_kw, y.total_kw);
        }
    }

    #[test]
    fn tick_and_event_engines_agree_on_a_small_run() {
        let (cfg, ds) = small_adastra();
        let run = |mode: EngineMode| {
            let sim = SimConfig::new(cfg.clone(), "fcfs", "easy")
                .unwrap()
                .with_engine(mode);
            Engine::new(sim, &ds).unwrap().run().unwrap()
        };
        let tick = run(EngineMode::Tick);
        let event = run(EngineMode::Event);
        assert_eq!(tick.times, event.times);
        assert_eq!(tick.utilization, event.utilization);
        assert_eq!(tick.queue_depth, event.queue_depth);
        assert_eq!(tick.outcomes, event.outcomes);
        for (x, y) in tick.power.iter().zip(&event.power) {
            assert_eq!(x.total_kw, y.total_kw);
        }
    }

    #[test]
    fn event_engine_skips_idle_spans_but_keeps_tick_histories() {
        // A sparse workload with long gaps: the event core must still
        // emit one history sample per telemetry tick.
        let cfg = presets::adastra();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.05, 9);
        spec.span = SimDuration::hours(12);
        let ds = adastra::synthesize(&cfg, &spec);
        let sim = SimConfig::new(cfg.clone(), "fcfs", "none").unwrap();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        let expected = ((ds.capture_end - ds.capture_start).as_secs() + cfg.tick.as_secs() - 1)
            / cfg.tick.as_secs();
        assert_eq!(out.times.len(), expected as usize);
        for w in out.times.windows(2) {
            assert_eq!((w[1] - w[0]).as_secs(), cfg.tick.as_secs());
        }
    }

    #[test]
    fn censored_jobs_are_counted_not_dropped() {
        // Cut the window mid-workload: anything still running at the end
        // must be reported as censored.
        let (cfg, ds) = small_adastra();
        let end = ds.capture_start + SimDuration::hours(1);
        let sim = SimConfig::replay(cfg).with_window(ds.capture_start, end);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(
            out.stats.jobs_censored > 0,
            "a 1h cut of a 4h workload must censor something"
        );
        // Censored jobs never produce outcomes.
        let in_window = ds
            .jobs
            .iter()
            .filter(|j| j.recorded_start < end && j.recorded_end > ds.capture_start)
            .count() as u64;
        assert!(out.stats.jobs_completed + out.stats.jobs_censored <= in_window);
    }

    #[test]
    fn energy_accounting_consistent() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "firstfit").unwrap();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        // Facility energy must exceed the jobs' energy (idle + losses).
        let job_energy_mwh: f64 = out.outcomes.iter().map(|o| o.energy_kwh).sum::<f64>() / 1000.0;
        assert!(out.stats.total_energy_mwh > job_energy_mwh * 0.9);
    }

    #[test]
    fn backfill_improves_utilization_under_load() {
        let s = scenario::fig4(3);
        let run = |policy: &str, backfill: &str| {
            let sim = SimConfig::new(s.config.clone(), policy, backfill)
                .unwrap()
                .with_window(s.sim_start, s.sim_end);
            Engine::new(sim, &s.dataset).unwrap().run().unwrap()
        };
        let nobf = run("fcfs", "none");
        let easy = run("fcfs", "easy");
        assert!(
            easy.mean_utilization() >= nobf.mean_utilization() - 0.02,
            "easy {} vs nobf {}",
            easy.mean_utilization(),
            nobf.mean_utilization()
        );
    }

    #[test]
    fn fastsim_backend_runs_end_to_end() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "easy")
            .unwrap()
            .with_scheduler(SchedulerSelect::FastSim);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert_eq!(out.scheduler_name, "fastsim");
        assert!(out.stats.jobs_completed > 0);
    }

    #[test]
    fn scheduleflow_backend_runs_on_small_synthetic() {
        let cfg = presets::adastra();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.3, 8);
        spec.span = SimDuration::hours(1);
        let ds = adastra::synthesize(&cfg, &spec);
        let sim = SimConfig::new(cfg, "fcfs", "none")
            .unwrap()
            .with_scheduler(SchedulerSelect::ScheduleFlow);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(out.sched_stats.recomputations > out.stats.jobs_completed);
    }

    #[test]
    fn cooling_histories_only_when_enabled() {
        let (cfg, ds) = small_adastra();
        let without = Engine::new(SimConfig::replay(cfg.clone()), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert!(without.cooling.is_empty());
        let with = Engine::new(SimConfig::replay(cfg).with_cooling(), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(with.cooling.len(), with.power.len());
        assert!(with.cooling.iter().all(|c| c.pue >= 1.0));
    }

    #[test]
    fn accounts_collected_when_enabled() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::replay(cfg).with_accounts();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(!out.accounts.is_empty());
        let total_jobs: u64 = out.accounts.stats.values().map(|s| s.jobs_completed).sum();
        assert_eq!(total_jobs, out.stats.jobs_completed);
    }

    #[test]
    fn power_cap_clips_job_power() {
        let (cfg, ds) = small_adastra();
        let uncapped = Engine::new(
            SimConfig::new(cfg.clone(), "fcfs", "firstfit").unwrap(),
            &ds,
        )
        .unwrap()
        .run()
        .unwrap();
        // Cap well below the uncapped peak *job* power (total − idle floor).
        let idle_kw = cfg.idle_it_power_kw();
        let peak_job_kw = uncapped
            .power
            .iter()
            .map(|p| p.it_power_kw)
            .fold(0.0, f64::max)
            - idle_kw;
        let cap = peak_job_kw * 0.6;
        let capped = Engine::new(
            SimConfig::new(cfg, "fcfs", "firstfit")
                .unwrap()
                .with_power_cap(cap),
            &ds,
        )
        .unwrap()
        .run()
        .unwrap();
        let capped_peak_job = capped
            .power
            .iter()
            .map(|p| p.it_power_kw)
            .fold(0.0, f64::max)
            - idle_kw;
        // Estimates are trace means while instantaneous draw fluctuates, so
        // allow headroom — but the cap must clearly bind.
        assert!(
            capped_peak_job < peak_job_kw * 0.85,
            "cap {cap:.0} kW did not bind: peak {capped_peak_job:.0} vs {peak_job_kw:.0}"
        );
        assert!(
            capped.stats.avg_wait_secs() >= uncapped.stats.avg_wait_secs(),
            "capping cannot reduce waits"
        );
    }

    #[test]
    fn outages_shrink_capacity_and_lift() {
        let (cfg, ds) = small_adastra();
        let half = cfg.total_nodes / 2;
        let sim = SimConfig::new(cfg.clone(), "fcfs", "firstfit")
            .unwrap()
            .with_outages(vec![crate::config::Outage {
                nodes: sraps_types::NodeSet::contiguous(0, half),
                from: SimTime::seconds(3600),
                until: SimTime::seconds(2 * 3600),
            }]);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(out.stats.jobs_completed > 0);
        // During the outage, occupancy can never exceed the surviving half.
        let tick = cfg.tick.as_secs();
        for (t, u) in out.times.iter().zip(&out.utilization) {
            let s = t.as_secs();
            if (3600 + tick..2 * 3600 - tick).contains(&s) {
                // utilization is busy/(total-down), can be 1.0; but busy
                // nodes must be ≤ total − down ⇒ busy/total ≤ 0.5.
                let busy_frac = u * ((cfg.total_nodes - half) as f64 / cfg.total_nodes as f64);
                assert!(
                    busy_frac <= 0.51,
                    "busy fraction {busy_frac:.2} at t={s} exceeds surviving capacity"
                );
            }
        }
    }

    #[test]
    fn outage_validation_rejects_empty_windows() {
        let (cfg, _) = small_adastra();
        let sim = SimConfig::replay(cfg).with_outages(vec![crate::config::Outage {
            nodes: sraps_types::NodeSet::contiguous(0, 4),
            from: SimTime::seconds(100),
            until: SimTime::seconds(100),
        }]);
        assert!(sim.validate().is_err());
    }

    #[test]
    fn weather_trace_drives_cooling_ambient() {
        let (cfg, ds) = small_adastra();
        let hot = sraps_types::Trace::constant(30.0);
        let cool = sraps_types::Trace::constant(10.0);
        let run_with = |trace: sraps_types::Trace| {
            let sim = SimConfig::replay(cfg.clone())
                .with_cooling()
                .with_weather(trace);
            Engine::new(sim, &ds).unwrap().run().unwrap()
        };
        let hot_out = run_with(hot);
        let cool_out = run_with(cool);
        let mean_return = |o: &SimOutput| {
            o.cooling.iter().map(|c| c.tower_return_c).sum::<f64>() / o.cooling.len() as f64
        };
        assert!(
            mean_return(&hot_out) > mean_return(&cool_out) + 5.0,
            "hot ambient must raise return water: {:.1} vs {:.1}",
            mean_return(&hot_out),
            mean_return(&cool_out)
        );
    }

    #[test]
    fn run_until_snapshot_restore_matches_uninterrupted() {
        let (cfg, ds) = small_adastra();
        let sim = || SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap();
        let baseline = Engine::new(sim(), &ds).unwrap().run().unwrap();

        let mut paused = Engine::new(sim(), &ds).unwrap();
        paused
            .run_until(ds.capture_start + SimDuration::hours(2))
            .unwrap();
        let snap = paused.snapshot().unwrap();
        let resumed = Engine::builder(sim())
            .resume(&snap)
            .build(&ds)
            .unwrap()
            .run()
            .unwrap();

        assert_eq!(baseline.times, resumed.times);
        assert_eq!(baseline.outcomes, resumed.outcomes);
        assert_eq!(baseline.utilization, resumed.utilization);
        assert_eq!(baseline.queue_depth, resumed.queue_depth);
        for (a, b) in baseline.power.iter().zip(&resumed.power) {
            assert_eq!(a.total_kw, b.total_kw);
            assert_eq!(a.loss_kw, b.loss_kw);
        }
        assert_eq!(baseline.sched_stats, resumed.sched_stats);
    }

    #[test]
    fn fork_continues_and_late_cap_binds() {
        let (cfg, ds) = small_adastra();
        let base = SimConfig::new(cfg.clone(), "fcfs", "firstfit").unwrap();
        let mut prefix = Engine::new(base.clone(), &ds).unwrap();
        prefix
            .run_until(ds.capture_start + SimDuration::hours(1))
            .unwrap();

        // Fork 1: same config — must finish identically to a straight run.
        let same = prefix.fork(base.clone()).unwrap().run().unwrap();
        let straight = Engine::new(base.clone(), &ds).unwrap().run().unwrap();
        assert_eq!(straight.outcomes, same.outcomes);
        for (a, b) in straight.power.iter().zip(&same.power) {
            assert_eq!(a.total_kw, b.total_kw);
        }

        // Fork 2: a power cap binding from the forked instant on.
        let idle_kw = cfg.idle_it_power_kw();
        let peak_job_kw = straight
            .power
            .iter()
            .map(|p| p.it_power_kw)
            .fold(0.0, f64::max)
            - idle_kw;
        let capped_sim = SimConfig::new(cfg, "fcfs", "firstfit")
            .unwrap()
            .with_power_cap(peak_job_kw * 0.5);
        let capped = prefix.fork(capped_sim).unwrap().run().unwrap();
        // The shared prefix is bit-identical; afterwards the cap defers work.
        assert_eq!(
            straight.power[0].total_kw, capped.power[0].total_kw,
            "prefix must be shared"
        );
        assert!(
            capped.stats.avg_wait_secs() >= straight.stats.avg_wait_secs(),
            "capping cannot reduce waits"
        );
    }

    #[test]
    fn stale_snapshot_schema_is_rejected() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap();
        let mut e = Engine::new(sim.clone(), &ds).unwrap();
        e.run_until(ds.capture_start + SimDuration::hours(1))
            .unwrap();
        let mut snap = e.snapshot().unwrap();
        snap.schema += 1;
        let err = Engine::builder(sim).resume(&snap).build(&ds).err();
        assert!(matches!(err, Some(SrapsError::Snapshot(_))), "{err:?}");
    }

    #[test]
    fn conservative_backfill_runs_end_to_end() {
        let (cfg, ds) = small_adastra();
        let out = Engine::new(SimConfig::new(cfg, "fcfs", "conservative").unwrap(), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert!(out.stats.jobs_completed > 0);
        for o in &out.outcomes {
            assert!(o.start >= o.submit);
        }
    }
}
