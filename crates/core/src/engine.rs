//! The S-RAPS simulation engine (§3.2.3): the four-step forward-time loop
//! driving scheduler, power model, and cooling model.

use crate::config::{SchedulerSelect, SimConfig};
use crate::output::SimOutput;
use sraps_acct::{Accounts, JobOutcome, SystemStats};
use sraps_cooling::CoolingPlant;
use sraps_data::Dataset;
use sraps_extsched::{ExternalAdapter, FastSim, ScheduleFlow};
use sraps_power::{node_power_from_telemetry, PowerModel};
use sraps_sched::{
    BuiltinScheduler, ExperimentalScheduler, JobQueue, QueuedJob, ResourceManager, RunningView,
    SchedContext, SchedulerBackend,
};
use sraps_types::{Job, JobId, NodeSet, Result, SimDuration, SimTime, SrapsError};
use std::collections::HashMap;

/// A job currently on the machine.
#[derive(Debug, Clone)]
struct Active {
    id: JobId,
    nodes: NodeSet,
    start: SimTime,
    /// When the job will actually complete (trace ground truth).
    actual_end: SimTime,
    /// What the scheduler believes (start + wall-time estimate).
    est_end: SimTime,
    /// Telemetry offset at `start` — non-zero for jobs prepopulated
    /// mid-execution (they resume their profile, not restart it).
    telemetry_offset: SimDuration,
    // Accumulators for the job outcome.
    energy_kwh: f64,
    node_power_sum_kw: f64,
    cpu_util_sum: f64,
    gpu_util_sum: f64,
    ticks: u64,
}

/// The simulation engine. Create with [`Engine::new`], run with
/// [`Engine::run`].
pub struct Engine {
    sim: SimConfig,
    scheduler: Box<dyn SchedulerBackend>,
    rm: ResourceManager,
    queue: JobQueue,
    /// All in-window jobs by id.
    jobs: HashMap<JobId, Job>,
    /// Not-yet-submitted job ids, ascending by submit time.
    pending: Vec<JobId>,
    next_pending: usize,
    active: Vec<Active>,
    power_model: PowerModel,
    cooling: Option<CoolingPlant>,
    accounts: Accounts,
    outcomes: Vec<JobOutcome>,
    sim_start: SimTime,
    sim_end: SimTime,
    /// Which configured outages are currently applied.
    outage_active: Vec<bool>,
    // Histories.
    times: Vec<SimTime>,
    power_hist: Vec<sraps_power::PowerSample>,
    cooling_hist: Vec<sraps_cooling::CoolingSample>,
    util_hist: Vec<f64>,
    queue_hist: Vec<usize>,
    queue_demand_hist: Vec<u64>,
}

impl Engine {
    /// Initialize the system (§3.2.1): select the window, load in-window
    /// jobs, build the scheduler, and prepopulate jobs already running at
    /// the window start — "this allows us to represent the actual system
    /// condition as observed in the telemetry at start of the simulation".
    pub fn new(sim: SimConfig, dataset: &Dataset) -> Result<Engine> {
        sim.validate()?;
        let sim_start = sim.sim_start.unwrap_or(dataset.capture_start);
        let sim_end = sim.sim_end.unwrap_or(dataset.capture_end);
        if sim_end <= sim_start {
            return Err(SrapsError::Config(format!(
                "empty simulation window {sim_start}..{sim_end}"
            )));
        }

        // Dismiss out-of-window jobs (§3.2.2).
        let in_window: Vec<Job> = dataset
            .jobs_in_window(sim_start, sim_end)
            .cloned()
            .collect();
        let scheduler = Self::build_scheduler(&sim, &in_window)?;

        let mut rm = ResourceManager::new(sim.system.total_nodes);
        let mut active = Vec::new();
        let mut jobs = HashMap::with_capacity(in_window.len());
        let mut pending: Vec<JobId> = Vec::with_capacity(in_window.len());

        for job in in_window {
            let id = job.id;
            if job.recorded_start < sim_start && job.recorded_end > sim_start {
                // Prepopulation: the job was mid-run when the window opens.
                let nodes = match &job.recorded_nodes {
                    Some(set) if rm.allocate_exact(set).is_ok() => set.clone(),
                    _ => match rm.allocate(job.nodes_requested) {
                        Ok(set) => set,
                        // An infeasible trace would land here; skip the job
                        // rather than corrupting occupancy.
                        Err(_) => continue,
                    },
                };
                let est_end =
                    (job.recorded_start + job.estimate()).max(sim_start + sim.system.tick);
                active.push(Active {
                    id,
                    nodes,
                    start: sim_start,
                    actual_end: job.recorded_end,
                    est_end,
                    telemetry_offset: sim_start - job.recorded_start,
                    energy_kwh: 0.0,
                    node_power_sum_kw: 0.0,
                    cpu_util_sum: 0.0,
                    gpu_util_sum: 0.0,
                    ticks: 0,
                });
            } else {
                pending.push(id);
            }
            jobs.insert(id, job);
        }
        pending.sort_by_key(|id| (jobs[id].submit, *id));

        let power_model = PowerModel::new(&sim.system);
        let cooling = sim.cooling.then(|| CoolingPlant::new(&sim.system.cooling));
        let accounts = sim
            .accounts_in
            .clone()
            .unwrap_or_else(|| Accounts::new(sim.reference_power_kw()));

        let outage_active = vec![false; sim.outages.len()];
        Ok(Engine {
            scheduler,
            rm,
            queue: JobQueue::new(),
            jobs,
            pending,
            next_pending: 0,
            active,
            power_model,
            cooling,
            accounts,
            outcomes: Vec::new(),
            sim_start,
            sim_end,
            outage_active,
            times: Vec::new(),
            power_hist: Vec::new(),
            cooling_hist: Vec::new(),
            util_hist: Vec::new(),
            queue_hist: Vec::new(),
            queue_demand_hist: Vec::new(),
            sim,
        })
    }

    fn build_scheduler(sim: &SimConfig, jobs: &[Job]) -> Result<Box<dyn SchedulerBackend>> {
        // Duration oracle for external emulators: ground-truth runtimes.
        let durations: HashMap<JobId, SimDuration> =
            jobs.iter().map(|j| (j.id, j.duration())).collect();
        let tick = sim.system.tick;
        let oracle = move |q: &QueuedJob| durations.get(&q.id).copied().unwrap_or(tick);
        Ok(match sim.scheduler {
            SchedulerSelect::Default => {
                let builtin = BuiltinScheduler::new(sim.policy, sim.backfill);
                match sim.power_cap_kw {
                    Some(cap_kw) => {
                        // Per-job power estimates: what a site would have
                        // from user estimates or fingerprinting (§5).
                        let estimates: HashMap<JobId, f64> = jobs
                            .iter()
                            .map(|j| {
                                let node_kw = j
                                    .telemetry
                                    .node_power_w
                                    .as_ref()
                                    .map_or(0.0, |t| t.mean() as f64 / 1000.0);
                                (j.id, node_kw * j.nodes_requested as f64)
                            })
                            .collect();
                        Box::new(sraps_sched::PowerCapScheduler::new(
                            builtin, cap_kw, estimates,
                        ))
                    }
                    None => Box::new(builtin),
                }
            }
            SchedulerSelect::Experimental => Box::new(ExperimentalScheduler::new(
                sim.policy,
                sim.backfill,
                sim.accounts_in.clone().expect("validated"),
            )?),
            SchedulerSelect::ScheduleFlow => Box::new(ExternalAdapter::new(
                ScheduleFlow::new(sim.system.total_nodes),
                true, // strict: report over-allocation as error (§4.2.1 AE)
                "scheduleflow",
                Box::new(oracle),
            )),
            SchedulerSelect::FastSim => Box::new(ExternalAdapter::new(
                FastSim::new(sim.system.total_nodes),
                false,
                "fastsim",
                Box::new(oracle),
            )),
        })
    }

    /// Apply/lift outage windows (part of step 1's state update).
    fn apply_outages(&mut self, now: SimTime) {
        for (i, o) in self.sim.outages.iter().enumerate() {
            let should_be_down = o.from <= now && now < o.until;
            if should_be_down && !self.outage_active[i] {
                self.rm.mark_down(&o.nodes);
                self.outage_active[i] = true;
            } else if !should_be_down && self.outage_active[i] {
                self.rm.mark_up(&o.nodes);
                self.outage_active[i] = false;
            }
        }
    }

    /// Step 1 — preparation: clear completed jobs, free their resources.
    fn complete_jobs(&mut self, now: SimTime) {
        let mut i = 0;
        while i < self.active.len() {
            if self.active[i].actual_end <= now {
                let a = self.active.swap_remove(i);
                self.rm.release(&a.nodes);
                let job = &self.jobs[&a.id];
                let outcome = Self::finish(job, &a);
                if self.sim.track_accounts {
                    self.accounts.record(&outcome);
                }
                self.outcomes.push(outcome);
            } else {
                i += 1;
            }
        }
    }

    fn finish(job: &Job, a: &Active) -> JobOutcome {
        let ticks = a.ticks.max(1) as f64;
        let (avg_kw, energy, cpu, gpu) = if a.ticks == 0 {
            // Sub-tick job: integrate analytically from the trace mean.
            let mean_w = job
                .telemetry
                .node_power_w
                .as_ref()
                .map_or(0.0, |t| t.mean() as f64);
            let hours = (a.actual_end - a.start).as_hours_f64();
            (
                mean_w / 1000.0,
                mean_w / 1000.0 * a.nodes.len() as f64 * hours,
                job.telemetry.cpu_util_at(SimDuration::ZERO) as f64,
                job.telemetry.gpu_util_at(SimDuration::ZERO) as f64,
            )
        } else {
            (
                a.node_power_sum_kw / ticks,
                a.energy_kwh,
                a.cpu_util_sum / ticks,
                a.gpu_util_sum / ticks,
            )
        };
        JobOutcome {
            id: a.id,
            user: job.user,
            account: job.account,
            nodes: a.nodes.len() as u32,
            submit: job.submit,
            start: a.start,
            end: a.actual_end,
            energy_kwh: energy,
            avg_node_power_kw: avg_kw,
            avg_cpu_util: cpu,
            avg_gpu_util: gpu,
            priority: job.priority,
        }
    }

    /// Step 2 — eligibility: queue jobs submitted by `now` (§3.2.3: "jobs
    /// can only be scheduled and placed once they have been submitted").
    fn enqueue_eligible(&mut self, now: SimTime) {
        let replaying = self.sim.policy == sraps_sched::PolicyKind::Replay;
        while self.next_pending < self.pending.len() {
            let id = self.pending[self.next_pending];
            let job = &self.jobs[&id];
            if job.submit > now {
                break;
            }
            if replaying && job.recorded_end <= now {
                // The job ran entirely between two ticks. Placing it now
                // would occupy its recorded nodes a full tick late and
                // collide with the next tenant; account it directly on the
                // recorded timeline instead.
                let ghost = Active {
                    id,
                    nodes: job
                        .recorded_nodes
                        .clone()
                        .unwrap_or_else(|| NodeSet::contiguous(0, job.nodes_requested)),
                    start: job.recorded_start,
                    actual_end: job.recorded_end,
                    est_end: job.recorded_end,
                    telemetry_offset: SimDuration::ZERO,
                    energy_kwh: 0.0,
                    node_power_sum_kw: 0.0,
                    cpu_util_sum: 0.0,
                    gpu_util_sum: 0.0,
                    ticks: 0,
                };
                let outcome = Self::finish(job, &ghost);
                if self.sim.track_accounts {
                    self.accounts.record(&outcome);
                }
                self.outcomes.push(outcome);
                self.next_pending += 1;
                continue;
            }
            self.queue.push(QueuedJob {
                id,
                account: job.account,
                submit: job.submit,
                nodes: job.nodes_requested,
                estimate: job.estimate(),
                priority: job.priority,
                ml_score: job.ml_score,
                recorded_start: job.recorded_start,
                recorded_nodes: job.recorded_nodes.clone(),
            });
            self.next_pending += 1;
        }
    }

    /// Step 3 — schedule: let the backend place jobs.
    fn schedule(&mut self, now: SimTime) -> Result<()> {
        if self.queue.is_empty() {
            return Ok(());
        }
        let running: Vec<RunningView> = self
            .active
            .iter()
            .map(|a| RunningView {
                id: a.id,
                nodes: a.nodes.len() as u32,
                estimated_end: a.est_end,
            })
            .collect();
        let ctx = SchedContext {
            running: &running,
            accounts: self.sim.track_accounts.then_some(&self.accounts),
        };
        let placements = self
            .scheduler
            .schedule(now, &mut self.queue, &mut self.rm, &ctx)?;
        let replaying = self.sim.policy == sraps_sched::PolicyKind::Replay;
        for p in placements {
            let job = &self.jobs[&p.job];
            // Replay anchors to the recorded timeline: placement may land
            // up to one tick late (quantization), but the job still ends at
            // its recorded end and samples telemetry on the recorded
            // clock — otherwise occupancy drifts and recorded placements
            // start colliding.
            let (actual_end, offset) = if replaying {
                (job.recorded_end.max(now), now - job.recorded_start)
            } else {
                (now + job.duration(), SimDuration::ZERO)
            };
            self.active.push(Active {
                id: p.job,
                nodes: p.nodes,
                start: now,
                actual_end,
                est_end: now + job.estimate(),
                telemetry_offset: offset,
                energy_kwh: 0.0,
                node_power_sum_kw: 0.0,
                cpu_util_sum: 0.0,
                gpu_util_sum: 0.0,
                ticks: 0,
            });
        }
        Ok(())
    }

    /// Step 4 — tick: advance the physical models and record histories.
    fn tick(&mut self, now: SimTime) {
        let dt = self.sim.system.tick;
        let dt_hours = dt.as_hours_f64();
        let spec = &self.sim.system.node_power;

        let mut busy_power_w = 0.0;
        for a in &mut self.active {
            let offset = (now - a.start) + a.telemetry_offset;
            let job = &self.jobs[&a.id];
            let node_w = node_power_from_telemetry(spec, &job.telemetry, offset);
            let n = a.nodes.len() as f64;
            busy_power_w += node_w * n;
            a.energy_kwh += node_w / 1000.0 * n * dt_hours;
            a.node_power_sum_kw += node_w / 1000.0;
            a.cpu_util_sum += job.telemetry.cpu_util_at(offset) as f64;
            a.gpu_util_sum += job.telemetry.gpu_util_at(offset) as f64;
            a.ticks += 1;
        }

        let sample = self.power_model.sample(busy_power_w, self.rm.free_count());
        if let Some(plant) = &mut self.cooling {
            let reading = match &self.sim.wetbulb_trace {
                Some(trace) => {
                    let ambient = trace.sample(now - self.sim_start) as f64;
                    plant.step_at_ambient(dt, sample.it_power_kw, sample.total_kw, ambient)
                }
                None => plant.step(dt, sample.it_power_kw, sample.total_kw),
            };
            self.cooling_hist.push(reading);
        }
        self.times.push(now);
        self.power_hist.push(sample);
        self.util_hist.push(self.rm.utilization());
        self.queue_hist.push(self.queue.len());
        self.queue_demand_hist
            .push(self.queue.jobs().iter().map(|j| j.nodes as u64).sum());
    }

    /// Run to the end of the window and assemble the output.
    pub fn run(mut self) -> Result<SimOutput> {
        let wall_start = std::time::Instant::now();
        let dt = self.sim.system.tick;
        let mut now = self.sim_start;
        while now < self.sim_end {
            self.complete_jobs(now);
            self.apply_outages(now);
            self.enqueue_eligible(now);
            self.schedule(now)?;
            self.tick(now);
            now += dt;
        }
        // Final sweep so jobs ending exactly at the boundary complete.
        self.complete_jobs(now);

        let span = self.sim_end - self.sim_start;
        let mut stats = SystemStats::from_outcomes(&self.outcomes, self.sim.system.total_nodes);
        let n = self.power_hist.len().max(1) as f64;
        let avg_total = self.power_hist.iter().map(|p| p.total_kw).sum::<f64>() / n;
        let avg_loss = self.power_hist.iter().map(|p| p.loss_kw).sum::<f64>() / n;
        let energy_mwh = self
            .power_hist
            .iter()
            .map(|p| p.total_kw * dt.as_hours_f64() / 1000.0)
            .sum::<f64>();
        let avg_util = self.util_hist.iter().sum::<f64>() / self.util_hist.len().max(1) as f64;
        stats.set_facility(span, avg_total, avg_loss, energy_mwh, avg_util);

        let label = match self.sim.policy {
            sraps_sched::PolicyKind::Replay => "replay".to_string(),
            p => format!("{}-{}", p.name(), self.sim.backfill.name()),
        };
        Ok(SimOutput {
            label,
            scheduler_name: self.scheduler.name(),
            times: self.times,
            power: self.power_hist,
            cooling: self.cooling_hist,
            utilization: self.util_hist,
            queue_depth: self.queue_hist,
            queue_demand_nodes: self.queue_demand_hist,
            users: sraps_acct::Users::from_outcomes(&self.outcomes),
            outcomes: self.outcomes,
            stats,
            accounts: self.accounts,
            sched_stats: self.scheduler.stats(),
            wall_time: wall_start.elapsed(),
            sim_span: span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_data::{adastra, marconi100, scenario, WorkloadSpec};
    use sraps_systems::presets;

    fn small_adastra() -> (sraps_systems::SystemConfig, Dataset) {
        let cfg = presets::adastra();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.7, 5);
        spec.span = SimDuration::hours(4);
        let ds = adastra::synthesize(&cfg, &spec);
        (cfg, ds)
    }

    #[test]
    fn replay_and_reschedule_complete_jobs() {
        let (cfg, ds) = small_adastra();
        for (policy, backfill) in [("replay", "none"), ("fcfs", "easy"), ("sjf", "firstfit")] {
            let sim = SimConfig::new(cfg.clone(), policy, backfill).unwrap();
            let out = Engine::new(sim, &ds).unwrap().run().unwrap();
            assert!(
                out.stats.jobs_completed > 0,
                "{policy}-{backfill} completed nothing"
            );
            assert!(out.mean_power_kw() > cfg.idle_it_power_kw());
        }
    }

    #[test]
    fn replay_reproduces_recorded_starts() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::replay(cfg.clone());
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        let tick = cfg.tick.as_secs();
        for o in &out.outcomes {
            let recorded = ds.jobs.iter().find(|j| j.id == o.id).unwrap();
            let delta = (o.start - recorded.recorded_start).as_secs().abs();
            assert!(
                delta <= tick,
                "job {} started {}s off its recorded start",
                o.id,
                delta
            );
        }
    }

    #[test]
    fn reschedule_never_starts_before_submit() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "easy").unwrap();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        for o in &out.outcomes {
            assert!(o.start >= o.submit, "job {} ran before submission", o.id);
        }
    }

    #[test]
    fn windowed_run_prepopulates() {
        let cfg = presets::marconi100();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.9, 6);
        spec.span = SimDuration::hours(8);
        let ds = marconi100::synthesize(&cfg, &spec);
        // Start the window mid-dataset: jobs running at that instant must
        // occupy nodes from the first tick.
        let start = SimTime::seconds(4 * 3600);
        let sim = SimConfig::replay(cfg).with_window(start, start + SimDuration::hours(2));
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(
            out.utilization[0] > 0.0,
            "prepopulation must occupy nodes at t0"
        );
    }

    #[test]
    fn deterministic_runs() {
        let (cfg, ds) = small_adastra();
        let run = || {
            let sim = SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap();
            Engine::new(sim, &ds).unwrap().run().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats.jobs_completed, b.stats.jobs_completed);
        assert_eq!(a.power.len(), b.power.len());
        for (x, y) in a.power.iter().zip(&b.power) {
            assert_eq!(x.total_kw, y.total_kw);
        }
    }

    #[test]
    fn energy_accounting_consistent() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "firstfit").unwrap();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        // Facility energy must exceed the jobs' energy (idle + losses).
        let job_energy_mwh: f64 = out.outcomes.iter().map(|o| o.energy_kwh).sum::<f64>() / 1000.0;
        assert!(out.stats.total_energy_mwh > job_energy_mwh * 0.9);
    }

    #[test]
    fn backfill_improves_utilization_under_load() {
        let s = scenario::fig4(3);
        let run = |policy: &str, backfill: &str| {
            let sim = SimConfig::new(s.config.clone(), policy, backfill)
                .unwrap()
                .with_window(s.sim_start, s.sim_end);
            Engine::new(sim, &s.dataset).unwrap().run().unwrap()
        };
        let nobf = run("fcfs", "none");
        let easy = run("fcfs", "easy");
        assert!(
            easy.mean_utilization() >= nobf.mean_utilization() - 0.02,
            "easy {} vs nobf {}",
            easy.mean_utilization(),
            nobf.mean_utilization()
        );
    }

    #[test]
    fn fastsim_backend_runs_end_to_end() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::new(cfg, "fcfs", "easy")
            .unwrap()
            .with_scheduler(SchedulerSelect::FastSim);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert_eq!(out.scheduler_name, "fastsim");
        assert!(out.stats.jobs_completed > 0);
    }

    #[test]
    fn scheduleflow_backend_runs_on_small_synthetic() {
        let cfg = presets::adastra();
        let mut spec = WorkloadSpec::for_system(&cfg, 0.3, 8);
        spec.span = SimDuration::hours(1);
        let ds = adastra::synthesize(&cfg, &spec);
        let sim = SimConfig::new(cfg, "fcfs", "none")
            .unwrap()
            .with_scheduler(SchedulerSelect::ScheduleFlow);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(out.sched_stats.recomputations > out.stats.jobs_completed);
    }

    #[test]
    fn cooling_histories_only_when_enabled() {
        let (cfg, ds) = small_adastra();
        let without = Engine::new(SimConfig::replay(cfg.clone()), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert!(without.cooling.is_empty());
        let with = Engine::new(SimConfig::replay(cfg).with_cooling(), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(with.cooling.len(), with.power.len());
        assert!(with.cooling.iter().all(|c| c.pue >= 1.0));
    }

    #[test]
    fn accounts_collected_when_enabled() {
        let (cfg, ds) = small_adastra();
        let sim = SimConfig::replay(cfg).with_accounts();
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(!out.accounts.is_empty());
        let total_jobs: u64 = out.accounts.stats.values().map(|s| s.jobs_completed).sum();
        assert_eq!(total_jobs, out.stats.jobs_completed);
    }

    #[test]
    fn power_cap_clips_job_power() {
        let (cfg, ds) = small_adastra();
        let uncapped = Engine::new(
            SimConfig::new(cfg.clone(), "fcfs", "firstfit").unwrap(),
            &ds,
        )
        .unwrap()
        .run()
        .unwrap();
        // Cap well below the uncapped peak *job* power (total − idle floor).
        let idle_kw = cfg.idle_it_power_kw();
        let peak_job_kw = uncapped
            .power
            .iter()
            .map(|p| p.it_power_kw)
            .fold(0.0, f64::max)
            - idle_kw;
        let cap = peak_job_kw * 0.6;
        let capped = Engine::new(
            SimConfig::new(cfg, "fcfs", "firstfit")
                .unwrap()
                .with_power_cap(cap),
            &ds,
        )
        .unwrap()
        .run()
        .unwrap();
        let capped_peak_job = capped
            .power
            .iter()
            .map(|p| p.it_power_kw)
            .fold(0.0, f64::max)
            - idle_kw;
        // Estimates are trace means while instantaneous draw fluctuates, so
        // allow headroom — but the cap must clearly bind.
        assert!(
            capped_peak_job < peak_job_kw * 0.85,
            "cap {cap:.0} kW did not bind: peak {capped_peak_job:.0} vs {peak_job_kw:.0}"
        );
        assert!(
            capped.stats.avg_wait_secs() >= uncapped.stats.avg_wait_secs(),
            "capping cannot reduce waits"
        );
    }

    #[test]
    fn outages_shrink_capacity_and_lift() {
        let (cfg, ds) = small_adastra();
        let half = cfg.total_nodes / 2;
        let sim = SimConfig::new(cfg.clone(), "fcfs", "firstfit")
            .unwrap()
            .with_outages(vec![crate::config::Outage {
                nodes: sraps_types::NodeSet::contiguous(0, half),
                from: SimTime::seconds(3600),
                until: SimTime::seconds(2 * 3600),
            }]);
        let out = Engine::new(sim, &ds).unwrap().run().unwrap();
        assert!(out.stats.jobs_completed > 0);
        // During the outage, occupancy can never exceed the surviving half.
        let tick = cfg.tick.as_secs();
        for (t, u) in out.times.iter().zip(&out.utilization) {
            let s = t.as_secs();
            if (3600 + tick..2 * 3600 - tick).contains(&s) {
                // utilization is busy/(total-down), can be 1.0; but busy
                // nodes must be ≤ total − down ⇒ busy/total ≤ 0.5.
                let busy_frac = u * ((cfg.total_nodes - half) as f64 / cfg.total_nodes as f64);
                assert!(
                    busy_frac <= 0.51,
                    "busy fraction {busy_frac:.2} at t={s} exceeds surviving capacity"
                );
            }
        }
    }

    #[test]
    fn outage_validation_rejects_empty_windows() {
        let (cfg, _) = small_adastra();
        let sim = SimConfig::replay(cfg).with_outages(vec![crate::config::Outage {
            nodes: sraps_types::NodeSet::contiguous(0, 4),
            from: SimTime::seconds(100),
            until: SimTime::seconds(100),
        }]);
        assert!(sim.validate().is_err());
    }

    #[test]
    fn weather_trace_drives_cooling_ambient() {
        let (cfg, ds) = small_adastra();
        let hot = sraps_types::Trace::constant(30.0);
        let cool = sraps_types::Trace::constant(10.0);
        let run_with = |trace: sraps_types::Trace| {
            let sim = SimConfig::replay(cfg.clone())
                .with_cooling()
                .with_weather(trace);
            Engine::new(sim, &ds).unwrap().run().unwrap()
        };
        let hot_out = run_with(hot);
        let cool_out = run_with(cool);
        let mean_return = |o: &SimOutput| {
            o.cooling.iter().map(|c| c.tower_return_c).sum::<f64>() / o.cooling.len() as f64
        };
        assert!(
            mean_return(&hot_out) > mean_return(&cool_out) + 5.0,
            "hot ambient must raise return water: {:.1} vs {:.1}",
            mean_return(&hot_out),
            mean_return(&cool_out)
        );
    }

    #[test]
    fn conservative_backfill_runs_end_to_end() {
        let (cfg, ds) = small_adastra();
        let out = Engine::new(SimConfig::new(cfg, "fcfs", "conservative").unwrap(), &ds)
            .unwrap()
            .run()
            .unwrap();
        assert!(out.stats.jobs_completed > 0);
        for o in &out.outcomes {
            assert!(o.start >= o.submit);
        }
    }
}
