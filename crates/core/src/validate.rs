//! Run-to-run validation: quantify how closely one simulation tracks
//! another (replay-vs-reschedule fidelity, cross-validation against the
//! original RAPS behaviour — the role the Frontier dataset played for the
//! paper's verification).

use crate::output::SimOutput;
use serde::{Deserialize, Serialize};

/// Agreement metrics between two runs' facility power series.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SeriesAgreement {
    /// Pearson correlation of the two series.
    pub correlation: f64,
    /// Root-mean-square error, kW.
    pub rmse_kw: f64,
    /// Mean absolute percentage error vs the reference, in [0, ∞).
    pub mape: f64,
    /// Relative difference of the total energies.
    pub energy_rel_err: f64,
    /// Samples compared (series truncated to the shorter).
    pub samples: usize,
}

/// Compare two power series (`reference` is the ground truth, e.g. replay).
pub fn compare_power(reference: &SimOutput, candidate: &SimOutput) -> SeriesAgreement {
    let a: Vec<f64> = reference.power.iter().map(|p| p.total_kw).collect();
    let b: Vec<f64> = candidate.power.iter().map(|p| p.total_kw).collect();
    compare_series(&a, &b)
}

/// Compare two utilization series.
pub fn compare_utilization(reference: &SimOutput, candidate: &SimOutput) -> SeriesAgreement {
    compare_series(&reference.utilization, &candidate.utilization)
}

/// Core series comparison.
pub fn compare_series(reference: &[f64], candidate: &[f64]) -> SeriesAgreement {
    let n = reference.len().min(candidate.len());
    if n == 0 {
        return SeriesAgreement::default();
    }
    let a = &reference[..n];
    let b = &candidate[..n];
    let ma = a.iter().sum::<f64>() / n as f64;
    let mb = b.iter().sum::<f64>() / n as f64;
    let (mut cov, mut va, mut vb, mut se, mut ape) = (0.0, 0.0, 0.0, 0.0, 0.0);
    for i in 0..n {
        let (da, db) = (a[i] - ma, b[i] - mb);
        cov += da * db;
        va += da * da;
        vb += db * db;
        let e = b[i] - a[i];
        se += e * e;
        if a[i].abs() > 1e-9 {
            ape += (e / a[i]).abs();
        }
    }
    let denom = (va.sqrt() * vb.sqrt()).max(1e-12);
    let (ea, eb) = (a.iter().sum::<f64>(), b.iter().sum::<f64>());
    SeriesAgreement {
        correlation: cov / denom,
        rmse_kw: (se / n as f64).sqrt(),
        mape: ape / n as f64,
        energy_rel_err: if ea.abs() > 1e-9 { (eb - ea) / ea } else { 0.0 },
        samples: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_agree_perfectly() {
        let s: Vec<f64> = (0..100)
            .map(|i| 100.0 + (i as f64 * 0.3).sin() * 10.0)
            .collect();
        let m = compare_series(&s, &s);
        assert!((m.correlation - 1.0).abs() < 1e-9);
        assert!(m.rmse_kw < 1e-9);
        assert!(m.mape < 1e-12);
        assert!(m.energy_rel_err.abs() < 1e-12);
    }

    #[test]
    fn scaled_series_keep_correlation_but_show_energy_error() {
        let a: Vec<f64> = (0..100)
            .map(|i| 100.0 + (i as f64 * 0.3).sin() * 10.0)
            .collect();
        let b: Vec<f64> = a.iter().map(|v| v * 1.1).collect();
        let m = compare_series(&a, &b);
        assert!(m.correlation > 0.999);
        assert!((m.energy_rel_err - 0.1).abs() < 1e-9);
        assert!((m.mape - 0.1).abs() < 1e-9);
    }

    #[test]
    fn anticorrelated_series_detected() {
        let a: Vec<f64> = (0..100).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = a.iter().map(|v| -v).collect();
        let m = compare_series(&a, &b);
        assert!(m.correlation < -0.999);
    }

    #[test]
    fn length_mismatch_truncates() {
        let a = vec![1.0; 50];
        let b = vec![1.0; 80];
        assert_eq!(compare_series(&a, &b).samples, 50);
    }

    #[test]
    fn empty_is_safe() {
        let m = compare_series(&[], &[1.0]);
        assert_eq!(m.samples, 0);
    }
}
