//! `sraps` — the command-line front-end, mirroring the paper artifact's
//! `python main.py` interface:
//!
//! ```text
//! sraps --system marconi100 --policy fcfs --backfill easy -ff 4381000 -t 61000 -o out/
//! sraps --scenario fig4 --policy priority --backfill firstfit -o out/
//! sraps --system frontier --scheduler fastsim --load 0.8 --span 1d
//! sraps --system marconi100 --scheduler experimental --policy acct_edp \
//!       --backfill firstfit --accounts --accounts-json replay/accounts.json
//! sraps sweep --system lassen --policies fcfs,sjf,priority \
//!       --backfills none,easy --seeds 3 --jobs 4
//! ```
//!
//! Without `--scenario`, a synthetic dataset shaped like the system's
//! public dataset is generated (`--load`, `--span`, `--seed` control it).
//! Outputs (power/util/queue/cooling CSVs, `job_history.csv`, `stats.out`,
//! `accounts.json`) land in `-o DIR` (default `simulation_results/<id>`).
//!
//! `sraps sweep` runs *matrices* of simulations (systems × policies ×
//! backfills × seeds × …) on a multi-threaded work-stealing executor and
//! emits a baseline-relative comparison report — see [`sraps_exp`]. With
//! `--cache` (or `SRAPS_CACHE_DIR` set) finished cells are memoized on
//! disk under content-addressed keys, so re-running an overlapping matrix
//! only simulates the cells that changed; `--metrics-only` bounds sweep
//! memory for very large matrices.

use sraps_core::{Engine, EngineMode, EngineSnapshot, SchedulerSelect, SimConfig, SimOutput};
use sraps_data::{scenario, Dataset, WorkloadSpec};
use sraps_systems::SystemConfig;
use sraps_types::{fsio::write_atomic, time::parse_duration, SimDuration, SimTime};
use std::path::PathBuf;
use std::process::ExitCode;

#[derive(Debug, Clone, PartialEq)]
struct CliArgs {
    system: Option<String>,
    scenario: Option<String>,
    policy: String,
    backfill: String,
    scheduler: String,
    engine: EngineMode,
    fast_forward: Option<SimDuration>,
    duration: Option<SimDuration>,
    load: f64,
    span: SimDuration,
    seed: u64,
    scale: f64,
    cooling: bool,
    accounts: bool,
    accounts_json: Option<PathBuf>,
    power_cap_kw: Option<f64>,
    out_dir: Option<PathBuf>,
    profile: bool,
    trace_out: Option<PathBuf>,
    checkpoint: Option<PathBuf>,
    checkpoint_at: Option<SimDuration>,
    resume: Option<PathBuf>,
}

impl Default for CliArgs {
    fn default() -> Self {
        CliArgs {
            system: None,
            scenario: None,
            policy: "replay".into(),
            backfill: "none".into(),
            scheduler: "default".into(),
            engine: EngineMode::default(),
            fast_forward: None,
            duration: None,
            load: 0.8,
            span: SimDuration::days(1),
            seed: 42,
            scale: 1.0,
            cooling: false,
            accounts: false,
            accounts_json: None,
            power_cap_kw: None,
            out_dir: None,
            profile: false,
            trace_out: None,
            checkpoint: None,
            checkpoint_at: None,
            resume: None,
        }
    }
}

const USAGE: &str = "\
usage: sraps (--system NAME | --scenario fig4|fig5|fig6|fig7|fig8|fig10) [options]
       sraps sweep ...        run an experiment matrix, optionally cached and
                              metrics-only (see `sraps sweep --help`)
       sraps serve ...        run the resident what-if twin service
                              (see `sraps serve --help`)
       sraps query ...        send what-if queries to a running daemon
                              (see `sraps query --help`)
       sraps validate-trace PATH
                              check a --trace-out file is well-formed
                              chrome-trace JSON with properly nested spans

options:
  --system NAME          frontier | marconi100 | fugaku | lassen | adastra
  --scenario NAME        use a paper scenario's workload and window
  --policy P             replay|fcfs|sjf|ljf|priority|ml|acct_* (default replay)
  --backfill B           none|firstfit|easy|conservative (default none)
  --scheduler S          default|experimental|scheduleflow|fastsim
  --engine E             event|tick main-loop core (default event; both are
                         bit-identical, tick is the paper's fixed-tick loop)
  -ff SECS               fast-forward: simulation window start
  -t DUR                 simulation duration (accepts 61000, 1h, 15d, …)
  --load F               synthetic offered load (default 0.8)
  --span DUR             synthetic workload span (default 1d)
  --seed N               synthetic workload seed (default 42)
  --scale F              scale large machines (frontier/fugaku) by F
  -c, --cooling          run the cooling model
  --accounts             track per-account statistics
  --accounts-json FILE   reload collection-phase accounts.json
  --power-cap KW         enforce a facility job-power cap
  -o, --output DIR       output directory (default simulation_results/<id>)
  --profile              print per-phase timings and counters on stderr and
                         write profile.json into the output directory
  --trace-out PATH       write a chrome-trace (Perfetto-loadable) JSON of
                         every instrumented span to PATH
  --checkpoint PATH      pause at --checkpoint-at, write an engine snapshot
                         (JSON) to PATH, and exit without simulating further
  --checkpoint-at DUR    offset into the window at which to checkpoint
                         (required by --checkpoint, tick-boundary-aligned)
  --resume PATH          restore a --checkpoint snapshot and continue; with
                         the same flags the finished run is byte-identical
                         to one that never paused
  -h, --help             this help
";

fn parse_args(argv: &[String]) -> Result<CliArgs, String> {
    let mut a = CliArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--system" => a.system = Some(value(&mut i, "--system")?),
            "--scenario" => a.scenario = Some(value(&mut i, "--scenario")?),
            "--policy" => a.policy = value(&mut i, "--policy")?,
            "--backfill" => a.backfill = value(&mut i, "--backfill")?,
            "--scheduler" => a.scheduler = value(&mut i, "--scheduler")?,
            "--engine" => {
                let v = value(&mut i, "--engine")?;
                a.engine =
                    EngineMode::parse(&v).ok_or_else(|| format!("bad --engine value '{v}'"))?;
            }
            "-ff" => {
                let v = value(&mut i, "-ff")?;
                a.fast_forward =
                    Some(parse_duration(&v).ok_or_else(|| format!("bad -ff value '{v}'"))?);
            }
            "-t" => {
                let v = value(&mut i, "-t")?;
                a.duration = Some(parse_duration(&v).ok_or_else(|| format!("bad -t value '{v}'"))?);
            }
            "--load" => {
                a.load = value(&mut i, "--load")?
                    .parse()
                    .map_err(|e| format!("bad --load: {e}"))?;
            }
            "--span" => {
                let v = value(&mut i, "--span")?;
                a.span = parse_duration(&v).ok_or_else(|| format!("bad --span value '{v}'"))?;
            }
            "--seed" => {
                a.seed = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--scale" => {
                a.scale = value(&mut i, "--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "-c" | "--cooling" => a.cooling = true,
            "--accounts" => a.accounts = true,
            "--accounts-json" => {
                a.accounts_json = Some(PathBuf::from(value(&mut i, "--accounts-json")?));
            }
            "--power-cap" => {
                a.power_cap_kw = Some(
                    value(&mut i, "--power-cap")?
                        .parse()
                        .map_err(|e| format!("bad --power-cap: {e}"))?,
                );
            }
            "-o" | "--output" => a.out_dir = Some(PathBuf::from(value(&mut i, "--output")?)),
            "--profile" => a.profile = true,
            "--trace-out" => a.trace_out = Some(PathBuf::from(value(&mut i, "--trace-out")?)),
            "--checkpoint" => a.checkpoint = Some(PathBuf::from(value(&mut i, "--checkpoint")?)),
            "--checkpoint-at" => {
                let v = value(&mut i, "--checkpoint-at")?;
                a.checkpoint_at =
                    Some(parse_duration(&v).ok_or_else(|| format!("bad --checkpoint-at '{v}'"))?);
            }
            "--resume" => a.resume = Some(PathBuf::from(value(&mut i, "--resume")?)),
            "-h" | "--help" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
        i += 1;
    }
    if a.system.is_none() && a.scenario.is_none() {
        return Err(format!("need --system or --scenario\n\n{USAGE}"));
    }
    if a.checkpoint.is_some() != a.checkpoint_at.is_some() {
        return Err("--checkpoint and --checkpoint-at must be given together".into());
    }
    Ok(a)
}

/// System + dataset + optional documented window for a run.
type RunInputs = (SystemConfig, Dataset, Option<(SimTime, SimTime)>);

/// Build the (config, dataset, window) triple the run will use.
fn build_inputs(a: &CliArgs) -> Result<RunInputs, String> {
    if let Some(name) = &a.scenario {
        let s = match name.as_str() {
            "fig4" => scenario::fig4(a.seed),
            "fig5" => scenario::fig5(a.seed),
            "fig6" => scenario::fig6_scaled(a.seed, a.scale),
            "fig7" => scenario::fig7(a.seed, a.scale),
            "fig8" => scenario::fig8_scaled(a.seed, a.scale),
            "fig10" => scenario::fig10(a.seed, a.scale.min(4096.0 / 158_976.0)),
            other => return Err(format!("unknown scenario '{other}'")),
        };
        return Ok((s.config, s.dataset, Some((s.sim_start, s.sim_end))));
    }
    let name = a.system.as_deref().expect("checked in parse_args");
    // Shared with the sweep subsystem so system lookup, the scale floor,
    // and the dataloader dispatch cannot drift between interfaces.
    let cfg = sraps_exp::cell::system_scaled(name, a.scale).map_err(|e| e.to_string())?;
    let mut spec = WorkloadSpec::for_system(&cfg, a.load, a.seed);
    spec.span = a.span;
    let ds = sraps_exp::cell::synthesize_by_name(name, &cfg, &spec).map_err(|e| e.to_string())?;
    Ok((cfg, ds, None))
}

// Artifacts install via temp+rename so an interrupted run never leaves a
// torn CSV where the next tool (or a rerun's diff) would read it.
fn write_outputs(dir: &PathBuf, out: &SimOutput) -> sraps_types::Result<()> {
    std::fs::create_dir_all(dir).map_err(|e| {
        sraps_types::SrapsError::Io(format!("create output dir {}: {e}", dir.display()))
    })?;
    write_atomic(&dir.join("power_history.csv"), out.power_csv().as_bytes())?;
    write_atomic(&dir.join("util.csv"), out.util_csv().as_bytes())?;
    write_atomic(&dir.join("job_history.csv"), out.job_csv().as_bytes())?;
    write_atomic(&dir.join("stats.out"), out.stats.render().as_bytes())?;
    if !out.cooling.is_empty() {
        write_atomic(&dir.join("cooling_model.csv"), out.cooling_csv().as_bytes())?;
    }
    if !out.accounts.is_empty() {
        write_atomic(
            &dir.join("accounts.json"),
            out.accounts.to_json().unwrap_or_default().as_bytes(),
        )?;
    }
    Ok(())
}

fn run(a: CliArgs) -> Result<(), String> {
    let (cfg, dataset, window) = build_inputs(&a)?;
    println!(
        "system {} ({} nodes), dataset {} jobs",
        cfg.name,
        cfg.total_nodes,
        dataset.len()
    );

    let mut sim = SimConfig::new(cfg, &a.policy, &a.backfill).map_err(|e| e.to_string())?;
    match a.scheduler.as_str() {
        "default" => {}
        "experimental" => sim.scheduler = SchedulerSelect::Experimental,
        "scheduleflow" => sim.scheduler = SchedulerSelect::ScheduleFlow,
        "fastsim" => sim.scheduler = SchedulerSelect::FastSim,
        other => return Err(format!("unknown scheduler '{other}'")),
    }
    sim = sim.with_engine(a.engine);
    // Window: explicit -ff/-t beats the scenario's documented window.
    let start = a
        .fast_forward
        .map(|ff| dataset.capture_start + ff)
        .or(window.map(|w| w.0));
    let end = match (start, a.duration) {
        (Some(s), Some(d)) => Some(s + d),
        (_, Some(d)) => Some(dataset.capture_start + d),
        _ => window.map(|w| w.1),
    };
    if let (Some(s), Some(e)) = (start.or(window.map(|w| w.0)), end) {
        sim = sim.with_window(s, e);
    }
    if a.cooling {
        sim = sim.with_cooling();
    }
    if a.accounts {
        sim = sim.with_accounts();
    }
    if let Some(path) = &a.accounts_json {
        let loaded = sraps_acct::Accounts::load(path).map_err(|e| e.to_string())?;
        sim = sim.with_accounts_json(loaded);
    }
    if let Some(cap) = a.power_cap_kw {
        sim = sim.with_power_cap(cap);
    }

    // Instrumentation is process-global; flip it on for exactly this run.
    sraps_obs::set_profile(a.profile);
    sraps_obs::set_trace(a.trace_out.is_some());
    let mut engine = match &a.resume {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("read snapshot {}: {e}", path.display()))?;
            let snap: EngineSnapshot = serde_json::from_str(&text)
                .map_err(|e| format!("parse snapshot {}: {e}", path.display()))?;
            Engine::builder(sim)
                .resume(&snap)
                .build(&dataset)
                .map_err(|e| e.to_string())?
        }
        None => Engine::new(sim, &dataset).map_err(|e| e.to_string())?,
    };
    if let (Some(path), Some(at)) = (&a.checkpoint, a.checkpoint_at) {
        // Pause at the tick boundary, persist, and stop: the snapshot is
        // the run's artifact (resume it with --resume to finish).
        let result = (|| -> Result<(), String> {
            engine
                .run_until(engine.sim_start() + at)
                .map_err(|e| e.to_string())?;
            let snap = engine.snapshot().map_err(|e| e.to_string())?;
            let json = serde_json::to_string(&snap).map_err(|e| e.to_string())?;
            write_atomic(path, json.as_bytes())
                .map_err(|e| format!("write snapshot {}: {e}", path.display()))?;
            Ok(())
        })();
        sraps_obs::set_profile(false);
        sraps_obs::set_trace(false);
        result?;
        println!("checkpoint written to {}", path.display());
        return Ok(());
    }
    let out = engine.run().map_err(|e| e.to_string())?;
    sraps_obs::set_profile(false);
    sraps_obs::set_trace(false);
    if let Some(path) = &a.trace_out {
        sraps_obs::write_trace(path).map_err(|e| format!("write trace {}: {e}", path.display()))?;
        eprintln!("trace written to {}", path.display());
    }

    println!(
        "{}: {} jobs, util {:.1}%, mean {:.1} kW, peak {:.1} kW, {:.0}x real-time",
        out.label,
        out.stats.jobs_completed,
        out.mean_utilization() * 100.0,
        out.mean_power_kw(),
        out.peak_power_kw(),
        out.speedup()
    );
    println!("{}", out.stats.render());

    // Artifact-style output directory: simulation_results/<7-hex>.
    let dir = a.out_dir.unwrap_or_else(|| {
        let id = {
            use std::collections::hash_map::DefaultHasher;
            use std::hash::{Hash, Hasher};
            let mut h = DefaultHasher::new();
            (out.label.as_str(), a.seed, out.stats.jobs_completed).hash(&mut h);
            format!("{:07x}", h.finish() & 0xFFF_FFFF)
        };
        PathBuf::from("simulation_results").join(id)
    });
    write_outputs(&dir, &out).map_err(|e| e.to_string())?;
    if let Some(profile) = &out.profile {
        eprint!("\n{}", profile.render_table());
        let json = serde_json::to_string_pretty(profile).map_err(|e| e.to_string())?;
        write_atomic(&dir.join("profile.json"), json.as_bytes()).map_err(|e| e.to_string())?;
    }
    println!("output written to {}", dir.display());
    Ok(())
}

/// `sraps validate-trace PATH`: parse and structurally check a chrome-trace
/// file (every `E` closes a matching `B`, per-thread timestamps are
/// monotone). Prints the event count on success.
fn validate_trace(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let events = sraps_obs::validate_chrome_trace(&text)?;
    println!("trace ok: {events} events ({path})");
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    // `sraps sweep ...` — the experiment-matrix subcommand (sraps-exp).
    if argv.first().map(String::as_str) == Some("sweep") {
        return match sraps_exp::cli::sweep_command(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    // `sraps serve ...` / `sraps query ...` — the resident what-if twin
    // service and its NDJSON client (sraps-serve).
    if argv.first().map(String::as_str) == Some("serve") {
        return match sraps_serve::cli::serve_command(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    if argv.first().map(String::as_str) == Some("query") {
        return match sraps_serve::cli::query_command(&argv[1..]) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("{msg}");
                ExitCode::FAILURE
            }
        };
    }
    // `sraps validate-trace PATH` — structural check of a --trace-out file.
    if argv.first().map(String::as_str) == Some("validate-trace") {
        let result = match argv.get(1) {
            Some(path) if argv.len() == 2 => validate_trace(path),
            _ => Err("usage: sraps validate-trace PATH".into()),
        };
        return match result {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    // Help is a success, on stdout (unlike usage-on-error).
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    match parse_args(&argv) {
        Ok(args) => match run(args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliArgs, String> {
        parse_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn artifact_style_invocation_parses() {
        let a = parse(&[
            "--system",
            "marconi100",
            "--policy",
            "fcfs",
            "--backfill",
            "easy",
            "-ff",
            "4381000",
            "-t",
            "61000",
            "-o",
            "out",
        ])
        .unwrap();
        assert_eq!(a.system.as_deref(), Some("marconi100"));
        assert_eq!(a.policy, "fcfs");
        assert_eq!(a.backfill, "easy");
        assert_eq!(a.fast_forward, Some(SimDuration::seconds(4_381_000)));
        assert_eq!(a.duration, Some(SimDuration::seconds(61_000)));
        assert_eq!(a.out_dir, Some(PathBuf::from("out")));
    }

    #[test]
    fn engine_flag_parses() {
        let a = parse(&["--system", "adastra", "--engine", "tick"]).unwrap();
        assert_eq!(a.engine, EngineMode::Tick);
        let a = parse(&["--system", "adastra"]).unwrap();
        assert_eq!(a.engine, EngineMode::Event);
        assert!(parse(&["--system", "adastra", "--engine", "warp"]).is_err());
    }

    #[test]
    fn duration_suffixes_accepted() {
        let a = parse(&["--system", "adastra", "-t", "1h", "--span", "15d"]).unwrap();
        assert_eq!(a.duration, Some(SimDuration::hours(1)));
        assert_eq!(a.span, SimDuration::days(15));
    }

    #[test]
    fn profile_and_trace_flags_parse() {
        let a = parse(&["--system", "adastra"]).unwrap();
        assert!(!a.profile);
        assert_eq!(a.trace_out, None);
        let a = parse(&[
            "--system",
            "adastra",
            "--profile",
            "--trace-out",
            "/tmp/t.json",
        ])
        .unwrap();
        assert!(a.profile);
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/t.json")));
        assert!(parse(&["--system", "adastra", "--trace-out"]).is_err());
    }

    #[test]
    fn checkpoint_flags_parse_and_pair_up() {
        let a = parse(&[
            "--system",
            "adastra",
            "--checkpoint",
            "/tmp/s.json",
            "--checkpoint-at",
            "30m",
        ])
        .unwrap();
        assert_eq!(a.checkpoint, Some(PathBuf::from("/tmp/s.json")));
        assert_eq!(a.checkpoint_at, Some(SimDuration::minutes(30)));

        let a = parse(&["--system", "adastra", "--resume", "/tmp/s.json"]).unwrap();
        assert_eq!(a.resume, Some(PathBuf::from("/tmp/s.json")));

        // Either half of the checkpoint pair alone is a usage error.
        let e = parse(&["--system", "adastra", "--checkpoint", "/tmp/s.json"]).unwrap_err();
        assert!(e.contains("--checkpoint-at"));
        let e = parse(&["--system", "adastra", "--checkpoint-at", "30m"]).unwrap_err();
        assert!(e.contains("--checkpoint"));
        assert!(parse(&["--system", "adastra", "--checkpoint-at", "soon"]).is_err());
    }

    #[test]
    fn missing_system_and_scenario_is_an_error() {
        assert!(parse(&["--policy", "fcfs"]).is_err());
    }

    #[test]
    fn unknown_flag_is_an_error() {
        let e = parse(&["--system", "adastra", "--frobnicate"]).unwrap_err();
        assert!(e.contains("unknown argument"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--system"]).is_err());
        assert!(parse(&["--system", "adastra", "--power-cap"]).is_err());
    }

    #[test]
    fn scenario_and_flags_parse() {
        let a = parse(&[
            "--scenario",
            "fig4",
            "--policy",
            "priority",
            "--backfill",
            "firstfit",
            "-c",
            "--accounts",
            "--power-cap",
            "1200",
            "--seed",
            "7",
            "--scale",
            "0.25",
        ])
        .unwrap();
        assert_eq!(a.scenario.as_deref(), Some("fig4"));
        assert!(a.cooling && a.accounts);
        assert_eq!(a.power_cap_kw, Some(1200.0));
        assert_eq!(a.seed, 7);
        assert!((a.scale - 0.25).abs() < 1e-12);
    }

    #[test]
    fn build_inputs_for_system_and_scenario() {
        let a = parse(&["--system", "adastra", "--span", "2h", "--load", "0.5"]).unwrap();
        let (cfg, ds, window) = build_inputs(&a).unwrap();
        assert_eq!(cfg.name, "adastra");
        assert!(!ds.is_empty());
        assert!(window.is_none());

        let a = parse(&["--scenario", "fig5"]).unwrap();
        let (cfg, _, window) = build_inputs(&a).unwrap();
        assert_eq!(cfg.name, "adastra");
        assert!(window.is_some());
    }

    #[test]
    fn bad_system_or_scenario_reported() {
        let a = parse(&["--system", "summit"]).unwrap();
        assert!(build_inputs(&a).is_err());
        let a = parse(&["--scenario", "fig99"]).unwrap();
        assert!(build_inputs(&a).is_err());
    }
}
