//! Content-addressed fingerprinting for sweep cells.
//!
//! A sweep cell is a pure function of (workload plan, cell spec): hashing
//! a canonical serialization of every sim-relevant field yields a key
//! under which its metrics can be memoized on disk and reused across
//! processes. Three properties matter:
//!
//! 1. **Stability** — the same spec must hash identically in every
//!    process on every platform, so the hash is a vendored FNV-1a (128
//!    bit, the offline-shim policy: no registry deps) over explicitly
//!    ordered field writes, never over `std::hash::Hash` (which is
//!    documented to vary across releases and uses random seeds in
//!    `HashMap`).
//! 2. **Sensitivity** — any sim-relevant mutation must change the key.
//!    Strings are length-prefixed and every field is written in a fixed
//!    order, so adjacent fields cannot alias (`"ab" + "c"` ≠ `"a" + "bc"`).
//! 3. **Invalidation** — results depend on the engine's semantics, not
//!    just its inputs. [`ENGINE_SCHEMA_VERSION`] is folded into every
//!    fingerprint; bump it whenever an engine, model, or dataloader
//!    change alters simulation output so every stale cache entry misses.
//!
//! [`Fingerprinter`] also implements [`std::fmt::Write`], so any
//! `Debug`-printable structure can be folded in without materializing the
//! (potentially huge) debug string: `write!(fp, "{:?}", dataset)` streams
//! the formatter's output straight through the hasher. Derived `Debug`
//! output is deterministic (floats print in shortest-roundtrip form, and
//! the workspace's types hold `Vec`s/`BTreeMap`s, never iteration-order-
//! randomized maps), which makes it a serviceable canonical serialization
//! whose drift the golden-key fixtures catch.

use std::fmt;

/// Cache-invalidation salt: bump on any change that alters simulation
/// output for identical inputs (engine semantics, physics models,
/// dataloaders, preset systems, metrics definitions). Folded into every
/// fingerprint, so a bump orphans — rather than corrupts — old entries.
///
/// v2: uniform-aging priority key became time-invariant (identical
/// mathematical order, but f64 rounding ties can resolve differently)
/// and power-capped runs now report effected placements instead of
/// shadow proposals in their scheduler statistics.
///
/// v3: cell fingerprints gained the late-binding power-cap axis
/// (`cap_at`), and engine snapshots became cache-addressable under the
/// same version stamp.
pub const ENGINE_SCHEMA_VERSION: u32 = 3;

/// A finished 128-bit fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Fingerprint(pub u128);

impl Fingerprint {
    /// Fixed-width lowercase hex — the on-disk cache entry stem.
    pub fn hex(&self) -> String {
        format!("{:032x}", self.0)
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013B;

/// Streaming FNV-1a/128 with typed, self-delimiting writers.
#[derive(Debug, Clone)]
pub struct Fingerprinter {
    state: u128,
}

impl Default for Fingerprinter {
    fn default() -> Self {
        Self::new()
    }
}

impl Fingerprinter {
    /// A fresh hasher, pre-salted with [`ENGINE_SCHEMA_VERSION`].
    pub fn new() -> Self {
        let mut fp = Fingerprinter {
            state: FNV128_OFFSET,
        };
        fp.write_u32(ENGINE_SCHEMA_VERSION);
        fp
    }

    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.state ^= b as u128;
            self.state = self.state.wrapping_mul(FNV128_PRIME);
        }
    }

    pub fn write_u8(&mut self, v: u8) {
        self.write_bytes(&[v]);
    }

    pub fn write_u32(&mut self, v: u32) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_u64(&mut self, v: u64) {
        self.write_bytes(&v.to_le_bytes());
    }

    pub fn write_i64(&mut self, v: i64) {
        self.write_bytes(&v.to_le_bytes());
    }

    /// Bit-exact: distinguishes `-0.0` from `0.0` and every NaN payload,
    /// which is the right call for a cache key (never aliases two specs).
    pub fn write_f64(&mut self, v: f64) {
        self.write_bytes(&v.to_bits().to_le_bytes());
    }

    pub fn write_bool(&mut self, v: bool) {
        self.write_u8(v as u8);
    }

    /// Length-prefixed, so adjacent strings cannot alias.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        self.write_bytes(s.as_bytes());
    }

    /// Presence byte + value, so `None` and `Some(0.0)` differ.
    pub fn write_opt_f64(&mut self, v: Option<f64>) {
        match v {
            Some(x) => {
                self.write_u8(1);
                self.write_f64(x);
            }
            None => self.write_u8(0),
        }
    }

    /// Fold another fingerprint in (e.g. a workload fingerprint into a
    /// cell fingerprint).
    pub fn write_fingerprint(&mut self, fp: Fingerprint) {
        self.write_bytes(&fp.0.to_le_bytes());
    }

    /// Stream any `Debug`-printable structure through the hasher without
    /// building its debug string: `fp.write_debug(&dataset)`.
    pub fn write_debug<T: fmt::Debug>(&mut self, value: &T) {
        use fmt::Write;
        write!(self, "{value:?}").expect("fingerprint writes are infallible");
        // Delimit: a streamed debug blob must not alias the next field.
        self.write_u8(0xFE);
    }

    pub fn finish(&self) -> Fingerprint {
        Fingerprint(self.state)
    }
}

impl fmt::Write for Fingerprinter {
    fn write_str(&mut self, s: &str) -> fmt::Result {
        self.write_bytes(s.as_bytes());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_hashers() {
        let run = || {
            let mut fp = Fingerprinter::new();
            fp.write_str("lassen");
            fp.write_f64(0.7);
            fp.write_u64(42);
            fp.finish()
        };
        assert_eq!(run(), run());
        assert_eq!(run().hex().len(), 32);
    }

    #[test]
    fn adjacent_strings_do_not_alias() {
        let key = |a: &str, b: &str| {
            let mut fp = Fingerprinter::new();
            fp.write_str(a);
            fp.write_str(b);
            fp.finish()
        };
        assert_ne!(key("ab", "c"), key("a", "bc"));
        assert_ne!(key("", "abc"), key("abc", ""));
    }

    #[test]
    fn option_presence_is_hashed() {
        let key = |v: Option<f64>| {
            let mut fp = Fingerprinter::new();
            fp.write_opt_f64(v);
            fp.finish()
        };
        assert_ne!(key(None), key(Some(0.0)));
        assert_ne!(key(Some(0.0)), key(Some(-0.0)), "bit-exact floats");
    }

    #[test]
    fn debug_streaming_matches_debug_string_bytes() {
        #[derive(Debug)]
        #[allow(dead_code)]
        struct Probe {
            a: f64,
            b: Vec<u32>,
        }
        let p = Probe {
            a: 1.5,
            b: vec![1, 2],
        };
        let mut streamed = Fingerprinter::new();
        streamed.write_debug(&p);
        let mut manual = Fingerprinter::new();
        manual.write_bytes(format!("{p:?}").as_bytes());
        manual.write_u8(0xFE);
        assert_eq!(streamed.finish(), manual.finish());
    }

    #[test]
    fn golden_salt_anchor() {
        // Pins the hash function + current schema salt: if FNV constants,
        // the salt, or the write encoding drift, this fails loudly. Update
        // deliberately (it is what invalidates every on-disk cache).
        let mut fp = Fingerprinter::new();
        fp.write_str("golden");
        assert_eq!(fp.finish().hex(), "23b4281528e93259c408f1ab7292c0f5");
    }
}
