//! §4.2.1 proof of concept: driving the event-based ScheduleFlow engine
//! from S-RAPS on a synthetic workload with a 1-hour cap, and measuring the
//! recomputation overhead the paper reports ("frequent recalculation of
//! the schedule incurring large overheads … shows poor performance for any
//! of the real datasets").

use sraps_bench::{check, header};
use sraps_core::{Engine, SchedulerSelect, SimConfig};
use sraps_data::WorkloadSpec;
use sraps_systems::presets;
use sraps_types::SimDuration;

fn main() {
    header(
        "scheduleflow_poc",
        "External event-based scheduler driven by S-RAPS (1 h cap)",
    );

    // Synthetic jobs, 1-hour simulation cap — the artifact's
    // `python main.py -t 1h --scheduler scheduleflow`.
    let cfg = presets::adastra();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.4, 42);
    spec.span = SimDuration::hours(1);
    let ds = sraps_data::adastra::synthesize(&cfg, &spec);
    println!(
        "workload: {} synthetic jobs on {} nodes\n",
        ds.len(),
        cfg.total_nodes
    );

    let run = |select: SchedulerSelect| {
        let sim = SimConfig::new(cfg.clone(), "fcfs", "none")
            .expect("valid")
            .with_scheduler(select);
        Engine::new(sim, &ds).expect("engine").run().expect("run")
    };
    let builtin = run(SchedulerSelect::Default);
    let sf = run(SchedulerSelect::ScheduleFlow);

    println!(
        "{:<14} jobs={:<5} wall={:<12?} recomputations={}",
        "builtin",
        builtin.stats.jobs_completed,
        builtin.wall_time,
        builtin.sched_stats.recomputations
    );
    println!(
        "{:<14} jobs={:<5} wall={:<12?} recomputations={}",
        "scheduleflow", sf.stats.jobs_completed, sf.wall_time, sf.sched_stats.recomputations
    );

    println!();
    check(
        "external event-based scheduler completes the synthetic run",
        sf.stats.jobs_completed > 0,
    );
    check(
        &format!(
            "ScheduleFlow recomputes far more than the builtin ({} vs {})",
            sf.sched_stats.recomputations, builtin.sched_stats.recomputations
        ),
        sf.sched_stats.recomputations > builtin.sched_stats.recomputations,
    );
    check(
        &format!(
            "placements validated against the resource manager ({} placed)",
            sf.sched_stats.placements
        ),
        sf.sched_stats.placements >= sf.stats.jobs_completed,
    );
}
