//! Fig 8: incentive structures — account-priority policies on the Fig 6
//! day. The collection phase (replay with `--accounts`) accumulates each
//! account's behaviour; the redeeming phase reprioritizes by descending
//! average power / ascending average power / EDP / Fugaku points.
//!
//! Paper's observation to reproduce: Fugaku points reward low average
//! power from the collection phase, so the three high-power giants are
//! *not* rewarded and the low-power background is pulled forward — while
//! acct_avg_power does the opposite.

use sraps_bench::{check, header, print_series_block, run_incentives, write_csvs};
use sraps_core::{Engine, SimConfig, SimOutput};
use sraps_data::scenario;

fn main() {
    let s = scenario::fig8_scaled(42, 0.25);
    header(
        "fig8",
        "Incentive structures via account-based prioritization",
    );
    println!(
        "workload: {} jobs on {} nodes (the Fig 6 day, saturated)\n",
        s.dataset.len(),
        s.config.total_nodes
    );

    // Collection phase.
    let sim = SimConfig::replay(s.config.clone())
        .with_window(s.sim_start, s.sim_end)
        .with_accounts();
    let collection = Engine::new(sim, &s.dataset)
        .expect("engine")
        .run()
        .expect("collection run");
    println!(
        "collection: {} accounts tracked\n",
        collection.accounts.len()
    );
    std::fs::write(
        sraps_bench::results_dir("fig8").join("accounts.json"),
        collection.accounts.to_json().expect("json"),
    )
    .expect("write accounts.json");

    // Redeeming phase: four incentives, first-fit backfill (paper setup),
    // fanned out by the sweep subsystem's experiment matrix.
    let policies = [
        "acct_avg_power",
        "acct_low_avg_power",
        "acct_edp",
        "acct_fugaku_pts",
    ];
    let mut outputs: Vec<SimOutput> =
        run_incentives(&s, &policies, "firstfit", collection.accounts.clone());
    outputs.insert(0, collection);

    for out in &outputs {
        print_series_block(out, 72);
        write_csvs("fig8", out);
    }

    // The hottest busy account's jobs must *wait less* under
    // acct_avg_power than under acct_fugaku_pts (which rewards frugal
    // accounts), and vice versa. Wait time isolates the scheduling effect
    // from when jobs happen to be submitted.
    let accounts = &outputs[0].accounts;
    let busy: Vec<(&u32, &sraps_acct::AccountStats)> = accounts
        .stats
        .iter()
        .filter(|(_, st)| st.jobs_completed >= 20)
        .collect();
    let hottest = busy
        .iter()
        .max_by(|a, b| {
            a.1.avg_node_power_kw
                .partial_cmp(&b.1.avg_node_power_kw)
                .unwrap()
        })
        .map(|(id, _)| **id)
        .expect("busy accounts exist");
    let frugal = busy
        .iter()
        .min_by(|a, b| {
            a.1.avg_node_power_kw
                .partial_cmp(&b.1.avg_node_power_kw)
                .unwrap()
        })
        .map(|(id, _)| **id)
        .expect("busy accounts exist");
    let mean_wait = |o: &SimOutput, acct: u32| {
        let v: Vec<f64> = o
            .outcomes
            .iter()
            .filter(|x| x.account.0 == acct)
            .map(|x| x.wait().as_secs_f64())
            .collect();
        v.iter().sum::<f64>() / v.len().max(1) as f64
    };
    // Within-run comparisons avoid the survivorship bias of comparing the
    // (different) completed-job sets across runs.
    let hot_under_avg = mean_wait(&outputs[1], hottest);
    let frugal_under_avg = mean_wait(&outputs[1], frugal);
    let hot_under_pts = mean_wait(&outputs[4], hottest);
    let frugal_under_pts = mean_wait(&outputs[4], frugal);
    println!();
    check(
        &format!(
            "under acct_avg_power the hot account outranks the frugal one (waits {hot_under_avg:.0}s vs {frugal_under_avg:.0}s)"
        ),
        hot_under_avg <= frugal_under_avg,
    );
    check(
        &format!(
            "under acct_fugaku_pts the reward flips toward frugal (hot {hot_under_pts:.0}s vs frugal {frugal_under_pts:.0}s; hot's wait grew {:.1}x)",
            hot_under_pts / hot_under_avg.max(1.0)
        ),
        hot_under_pts >= hot_under_avg,
    );
    let counts: Vec<u64> = outputs[1..]
        .iter()
        .map(|o| o.stats.jobs_completed)
        .collect();
    let (lo, hi) = (
        *counts.iter().min().expect("runs"),
        *counts.iter().max().expect("runs"),
    );
    check(
        &format!("redeeming runs complete comparable work ({lo}–{hi} jobs)"),
        (hi - lo) as f64 / (hi as f64) < 0.05,
    );
}
