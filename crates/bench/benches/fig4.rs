//! Fig 4: replay and reschedule of the PM100 high-load window (day 50
//! +17 h, 61 000 s) — power and utilization for replay / fcfs-nobf /
//! fcfs-easy / priority-ffbf.
//!
//! Paper's observations to reproduce:
//! * replay utilization ≈ 80 % with a filling queue;
//! * rescheduled runs with backfill reach ≈ 100 % sustained utilization;
//! * backfilled policies smooth the 21:00 power jump of fcfs-nobf;
//! * avg power per job ≈ −2 % and job size ≈ −5 % under backfill.

use sraps_bench::{check, header, print_series_block, run_pairs, write_csvs};
use sraps_core::SimOutput;
use sraps_data::scenario;

fn main() {
    let s = scenario::fig4(42);
    header(
        "fig4",
        "PM100 day-50 window: replay vs rescheduling policies",
    );
    println!(
        "workload: {} jobs on {} nodes, window {} → {}\n",
        s.dataset.len(),
        s.config.total_nodes,
        s.sim_start,
        s.sim_end
    );

    let runs = [
        ("replay", "none"),
        ("fcfs", "none"),
        ("fcfs", "easy"),
        ("priority", "firstfit"),
    ];
    let outputs: Vec<SimOutput> = run_pairs(&s, &runs, false);
    for out in &outputs {
        print_series_block(out, 72);
        write_csvs("fig4", out);
    }

    let replay = &outputs[0];
    let nobf = &outputs[1];
    let easy = &outputs[2];
    let ffbf = &outputs[3];

    println!();
    check(
        &format!(
            "replay utilization moderate, backfilled ≈ full ({:.1}% vs {:.1}%)",
            replay.mean_utilization() * 100.0,
            easy.mean_utilization() * 100.0
        ),
        easy.mean_utilization() > replay.mean_utilization() + 0.05
            && easy.mean_utilization() > 0.85,
    );
    check(
        &format!(
            "backfill smooths power swings (nobf {:.0} kW vs easy {:.0} kW)",
            nobf.max_power_swing_kw(),
            easy.max_power_swing_kw()
        ),
        easy.max_power_swing_kw() <= nobf.max_power_swing_kw() * 1.05,
    );
    // Avg power per job under backfill vs nobf (paper: −2 %).
    let per_job = |o: &SimOutput| {
        o.outcomes.iter().map(|x| x.avg_power_kw()).sum::<f64>() / o.outcomes.len().max(1) as f64
    };
    let dp = (per_job(easy) - per_job(nobf)) / per_job(nobf) * 100.0;
    check(
        &format!("avg power per job decreases under backfill ({dp:+.1}% vs paper −2%)"),
        dp <= 0.0,
    );
    let size = |o: &SimOutput| {
        o.outcomes.iter().map(|x| x.nodes as f64).sum::<f64>() / o.outcomes.len().max(1) as f64
    };
    let ds = (size(easy) - size(nobf)) / size(nobf) * 100.0;
    check(
        &format!("avg completed-job size decreases under backfill ({ds:+.1}% vs paper −5%)"),
        ds <= 0.0,
    );
    check(
        &format!(
            "priority-ffbf also fills the machine ({:.1}%)",
            ffbf.mean_utilization() * 100.0
        ),
        ffbf.mean_utilization() > replay.mean_utilization(),
    );
}
