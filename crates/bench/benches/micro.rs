//! Criterion microbenchmarks: the performance-critical paths of the
//! simulator (engine ticks, scheduling passes, packer, cooling step, ML
//! train/infer, FastSim event throughput).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use sraps_core::{Engine, SimConfig};
use sraps_data::{adastra, packer, WorkloadSpec};
use sraps_extsched::{ExtJob, FastSim};
use sraps_ml::{MlPipeline, PipelineConfig};
use sraps_sched::{
    BackfillKind, BuiltinScheduler, JobQueue, PolicyKind, QueuedJob, ResourceManager, SchedContext,
    SchedulerBackend,
};
use sraps_systems::presets;
use sraps_types::{AccountId, JobId, SimDuration, SimTime};

fn bench_engine(c: &mut Criterion) {
    let cfg = presets::adastra();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.7, 3);
    spec.span = SimDuration::hours(6);
    let ds = adastra::synthesize(&cfg, &spec);
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    g.bench_function("adastra_6h_fcfs_easy", |b| {
        b.iter(|| {
            let sim = SimConfig::new(cfg.clone(), "fcfs", "easy").unwrap();
            Engine::new(sim, &ds).unwrap().run().unwrap()
        })
    });
    g.bench_function("adastra_6h_replay", |b| {
        b.iter(|| {
            let sim = SimConfig::replay(cfg.clone());
            Engine::new(sim, &ds).unwrap().run().unwrap()
        })
    });
    g.bench_function("adastra_6h_replay_cooling", |b| {
        b.iter(|| {
            let sim = SimConfig::replay(cfg.clone()).with_cooling();
            Engine::new(sim, &ds).unwrap().run().unwrap()
        })
    });
    g.finish();
}

fn make_queue(n: usize) -> JobQueue {
    let mut q = JobQueue::new();
    for i in 0..n {
        q.push(QueuedJob {
            id: JobId(i as u64),
            account: AccountId((i % 32) as u32),
            submit: SimTime::seconds(i as i64),
            nodes: 1 + (i as u32 % 64),
            estimate: SimDuration::seconds(600 + (i as i64 % 7200)),
            priority: (i % 97) as f64,
            ml_score: Some((i % 31) as f64 / 31.0),
            recorded_start: SimTime::seconds(i as i64),
            recorded_nodes: None,
        });
    }
    q
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    for (name, policy, backfill) in [
        ("fcfs_none", PolicyKind::Fcfs, BackfillKind::None),
        ("fcfs_easy", PolicyKind::Fcfs, BackfillKind::Easy),
        (
            "priority_firstfit",
            PolicyKind::Priority,
            BackfillKind::FirstFit,
        ),
        ("sjf_easy", PolicyKind::Sjf, BackfillKind::Easy),
        (
            "fcfs_conservative",
            PolicyKind::Fcfs,
            BackfillKind::Conservative,
        ),
    ] {
        g.bench_function(format!("pass_1000q_{name}"), |b| {
            b.iter_batched(
                || (make_queue(1000), ResourceManager::new(512)),
                |(mut q, mut rm)| {
                    let mut s = BuiltinScheduler::new(policy, backfill);
                    let ctx = SchedContext {
                        running: &[],
                        accounts: None,
                    };
                    let mut placed = Vec::new();
                    s.schedule(SimTime::seconds(5_000), &mut q, &mut rm, &ctx, &mut placed)
                        .unwrap();
                    placed
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_packer(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(1);
    let specs: Vec<packer::JobSpec> = (0..5_000)
        .map(|_| packer::JobSpec {
            submit: SimTime::seconds(rng.gen_range(0..500_000)),
            duration: SimDuration::seconds(rng.gen_range(60..7200)),
            walltime: SimDuration::seconds(7200),
            nodes: rng.gen_range(1..128),
            user: 0,
            account: 0,
            priority: 0.0,
        })
        .collect();
    c.bench_function("packer/5000_jobs_1024_nodes", |b| {
        b.iter(|| packer::pack_jobs(specs.clone(), 1024))
    });
}

fn bench_fastsim(c: &mut Criterion) {
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};
    let mut rng = SmallRng::seed_from_u64(2);
    let jobs: Vec<ExtJob> = (0..5_000)
        .map(|i| ExtJob {
            job: QueuedJob {
                id: JobId(i),
                account: AccountId(0),
                submit: SimTime::seconds(rng.gen_range(0..1_296_000)),
                nodes: rng.gen_range(1..256),
                estimate: SimDuration::seconds(rng.gen_range(600..14_400)),
                priority: 0.0,
                ml_score: None,
                recorded_start: SimTime::ZERO,
                recorded_nodes: None,
            },
            duration: SimDuration::seconds(rng.gen_range(300..10_800)),
        })
        .collect();
    c.bench_function("fastsim/5000_jobs_15_days", |b| {
        b.iter(|| FastSim::run_trace(4096, jobs.clone()))
    });
}

fn bench_cooling(c: &mut Criterion) {
    let cfg = presets::frontier();
    c.bench_function("cooling/10k_steps", |b| {
        b.iter(|| {
            let mut plant = sraps_cooling::CoolingPlant::new(&cfg.cooling);
            let mut acc = 0.0;
            for i in 0..10_000 {
                let load = 15_000.0 + 5_000.0 * ((i % 100) as f64 / 100.0);
                acc += plant.step(SimDuration::seconds(15), load, load * 1.05).pue;
            }
            acc
        })
    });
}

fn bench_ml(c: &mut Criterion) {
    let cfg = presets::fugaku().scaled_to(1024);
    let mut spec = WorkloadSpec::for_system(&cfg, 0.8, 5);
    spec.span = SimDuration::hours(24);
    let ds = sraps_data::fugaku::synthesize(&cfg, &spec);
    let config = PipelineConfig::default();
    let mut g = c.benchmark_group("ml");
    g.sample_size(10);
    g.bench_function(format!("train_{}_jobs", ds.len()), |b| {
        b.iter(|| MlPipeline::train(&ds.jobs, config.clone()).unwrap())
    });
    let pipeline = MlPipeline::train(&ds.jobs, config).unwrap();
    g.bench_function("infer_1000_jobs", |b| {
        b.iter(|| {
            ds.jobs
                .iter()
                .take(1000)
                .map(|j| pipeline.infer(j).score)
                .sum::<f64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_engine,
    bench_scheduler,
    bench_packer,
    bench_fastsim,
    bench_cooling,
    bench_ml
);
criterion_main!(benches);
