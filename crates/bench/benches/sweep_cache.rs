//! Sweep-cache benchmark: cold (simulate + write-back) vs warm (all
//! cache hits) vs uncached sweeps over a policy×backfill grid, plus a
//! harness that writes `BENCH_sweep_cache.json` — the repo's
//! perf-trajectory baseline for the content-addressed cell cache.
//! Re-run after cache/runner changes and commit the refreshed JSON:
//!
//! ```sh
//! cargo bench -p sraps-bench --bench sweep_cache
//! ```
//!
//! `SRAPS_BENCH_SMOKE=1` runs one sample per case (CI smoke);
//! `SRAPS_BENCH_SWEEP_CACHE_OUT` overrides the JSON path (default
//! `BENCH_sweep_cache.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use sraps_exp::{ExperimentMatrix, Report, SweepOptions, SweepRunner};
use sraps_types::SimDuration;
use std::path::PathBuf;
use std::time::Instant;

struct Case {
    name: &'static str,
    matrix: ExperimentMatrix,
    cells: usize,
}

/// The benched grids: a single-workload policy grid (the interactive
/// iterate-on-one-axis loop) and a multi-seed grid (the batch shape
/// where cache reuse compounds across seeds kept fixed between edits).
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "policy_grid_1seed",
            matrix: ExperimentMatrix::synthetic(["lassen"])
                .span(SimDuration::hours(6))
                .loads([0.7])
                .seed_count(1)
                .policies(["fcfs", "sjf", "priority"])
                .backfills(["none", "easy"]),
            cells: 6,
        },
        Case {
            name: "seed_grid_3seeds",
            matrix: ExperimentMatrix::synthetic(["adastra"])
                .span(SimDuration::hours(4))
                .loads([0.6])
                .seed_count(3)
                .pairs([("fcfs", "easy"), ("sjf", "easy")]),
            cells: 6,
        },
    ]
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sraps-bench-cache-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Median wall-time of `n` runs of `f`, in milliseconds.
fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct CaseResult {
    name: String,
    cells: usize,
    jobs: usize,
    samples: usize,
    uncached_median_ms: f64,
    cold_median_ms: f64,
    warm_median_ms: f64,
    /// uncached / warm: what a fully memoized re-run saves.
    warm_speedup: f64,
    /// cold / uncached: the write-back overhead a cold cached run pays.
    cold_overhead: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    cases: Vec<CaseResult>,
}

fn smoke() -> bool {
    std::env::var_os("SRAPS_BENCH_SMOKE").is_some()
}

fn bench_sweep_cache(c: &mut Criterion) {
    let samples = if smoke() { 1 } else { 5 };
    let jobs = 2;
    let mut results = Vec::new();
    let mut g = c.benchmark_group("sweep_cache");
    g.sample_size(samples.max(2));
    for case in cases() {
        let opts = SweepOptions::new().metrics_only(true);
        let runner = SweepRunner::with_options(jobs, opts.clone());

        // Criterion lines for the terminal report (warm path only —
        // cold runs mutate the cache, which criterion's iteration model
        // cannot reset between samples)…
        let warm_dir = fresh_dir(case.name);
        let warm_runner = SweepRunner::with_options(jobs, opts.clone().cache_dir(&warm_dir));
        let seeded = warm_runner.run(&case.matrix).expect("seed run");
        assert_eq!(seeded.cache_misses(), case.cells);
        g.bench_function(format!("{}_warm", case.name), |b| {
            b.iter(|| criterion::black_box(warm_runner.run(&case.matrix).unwrap()))
        });

        // …and a medians pass for the JSON baseline.
        let uncached_ms = median_ms(samples, || {
            criterion::black_box(runner.run(&case.matrix).unwrap());
        });
        let cold_ms = median_ms(samples, || {
            let dir = fresh_dir("cold");
            let r = SweepRunner::with_options(jobs, opts.clone().cache_dir(&dir))
                .run(&case.matrix)
                .unwrap();
            assert_eq!(r.cache_hits(), 0, "cold run must not hit");
            criterion::black_box(&r);
            std::fs::remove_dir_all(&dir).ok();
        });
        let warm_ms = median_ms(samples, || {
            let r = warm_runner.run(&case.matrix).unwrap();
            assert_eq!(r.cache_hits(), case.cells, "warm run must be all hits");
            criterion::black_box(&r);
        });

        // Correctness guard: the cached report matches the uncached one
        // byte for byte — a bench of a cache that drifted would be
        // measuring a different experiment.
        let uncached = runner.run(&case.matrix).unwrap();
        let warm = warm_runner.run(&case.matrix).unwrap();
        assert_eq!(
            Report::from_results(&uncached).to_csv(),
            Report::from_results(&warm).to_csv(),
            "{}: cached report drifted",
            case.name
        );
        std::fs::remove_dir_all(&warm_dir).ok();

        results.push(CaseResult {
            name: case.name.to_string(),
            cells: case.cells,
            jobs,
            samples,
            uncached_median_ms: uncached_ms,
            cold_median_ms: cold_ms,
            warm_median_ms: warm_ms,
            warm_speedup: uncached_ms / warm_ms.max(1e-9),
            cold_overhead: cold_ms / uncached_ms.max(1e-9),
        });
    }
    g.finish();

    let report = BenchReport {
        bench: "sweep_cache".to_string(),
        cases: results,
    };
    for r in &report.cases {
        println!(
            "sweep_cache/{:<18} uncached {:>8.2} ms  cold {:>8.2} ms  warm {:>7.2} ms  warm speedup {:>6.1}x",
            r.name, r.uncached_median_ms, r.cold_median_ms, r.warm_median_ms, r.warm_speedup
        );
    }
    // Default to the workspace root so the committed baseline refreshes
    // in place regardless of cargo's bench working directory.
    let path = std::env::var("SRAPS_BENCH_SWEEP_CACHE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_cache.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_sweep_cache.json");
    println!("sweep_cache: baseline written to {path}");
}

criterion_group!(sweep_cache, bench_sweep_cache);
criterion_main!(sweep_cache);
