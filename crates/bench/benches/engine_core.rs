//! Engine-core benchmark: the tick loop vs the hybrid event/tick core on
//! fig4/fig6-scale scenarios, plus a harness that writes
//! `BENCH_engine.json` — the repo's perf-trajectory baseline for the
//! engine. Re-run after engine changes and commit the refreshed JSON:
//!
//! ```sh
//! cargo bench -p sraps-bench --bench engine_core
//! ```
//!
//! `SRAPS_BENCH_SMOKE=1` runs one iteration per cell (CI smoke);
//! `SRAPS_BENCH_ENGINE_OUT` overrides the JSON path (default
//! `BENCH_engine.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use sraps_core::{Engine, EngineMode, SimConfig, SimOutput};
use sraps_data::{adastra, marconi100, Dataset, WorkloadSpec};
use sraps_systems::{presets, SystemConfig};
use sraps_types::SimDuration;
use std::time::Instant;

/// One engine-bench scenario: a workload plus the policy/backfill it runs.
struct Case {
    name: &'static str,
    cfg: SystemConfig,
    ds: Dataset,
    policy: &'static str,
    backfill: &'static str,
    load: f64,
    span_hours: i64,
    median_runtime_h: f64,
    /// Power cap as a fraction of peak IT power, if the scenario runs
    /// under the power-cap scheduler.
    power_cap_frac: Option<f64>,
}

#[allow(clippy::too_many_arguments)]
fn case(
    name: &'static str,
    system: &str,
    load: f64,
    span_hours: i64,
    median_runtime_h: f64,
    seed: u64,
    policy: &'static str,
    backfill: &'static str,
) -> Case {
    let cfg = match system {
        "marconi100" => presets::marconi100(),
        _ => presets::adastra(),
    };
    let mut spec = WorkloadSpec::for_system(&cfg, load, seed);
    spec.span = SimDuration::hours(span_hours);
    spec.median_runtime_secs = median_runtime_h * 3600.0;
    spec.calibrate_rate(cfg.total_nodes, load);
    let ds = match system {
        "marconi100" => marconi100::synthesize(&cfg, &spec),
        _ => adastra::synthesize(&cfg, &spec),
    };
    Case {
        name,
        cfg,
        ds,
        policy,
        backfill,
        load,
        span_hours,
        median_runtime_h,
        power_cap_frac: None,
    }
}

/// The scenario set: the headline low-utilization multi-day window with
/// multi-hour jobs (long idle spans → the event core's home turf), the
/// same window replayed, a saturated day (the queue never drains → worst
/// case, must not regress), a trace-telemetry day (segment-walk physics,
/// fig4's dataset class), and the PR 4 hard cases: a saturated day under
/// conservative backfill (skips ride the reservation hint), a
/// power-capped day (skips ride the wrapper's inherited hint), and a
/// saturated trace-telemetry day (event-bound skipping under a
/// never-draining queue *and* the segment-walk physics at once).
fn cases() -> Vec<Case> {
    vec![
        case("lowutil_7d", "adastra", 0.3, 168, 6.0, 7, "fcfs", "easy"),
        case(
            "lowutil_replay_7d",
            "adastra",
            0.3,
            168,
            6.0,
            7,
            "replay",
            "none",
        ),
        case(
            "saturated_1d",
            "adastra",
            1.1,
            24,
            0.6667,
            7,
            "fcfs",
            "easy",
        ),
        case("trace_1d", "marconi100", 0.5, 24, 0.6667, 7, "fcfs", "easy"),
        // The three PR 4 hard cases use multi-hour jobs (the realistic
        // saturated-day shape — completions minutes apart): with sub-hour
        // jobs the event grid is as dense as the tick grid and there is
        // nothing for *any* core to skip.
        case(
            "conservative_sat_1d",
            "adastra",
            1.1,
            24,
            8.0,
            7,
            "fcfs",
            "conservative",
        ),
        Case {
            power_cap_frac: Some(0.6),
            ..case(
                "powercap_1d",
                "adastra",
                0.9,
                24,
                6.0,
                7,
                "fcfs",
                "firstfit",
            )
        },
        case(
            "trace_sat_1d",
            "marconi100",
            1.1,
            24,
            8.0,
            7,
            "fcfs",
            "easy",
        ),
        // The PR 5 scheduler-hot-path scenarios: saturated windows with
        // *short* jobs, so completions land on nearly every tick and the
        // event grid is as dense as the tick grid — nothing to skip, and
        // wall time is dominated by the scheduler invocation itself
        // (queue ordering, reservation/plan computation, allocation).
        // These pin the free-capacity-timeline + incremental-order +
        // scratch-reuse work.
        case(
            "sched_hot_fcfs_12h",
            "adastra",
            1.3,
            12,
            0.25,
            7,
            "fcfs",
            "none",
        ),
        case(
            "sched_hot_easy_12h",
            "adastra",
            1.3,
            12,
            0.25,
            7,
            "fcfs",
            "easy",
        ),
        case(
            "sched_hot_cons_12h",
            "adastra",
            1.3,
            12,
            0.25,
            7,
            "fcfs",
            "conservative",
        ),
        Case {
            power_cap_frac: Some(0.55),
            ..case(
                "sched_hot_cap_12h",
                "adastra",
                1.2,
                12,
                0.25,
                7,
                "fcfs",
                "firstfit",
            )
        },
    ]
}

fn run_cell(c: &Case, mode: EngineMode) -> SimOutput {
    let mut sim = SimConfig::new(c.cfg.clone(), c.policy, c.backfill)
        .unwrap()
        .with_engine(mode);
    if let Some(frac) = c.power_cap_frac {
        sim = sim.with_power_cap(c.cfg.peak_it_power_kw() * frac);
    }
    Engine::new(sim, &c.ds).unwrap().run().unwrap()
}

/// Median wall-time of `n` engine builds + runs, in milliseconds.
fn median_ms(c: &Case, mode: EngineMode, n: usize) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            criterion::black_box(run_cell(c, mode));
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct ScenarioResult {
    name: String,
    system: String,
    load: f64,
    span_hours: i64,
    median_runtime_h: f64,
    policy: String,
    backfill: String,
    power_cap_frac: Option<f64>,
    tick_secs: i64,
    samples: usize,
    tick_median_ms: f64,
    event_median_ms: f64,
    /// tick / event: >1 means the event core is faster.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    scenarios: Vec<ScenarioResult>,
}

fn smoke() -> bool {
    std::env::var_os("SRAPS_BENCH_SMOKE").is_some()
}

/// The perf-trajectory harness: median cell wall-time per engine mode,
/// written as `BENCH_engine.json`.
fn bench_engine_core(c: &mut Criterion) {
    let samples = if smoke() { 1 } else { 7 };
    let mut results = Vec::new();
    let mut g = c.benchmark_group("engine_core");
    g.sample_size(samples.max(2));
    for case in cases() {
        // Criterion lines for the terminal report…
        g.bench_function(format!("{}_tick", case.name), |b| {
            b.iter(|| run_cell(&case, EngineMode::Tick))
        });
        g.bench_function(format!("{}_event", case.name), |b| {
            b.iter(|| run_cell(&case, EngineMode::Event))
        });
        // …and a medians pass for the JSON baseline (criterion's shim
        // reports min/mean/max but does not expose samples).
        let tick_ms = median_ms(&case, EngineMode::Tick, samples);
        let event_ms = median_ms(&case, EngineMode::Event, samples);
        // Parity guard: a benchmark of two cores that drifted apart
        // would be measuring two different simulations.
        let t = run_cell(&case, EngineMode::Tick);
        let e = run_cell(&case, EngineMode::Event);
        assert_eq!(t.outcomes, e.outcomes, "{}: cores drifted", case.name);
        assert_eq!(t.power, e.power, "{}: cores drifted", case.name);
        results.push(ScenarioResult {
            name: case.name.to_string(),
            system: case.cfg.name.clone(),
            load: case.load,
            span_hours: case.span_hours,
            median_runtime_h: case.median_runtime_h,
            policy: case.policy.to_string(),
            backfill: case.backfill.to_string(),
            power_cap_frac: case.power_cap_frac,
            tick_secs: case.cfg.tick.as_secs(),
            samples,
            tick_median_ms: tick_ms,
            event_median_ms: event_ms,
            speedup: tick_ms / event_ms.max(1e-9),
        });
    }
    g.finish();

    let report = BenchReport {
        bench: "engine_core".to_string(),
        scenarios: results,
    };
    for s in &report.scenarios {
        println!(
            "engine_core/{:<14} tick {:>9.2} ms  event {:>9.2} ms  speedup {:>5.2}x",
            s.name, s.tick_median_ms, s.event_median_ms, s.speedup
        );
    }
    // Default to the workspace root so the committed baseline refreshes
    // in place regardless of cargo's bench working directory.
    let path = std::env::var("SRAPS_BENCH_ENGINE_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_engine.json");
    println!("engine_core: baseline written to {path}");
}

criterion_group!(engine_core, bench_engine_core);
criterion_main!(engine_core);
