//! Prefix-sharing benchmark: a late-binding power-cap sweep run per-cell
//! (every cell privately simulates its own uncapped prefix) vs with
//! `--prefix-share` (one snapshot forked into every cap branch), plus a
//! harness that writes `BENCH_sweep_prefix.json` — the repo's
//! perf-trajectory baseline for snapshot-forked sweeps.
//! Re-run after engine/snapshot/runner changes and commit the JSON:
//!
//! ```sh
//! cargo bench -p sraps-bench --bench sweep_prefix
//! ```
//!
//! `SRAPS_BENCH_SMOKE=1` runs one sample per case (CI smoke);
//! `SRAPS_BENCH_SWEEP_PREFIX_OUT` overrides the JSON path (default
//! `BENCH_sweep_prefix.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use sraps_exp::{ExperimentMatrix, Report, SweepOptions, SweepRunner};
use sraps_types::SimDuration;
use std::time::Instant;

struct Case {
    name: &'static str,
    matrix: ExperimentMatrix,
    cells: usize,
}

/// The benched grids: capacity-planning shapes — one uncapped prefix,
/// many candidate caps binding late in the window. The cap binds at
/// 7/8 of the span, so nearly all of every cell's work is the
/// shareable prefix.
fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "cap_scan_8way",
            matrix: ExperimentMatrix::synthetic(["lassen"])
                .span(SimDuration::hours(48))
                .loads([0.7])
                .seed_count(1)
                .pairs([("fcfs", "easy")])
                .power_caps_kw(
                    [800.0, 900.0, 1000.0, 1100.0, 1200.0, 1300.0, 1400.0, 1500.0].map(Some),
                )
                .power_cap_at(SimDuration::hours(42)),
            cells: 8,
        },
        Case {
            name: "cap_scan_2policies",
            matrix: ExperimentMatrix::synthetic(["adastra"])
                .span(SimDuration::hours(48))
                .loads([0.6])
                .seed_count(1)
                .pairs([("fcfs", "easy"), ("sjf", "easy")])
                .power_caps_kw([700.0, 800.0, 900.0, 1000.0, 1100.0, 1200.0].map(Some))
                .power_cap_at(SimDuration::hours(42)),
            cells: 12,
        },
    ]
}

/// Median wall-time of `n` runs of `f`, in milliseconds.
fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct CaseResult {
    name: String,
    cells: usize,
    shared_prefixes: usize,
    forks: usize,
    jobs: usize,
    samples: usize,
    unshared_median_ms: f64,
    shared_median_ms: f64,
    /// unshared / shared: what forking one snapshot saves over every
    /// cell privately re-simulating the same prefix.
    speedup: f64,
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    cases: Vec<CaseResult>,
}

fn smoke() -> bool {
    std::env::var_os("SRAPS_BENCH_SMOKE").is_some()
}

fn bench_sweep_prefix(c: &mut Criterion) {
    let samples = if smoke() { 1 } else { 5 };
    // Serial: total simulated work, not scheduling luck, is the metric.
    let jobs = 1;
    let mut results = Vec::new();
    let mut g = c.benchmark_group("sweep_prefix");
    g.sample_size(samples.max(2));
    for case in cases() {
        let opts = SweepOptions::new().metrics_only(true);
        let unshared = SweepRunner::with_options(jobs, opts.clone());
        let shared = SweepRunner::with_options(jobs, opts.prefix_share(true));

        g.bench_function(format!("{}_shared", case.name), |b| {
            b.iter(|| criterion::black_box(shared.run(&case.matrix).unwrap()))
        });

        let unshared_ms = median_ms(samples, || {
            criterion::black_box(unshared.run(&case.matrix).unwrap());
        });
        let shared_ms = median_ms(samples, || {
            criterion::black_box(shared.run(&case.matrix).unwrap());
        });

        // Byte-parity drift guard: a faster sweep that changed any report
        // byte would be measuring a different experiment.
        let a = unshared.run(&case.matrix).expect("unshared sweep");
        let b = shared.run(&case.matrix).expect("shared sweep");
        assert_eq!(
            Report::from_results(&a).to_csv(),
            Report::from_results(&b).to_csv(),
            "{}: shared report CSV drifted from unshared",
            case.name
        );
        assert!(b.prefix_groups >= 1, "{}: nothing shared", case.name);
        assert_eq!(
            b.prefix_forks, case.cells,
            "{}: not all cells forked",
            case.name
        );

        results.push(CaseResult {
            name: case.name.to_string(),
            cells: case.cells,
            shared_prefixes: b.prefix_groups,
            forks: b.prefix_forks,
            jobs,
            samples,
            unshared_median_ms: unshared_ms,
            shared_median_ms: shared_ms,
            speedup: unshared_ms / shared_ms.max(1e-9),
        });
    }
    g.finish();

    let report = BenchReport {
        bench: "sweep_prefix".to_string(),
        cases: results,
    };
    for r in &report.cases {
        println!(
            "sweep_prefix/{:<18} unshared {:>8.2} ms  shared {:>8.2} ms  speedup {:>5.2}x  ({} prefixes -> {} forks)",
            r.name, r.unshared_median_ms, r.shared_median_ms, r.speedup, r.shared_prefixes, r.forks
        );
    }
    // Default to the workspace root so the committed baseline refreshes
    // in place regardless of cargo's bench working directory.
    let path = std::env::var("SRAPS_BENCH_SWEEP_PREFIX_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_prefix.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_sweep_prefix.json");
    println!("sweep_prefix: baseline written to {path}");
}

criterion_group!(sweep_prefix, bench_sweep_prefix);
criterion_main!(sweep_prefix);
