//! Ablation benches for the design choices §3.2 calls out:
//!
//! 1. **Prepopulation on/off** (footnote 2): ignoring jobs running at the
//!    window start distorts the warm-up period.
//! 2. **Exact-placement replay vs free placement** (§3.2.3): the overhaul
//!    enforced recorded node placement in replay mode.
//! 3. **Backfill ladder** (none → first-fit → EASY): utilization and
//!    fairness cost of each rung.
//! 4. **Missing-telemetry rule** (§3.2.2): last-known-value vs zero-fill
//!    when a trace ends before the job (capture-window edge).

use sraps_bench::{check, header};
use sraps_core::{Engine, SimConfig};
use sraps_data::{marconi100, scenario, WorkloadSpec};
use sraps_systems::presets;
use sraps_types::{SimDuration, SimTime, Trace};

fn main() {
    header(
        "ablations",
        "Design-choice ablations from §3.2 + extensions",
    );

    ablate_prepopulation();
    ablate_exact_placement();
    ablate_backfill_ladder();
    ablate_missing_telemetry();
    ablate_power_cap();
    ablate_walltime_correction();
    ablate_outages();
}

/// 1: simulate a mid-dataset window with and without the jobs that were
/// already running (the "without" variant drops them, as naive scheduling
/// simulators do), and measure the warm-up distortion.
fn ablate_prepopulation() {
    println!("\n-- prepopulation (footnote 2) --");
    let cfg = presets::marconi100();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.9, 7);
    spec.span = SimDuration::hours(10);
    let ds = marconi100::synthesize(&cfg, &spec);
    let start = SimTime::seconds(5 * 3600);
    let end = start + SimDuration::hours(2);

    let with = Engine::new(SimConfig::replay(cfg.clone()).with_window(start, end), &ds)
        .unwrap()
        .run()
        .unwrap();

    // Without: drop every job already started before the window (what a
    // cold-started simulator sees).
    let mut cold = ds.clone();
    cold.jobs.retain(|j| j.recorded_start >= start);
    let without = Engine::new(SimConfig::replay(cfg).with_window(start, end), &cold)
        .unwrap()
        .run()
        .unwrap();

    let u_with = with.utilization[0];
    let u_without = without.utilization[0];
    println!("  first-tick utilization: prepopulated {u_with:.2} vs cold {u_without:.2}");
    check(
        "prepopulation avoids the cold-start utilization hole",
        u_with > u_without + 0.05,
    );
    println!(
        "  mean power: prepopulated {:.0} kW vs cold {:.0} kW",
        with.mean_power_kw(),
        without.mean_power_kw()
    );
}

/// 2: replay with recorded placements vs count-based placement — occupancy
/// is identical, but placement fidelity (node-level agreement) differs.
fn ablate_exact_placement() {
    println!("\n-- exact-placement replay (§3.2.3) --");
    // Marconi100: a trace dataset that publishes node placements.
    let cfg = presets::marconi100();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.6, 9);
    spec.span = SimDuration::hours(4);
    let ds = marconi100::synthesize(&cfg, &spec);

    let exact = Engine::new(SimConfig::replay(cfg.clone()), &ds)
        .unwrap()
        .run()
        .unwrap();
    // Free placement: strip the recorded node sets.
    let mut stripped = ds.clone();
    for j in &mut stripped.jobs {
        j.recorded_nodes = None;
    }
    let free = Engine::new(SimConfig::replay(cfg), &stripped)
        .unwrap()
        .run()
        .unwrap();

    println!(
        "  placement fallbacks: exact {} vs free {} (free always re-derives)",
        exact.sched_stats.placement_fallbacks, free.sched_stats.placement_fallbacks
    );
    check(
        "recorded placements honored without fallbacks on a feasible trace",
        exact.sched_stats.placement_fallbacks == 0,
    );
    check(
        "facility power unchanged by placement choice (occupancy-level model)",
        (exact.mean_power_kw() - free.mean_power_kw()).abs() / exact.mean_power_kw() < 0.01,
    );
}

/// 3: the backfill ladder on the saturated Fig 4 window.
fn ablate_backfill_ladder() {
    println!("\n-- backfill ladder (none → first-fit → easy) --");
    let s = scenario::fig4(7);
    let run = |backfill: &str| {
        let sim = SimConfig::new(s.config.clone(), "fcfs", backfill)
            .unwrap()
            .with_window(s.sim_start, s.sim_end);
        Engine::new(sim, &s.dataset).unwrap().run().unwrap()
    };
    let none = run("none");
    let ff = run("firstfit");
    let easy = run("easy");
    for out in [&none, &ff, &easy] {
        println!(
            "  {:<14} util {:>5.1}%  wait {:>6.0}s  AWRT {:>7.0}s  backfilled {}",
            out.label,
            out.mean_utilization() * 100.0,
            out.stats.avg_wait_secs(),
            out.stats.area_weighted_response_time(),
            out.sched_stats.backfilled
        );
    }
    check(
        "any backfill beats none on utilization",
        ff.mean_utilization() >= none.mean_utilization()
            && easy.mean_utilization() >= none.mean_utilization(),
    );
    // EASY's guarantee is *reservation protection* for wide jobs: under
    // plain first-fit a wide job can starve behind an endless stream of
    // narrow fills. Compare the wide-job experience directly.
    let wide_cut = s.config.total_nodes / 20; // ≥5 % of the machine
    let wide_stats = |o: &sraps_core::SimOutput| {
        let waits: Vec<f64> = o
            .outcomes
            .iter()
            .filter(|x| x.nodes >= wide_cut)
            .map(|x| x.wait().as_secs_f64())
            .collect();
        let n = waits.len();
        let mean = waits.iter().sum::<f64>() / n.max(1) as f64;
        (n, mean)
    };
    let (n_ff, wait_ff) = wide_stats(&ff);
    let (n_easy, wait_easy) = wide_stats(&easy);
    println!(
        "  wide jobs (≥{wide_cut} nodes): firstfit {n_ff} done, mean wait {wait_ff:.0}s; easy {n_easy} done, mean wait {wait_easy:.0}s"
    );
    check(
        "EASY protects wide jobs (completes at least as many, or they wait less)",
        n_easy > n_ff || (n_easy == n_ff && wait_easy <= wait_ff * 1.05),
    );
}

/// 4: the §3.2.2 missing-data rule. Jobs whose traces stop early keep
/// drawing the last known power; zero-filling instead under-reports energy.
fn ablate_missing_telemetry() {
    println!("\n-- missing-telemetry rule (last-known-value vs zero-fill) --");
    let cfg = presets::marconi100();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.5, 11);
    spec.span = SimDuration::hours(3);
    let mut ds = marconi100::synthesize(&cfg, &spec);
    // Truncate every power trace to its first half (simulating telemetry
    // that stops at the capture boundary).
    let mut zero_ds = ds.clone();
    for (jobs, zero) in [(&mut ds.jobs, false), (&mut zero_ds.jobs, true)] {
        for j in jobs.iter_mut() {
            if let Some(t) = &mut j.telemetry.node_power_w {
                let half = (t.len() / 2).max(1);
                let mut values: Vec<f32> = t.values[..half].to_vec();
                if zero {
                    // Zero-fill variant: pad explicitly with zeros.
                    values.resize(t.len(), 0.0);
                }
                *t = Trace::new(t.t0, t.dt, values);
            }
        }
    }
    let run = |ds: &sraps_data::Dataset| {
        Engine::new(SimConfig::replay(cfg.clone()), ds)
            .unwrap()
            .run()
            .unwrap()
    };
    let lkv = run(&ds);
    let zero = run(&zero_ds);
    println!(
        "  mean power: last-known-value {:.0} kW vs zero-fill {:.0} kW",
        lkv.mean_power_kw(),
        zero.mean_power_kw()
    );
    check(
        "zero-fill underestimates facility power vs the paper's rule",
        zero.mean_power_kw() < lkv.mean_power_kw(),
    );
}

/// 5 (extension): the energy-aware power cap. Capping schedulable job
/// power clips the peaks the paper's Fig 7 forecasts, trading wait time.
fn ablate_power_cap() {
    println!("\n-- power cap (energy-aware scheduling, §4.2.2 discussion) --");
    let s = scenario::fig4(13);
    let run = |cap: Option<f64>| {
        let mut sim = SimConfig::new(s.config.clone(), "fcfs", "firstfit")
            .unwrap()
            .with_window(s.sim_start, s.sim_end);
        if let Some(kw) = cap {
            sim = sim.with_power_cap(kw);
        }
        Engine::new(sim, &s.dataset).unwrap().run().unwrap()
    };
    let free = run(None);
    let idle_kw = s.config.idle_it_power_kw();
    let peak_job_kw = free.peak_power_kw() - idle_kw;
    let capped = run(Some(peak_job_kw * 0.7));
    println!(
        "  peak power: uncapped {:.0} kW vs capped {:.0} kW (cap {:.0} kW over idle {:.0})",
        free.peak_power_kw(),
        capped.peak_power_kw(),
        peak_job_kw * 0.7,
        idle_kw
    );
    println!(
        "  avg wait:   uncapped {:.0}s vs capped {:.0}s",
        free.stats.avg_wait_secs(),
        capped.stats.avg_wait_secs()
    );
    check(
        "cap clips the power peak",
        capped.peak_power_kw() < free.peak_power_kw() * 0.97,
    );
    check(
        "capping trades wait time for the peak",
        capped.stats.avg_wait_secs() >= free.stats.avg_wait_secs(),
    );
}

/// 6 (extension): walltime-estimate correction (§5 future work). Tighter
/// estimates shrink EASY's shadow times, admitting more backfills.
fn ablate_walltime_correction() {
    println!("\n-- walltime correction (fingerprinting/prediction, §5) --");
    use sraps_ml::WalltimeModel;
    let s = scenario::fig4(17);
    let run = |ds: &sraps_data::Dataset| {
        let sim = SimConfig::new(s.config.clone(), "fcfs", "easy")
            .unwrap()
            .with_window(s.sim_start, s.sim_end);
        Engine::new(sim, ds).unwrap().run().unwrap()
    };
    let raw = run(&s.dataset);
    // Train on the day before the window, correct the whole dataset.
    let history: Vec<sraps_types::Job> = s
        .dataset
        .jobs
        .iter()
        .filter(|j| j.recorded_end <= s.sim_start)
        .cloned()
        .collect();
    let model = WalltimeModel::fit(&history, 1.3).expect("enough history");
    let mut corrected_ds = s.dataset.clone();
    let tightened = model.apply(&mut corrected_ds.jobs);
    let corrected = run(&corrected_ds);
    // Prediction quality vs the raw user over-request.
    let mae = model.mae_secs(&history);
    let raw_mae: f64 = history
        .iter()
        .map(|j| (j.estimate().as_secs_f64() - j.duration().as_secs_f64()).abs())
        .sum::<f64>()
        / history.len().max(1) as f64;
    println!(
        "  model MAE {mae:.0}s vs raw over-request MAE {raw_mae:.0}s on {} history jobs; {tightened} estimates tightened",
        history.len()
    );
    println!(
        "  backfilled: raw {} vs corrected {};  avg wait {:.0}s vs {:.0}s",
        raw.sched_stats.backfilled,
        corrected.sched_stats.backfilled,
        raw.stats.avg_wait_secs(),
        corrected.stats.avg_wait_secs()
    );
    println!(
        "  (note: tighter estimates shrink EASY's shadow windows; the net\n\
         scheduling effect is workload-dependent — the classic Mu'alem &\n\
         Feitelson result that padded estimates can *help* backfill)"
    );
    check(
        &format!("prediction beats raw over-request (MAE {mae:.0}s vs {raw_mae:.0}s)"),
        mae < raw_mae,
    );
    check(
        "both estimate regimes complete comparable work",
        (corrected.stats.jobs_completed as f64 - raw.stats.jobs_completed as f64).abs()
            / (raw.stats.jobs_completed.max(1) as f64)
            < 0.1,
    );
}

/// 7 (extension): node outages — the accuracy gap the paper flags. A
/// mid-window outage must dent utilization and power.
fn ablate_outages() {
    println!("\n-- node outages (down/drained nodes, §4.1 footnote) --");
    let cfg = presets::adastra();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.9, 19);
    spec.span = SimDuration::hours(8);
    let ds = sraps_data::adastra::synthesize(&cfg, &spec);
    let outage = sraps_core::Outage {
        nodes: sraps_types::NodeSet::contiguous(0, cfg.total_nodes / 2),
        from: SimTime::seconds(3 * 3600),
        until: SimTime::seconds(5 * 3600),
    };
    let run = |outages: Vec<sraps_core::Outage>| {
        let sim = SimConfig::new(cfg.clone(), "fcfs", "easy")
            .unwrap()
            .with_outages(outages);
        Engine::new(sim, &ds).unwrap().run().unwrap()
    };
    let healthy = run(vec![]);
    let degraded = run(vec![outage]);
    println!(
        "  mean power: healthy {:.0} kW vs degraded {:.0} kW; completed {} vs {}",
        healthy.mean_power_kw(),
        degraded.mean_power_kw(),
        healthy.stats.jobs_completed,
        degraded.stats.jobs_completed
    );
    check(
        "outage reduces work completed in the window",
        degraded.stats.jobs_completed <= healthy.stats.jobs_completed,
    );
}
