//! Fig 6: the Frontier day with three 9216-node full-system runs, with the
//! cooling model — utilization, power, PUE, and cooling-tower return
//! temperature for replay / fcfs-nobf / fcfs-easy / priority-ffbf.
//!
//! Paper's observations to reproduce:
//! * the system drains to make room, then runs the three giants;
//! * rescheduling starts the giants earlier than replay;
//! * backfilled policies reach higher utilization while draining;
//! * backfill smooths the power (and return-temperature) jump after the
//!   giants.

use sraps_bench::{
    check, downsample, header, print_series_block, run_pairs, sparkline, write_csvs,
};
use sraps_core::SimOutput;
use sraps_data::scenario;
use sraps_types::SimTime;

fn main() {
    // Half-scale Frontier keeps the full dynamics (giants at 96 % of the
    // machine) at a tractable trace-generation cost; EXPERIMENTS.md records
    // the scaling rationale.
    let s = scenario::fig6_scaled(42, 0.5);
    header(
        "fig6",
        "Frontier day with 3 full-system runs (cooling model on)",
    );
    println!(
        "workload: {} jobs on {} nodes; giants of {} nodes\n",
        s.dataset.len(),
        s.config.total_nodes,
        s.dataset
            .jobs
            .iter()
            .map(|j| j.nodes_requested)
            .max()
            .unwrap()
    );

    let runs = [
        ("replay", "none"),
        ("fcfs", "none"),
        ("fcfs", "easy"),
        ("priority", "firstfit"),
    ];
    let outputs: Vec<SimOutput> = run_pairs(&s, &runs, true);
    for out in &outputs {
        print_series_block(out, 72);
        let pue: Vec<f64> = out.cooling.iter().map(|c| c.pue).collect();
        let temp: Vec<f64> = out.cooling.iter().map(|c| c.tower_return_c).collect();
        println!(
            "  {:<24} PUE         {}  (mean {:>6.3})",
            "",
            sparkline(&downsample(&pue, 72)),
            pue.iter().sum::<f64>() / pue.len() as f64
        );
        println!(
            "  {:<24} return [°C] {}  (peak {:>6.2})",
            "",
            sparkline(&downsample(&temp, 72)),
            temp.iter().cloned().fold(0.0, f64::max)
        );
        write_csvs("fig6", out);
    }

    let replay = &outputs[0];
    let nobf = &outputs[1];
    let easy = &outputs[2];

    let giant = s
        .dataset
        .jobs
        .iter()
        .map(|j| j.nodes_requested)
        .max()
        .unwrap();
    let first_giant = |o: &SimOutput| -> Option<SimTime> {
        o.outcomes
            .iter()
            .filter(|x| x.nodes == giant)
            .map(|x| x.start)
            .min()
    };

    println!();
    let starts: Vec<Option<SimTime>> = outputs.iter().map(first_giant).collect();
    for (out, st) in outputs.iter().zip(&starts) {
        match st {
            Some(t) => println!("  first giant start under {:<20} t={t}", out.label),
            None => println!(
                "  first giant start under {:<20} (not completed in window)",
                out.label
            ),
        }
    }
    let resched_min = starts[1..].iter().flatten().min().copied();
    match (starts[0], resched_min) {
        (Some(r), Some(e)) => check(
            &format!("rescheduling starts giants no later than replay ({e} vs {r})"),
            e <= r,
        ),
        _ => check("giants completed in replay and a rescheduled run", false),
    }
    check(
        &format!(
            "backfill lifts utilization while draining ({:.1}% vs replay {:.1}%)",
            easy.mean_utilization() * 100.0,
            replay.mean_utilization() * 100.0
        ),
        easy.mean_utilization() >= replay.mean_utilization(),
    );
    check(
        &format!(
            "backfill smooths the post-giant power jump (nobf swing {:.0} kW vs easy {:.0} kW)",
            nobf.max_power_swing_kw(),
            easy.max_power_swing_kw()
        ),
        easy.max_power_swing_kw() <= nobf.max_power_swing_kw() * 1.05,
    );
    let pue_band = |o: &SimOutput| {
        let lo = o
            .cooling
            .iter()
            .map(|c| c.pue)
            .fold(f64::INFINITY, f64::min);
        let hi = o.cooling.iter().map(|c| c.pue).fold(0.0, f64::max);
        (lo, hi)
    };
    let (lo, hi) = pue_band(replay);
    check(
        &format!("PUE in the paper's band and responsive ({lo:.3}..{hi:.3} vs paper ≈1.1–1.3)"),
        lo > 1.0 && hi < 1.5 && hi - lo > 0.001,
    );
    let run_pue = replay.run_pue().unwrap_or(0.0);
    check(
        &format!(
            "run-level PUE near the facility's reported average ({run_pue:.3} vs Frontier ≈1.06)"
        ),
        run_pue > 1.0 && run_pue < 1.25,
    );
    let temp_peak = |o: &SimOutput| {
        o.cooling
            .iter()
            .map(|c| c.tower_return_c)
            .fold(0.0, f64::max)
    };
    check(
        &format!(
            "return water responds to the giants (replay peak {:.1} °C vs nobf {:.1} °C)",
            temp_peak(replay),
            temp_peak(nobf)
        ),
        temp_peak(replay) > 24.0,
    );
}
