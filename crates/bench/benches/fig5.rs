//! Fig 5: replay and reschedule of 15 days of Adastra (full dataset) —
//! at moderate load all rescheduled policies overlap almost exactly, and
//! with known job power profiles the simulator's power tracks the replay's
//! up/down swings.

use sraps_bench::{check, header, print_series_block, run_pairs, write_csvs};
use sraps_core::SimOutput;
use sraps_data::scenario;

fn main() {
    let s = scenario::fig5(42);
    header(
        "fig5",
        "Adastra 15 days: replay vs reschedule at moderate load",
    );
    println!(
        "workload: {} jobs on {} nodes over 15 days\n",
        s.dataset.len(),
        s.config.total_nodes
    );

    let runs = [
        ("replay", "none"),
        ("fcfs", "none"),
        ("fcfs", "easy"),
        ("priority", "firstfit"),
    ];
    let outputs: Vec<SimOutput> = run_pairs(&s, &runs, false);
    for out in &outputs {
        print_series_block(out, 90);
        write_csvs("fig5", out);
    }

    let replay = &outputs[0];
    let rescheduled = &outputs[1..];

    println!();
    let max_rel = rescheduled
        .iter()
        .flat_map(|a| {
            rescheduled
                .iter()
                .map(move |b| (a.mean_power_kw() - b.mean_power_kw()).abs() / a.mean_power_kw())
        })
        .fold(0.0, f64::max);
    check(
        &format!(
            "rescheduled policies overlap (max mean-power spread {:.2}%)",
            max_rel * 100.0
        ),
        max_rel < 0.05,
    );
    // Power tracking: correlation between replay and fcfs power series.
    let a: Vec<f64> = replay.power.iter().map(|p| p.total_kw).collect();
    let b: Vec<f64> = rescheduled[0].power.iter().map(|p| p.total_kw).collect();
    let n = a.len().min(b.len());
    let (ma, mb) = (
        a[..n].iter().sum::<f64>() / n as f64,
        b[..n].iter().sum::<f64>() / n as f64,
    );
    let (mut cov, mut va, mut vb) = (0.0, 0.0, 0.0);
    for i in 0..n {
        cov += (a[i] - ma) * (b[i] - mb);
        va += (a[i] - ma) * (a[i] - ma);
        vb += (b[i] - mb) * (b[i] - mb);
    }
    let corr = cov / (va.sqrt() * vb.sqrt()).max(1e-12);
    check(
        &format!("simulated power tracks replay swings (corr {corr:.3})"),
        corr > 0.7,
    );
    check(
        &format!(
            "headroom: utilization stays below saturation ({:.1}%)",
            replay.mean_utilization() * 100.0
        ),
        replay.mean_utilization() < 0.9,
    );
}
