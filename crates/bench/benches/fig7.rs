//! Fig 7: the FastSim→RAPS sequential integration on a synthetic Frontier
//! trace (5 324 jobs / 15 days): FastSim schedules, RAPS replays the
//! schedule and computes the resource usage over time — showing the
//! Tuesday-morning dip followed by a spike, and the ≫real-time speedup
//! (paper: 31 min 24 s for 15 days ⇒ 688×).

use sraps_bench::{check, downsample, header, results_dir, sparkline};
use sraps_core::{Engine, SimConfig};
use sraps_data::scenario;
use sraps_extsched::{ExtJob, FastSim};
use sraps_sched::QueuedJob;
use sraps_types::SimTime;

fn main() {
    let s = scenario::fig7(42, 0.5);
    header(
        "fig7",
        "FastSim-scheduled synthetic Frontier trace, replayed in RAPS",
    );
    println!(
        "workload: {} jobs over 15 days on {} nodes\n",
        s.dataset.len(),
        s.config.total_nodes
    );

    // Stage 1: FastSim schedules the full trace (sequential mode).
    let ext_jobs: Vec<ExtJob> = s
        .dataset
        .jobs
        .iter()
        .map(|j| ExtJob {
            job: QueuedJob {
                id: j.id,
                account: j.account,
                submit: j.submit,
                nodes: j.nodes_requested,
                estimate: j.estimate(),
                priority: j.priority,
                ml_score: None,
                recorded_start: j.recorded_start,
                recorded_nodes: j.recorded_nodes.clone(),
            },
            duration: j.duration(),
        })
        .collect();
    let wall = std::time::Instant::now();
    let (starts, fstats) = FastSim::run_trace(s.config.total_nodes, ext_jobs);
    let fastsim_wall = wall.elapsed();
    println!(
        "fastsim: {} jobs scheduled in {:.2?} ({} events, {} passes)",
        starts.len(),
        fastsim_wall,
        fstats.events_processed,
        fstats.scheduling_passes
    );

    // Stage 2: transform FastSim output into the RAPS dataloader format
    // (the artifact's transform_data.py step).
    let mut rescheduled = s.dataset.clone();
    let by_id: std::collections::HashMap<_, SimTime> =
        starts.iter().map(|st| (st.job, st.start)).collect();
    for j in &mut rescheduled.jobs {
        if let Some(&start) = by_id.get(&j.id) {
            let dur = j.duration();
            j.recorded_start = start;
            j.recorded_end = start + dur;
            j.recorded_nodes = None;
        }
    }

    // Stage 3: RAPS replays the FastSim schedule.
    let sim = SimConfig::replay(s.config.clone()).with_window(s.sim_start, s.sim_end);
    let out = Engine::new(sim, &rescheduled)
        .expect("engine")
        .run()
        .expect("run");
    let series: Vec<f64> = out.power.iter().map(|p| p.total_kw).collect();
    println!("\n  power [kW] {}", sparkline(&downsample(&series, 90)));
    std::fs::write(results_dir("fig7").join("power.csv"), out.power_csv()).expect("csv");

    // Checks: the dip-then-spike and the speedup.
    let day = 86_400;
    let mean_in = |from: i64, to: i64| {
        let mut sum = 0.0;
        let mut n = 0usize;
        for (t, p) in out.times.iter().zip(&out.power) {
            if (from..to).contains(&t.as_secs()) {
                sum += p.total_kw;
                n += 1;
            }
        }
        sum / n.max(1) as f64
    };
    let lull = mean_in(8 * day, 8 * day + 6 * 3600);
    let spike = mean_in(8 * day + 8 * 3600, 8 * day + 14 * 3600);
    println!();
    check(
        &format!("Tuesday-morning dip → spike (overnight {lull:.0} kW, morning {spike:.0} kW)"),
        spike > lull * 1.05,
    );
    let total_wall = fastsim_wall + out.wall_time;
    let speedup = out.sim_span.as_secs_f64() / total_wall.as_secs_f64();
    check(
        &format!(
            "simulation ≫ real time: 15 days in {:.2?} ⇒ {:.0}× (paper: 688×)",
            total_wall, speedup
        ),
        speedup > 100.0,
    );
    check(
        &format!(
            "all jobs scheduled by FastSim ({} of {})",
            starts.len(),
            s.dataset.len()
        ),
        starts.len() == s.dataset.len(),
    );
}
