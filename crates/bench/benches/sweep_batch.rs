//! Batched-sweep throughput benchmark: cells/second on a 1000-cell
//! same-system matrix, per-cell vs batched (`SweepOptions::batch`),
//! plus a harness that writes `BENCH_sweep_batch.json` — the repo's
//! perf-trajectory baseline for lane-grouped multi-sim execution.
//! Re-run after engine/runner changes and commit the refreshed JSON:
//!
//! ```sh
//! cargo bench -p sraps-bench --bench sweep_batch
//! ```
//!
//! The matrix is the batched path's home turf and a realistic study
//! shape: one hundred 1-hour windows marching through one shared
//! 60-day trace (windowed replay of recorded segments — the paper's
//! telemetry datasets span months), crossed with a 10-way policy ×
//! backfill grid, one lane group per window. Per-cell execution
//! rebuilds the window — scan the full trace and clone the in-window
//! jobs — a thousand times; batched execution builds it once per lane
//! group and shares it across ten engines, so per-cell cost collapses
//! to the window's own simulation. Conservative backfill and power
//! caps are deliberately absent from the grid: both are per-lane
//! policy work (planner cost and cap-deferral scheduler churn,
//! tracked by the scheduler micro-benches) that would drown the
//! execution-path difference this bench isolates.
//!
//! `SRAPS_BENCH_SMOKE=1` runs one sample per case (CI smoke);
//! `SRAPS_BENCH_SWEEP_BATCH_OUT` overrides the JSON path (default
//! `BENCH_sweep_batch.json` at the workspace root).

use criterion::{criterion_group, criterion_main, Criterion};
use serde::Serialize;
use sraps_data::{lassen, WorkloadSpec};
use sraps_exp::{ExperimentMatrix, PrebuiltWorkload, Report, SweepOptions, SweepRunner};
use sraps_systems::presets;
use sraps_types::{SimDuration, SimTime};
use std::sync::Arc;
use std::time::Instant;

const JOBS: usize = 4;

/// One hundred 1 h windows over one shared 60-day lassen trace, × 10
/// policy:backfill pairs = 1000 cells.
fn matrix() -> ExperimentMatrix {
    let cfg = presets::lassen();
    let mut spec = WorkloadSpec::for_system(&cfg, 0.7, 42);
    spec.span = SimDuration::days(60);
    let dataset = Arc::new(lassen::synthesize(&cfg, &spec));
    let windows: Vec<PrebuiltWorkload> = (0..100)
        .map(|w| {
            // One window every 14 h, marching through the trace.
            let start = SimTime::seconds(6 * 3_600 + w * 14 * 3_600);
            PrebuiltWorkload {
                label: format!("lassen-w{w:02}"),
                config: cfg.clone(),
                dataset: Arc::clone(&dataset),
                window: Some((start, start + SimDuration::hours(1))),
            }
        })
        .collect();
    ExperimentMatrix::scenarios(windows)
        .policies(["fcfs", "sjf", "ljf", "priority", "priority_aging"])
        .backfills(["firstfit", "easy"])
}

/// Median wall-time of `n` runs of `f`, in milliseconds.
fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let t = Instant::now();
            f();
            t.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[samples.len() / 2]
}

#[derive(Serialize)]
struct BenchReport {
    bench: String,
    cells: usize,
    jobs: usize,
    samples: usize,
    batch_max_lanes: usize,
    percell_median_ms: f64,
    batched_median_ms: f64,
    percell_cells_per_sec: f64,
    batched_cells_per_sec: f64,
    /// batched / per-cell throughput.
    speedup: f64,
}

fn smoke() -> bool {
    std::env::var_os("SRAPS_BENCH_SMOKE").is_some()
}

fn bench_sweep_batch(c: &mut Criterion) {
    let samples = if smoke() { 1 } else { 5 };
    let m = matrix();
    let cells = m.cell_count();
    let opts = SweepOptions::new().metrics_only(true);
    let percell = SweepRunner::with_options(JOBS, opts.clone());
    let batched = SweepRunner::with_options(JOBS, opts.batch(true));

    // Byte-parity drift guard: a faster sweep that changed any report
    // byte would be measuring a different experiment. (Also warms the
    // dataset materialization both timed paths share.)
    let a = percell.run(&m).expect("per-cell sweep");
    let b = batched.run(&m).expect("batched sweep");
    assert_eq!(
        Report::from_results(&a).to_csv(),
        Report::from_results(&b).to_csv(),
        "batched report CSV drifted from per-cell"
    );
    assert_eq!(
        Report::from_results(&a).to_json(),
        Report::from_results(&b).to_json(),
        "batched report JSON drifted from per-cell"
    );
    drop((a, b));

    let mut g = c.benchmark_group("sweep_batch");
    g.sample_size(samples.max(2));
    g.bench_function("batched_1000_cells", |bch| {
        bch.iter(|| criterion::black_box(batched.run(&m).unwrap()))
    });
    g.finish();

    let percell_ms = median_ms(samples, || {
        criterion::black_box(percell.run(&m).unwrap());
    });
    let batched_ms = median_ms(samples, || {
        criterion::black_box(batched.run(&m).unwrap());
    });

    let report = BenchReport {
        bench: "sweep_batch".to_string(),
        cells,
        jobs: JOBS,
        samples,
        batch_max_lanes: sraps_exp::DEFAULT_BATCH_MAX_LANES,
        percell_median_ms: percell_ms,
        batched_median_ms: batched_ms,
        percell_cells_per_sec: cells as f64 / (percell_ms / 1e3).max(1e-9),
        batched_cells_per_sec: cells as f64 / (batched_ms / 1e3).max(1e-9),
        speedup: percell_ms / batched_ms.max(1e-9),
    };
    println!(
        "sweep_batch: {} cells  per-cell {:>8.1} ms ({:>7.0} cells/s)  batched {:>8.1} ms ({:>7.0} cells/s)  speedup {:.2}x",
        report.cells,
        report.percell_median_ms,
        report.percell_cells_per_sec,
        report.batched_median_ms,
        report.batched_cells_per_sec,
        report.speedup
    );
    // Default to the workspace root so the committed baseline refreshes
    // in place regardless of cargo's bench working directory.
    let path = std::env::var("SRAPS_BENCH_SWEEP_BATCH_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sweep_batch.json").to_string()
    });
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&path, json + "\n").expect("write BENCH_sweep_batch.json");
    println!("sweep_batch: baseline written to {path}");
}

criterion_group!(sweep_batch, bench_sweep_batch);
criterion_main!(sweep_batch);
