//! Fig 10: ML-guided scheduling on Fugaku/F-Data — (a) power per timestep
//! for sjf/fcfs/ljf/priority/ml across the low→high load transition, and
//! (b) the L2-normalized multi-objective comparison (lower is better).
//!
//! Paper's observations to reproduce:
//! * under low load all policies overlap (jobs start immediately);
//! * under high load the ML policy cuts power spikes by preferring small
//!   jobs, and wins or ties the wait/turnaround/energy trade-off.

use sraps_bench::{check, downsample, header, results_dir, run_pairs, sparkline, write_csvs};
use sraps_core::SimOutput;
use sraps_data::scenario;
use sraps_ml::{MlPipeline, PipelineConfig};
use sraps_types::SimTime;

fn main() {
    // Fugaku scaled to 4096 nodes (158 976 is memory-hostile for a laptop
    // bench; load fractions and the low/high phases are preserved).
    let mut s = scenario::fig10(42, 4096.0 / 158_976.0);
    header("fig10", "ML-guided scheduling on Fugaku (low→high load)");
    println!(
        "workload: {} jobs on {} nodes over 7 days\n",
        s.dataset.len(),
        s.config.total_nodes
    );

    // Train on the first two (low-load) days; annotate everything.
    let split = SimTime::seconds(2 * 86_400);
    let history: Vec<sraps_types::Job> = s
        .dataset
        .jobs
        .iter()
        .filter(|j| j.recorded_end <= split)
        .cloned()
        .collect();
    let t0 = std::time::Instant::now();
    let pipeline = MlPipeline::train(&history, PipelineConfig::default()).expect("train");
    println!(
        "pipeline: trained on {} jobs in {:.2?}; {} clusters; static→cluster accuracy {:.1}%\n",
        history.len(),
        t0.elapsed(),
        pipeline.n_clusters(),
        pipeline.classifier_accuracy(&history) * 100.0
    );
    pipeline.annotate(&mut s.dataset.jobs);

    let policies = ["sjf", "fcfs", "ljf", "priority", "ml"];
    let pairs: Vec<(&str, &str)> = policies.iter().map(|&p| (p, "firstfit")).collect();
    let outputs: Vec<SimOutput> = run_pairs(&s, &pairs, false);

    // --- Fig 10(a): power vs time. -----------------------------------
    println!("fig10a — power [kW] per policy:");
    for out in &outputs {
        let series: Vec<f64> = out.power.iter().map(|p| p.total_kw).collect();
        println!(
            "  {:<20} {}",
            out.label,
            sparkline(&downsample(&series, 84))
        );
        write_csvs("fig10", out);
    }

    let day = 86_400;
    let phase_stats = |out: &SimOutput, from: i64, to: i64| -> (f64, f64) {
        let vals: Vec<f64> = out
            .times
            .iter()
            .zip(&out.power)
            .filter(|(t, _)| (from..to).contains(&t.as_secs()))
            .map(|(_, p)| p.total_kw)
            .collect();
        let mean = vals.iter().sum::<f64>() / vals.len().max(1) as f64;
        let peak = vals.iter().cloned().fold(0.0, f64::max);
        (mean, peak)
    };
    let fcfs = &outputs[1];
    let ml = &outputs[4];
    let (low_f, _) = phase_stats(fcfs, 0, day);
    let (low_m, _) = phase_stats(ml, 0, day);
    let (_, high_peak_f) = phase_stats(fcfs, 3 * day, 7 * day);
    let (_, high_peak_m) = phase_stats(ml, 3 * day, 7 * day);

    println!();
    check(
        &format!("policies overlap under low load (fcfs {low_f:.0} kW vs ml {low_m:.0} kW, day 1)"),
        (low_f - low_m).abs() / low_f < 0.02,
    );
    check(
        &format!(
            "ml holds peak power at or below fcfs under high load ({high_peak_m:.0} vs {high_peak_f:.0} kW)"
        ),
        high_peak_m <= high_peak_f * 1.03,
    );

    // --- Fig 10(b): L2-normalized objectives (lower is better). -------
    let stats: Vec<&sraps_acct::SystemStats> = outputs.iter().map(|o| &o.stats).collect();
    let rows = sraps_acct::system_stats::l2_normalize_objectives(&stats);
    println!("\nfig10b — L2-normalized objectives (lower is better):");
    print!("{:<44}", "objective");
    for p in policies {
        print!("{p:>10}");
    }
    println!();
    let mut csv = String::from("objective,sjf,fcfs,ljf,priority,ml\n");
    for (j, (name, _)) in outputs[0].stats.objectives().iter().enumerate() {
        print!("{name:<44}");
        let mut line = name.to_string();
        for row in &rows {
            print!("{:>10.3}", row[j]);
            line.push_str(&format!(",{:.4}", row[j]));
        }
        println!();
        csv.push_str(&line);
        csv.push('\n');
    }
    std::fs::write(results_dir("fig10").join("fig10b.csv"), csv).expect("csv");

    println!();
    let ml_ix = 4;
    let wait = rows.iter().map(|r| r[0]).collect::<Vec<_>>();
    let turnaround = rows.iter().map(|r| r[1]).collect::<Vec<_>>();
    let best_wait = wait.iter().cloned().fold(f64::INFINITY, f64::min);
    check(
        &format!(
            "ml wait time at or near the best (ml {:.3}, best {:.3})",
            wait[ml_ix], best_wait
        ),
        wait[ml_ix] <= best_wait * 1.25,
    );
    check(
        &format!(
            "ml beats ljf and priority on turnaround ({:.3} vs {:.3} / {:.3})",
            turnaround[ml_ix], turnaround[2], turnaround[3]
        ),
        turnaround[ml_ix] <= turnaround[2] && turnaround[ml_ix] <= turnaround[3] * 1.1,
    );
}
