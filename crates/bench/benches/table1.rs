//! Table 1: systems and datasets used in the study — regenerated from the
//! presets and the synthetic dataset generators.

use sraps_bench::{check, header, results_dir};
use sraps_data::WorkloadSpec;
use sraps_systems::{presets, TelemetryFidelity};
use sraps_types::SimDuration;

/// Paper's job counts per dataset (Table 1), for the comparison column.
const PAPER_JOBS: &[(&str, u64)] = &[
    ("frontier", 1_238),
    ("marconi100", 231_238),
    ("fugaku", 116_977),
    ("lassen", 1_467_746),
    ("adastra", 30_570),
];

fn main() {
    header("table1", "Systems and datasets used in study");

    println!(
        "{:<12} {:<14} {:>8} {:<12} {:>12} {:>14}  Characteristics",
        "System", "Architecture", "Nodes", "Scheduler", "paper jobs", "synth jobs/d"
    );

    let mut rows = String::from(
        "system,architecture,nodes,scheduler,paper_jobs,synth_jobs_per_day,fidelity\n",
    );
    for &(name, paper_jobs) in PAPER_JOBS {
        let cfg = presets::system_by_name(name).expect("preset exists");
        // One synthetic day at the dataset's typical load, to report the
        // generator's scale (full job counts would just multiply by span).
        let load = match name {
            "marconi100" => 1.0,
            "adastra" => 0.55,
            _ => 0.8,
        };
        let gen_cfg = if cfg.total_nodes > 16_384 {
            cfg.scaled_to(8192)
        } else {
            cfg.clone()
        };
        let mut spec = WorkloadSpec::for_system(&gen_cfg, load, 1);
        spec.span = SimDuration::days(1);
        let jobs_per_day = spec.expected_jobs();
        let fidelity = match cfg.fidelity {
            TelemetryFidelity::Traces => format!("job traces ({}s)", cfg.trace_dt.as_secs()),
            TelemetryFidelity::Summary => "job summary".to_string(),
        };
        println!(
            "{:<12} {:<14} {:>8} {:<12} {:>12} {:>14.0}  {}",
            cfg.name,
            cfg.architecture,
            cfg.total_nodes,
            cfg.scheduler.site_scheduler,
            paper_jobs,
            jobs_per_day,
            fidelity
        );
        rows.push_str(&format!(
            "{},{},{},{},{},{:.0},{fidelity}\n",
            cfg.name,
            cfg.architecture,
            cfg.total_nodes,
            cfg.scheduler.site_scheduler,
            paper_jobs,
            jobs_per_day
        ));
    }
    std::fs::write(results_dir("table1").join("table1.csv"), rows).expect("write csv");

    println!();
    check(
        "node counts match Table 1 (9600/980/158976/792/356)",
        presets::frontier().total_nodes == 9600
            && presets::marconi100().total_nodes == 980
            && presets::fugaku().total_nodes == 158_976
            && presets::lassen().total_nodes == 792
            && presets::adastra().total_nodes == 356,
    );
    check(
        "fidelity classes match (traces: frontier+marconi100; summary: rest)",
        presets::frontier().fidelity == TelemetryFidelity::Traces
            && presets::marconi100().fidelity == TelemetryFidelity::Traces
            && presets::fugaku().fidelity == TelemetryFidelity::Summary,
    );
}
