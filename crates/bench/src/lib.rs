//! Shared harness for figure/table regeneration benches.
//!
//! Every paper element has a bench target that (1) runs the experiment,
//! (2) prints the series the figure plots (downsampled for terminals),
//! (3) writes full-resolution CSVs under `target/bench_results/<element>/`,
//! and (4) prints the qualitative checks the paper's text makes, each
//! marked `[ok]`/`[??]` so a regression is visible in `cargo bench` output.

use sraps_core::{Engine, SimConfig, SimOutput};
use sraps_data::scenario::Scenario;
use std::path::PathBuf;

/// Where CSV outputs land.
pub fn results_dir(element: &str) -> PathBuf {
    let dir = PathBuf::from("target").join("bench_results").join(element);
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    dir
}

/// Run one policy/backfill over a scenario (window applied).
pub fn run_policy(s: &Scenario, policy: &str, backfill: &str, cooling: bool) -> SimOutput {
    let mut sim = SimConfig::new(s.config.clone(), policy, backfill)
        .expect("valid policy/backfill")
        .with_window(s.sim_start, s.sim_end);
    if cooling {
        sim = sim.with_cooling();
    }
    Engine::new(sim, &s.dataset)
        .expect("engine builds")
        .run()
        .expect("run completes")
}

/// Write the standard CSV set for a run.
pub fn write_csvs(element: &str, out: &SimOutput) {
    let dir = results_dir(element);
    std::fs::write(dir.join(format!("{}-power.csv", out.label)), out.power_csv())
        .expect("write power csv");
    std::fs::write(dir.join(format!("{}-util.csv", out.label)), out.util_csv())
        .expect("write util csv");
    if !out.cooling.is_empty() {
        std::fs::write(
            dir.join(format!("{}-cooling.csv", out.label)),
            out.cooling_csv(),
        )
        .expect("write cooling csv");
    }
}

/// Downsample to at most `n` points (mean-pooled).
pub fn downsample(series: &[f64], n: usize) -> Vec<f64> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    let chunk = series.len().div_ceil(n);
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Terminal sparkline.
pub fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if series.is_empty() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    series
        .iter()
        .map(|&v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Print one run's series block (power, utilization) like the figures do.
pub fn print_series_block(out: &SimOutput, width: usize) {
    let power: Vec<f64> = out.power.iter().map(|p| p.total_kw).collect();
    println!(
        "  {:<24} power [kW]  {}  (mean {:>9.1}, peak {:>9.1})",
        out.label,
        sparkline(&downsample(&power, width)),
        out.mean_power_kw(),
        out.peak_power_kw()
    );
    println!(
        "  {:<24} util  [%]   {}  (mean {:>8.1}%)",
        "",
        sparkline(&downsample(&out.utilization, width)),
        out.mean_utilization() * 100.0
    );
}

/// Print a qualitative check line.
pub fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "??" });
}

/// Standard header for a bench report.
pub fn header(element: &str, description: &str) {
    println!("\n================================================================");
    println!("{element}: {description}");
    println!("================================================================");
}
