//! Shared harness for figure/table regeneration benches.
//!
//! Every paper element has a bench target that (1) runs the experiment,
//! (2) prints the series the figure plots (downsampled for terminals),
//! (3) writes full-resolution CSVs under `target/bench_results/<element>/`,
//! and (4) prints the qualitative checks the paper's text makes, each
//! marked `[ok]`/`[??]` so a regression is visible in `cargo bench` output.

use sraps_core::{Engine, SchedulerSelect, SimConfig, SimOutput};
use sraps_data::scenario::Scenario;
use sraps_exp::{ExperimentMatrix, SweepRunner};
use std::path::PathBuf;

/// Where CSV outputs land: `$SRAPS_RESULTS_DIR`, else
/// `$CARGO_TARGET_DIR/bench_results`, else `target/bench_results`.
pub fn results_dir(element: &str) -> PathBuf {
    let base = std::env::var_os("SRAPS_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            std::env::var_os("CARGO_TARGET_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|| PathBuf::from("target"))
                .join("bench_results")
        });
    let dir = base.join(element);
    std::fs::create_dir_all(&dir).expect("create bench_results dir");
    dir
}

/// Run one policy/backfill over a scenario (window applied).
pub fn run_policy(s: &Scenario, policy: &str, backfill: &str, cooling: bool) -> SimOutput {
    let mut sim = SimConfig::new(s.config.clone(), policy, backfill)
        .expect("valid policy/backfill")
        .with_window(s.sim_start, s.sim_end);
    if cooling {
        sim = sim.with_cooling();
    }
    Engine::new(sim, &s.dataset)
        .expect("engine builds")
        .run()
        .expect("run completes")
}

/// Run (policy, backfill) pairs over a scenario in parallel through the
/// sweep subsystem; outputs come back in pair order.
pub fn run_pairs(s: &Scenario, pairs: &[(&str, &str)], cooling: bool) -> Vec<SimOutput> {
    let mut matrix =
        ExperimentMatrix::scenario(s.clone()).pairs(pairs.iter().map(|&(p, b)| (p, b)));
    if cooling {
        matrix = matrix.with_cooling();
    }
    let results = SweepRunner::auto().run(&matrix).expect("sweep runs");
    results
        .cells
        .into_iter()
        .map(|c| c.output.expect("full-retention uncached sweep"))
        .collect()
}

/// Run incentive (redeeming-phase) policies over a scenario through the
/// experimental account scheduler, feeding it collection-phase accounts.
pub fn run_incentives(
    s: &Scenario,
    policies: &[&str],
    backfill: &str,
    accounts: sraps_acct::Accounts,
) -> Vec<SimOutput> {
    let matrix = ExperimentMatrix::scenario(s.clone())
        .pairs(policies.iter().map(|&p| (p, backfill)))
        .scheduler(SchedulerSelect::Experimental)
        .accounts_in(accounts);
    let results = SweepRunner::auto().run(&matrix).expect("sweep runs");
    results
        .cells
        .into_iter()
        .map(|c| c.output.expect("full-retention uncached sweep"))
        .collect()
}

/// Write the standard CSV set for a run.
pub fn write_csvs(element: &str, out: &SimOutput) {
    let dir = results_dir(element);
    std::fs::write(
        dir.join(format!("{}-power.csv", out.label)),
        out.power_csv(),
    )
    .expect("write power csv");
    std::fs::write(dir.join(format!("{}-util.csv", out.label)), out.util_csv())
        .expect("write util csv");
    if !out.cooling.is_empty() {
        std::fs::write(
            dir.join(format!("{}-cooling.csv", out.label)),
            out.cooling_csv(),
        )
        .expect("write cooling csv");
    }
}

/// Downsample to at most `n` points (mean-pooled).
pub fn downsample(series: &[f64], n: usize) -> Vec<f64> {
    if series.is_empty() || n == 0 {
        return Vec::new();
    }
    let chunk = series.len().div_ceil(n);
    series
        .chunks(chunk)
        .map(|c| c.iter().sum::<f64>() / c.len() as f64)
        .collect()
}

/// Terminal sparkline.
pub fn sparkline(series: &[f64]) -> String {
    const BARS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    let (min, max) = series
        .iter()
        .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
            (lo.min(v), hi.max(v))
        });
    if series.is_empty() || !min.is_finite() {
        return String::new();
    }
    let span = (max - min).max(1e-12);
    series
        .iter()
        .map(|&v| BARS[(((v - min) / span) * 7.0).round() as usize])
        .collect()
}

/// Print one run's series block (power, utilization) like the figures do.
pub fn print_series_block(out: &SimOutput, width: usize) {
    let power: Vec<f64> = out.power.iter().map(|p| p.total_kw).collect();
    println!(
        "  {:<24} power [kW]  {}  (mean {:>9.1}, peak {:>9.1})",
        out.label,
        sparkline(&downsample(&power, width)),
        out.mean_power_kw(),
        out.peak_power_kw()
    );
    println!(
        "  {:<24} util  [%]   {}  (mean {:>8.1}%)",
        "",
        sparkline(&downsample(&out.utilization, width)),
        out.mean_utilization() * 100.0
    );
}

/// Print a qualitative check line.
pub fn check(label: &str, ok: bool) {
    println!("  [{}] {label}", if ok { "ok" } else { "??" });
}

/// Standard header for a bench report.
pub fn header(element: &str, description: &str) {
    println!("\n================================================================");
    println!("{element}: {description}");
    println!("================================================================");
}
