//! The experimental scheduler (`--scheduler experimental`, §4.3): derives
//! job priorities from *account* behaviour collected in a previous run,
//! then schedules priority-first with the configured backfill.
//!
//! This mirrors `schedulers/experimental.py` of the artifact: the
//! collection phase (a replay run with `--accounts`) accumulates each
//! account's average power, EDP, ED²P and Fugaku points; the redeeming
//! phase reloads that `accounts.json` and ranks queued jobs by their
//! account's standing under the selected incentive.

use crate::backfill::BackfillKind;
use crate::builtin::BuiltinScheduler;
use crate::policy::PolicyKind;
use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use crate::scheduler::{Placement, SchedContext, SchedulerBackend, SchedulerState, SchedulerStats};
use sraps_acct::Accounts;
use sraps_types::{Result, SimTime, SrapsError};

/// Account-incentive scheduler: a built-in scheduler whose context is
/// pinned to a loaded [`Accounts`] snapshot.
pub struct ExperimentalScheduler {
    inner: BuiltinScheduler,
    accounts: Accounts,
}

impl ExperimentalScheduler {
    /// `policy` must be one of the account policies; `accounts` is the
    /// collection-phase snapshot.
    pub fn new(policy: PolicyKind, backfill: BackfillKind, accounts: Accounts) -> Result<Self> {
        if !policy.needs_accounts() {
            return Err(SrapsError::Config(format!(
                "experimental scheduler requires an account policy, got {}",
                policy.name()
            )));
        }
        Ok(ExperimentalScheduler {
            inner: BuiltinScheduler::new(policy, backfill),
            accounts,
        })
    }

    pub fn accounts(&self) -> &Accounts {
        &self.accounts
    }
}

impl SchedulerBackend for ExperimentalScheduler {
    fn name(&self) -> &'static str {
        "experimental"
    }

    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) -> Result<()> {
        // Pin the collection-phase snapshot over whatever the engine passed.
        let pinned = SchedContext {
            running: ctx.running,
            accounts: Some(&self.accounts),
        };
        self.inner.schedule(now, queue, rm, &pinned, out)
    }

    fn on_job_started(&mut self, est_end: SimTime, nodes: u32) {
        self.inner.on_job_started(est_end, nodes);
    }

    fn on_job_completed(&mut self, est_end: SimTime, nodes: u32) {
        self.inner.on_job_completed(est_end, nodes);
    }

    /// Account keys come from a *pinned* collection-phase snapshot, so the
    /// ordering is time-invariant and the inner scheduler's deadline (if
    /// any) is the whole story.
    fn next_decision_time(&self, now: SimTime) -> Option<SimTime> {
        self.inner.next_decision_time(now)
    }

    fn stats(&self) -> SchedulerStats {
        self.inner.stats()
    }

    /// The account table is construction input (reloaded from the
    /// collection-phase `accounts.json`), so the mid-run state is exactly
    /// the inner builtin's.
    fn snapshot_state(&self) -> Result<SchedulerState> {
        self.inner.snapshot_state()
    }

    fn restore_state(&mut self, state: &SchedulerState) -> Result<()> {
        self.inner.restore_state(state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuedJob;
    use sraps_acct::JobOutcome;
    use sraps_types::{AccountId, JobId, SimDuration, UserId};

    fn accounts() -> Accounts {
        let mut acc = Accounts::new(1.0);
        for (acct, power) in [(1u32, 0.3f64), (2, 1.8)] {
            acc.record(&JobOutcome {
                id: JobId(0),
                user: UserId(0),
                account: AccountId(acct),
                nodes: 8,
                submit: SimTime::ZERO,
                start: SimTime::ZERO,
                end: SimTime::seconds(3600),
                energy_kwh: power * 8.0,
                avg_node_power_kw: power,
                avg_cpu_util: 0.5,
                avg_gpu_util: 0.0,
                priority: 1.0,
            });
        }
        acc
    }

    fn qj(id: u64, account: u32) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(account),
            submit: SimTime::ZERO,
            nodes: 4,
            estimate: SimDuration::seconds(100),
            priority: 0.0,
            ml_score: None,
            recorded_start: SimTime::ZERO,
            recorded_nodes: None,
        }
    }

    #[test]
    fn rejects_non_account_policies() {
        assert!(ExperimentalScheduler::new(
            PolicyKind::Fcfs,
            BackfillKind::None,
            Accounts::new(1.0)
        )
        .is_err());
    }

    #[test]
    fn fugaku_points_policy_prefers_frugal_account() {
        let mut s =
            ExperimentalScheduler::new(PolicyKind::AcctFugakuPts, BackfillKind::None, accounts())
                .unwrap();
        // Only 4 nodes: exactly one of the two jobs can start.
        let mut rm = ResourceManager::new(4);
        let mut q = JobQueue::new();
        q.push(qj(10, 2)); // hot account submitted first
        q.push(qj(11, 1)); // frugal account
        let ctx = SchedContext {
            running: &[],
            accounts: None, // engine doesn't know; scheduler pins its own
        };
        let mut placed = Vec::new();
        s.schedule(SimTime::ZERO, &mut q, &mut rm, &ctx, &mut placed)
            .unwrap();
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].job, JobId(11), "frugal account's job first");
    }

    #[test]
    fn low_avg_power_policy_inverts_avg_power_policy() {
        for (policy, expect_first) in [
            (PolicyKind::AcctAvgPower, JobId(10)),    // hot account first
            (PolicyKind::AcctLowAvgPower, JobId(11)), // frugal first
        ] {
            let mut s = ExperimentalScheduler::new(policy, BackfillKind::None, accounts()).unwrap();
            let mut rm = ResourceManager::new(4);
            let mut q = JobQueue::new();
            q.push(qj(10, 2));
            q.push(qj(11, 1));
            let ctx = SchedContext {
                running: &[],
                accounts: None,
            };
            let mut placed = Vec::new();
            s.schedule(SimTime::ZERO, &mut q, &mut rm, &ctx, &mut placed)
                .unwrap();
            assert_eq!(placed[0].job, expect_first, "{}", policy.name());
        }
    }
}
