//! Built-in scheduling policies: the `--policy` option.

use crate::queue::{JobQueue, QueuedJob};
use crate::scheduler::SchedContext;
use serde::{Deserialize, Serialize};
use sraps_types::AccountId;

/// Which built-in policy orders the queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PolicyKind {
    /// Replay the recorded schedule (the original RAPS mechanism).
    Replay,
    /// First-come, first-served by submission time.
    Fcfs,
    /// Shortest job first, by runtime estimate.
    Sjf,
    /// Largest job first, by node count.
    Ljf,
    /// Dataset/site priority, descending.
    Priority,
    /// Priority with wait-time aging (Slurm's age factor): effective
    /// priority = site priority + hours waited. Prevents the starvation
    /// plain priority + first-fit shows on the Fig 6 giants.
    PriorityAging,
    /// Account's trailing average power, highest first (§4.3).
    AcctAvgPower,
    /// Account's trailing average power, lowest first (§4.3).
    AcctLowAvgPower,
    /// Account's mean EDP, lowest (most efficient) first (§4.3).
    AcctEdp,
    /// Account's mean ED²P, lowest first (§4.3).
    AcctEd2p,
    /// Account's Fugaku points, highest first (\[37\], §4.3).
    AcctFugakuPts,
    /// ML score from the inference pipeline, best (highest) first (§4.4).
    Ml,
}

impl PolicyKind {
    /// Parse a `--policy` string (artifact names accepted).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        Some(match s {
            "replay" => PolicyKind::Replay,
            "fcfs" => PolicyKind::Fcfs,
            "sjf" => PolicyKind::Sjf,
            "ljf" => PolicyKind::Ljf,
            "priority" => PolicyKind::Priority,
            "priority_aging" | "priority-aging" => PolicyKind::PriorityAging,
            "acct_avg_power" => PolicyKind::AcctAvgPower,
            "acct_low_avg_power" => PolicyKind::AcctLowAvgPower,
            "acct_edp" => PolicyKind::AcctEdp,
            "acct_ed2p" => PolicyKind::AcctEd2p,
            "acct_fugaku_pts" => PolicyKind::AcctFugakuPts,
            "ml" => PolicyKind::Ml,
            _ => return None,
        })
    }

    /// CLI name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyKind::Replay => "replay",
            PolicyKind::Fcfs => "fcfs",
            PolicyKind::Sjf => "sjf",
            PolicyKind::Ljf => "ljf",
            PolicyKind::Priority => "priority",
            PolicyKind::PriorityAging => "priority_aging",
            PolicyKind::AcctAvgPower => "acct_avg_power",
            PolicyKind::AcctLowAvgPower => "acct_low_avg_power",
            PolicyKind::AcctEdp => "acct_edp",
            PolicyKind::AcctEd2p => "acct_ed2p",
            PolicyKind::AcctFugakuPts => "acct_fugaku_pts",
            PolicyKind::Ml => "ml",
        }
    }

    /// Whether this policy needs account statistics to be meaningful.
    pub fn needs_accounts(self) -> bool {
        matches!(
            self,
            PolicyKind::AcctAvgPower
                | PolicyKind::AcctLowAvgPower
                | PolicyKind::AcctEdp
                | PolicyKind::AcctEd2p
                | PolicyKind::AcctFugakuPts
        )
    }

    /// Whether this policy's sort key can change between queue mutations.
    /// Builtin job-field keys are immutable once the job is queued; only
    /// the account policies read live statistics (which move whenever a
    /// job completes), so their keys are versioned by the scheduler's
    /// completion count.
    pub fn key_is_versioned(self) -> bool {
        self.needs_accounts()
    }

    /// The scheduling sort key for one queued job: ascending key =
    /// schedule first (ties broken by submit time, then id — see
    /// [`JobQueue::sort_by_key_stable`]).
    ///
    /// No key depends on `now`: uniform aging orders by
    /// `submit/3600 − priority` ascending, the same order as
    /// `priority + (now − submit)/3600` descending with every job aging
    /// at the same rate. Keeping `now` out makes the order provably
    /// constant between events (no f64 rounding collapse as waits grow) —
    /// the property the engine's event core relies on to skip no-op
    /// scheduler calls, and the property that lets [`JobQueue`] keep the
    /// order incrementally instead of re-sorting per call.
    pub fn sort_key(self, ctx: &SchedContext<'_>, j: &QueuedJob) -> f64 {
        let acct_key = |account: AccountId, f: &dyn Fn(&sraps_acct::AccountStats) -> f64| -> f64 {
            ctx.accounts
                .and_then(|a| a.get(account))
                .map(f)
                .unwrap_or(0.0)
        };
        match self {
            // Replay order is by recorded start; the replay scheduler also
            // gates placement on reaching that time.
            PolicyKind::Replay => j.recorded_start.as_secs() as f64,
            PolicyKind::Fcfs => j.submit.as_secs() as f64,
            PolicyKind::Sjf => j.estimate.as_secs_f64(),
            PolicyKind::Ljf => -(j.nodes as f64),
            PolicyKind::Priority => -j.priority,
            // Slurm-style uniform aging: effective priority = site
            // priority + hours waited (see the method docs for why `now`
            // cancels out of the key).
            PolicyKind::PriorityAging => j.submit.as_secs_f64() / 3600.0 - j.priority,
            PolicyKind::AcctAvgPower => -acct_key(j.account, &|s| s.avg_node_power_kw),
            PolicyKind::AcctLowAvgPower => acct_key(j.account, &|s| s.avg_node_power_kw),
            PolicyKind::AcctEdp => acct_key(j.account, &|s| s.mean_edp()),
            PolicyKind::AcctEd2p => acct_key(j.account, &|s| s.mean_ed2p()),
            PolicyKind::AcctFugakuPts => -acct_key(j.account, &|s| s.fugaku_points),
            // Higher score = smaller predicted system impact = first.
            PolicyKind::Ml => -j.ml_score.unwrap_or(0.0),
        }
    }

    /// Reorder the queue in place with a full stable sort — the
    /// from-scratch reference. The scheduler hot path uses
    /// [`PolicyKind::order_incremental`], which produces the identical
    /// order.
    pub fn order(self, queue: &mut JobQueue, ctx: &SchedContext<'_>, now: sraps_types::SimTime) {
        let _ = now;
        queue.sort_by_key_stable(|j| self.sort_key(ctx, j));
    }

    /// Establish the policy order incrementally: no-op when the queue is
    /// already in this policy's order at `key_epoch`, binary insertion
    /// for new arrivals, full sort only when the stamp changed.
    /// `key_epoch` versions mutable key sources (account statistics); it
    /// is ignored for policies whose keys are pure job functions.
    pub fn order_incremental(self, queue: &mut JobQueue, ctx: &SchedContext<'_>, key_epoch: u64) {
        let stamp = crate::queue::OrderStamp {
            policy: self,
            key_epoch: if self.key_is_versioned() {
                key_epoch
            } else {
                0
            },
        };
        queue.ensure_order_by(stamp, |j| self.sort_key(ctx, j));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuedJob;
    use sraps_acct::{Accounts, JobOutcome};
    use sraps_types::{JobId, SimDuration, SimTime, UserId};

    fn qj(id: u64, submit: i64, nodes: u32, est: i64, prio: f64, account: u32) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(account),
            submit: SimTime::seconds(submit),
            nodes,
            estimate: SimDuration::seconds(est),
            priority: prio,
            ml_score: None,
            recorded_start: SimTime::seconds(submit + 10),
            recorded_nodes: None,
        }
    }

    fn ids(queue: &JobQueue) -> Vec<u64> {
        queue.jobs().iter().map(|j| j.id.0).collect()
    }

    fn empty_ctx() -> SchedContext<'static> {
        SchedContext {
            running: &[],
            accounts: None,
        }
    }

    #[test]
    fn parse_roundtrip_all() {
        for p in [
            PolicyKind::Replay,
            PolicyKind::Fcfs,
            PolicyKind::Sjf,
            PolicyKind::Ljf,
            PolicyKind::Priority,
            PolicyKind::PriorityAging,
            PolicyKind::AcctAvgPower,
            PolicyKind::AcctLowAvgPower,
            PolicyKind::AcctEdp,
            PolicyKind::AcctEd2p,
            PolicyKind::AcctFugakuPts,
            PolicyKind::Ml,
        ] {
            assert_eq!(PolicyKind::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::parse("bogus"), None);
    }

    #[test]
    fn fcfs_orders_by_submit() {
        let mut q = JobQueue::new();
        q.push(qj(1, 30, 1, 10, 0.0, 0));
        q.push(qj(2, 10, 1, 10, 0.0, 0));
        q.push(qj(3, 20, 1, 10, 0.0, 0));
        PolicyKind::Fcfs.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn sjf_orders_by_estimate() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 300, 0.0, 0));
        q.push(qj(2, 0, 1, 100, 0.0, 0));
        q.push(qj(3, 0, 1, 200, 0.0, 0));
        PolicyKind::Sjf.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn ljf_orders_by_node_count_desc() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 4, 10, 0.0, 0));
        q.push(qj(2, 0, 64, 10, 0.0, 0));
        q.push(qj(3, 0, 16, 10, 0.0, 0));
        PolicyKind::Ljf.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 3, 1]);
    }

    #[test]
    fn priority_aging_parses_and_promotes_long_waiters() {
        assert_eq!(
            PolicyKind::parse("priority_aging"),
            Some(PolicyKind::PriorityAging)
        );
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 1.0, 0)); // low priority, waited 10 h
        q.push(qj(2, 9 * 3600, 1, 10, 5.0, 0)); // high priority, waited 1 h
        let now = SimTime::seconds(10 * 3600);
        PolicyKind::PriorityAging.order(&mut q, &empty_ctx(), now);
        // 1.0 + 10 h > 5.0 + 1 h → the old job wins.
        assert_eq!(ids(&q), vec![1, 2]);
        // Without aging, priority alone would pick job 2.
        PolicyKind::Priority.order(&mut q, &empty_ctx(), now);
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn priority_orders_desc() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 1.0, 0));
        q.push(qj(2, 0, 1, 10, 9.0, 0));
        PolicyKind::Priority.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn ml_orders_by_score_desc_missing_scores_last_among_positive() {
        let mut q = JobQueue::new();
        let mut a = qj(1, 0, 1, 10, 0.0, 0);
        a.ml_score = Some(0.2);
        let mut b = qj(2, 0, 1, 10, 0.0, 0);
        b.ml_score = Some(0.9);
        let c = qj(3, 1, 1, 10, 0.0, 0); // no score → 0
        q.push(a);
        q.push(b);
        q.push(c);
        PolicyKind::Ml.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 1, 3]);
    }

    fn accounts_fixture() -> Accounts {
        let mut acc = Accounts::new(1.0);
        // Account 1: frugal (0.4 kW); account 2: hot (1.6 kW).
        for (acct, p) in [(1u32, 0.4f64), (2, 1.6)] {
            acc.record(&JobOutcome {
                id: JobId(0),
                user: UserId(0),
                account: AccountId(acct),
                nodes: 10,
                submit: SimTime::ZERO,
                start: SimTime::ZERO,
                end: SimTime::seconds(3600),
                energy_kwh: p * 10.0,
                avg_node_power_kw: p,
                avg_cpu_util: 0.5,
                avg_gpu_util: 0.0,
                priority: 1.0,
            });
        }
        acc
    }

    #[test]
    fn account_policies_use_collected_stats() {
        let acc = accounts_fixture();
        let ctx = SchedContext {
            running: &[],
            accounts: Some(&acc),
        };
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 0.0, 1)); // frugal account
        q.push(qj(2, 0, 1, 10, 0.0, 2)); // hot account

        PolicyKind::AcctAvgPower.order(&mut q, &ctx, SimTime::ZERO);
        assert_eq!(ids(&q), vec![2, 1], "high average power first");

        PolicyKind::AcctLowAvgPower.order(&mut q, &ctx, SimTime::ZERO);
        assert_eq!(ids(&q), vec![1, 2], "low average power first");

        PolicyKind::AcctFugakuPts.order(&mut q, &ctx, SimTime::ZERO);
        assert_eq!(ids(&q), vec![1, 2], "frugal account earned the points");
    }

    #[test]
    fn account_policy_without_accounts_degrades_to_stable_order() {
        let mut q = JobQueue::new();
        q.push(qj(2, 5, 1, 10, 0.0, 7));
        q.push(qj(1, 0, 1, 10, 0.0, 7));
        PolicyKind::AcctEdp.order(&mut q, &empty_ctx(), SimTime::ZERO);
        assert_eq!(ids(&q), vec![1, 2], "ties fall back to submit order");
    }

    #[test]
    fn needs_accounts_flags_incentive_policies() {
        assert!(PolicyKind::AcctFugakuPts.needs_accounts());
        assert!(!PolicyKind::Fcfs.needs_accounts());
        assert!(!PolicyKind::Ml.needs_accounts());
    }
}
