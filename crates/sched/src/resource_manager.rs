//! The resource manager: node allocation and release.
//!
//! Policies decide *which* jobs run; the resource manager decides *where*,
//! and is the single authority on node occupancy. Replay mode additionally
//! enforces the exact recorded placement (§3.2.3).

use serde::{Deserialize, Serialize};
use sraps_types::{Bitset, NodeId, NodeSet, Result, SrapsError};

/// Tracks free/busy/down state for every node of the system.
///
/// Free/down counts are cached as plain integers maintained on every
/// transition (and cross-checked against the bitsets in debug builds), so
/// the per-tick history sampling — `utilization`, `busy_count` — and the
/// scheduler's `can_allocate` probes cost two integer reads instead of
/// bitset popcounts.
/// Serialization (engine snapshots) round-trips the bitsets verbatim —
/// load-bearing because down-marking of busy nodes is lazy: a node that
/// went down mid-job only leaves the free pool on release, so the
/// free/down distinction is not reconstructible from counts alone.
#[derive(Debug, Serialize, Deserialize)]
pub struct ResourceManager {
    total: u32,
    free: Bitset,
    down: Bitset,
    /// Cached `free.count_ones()`.
    free_count: u32,
    /// Cached `down.count_ones()`.
    down_count: u32,
}

impl Clone for ResourceManager {
    fn clone(&self) -> Self {
        ResourceManager {
            total: self.total,
            free: self.free.clone(),
            down: self.down.clone(),
            free_count: self.free_count,
            down_count: self.down_count,
        }
    }

    /// Reuses `self`'s bitset buffers — the power-cap scheduler mirrors
    /// the real manager into its shadow copy every invocation.
    fn clone_from(&mut self, source: &Self) {
        self.total = source.total;
        self.free.clone_from(&source.free);
        self.down.clone_from(&source.down);
        self.free_count = source.free_count;
        self.down_count = source.down_count;
    }
}

impl ResourceManager {
    pub fn new(total_nodes: u32) -> Self {
        ResourceManager {
            total: total_nodes,
            free: Bitset::full(total_nodes as usize),
            down: Bitset::new(total_nodes as usize),
            free_count: total_nodes,
            down_count: 0,
        }
    }

    pub fn total_nodes(&self) -> u32 {
        self.total
    }

    /// Nodes currently available for allocation.
    pub fn free_count(&self) -> u32 {
        debug_assert_eq!(self.free_count as usize, self.free.count_ones());
        self.free_count
    }

    /// Nodes currently allocated to jobs.
    pub fn busy_count(&self) -> u32 {
        self.total - self.free_count() - self.down_count()
    }

    /// Nodes marked down/drained.
    pub fn down_count(&self) -> u32 {
        debug_assert_eq!(self.down_count as usize, self.down.count_ones());
        self.down_count
    }

    /// Occupancy utilization in \[0,1\]: busy / (total − down).
    pub fn utilization(&self) -> f64 {
        let avail = (self.total - self.down_count()) as f64;
        if avail <= 0.0 {
            0.0
        } else {
            self.busy_count() as f64 / avail
        }
    }

    /// Whether a `count`-node allocation could be granted right now.
    pub fn can_allocate(&self, count: u32) -> bool {
        count > 0 && count <= self.free_count
    }

    /// First-fit allocation of `count` nodes (lowest-index free nodes):
    /// one word-level pass that collects and claims together.
    pub fn allocate(&mut self, count: u32) -> Result<NodeSet> {
        if count == 0 {
            return Err(SrapsError::Allocation("zero-node allocation".into()));
        }
        let mut picked = Vec::with_capacity(count as usize);
        if !self.free.take_first_set(count as usize, &mut picked) {
            return Err(SrapsError::Allocation(format!(
                "{count} nodes requested, {} free",
                self.free_count()
            )));
        }
        self.free_count -= count;
        Ok(NodeSet::from_sorted(picked))
    }

    /// Allocate exactly `nodes` (replay placement). Fails if any node is
    /// busy or down, leaving the manager unchanged.
    pub fn allocate_exact(&mut self, nodes: &NodeSet) -> Result<()> {
        if nodes.is_empty() {
            return Err(SrapsError::Allocation("empty exact allocation".into()));
        }
        for n in nodes.iter() {
            if n.index() >= self.total as usize {
                return Err(SrapsError::Allocation(format!(
                    "node {n} outside system of {} nodes",
                    self.total
                )));
            }
            if !self.free.get(n.index()) {
                return Err(SrapsError::Allocation(format!("node {n} not free")));
            }
        }
        for n in nodes.iter() {
            if self.free.clear(n.index()) {
                self.free_count -= 1;
            }
        }
        Ok(())
    }

    /// Return a job's nodes to the free pool. Nodes marked down while the
    /// job ran stay down.
    pub fn release(&mut self, nodes: &NodeSet) {
        for n in nodes.iter() {
            if !self.down.get(n.index()) && self.free.set(n.index()) {
                self.free_count += 1;
            }
        }
    }

    /// Mark nodes down (drained): removed from the free pool until
    /// [`Self::mark_up`]. Busy nodes are marked down lazily on release.
    pub fn mark_down(&mut self, nodes: &NodeSet) {
        for n in nodes.iter() {
            if n.index() < self.total as usize {
                if self.down.set(n.index()) {
                    self.down_count += 1;
                }
                if self.free.clear(n.index()) {
                    self.free_count -= 1;
                }
            }
        }
    }

    /// Bring downed nodes back into service.
    pub fn mark_up(&mut self, nodes: &NodeSet) {
        for n in nodes.iter() {
            if n.index() < self.total as usize && self.down.clear(n.index()) {
                self.down_count -= 1;
                if self.free.set(n.index()) {
                    self.free_count += 1;
                }
            }
        }
    }

    /// Whether the specific node is free.
    pub fn is_free(&self, node: NodeId) -> bool {
        node.index() < self.total as usize && self.free.get(node.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_manager_is_all_free() {
        let rm = ResourceManager::new(10);
        assert_eq!(rm.free_count(), 10);
        assert_eq!(rm.busy_count(), 0);
        assert_eq!(rm.utilization(), 0.0);
    }

    #[test]
    fn allocate_is_first_fit_ascending() {
        let mut rm = ResourceManager::new(8);
        let a = rm.allocate(3).unwrap();
        assert_eq!(a.as_slice(), &[0, 1, 2]);
        let b = rm.allocate(2).unwrap();
        assert_eq!(b.as_slice(), &[3, 4]);
        rm.release(&a);
        let c = rm.allocate(4).unwrap();
        assert_eq!(c.as_slice(), &[0, 1, 2, 5], "reuses released low indices");
    }

    #[test]
    fn allocate_overflow_fails_atomically() {
        let mut rm = ResourceManager::new(4);
        rm.allocate(3).unwrap();
        let before = rm.free_count();
        assert!(rm.allocate(2).is_err());
        assert_eq!(rm.free_count(), before, "failed allocation must not leak");
    }

    #[test]
    fn zero_allocation_rejected() {
        let mut rm = ResourceManager::new(4);
        assert!(rm.allocate(0).is_err());
    }

    #[test]
    fn exact_allocation_succeeds_then_conflicts() {
        let mut rm = ResourceManager::new(10);
        let set = NodeSet::from_indices(vec![2, 5, 7]);
        rm.allocate_exact(&set).unwrap();
        assert_eq!(rm.busy_count(), 3);
        // Overlapping exact allocation fails and changes nothing.
        let overlap = NodeSet::from_indices(vec![1, 5]);
        assert!(rm.allocate_exact(&overlap).is_err());
        assert!(rm.is_free(NodeId(1)), "atomic failure must not take node 1");
    }

    #[test]
    fn exact_allocation_out_of_range() {
        let mut rm = ResourceManager::new(4);
        assert!(rm.allocate_exact(&NodeSet::from_indices(vec![99])).is_err());
    }

    #[test]
    fn down_nodes_shrink_capacity_and_survive_release() {
        let mut rm = ResourceManager::new(10);
        rm.mark_down(&NodeSet::from_indices(vec![0, 1]));
        assert_eq!(rm.free_count(), 8);
        assert_eq!(rm.down_count(), 2);
        // Allocation avoids down nodes.
        let a = rm.allocate(3).unwrap();
        assert_eq!(a.as_slice(), &[2, 3, 4]);
        // Releasing doesn't resurrect down nodes.
        rm.release(&NodeSet::from_indices(vec![0, 1, 2]));
        assert!(!rm.is_free(NodeId(0)));
        assert!(rm.is_free(NodeId(2)));
        rm.mark_up(&NodeSet::from_indices(vec![0, 1]));
        assert_eq!(rm.down_count(), 0);
        assert!(rm.is_free(NodeId(0)));
    }

    #[test]
    fn utilization_accounts_for_down_nodes() {
        let mut rm = ResourceManager::new(10);
        rm.mark_down(&NodeSet::from_indices(vec![8, 9]));
        rm.allocate(4).unwrap();
        assert!(
            (rm.utilization() - 0.5).abs() < 1e-12,
            "4 busy of 8 in service"
        );
    }

    #[test]
    fn conservation_invariant() {
        let mut rm = ResourceManager::new(100);
        let a = rm.allocate(30).unwrap();
        rm.mark_down(&NodeSet::from_indices(vec![90, 91]));
        let _b = rm.allocate(10).unwrap();
        rm.release(&a);
        assert_eq!(
            rm.free_count() + rm.busy_count() + rm.down_count(),
            rm.total_nodes()
        );
    }
}
