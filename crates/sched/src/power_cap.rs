//! Power-cap-aware scheduling — the energy-aware direction the paper's
//! discussion motivates ("accurate forecasting of such events can inform
//! energy-aware scheduling to mitigate the effects of such significant
//! fluctuation in the power draw", §4.2.2).
//!
//! [`PowerCapScheduler`] wraps any inner policy and admits its placements
//! only while the facility's estimated *job* power stays under a cap. The
//! per-job power estimates come from whatever the site has — user
//! estimates, fingerprinting, or the ML predictor (§5 names these the
//! candidates); the engine supplies telemetry-derived estimates.

use crate::builtin::BuiltinScheduler;
use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use crate::scheduler::{
    snapshot_unsupported, Placement, PowerCapSchedulerState, SchedContext, SchedulerBackend,
    SchedulerState, SchedulerStats,
};
use sraps_types::{JobId, Result, SimTime};
use std::collections::HashMap;

/// A scheduler that enforces an aggregate job-power budget.
pub struct PowerCapScheduler {
    inner: BuiltinScheduler,
    /// Cap on Σ estimated job power, kW (idle/static floor excluded — the
    /// cap governs the *schedulable* portion of the load).
    cap_kw: f64,
    /// Estimated total power per job, kW (nodes × per-node estimate).
    estimates_kw: HashMap<JobId, f64>,
    /// Placements deferred because of the cap (for reporting).
    deferred: u64,
    /// Whether the most recent `schedule` call deferred anything — the
    /// wrapper's contribution to [`SchedulerBackend::next_decision_time`].
    deferred_last_call: bool,
    /// The wrapper's own counters: placements that *took effect*. The
    /// inner scheduler's counters describe shadow proposals, which the
    /// cap may re-defer call after call — counting those would inflate
    /// `placements`/`backfilled` with every re-proposal (and make them
    /// depend on how often the engine polls the scheduler).
    stats: SchedulerStats,
    /// Shadow mirrors of the engine's state, refreshed by `clone_from`
    /// each call so the per-invocation deep copies stop allocating.
    shadow_rm: Option<ResourceManager>,
    shadow_queue: JobQueue,
    /// Scratch for the inner scheduler's proposal and the admitted ids.
    proposed: Vec<Placement>,
    admitted_ids: Vec<JobId>,
}

impl PowerCapScheduler {
    pub fn new(inner: BuiltinScheduler, cap_kw: f64, estimates_kw: HashMap<JobId, f64>) -> Self {
        PowerCapScheduler {
            inner,
            cap_kw,
            estimates_kw,
            deferred: 0,
            deferred_last_call: false,
            stats: SchedulerStats::default(),
            shadow_rm: None,
            shadow_queue: JobQueue::new(),
            proposed: Vec::new(),
            admitted_ids: Vec::new(),
        }
    }

    fn estimate(&self, id: JobId) -> f64 {
        self.estimates_kw.get(&id).copied().unwrap_or(0.0)
    }

    /// Placements deferred by the cap so far.
    pub fn deferred(&self) -> u64 {
        self.deferred
    }
}

impl SchedulerBackend for PowerCapScheduler {
    fn name(&self) -> &'static str {
        "power-cap"
    }

    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) -> Result<()> {
        self.stats.invocations += 1;
        // Budget left after the jobs already running.
        let running_kw: f64 = ctx.running.iter().map(|r| self.estimate(r.id)).sum();
        let mut budget = self.cap_kw - running_kw;

        // Let the inner policy decide on shadow state, then admit its
        // placements in order while the budget lasts. The shadow resource
        // manager mirrors the real one, so admitted node sets are free in
        // the real manager too (placements are mutually disjoint). The
        // mirrors and the proposal buffer persist across calls
        // (`clone_from` reuses their allocations), and the *real* queue
        // is put in policy order first so the shadow copy carries the
        // order stamp with it — the inner pass then re-sorts nothing.
        self.inner.order_queue(queue, ctx);
        match &mut self.shadow_rm {
            Some(shadow) => shadow.clone_from(rm),
            None => self.shadow_rm = Some(rm.clone()),
        }
        self.shadow_queue.clone_from(queue);
        self.proposed.clear();
        let mut proposed = std::mem::take(&mut self.proposed);
        let shadow_rm = self.shadow_rm.as_mut().expect("installed above");
        self.inner
            .schedule(now, &mut self.shadow_queue, shadow_rm, ctx, &mut proposed)?;

        self.deferred_last_call = false;
        for p in proposed.drain(..) {
            let est = self.estimate(p.job);
            if est <= budget {
                budget -= est;
                rm.allocate_exact(&p.nodes)?;
                out.push(p);
            } else {
                self.deferred += 1;
                self.deferred_last_call = true;
                sraps_obs::bump(sraps_obs::Counter::SchedCapDeferrals);
            }
        }
        self.proposed = proposed;
        self.stats.record_placements(out);
        self.admitted_ids.clear();
        self.admitted_ids.extend(out.iter().map(|p| p.job));
        queue.remove_placed(&self.admitted_ids);
        Ok(())
    }

    fn on_job_started(&mut self, est_end: SimTime, nodes: u32) {
        self.inner.on_job_started(est_end, nodes);
    }

    fn on_job_completed(&mut self, est_end: SimTime, nodes: u32) {
        self.inner.on_job_completed(est_end, nodes);
    }

    /// The budget moves only with the running set (placements and
    /// completions — events), and admission is a deterministic greedy
    /// filter over the inner policy's proposal, so the wrapper usually
    /// inherits the inner deadline. The exception is a *deferred*
    /// proposal under a time-variant backfill rule:
    ///
    /// * EASY — the deferred proposal holds shadow nodes, and admission
    ///   hardens with time; when it ages out of the reservation window
    ///   its shadow nodes free up and a different (possibly cheaper) job
    ///   can be proposed and admitted with no event in between;
    /// * conservative — a deferred proposal keeps re-planning a shadow
    ///   reservation anchored at `now`, so its sliding window shifts
    ///   every later job's reservation between events.
    ///
    /// Deferral + EASY/conservative therefore pins the engine to per-tick
    /// calls. None/first-fit proposals are exact functions of queue and
    /// occupancy (no time term), and replay proposals change only at
    /// recorded starts — those keep the inner hint even while deferring.
    fn next_decision_time(&self, now: SimTime) -> Option<SimTime> {
        use crate::backfill::BackfillKind;
        use crate::policy::PolicyKind;
        if self.deferred_last_call
            && self.inner.policy() != PolicyKind::Replay
            && matches!(
                self.inner.backfill(),
                BackfillKind::Easy | BackfillKind::Conservative
            )
        {
            return Some(now);
        }
        self.inner.next_decision_time(now)
    }

    fn stats(&self) -> SchedulerStats {
        SchedulerStats {
            // Plan recomputations remain meaningful inner telemetry (they
            // happen per shadow call, like any per-invocation overhead).
            recomputations: self.inner.stats().recomputations,
            ..self.stats
        }
    }

    fn snapshot_state(&self) -> Result<SchedulerState> {
        Ok(SchedulerState::PowerCap(PowerCapSchedulerState {
            inner: self.inner.state(),
            deferred: self.deferred,
            deferred_last_call: self.deferred_last_call,
            stats: self.stats,
        }))
    }

    /// Accepts its own record, and tolerates a plain builtin record — the
    /// cap-applied-at-*t* fork: the prefix ran uncapped, so the wrapper's
    /// own deferral counters start from zero. Shadow mirrors and scratch
    /// buffers are per-call state and need no restoration.
    fn restore_state(&mut self, state: &SchedulerState) -> Result<()> {
        match state {
            SchedulerState::PowerCap(s) => {
                self.inner.apply_state(&s.inner);
                self.deferred = s.deferred;
                self.deferred_last_call = s.deferred_last_call;
                self.stats = s.stats;
            }
            SchedulerState::Builtin(s) => {
                self.inner.apply_state(s);
                self.deferred = 0;
                self.deferred_last_call = false;
                self.stats = SchedulerStats::default();
            }
            SchedulerState::External(_) => return Err(snapshot_unsupported(self.name())),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backfill::BackfillKind;
    use crate::policy::PolicyKind;
    use crate::queue::QueuedJob;
    use sraps_types::{AccountId, SimDuration};

    fn qj(id: u64, nodes: u32) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(0),
            submit: SimTime::ZERO,
            nodes,
            estimate: SimDuration::seconds(100),
            priority: 0.0,
            ml_score: None,
            recorded_start: SimTime::ZERO,
            recorded_nodes: None,
        }
    }

    fn capped(cap_kw: f64, estimates: &[(u64, f64)]) -> PowerCapScheduler {
        PowerCapScheduler::new(
            BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::FirstFit),
            cap_kw,
            estimates.iter().map(|&(id, kw)| (JobId(id), kw)).collect(),
        )
    }

    fn ctx() -> SchedContext<'static> {
        SchedContext {
            running: &[],
            accounts: None,
        }
    }

    fn run(
        s: &mut PowerCapScheduler,
        now: SimTime,
        q: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
    ) -> Vec<Placement> {
        let mut out = Vec::new();
        s.schedule(now, q, rm, ctx, &mut out).unwrap();
        out
    }

    #[test]
    fn admits_until_budget_exhausted() {
        let mut s = capped(100.0, &[(1, 60.0), (2, 60.0), (3, 30.0)]);
        let mut q = JobQueue::new();
        q.push(qj(1, 2));
        q.push(qj(2, 2));
        q.push(qj(3, 2));
        let mut rm = ResourceManager::new(16);
        let placed = run(&mut s, SimTime::ZERO, &mut q, &mut rm, &ctx());
        let ids: Vec<u64> = placed.iter().map(|p| p.job.0).collect();
        // Job 1 (60) fits; job 2 (60) would exceed 100; job 3 (30) fits.
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(s.deferred(), 1);
        assert_eq!(q.len(), 1, "deferred job stays queued");
    }

    #[test]
    fn running_jobs_consume_budget() {
        let mut s = capped(100.0, &[(1, 50.0), (9, 80.0)]);
        let running = [crate::scheduler::RunningView {
            id: JobId(9),
            nodes: 4,
            estimated_end: SimTime::seconds(1000),
        }];
        s.on_job_started(SimTime::seconds(1000), 4);
        let c = SchedContext {
            running: &running,
            accounts: None,
        };
        let mut q = JobQueue::new();
        q.push(qj(1, 2));
        let mut rm = ResourceManager::new(16);
        rm.allocate(4).unwrap(); // the running job's nodes
        let placed = run(&mut s, SimTime::ZERO, &mut q, &mut rm, &c);
        assert!(placed.is_empty(), "80 running + 50 requested > 100 cap");
        assert_eq!(s.deferred(), 1);
    }

    #[test]
    fn deferred_jobs_run_once_power_frees_up() {
        let mut s = capped(100.0, &[(1, 90.0), (2, 90.0)]);
        let mut q = JobQueue::new();
        q.push(qj(1, 2));
        q.push(qj(2, 2));
        let mut rm = ResourceManager::new(8);
        let first = run(&mut s, SimTime::ZERO, &mut q, &mut rm, &ctx());
        assert_eq!(first.len(), 1);
        // Job 1 finished: nodes released, no longer in ctx.running.
        rm.release(&first[0].nodes);
        let second = run(&mut s, SimTime::seconds(100), &mut q, &mut rm, &ctx());
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].job, JobId(2));
    }

    #[test]
    fn unknown_estimates_pass_freely() {
        // Jobs without estimates cost 0 budget (no data ⇒ no veto).
        let mut s = capped(10.0, &[]);
        let mut q = JobQueue::new();
        q.push(qj(1, 2));
        let mut rm = ResourceManager::new(8);
        let placed = run(&mut s, SimTime::ZERO, &mut q, &mut rm, &ctx());
        assert_eq!(placed.len(), 1);
    }

    #[test]
    fn shadow_state_reuse_is_invisible_across_calls() {
        // Consecutive calls with mutating real state must behave as if the
        // shadow were built fresh each time (it is `clone_from`-refreshed).
        let mut s = capped(1000.0, &[(1, 10.0), (2, 10.0), (3, 10.0)]);
        let mut q = JobQueue::new();
        q.push(qj(1, 2));
        q.push(qj(2, 2));
        let mut rm = ResourceManager::new(4);
        let first = run(&mut s, SimTime::ZERO, &mut q, &mut rm, &ctx());
        assert_eq!(first.len(), 2);
        assert!(q.is_empty());
        q.push(qj(3, 2));
        let blocked = run(&mut s, SimTime::seconds(60), &mut q, &mut rm, &ctx());
        assert!(blocked.is_empty(), "machine is full");
        rm.release(&first[0].nodes);
        let third = run(&mut s, SimTime::seconds(120), &mut q, &mut rm, &ctx());
        assert_eq!(third.len(), 1);
        assert_eq!(third[0].job, JobId(3));
    }
}
