//! Backfill strategies: the `--backfill` option.
//!
//! * `none` — strict queue order; the head blocks everyone behind it.
//! * `first-fit` — after the head blocks, any queued job that fits now is
//!   placed (no guarantee the head isn't delayed).
//! * `easy` — EASY backfill \[36\]: the head receives a reservation at the
//!   earliest time enough nodes free up (computed from running jobs'
//!   wall-time estimates); a later job may jump ahead only if it cannot
//!   delay that reservation (finishes before it, or fits in the nodes the
//!   reservation leaves over).

use crate::queue::QueuedJob;
use crate::scheduler::RunningView;
use serde::{Deserialize, Serialize};
use sraps_types::SimTime;

/// Which backfill strategy augments the policy order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackfillKind {
    None,
    FirstFit,
    Easy,
    /// Conservative backfill: *every* queued job holds a reservation; a
    /// job may jump ahead only if it delays nobody. The paper lists this
    /// among the "more sophisticated implementations" the default
    /// scheduler leaves to extensions — provided here.
    Conservative,
}

impl BackfillKind {
    /// Parse a `--backfill` string (artifact spellings accepted).
    pub fn parse(s: &str) -> Option<BackfillKind> {
        Some(match s {
            "none" | "nobf" | "no-backfill" => BackfillKind::None,
            "firstfit" | "first-fit" => BackfillKind::FirstFit,
            "easy" => BackfillKind::Easy,
            "conservative" => BackfillKind::Conservative,
            _ => return None,
        })
    }

    pub fn name(self) -> &'static str {
        match self {
            BackfillKind::None => "none",
            BackfillKind::FirstFit => "firstfit",
            BackfillKind::Easy => "easy",
            BackfillKind::Conservative => "conservative",
        }
    }
}

/// Conservative plan: the earliest feasible start per queued job, in queue
/// order, holding all earlier jobs' reservations fixed.
///
/// Returns one planned start per queue entry (`SimTime::MAX` for jobs wider
/// than the machine can ever free). A job may be *placed now* exactly when
/// its planned start is ≤ `now` — by construction that cannot delay any
/// earlier job's reservation.
///
/// This is the from-scratch reference implementation (kept for the
/// equivalence property tests); the scheduler hot path runs
/// [`CapacityTimeline::plan_conservative`](crate::timeline::CapacityTimeline::plan_conservative),
/// which produces the identical plan from the incrementally-maintained
/// availability profile.
pub fn conservative_plan(
    queue: &[QueuedJob],
    now: SimTime,
    free_now: u32,
    total_nodes: u32,
    running: &[RunningView],
) -> Vec<SimTime> {
    // Capacity-release timeline from running jobs' estimates.
    let releases: Vec<(SimTime, u32)> =
        running.iter().map(|r| (r.estimated_end, r.nodes)).collect();
    // Reservations made so far: (start, est_end, nodes).
    let mut planned: Vec<(SimTime, SimTime, u32)> = Vec::new();
    let mut out = Vec::with_capacity(queue.len());
    for job in queue {
        if job.nodes > total_nodes {
            out.push(SimTime::MAX);
            continue;
        }
        // Candidate starts: now plus every future capacity edge.
        let mut candidates: Vec<SimTime> = Vec::with_capacity(1 + releases.len() + planned.len());
        candidates.push(now);
        candidates.extend(releases.iter().map(|&(t, _)| t));
        candidates.extend(planned.iter().map(|&(_, e, _)| e));
        candidates.sort_unstable();
        candidates.dedup();
        let start = candidates
            .into_iter()
            .find(|&s| {
                // Enough nodes free over [s, s + estimate)? With stepwise
                // capacity, checking at `s` and at each edge inside the
                // window suffices; edges only *increase* capacity from
                // releases and *decrease* it at planned starts, so check
                // both kinds inside the window.
                let window_end = s + job.estimate;
                let free_at = |t: SimTime| -> i64 {
                    let mut free = free_now as i64;
                    for &(e, n) in &releases {
                        if e <= t {
                            free += n as i64;
                        }
                    }
                    for &(ps, pe, pn) in &planned {
                        if ps <= t && t < pe {
                            free -= pn as i64;
                        }
                    }
                    free
                };
                if free_at(s) < job.nodes as i64 {
                    return false;
                }
                // Planned starts inside our window can steal nodes.
                planned
                    .iter()
                    .filter(|&&(ps, _, _)| ps > s && ps < window_end)
                    .all(|&(ps, _, _)| free_at(ps) >= job.nodes as i64)
            })
            .unwrap_or(SimTime::MAX);
        out.push(start);
        if start != SimTime::MAX {
            planned.push((start, start + job.estimate, job.nodes));
        }
    }
    out
}

/// The earliest *future* reservation in a conservative plan: the next
/// instant at which the plan can start a job with time alone (no
/// completion/submission event needed, because reservations mature on
/// running jobs' estimated ends). `None` when no queued job holds a
/// finite future reservation — the plan is then fully event-bound.
///
/// This is the scheduler's `next_decision_time` hint for the engine's
/// event core: with a frozen running set and queue, the plan's feasibility
/// tests do not depend on `now`, so no placement can fire strictly before
/// the earliest planned start.
pub fn next_planned_start(plan: &[SimTime], now: SimTime) -> Option<SimTime> {
    plan.iter()
        .copied()
        .filter(|&s| s > now && s != SimTime::MAX)
        .min()
}

/// The head job's reservation: when it can start at the latest-known
/// estimates, and how many nodes remain unused at that moment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reservation {
    /// Earliest time the blocked head job can start (the "shadow time").
    pub shadow_time: SimTime,
    /// Nodes left over at `shadow_time` after the head takes its share —
    /// a backfill job of at most this width can never delay the head.
    pub extra_nodes: u32,
}

/// Compute the EASY reservation for a blocked head job needing
/// `head_nodes`, given `free_now` free nodes and the running jobs' node
/// counts and estimated ends.
///
/// Walks the distinct estimated ends in ascending order, accumulating
/// freed nodes until the head fits; all estimates maturing at the same
/// instant release together, so `extra_nodes` is well-defined under ties.
/// Returns `None` when the head can never fit (more nodes than the
/// machine will ever free — a config error upstream).
///
/// This is the from-scratch reference for
/// [`CapacityTimeline::easy_reservation`](crate::timeline::CapacityTimeline::easy_reservation),
/// which answers the same query without the per-call collect + sort.
pub fn easy_reservation(
    head_nodes: u32,
    free_now: u32,
    running: &[RunningView],
) -> Option<Reservation> {
    debug_assert!(head_nodes > free_now, "reservation only for blocked heads");
    let mut ends: Vec<(SimTime, u32)> =
        running.iter().map(|r| (r.estimated_end, r.nodes)).collect();
    ends.sort_unstable_by_key(|(t, _)| *t);
    let mut avail = free_now;
    let mut i = 0;
    while i < ends.len() {
        let end = ends[i].0;
        while i < ends.len() && ends[i].0 == end {
            avail += ends[i].1;
            i += 1;
        }
        if avail >= head_nodes {
            return Some(Reservation {
                shadow_time: end,
                extra_nodes: avail - head_nodes,
            });
        }
    }
    None
}

/// Whether `candidate` may backfill under EASY: it must fit in the free
/// nodes now, and either complete before the reservation or be narrow
/// enough to use only the reservation's spare nodes.
pub fn easy_admits(candidate: &QueuedJob, now: SimTime, free_now: u32, res: &Reservation) -> bool {
    if candidate.nodes > free_now {
        return false;
    }
    let ends_by = now + candidate.estimate;
    ends_by <= res.shadow_time || candidate.nodes <= res.extra_nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::{AccountId, JobId, SimDuration};

    fn running(id: u64, nodes: u32, end: i64) -> RunningView {
        RunningView {
            id: JobId(id),
            nodes,
            estimated_end: SimTime::seconds(end),
        }
    }

    fn qj(nodes: u32, est: i64) -> QueuedJob {
        QueuedJob {
            id: JobId(99),
            account: AccountId(0),
            submit: SimTime::ZERO,
            nodes,
            estimate: SimDuration::seconds(est),
            priority: 0.0,
            ml_score: None,
            recorded_start: SimTime::ZERO,
            recorded_nodes: None,
        }
    }

    #[test]
    fn parse_accepts_artifact_spellings() {
        assert_eq!(BackfillKind::parse("no-backfill"), Some(BackfillKind::None));
        assert_eq!(
            BackfillKind::parse("first-fit"),
            Some(BackfillKind::FirstFit)
        );
        assert_eq!(
            BackfillKind::parse("firstfit"),
            Some(BackfillKind::FirstFit)
        );
        assert_eq!(BackfillKind::parse("easy"), Some(BackfillKind::Easy));
        assert_eq!(BackfillKind::parse("zeno"), None);
    }

    #[test]
    fn reservation_at_first_sufficient_completion() {
        // Head needs 10; 2 free now. Jobs of 4 and 6 end at t=100 and t=200.
        let res = easy_reservation(10, 2, &[running(1, 4, 100), running(2, 6, 200)]).unwrap();
        // After t=100: 2+4=6 < 10. After t=200: 12 ≥ 10 → shadow at 200.
        assert_eq!(res.shadow_time, SimTime::seconds(200));
        assert_eq!(res.extra_nodes, 2);
    }

    #[test]
    fn reservation_orders_by_end_time_not_input_order() {
        let res = easy_reservation(5, 1, &[running(1, 8, 500), running(2, 4, 50)]).unwrap();
        assert_eq!(
            res.shadow_time,
            SimTime::seconds(50),
            "earlier end suffices"
        );
        assert_eq!(res.extra_nodes, 0);
    }

    #[test]
    fn impossible_reservation_is_none() {
        assert_eq!(easy_reservation(100, 1, &[running(1, 4, 10)]), None);
    }

    #[test]
    fn tied_ends_release_together() {
        // Two jobs end at the same instant; the crossing happens inside
        // the tie group, so the whole group's nodes back the reservation.
        let res = easy_reservation(5, 0, &[running(1, 3, 100), running(2, 4, 100)]).unwrap();
        assert_eq!(res.shadow_time, SimTime::seconds(100));
        assert_eq!(res.extra_nodes, 2, "both tied releases count");
    }

    #[test]
    fn easy_admits_short_jobs_ending_before_shadow() {
        let res = Reservation {
            shadow_time: SimTime::seconds(1000),
            extra_nodes: 0,
        };
        let short = qj(3, 500);
        let long = qj(3, 5000);
        assert!(easy_admits(&short, SimTime::ZERO, 4, &res));
        assert!(!easy_admits(&long, SimTime::ZERO, 4, &res));
    }

    #[test]
    fn easy_admits_narrow_long_jobs_via_extra_nodes() {
        let res = Reservation {
            shadow_time: SimTime::seconds(10),
            extra_nodes: 4,
        };
        let narrow_long = qj(4, 1_000_000);
        let wide_long = qj(5, 1_000_000);
        assert!(easy_admits(&narrow_long, SimTime::ZERO, 8, &res));
        assert!(!easy_admits(&wide_long, SimTime::ZERO, 8, &res));
    }

    #[test]
    fn easy_never_admits_what_does_not_fit_now() {
        let res = Reservation {
            shadow_time: SimTime::seconds(10_000),
            extra_nodes: 50,
        };
        assert!(!easy_admits(&qj(10, 1), SimTime::ZERO, 9, &res));
    }

    #[test]
    fn boundary_job_ending_exactly_at_shadow_is_admitted() {
        let res = Reservation {
            shadow_time: SimTime::seconds(100),
            extra_nodes: 0,
        };
        assert!(easy_admits(&qj(2, 100), SimTime::ZERO, 2, &res));
        assert!(!easy_admits(&qj(2, 101), SimTime::ZERO, 2, &res));
    }

    #[test]
    fn parse_conservative() {
        assert_eq!(
            BackfillKind::parse("conservative"),
            Some(BackfillKind::Conservative)
        );
    }

    #[test]
    fn conservative_plan_immediate_when_free() {
        let q = vec![qj(4, 100), qj(4, 100)];
        let plan = conservative_plan(&q, SimTime::ZERO, 8, 8, &[]);
        assert_eq!(plan, vec![SimTime::ZERO, SimTime::ZERO]);
    }

    #[test]
    fn conservative_plan_serializes_conflicts() {
        // 8-node machine, both jobs want all of it: second reserved at the
        // first's estimated end.
        let q = vec![qj(8, 100), qj(8, 50)];
        let plan = conservative_plan(&q, SimTime::ZERO, 8, 8, &[]);
        assert_eq!(plan[0], SimTime::ZERO);
        assert_eq!(plan[1], SimTime::seconds(100));
    }

    #[test]
    fn conservative_backfill_never_delays_earlier_reservations() {
        // Head blocked behind a running job; a short job may only start if
        // it ends before the head's reserved start.
        let running = vec![running(1, 6, 100)];
        let q = vec![qj(8, 100), qj(2, 50), qj(2, 500)];
        let plan = conservative_plan(&q, SimTime::ZERO, 2, 8, &running);
        assert_eq!(plan[0], SimTime::seconds(100), "head reserved at release");
        assert_eq!(plan[1], SimTime::ZERO, "short job fits before the head");
        assert!(
            plan[2] >= SimTime::seconds(100),
            "long job would delay the head, must wait: {:?}",
            plan[2]
        );
    }

    #[test]
    fn next_planned_start_skips_past_and_impossible() {
        let now = SimTime::seconds(100);
        let plan = vec![
            SimTime::seconds(50),  // already matured (placement attempted)
            SimTime::seconds(100), // == now: not a *future* deadline
            SimTime::seconds(400),
            SimTime::seconds(250),
            SimTime::MAX, // can never run
        ];
        assert_eq!(next_planned_start(&plan, now), Some(SimTime::seconds(250)));
        assert_eq!(next_planned_start(&[SimTime::MAX], now), None);
        assert_eq!(next_planned_start(&[], now), None);
    }

    #[test]
    fn conservative_plan_marks_impossible_jobs() {
        let q = vec![qj(100, 10)];
        let plan = conservative_plan(&q, SimTime::ZERO, 8, 8, &[]);
        assert_eq!(plan[0], SimTime::MAX);
    }

    #[test]
    fn conservative_plan_respects_future_capacity_dips() {
        // One node free now; the earlier job reserves 8 nodes at t=100 for
        // 100 s. A 1-node job with a 150 s estimate starting now would
        // still hold its node across t=100 — that is fine (8 reserved of
        // 8 total? no: 1 busy). Machine: 8 total, 7 running until t=100.
        let running = vec![running(1, 7, 100)];
        let q = vec![qj(8, 100), qj(1, 150)];
        let plan = conservative_plan(&q, SimTime::ZERO, 1, 8, &running);
        assert_eq!(plan[0], SimTime::seconds(100));
        // The 1-node job overlaps the head's full-machine reservation →
        // cannot start now; earliest is after the head's estimated end.
        assert_eq!(plan[1], SimTime::seconds(200));
    }
}
