//! Scheduler abstraction and built-in scheduling (§3.2.4–§3.2.5).
//!
//! The engine calls one [`SchedulerBackend`] per tick with the current
//! [`JobQueue`], the [`ResourceManager`], and a [`SchedContext`] describing
//! running jobs and (optionally) account statistics. The backend returns
//! [`Placement`]s; the engine starts the placed jobs. This split — policy
//! decides, resource manager places — is the refactor the paper credits
//! with enabling external schedulers.
//!
//! Built-in policies: FCFS, SJF, LJF, priority, replay (the original RAPS
//! mechanism), the account-incentive policies of §4.3
//! ([`experimental`]), and the ML score policy of §4.4. Backfill options:
//! none, first-fit, and EASY \[36\].

pub mod backfill;
pub mod builtin;
pub mod experimental;
pub mod policy;
pub mod power_cap;
pub mod queue;
pub mod resource_manager;
pub mod scheduler;
pub mod timeline;

pub use backfill::BackfillKind;
pub use builtin::BuiltinScheduler;
pub use experimental::ExperimentalScheduler;
pub use policy::PolicyKind;
pub use power_cap::PowerCapScheduler;
pub use queue::{JobQueue, OrderStamp, QueuedJob};
pub use resource_manager::ResourceManager;
pub use scheduler::{
    BuiltinSchedulerState, ExternalSchedulerState, Placement, PlacementPath,
    PowerCapSchedulerState, RunningView, SchedContext, SchedulerBackend, SchedulerState,
    SchedulerStats,
};
pub use timeline::{CapacityTimeline, PlanScratch, TimelineState};
