//! The scheduler-facing job queue.

use serde::{Deserialize, Serialize};
use sraps_types::{AccountId, JobId, NodeSet, SimDuration, SimTime};

/// What the scheduler knows about one queued job — deliberately *only*
/// pre-submission information plus the recorded fields replay needs
/// (§3.2.3: "the scheduler is not aware of jobs not yet in the queue", and
/// knows nothing a real scheduler would not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    pub id: JobId,
    pub account: AccountId,
    pub submit: SimTime,
    pub nodes: u32,
    /// Runtime estimate (wall-time limit) used for reservations.
    pub estimate: SimDuration,
    /// Site/dataset priority.
    pub priority: f64,
    /// ML pipeline score, if the inference pass annotated this job (§4.4).
    pub ml_score: Option<f64>,
    /// Recorded start (replay only).
    pub recorded_start: SimTime,
    /// Recorded placement (replay only).
    pub recorded_nodes: Option<NodeSet>,
}

/// FIFO-by-submission queue that policies reorder in place each tick.
///
/// The queue maintains its aggregate node demand incrementally (every
/// mutation goes through [`JobQueue::push`] / [`JobQueue::remove_placed`]),
/// so the engine's per-tick `queue_demand` history is O(1) instead of
/// re-summing the queue.
#[derive(Debug, Clone, Default)]
pub struct JobQueue {
    jobs: Vec<QueuedJob>,
    /// Σ `nodes` over queued jobs, kept in sync by push/remove.
    demand_nodes: u64,
}

impl JobQueue {
    pub fn new() -> Self {
        JobQueue::default()
    }

    pub fn push(&mut self, job: QueuedJob) {
        self.demand_nodes += job.nodes as u64;
        self.jobs.push(job);
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn jobs(&self) -> &[QueuedJob] {
        &self.jobs
    }

    /// Aggregate node demand of all queued jobs.
    pub fn demand_nodes(&self) -> u64 {
        self.demand_nodes
    }

    /// Remove the queued entries whose ids are in `placed` (called by the
    /// engine after starting them).
    pub fn remove_placed(&mut self, placed: &[JobId]) {
        if placed.is_empty() {
            return;
        }
        let demand = &mut self.demand_nodes;
        self.jobs.retain(|j| {
            let keep = !placed.contains(&j.id);
            if !keep {
                *demand -= j.nodes as u64;
            }
            keep
        });
    }

    /// Stable sort by a policy key, breaking ties by submit time then id so
    /// results are deterministic across runs.
    pub fn sort_by_key_stable<F: FnMut(&QueuedJob) -> f64>(&mut self, mut key: F) {
        self.jobs.sort_by(|a, b| {
            key(a)
                .partial_cmp(&key(b))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.submit.cmp(&b.submit))
                .then(a.id.cmp(&b.id))
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn qj(id: u64, submit: i64, nodes: u32, est: i64, prio: f64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(0),
            submit: SimTime::seconds(submit),
            nodes,
            estimate: SimDuration::seconds(est),
            priority: prio,
            ml_score: None,
            recorded_start: SimTime::seconds(submit),
            recorded_nodes: None,
        }
    }

    #[test]
    fn push_and_remove_placed() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 0.0));
        q.push(qj(2, 1, 1, 10, 0.0));
        q.push(qj(3, 2, 1, 10, 0.0));
        q.remove_placed(&[JobId(2)]);
        assert_eq!(q.len(), 2);
        assert!(q.jobs().iter().all(|j| j.id != JobId(2)));
    }

    #[test]
    fn demand_nodes_tracks_mutations() {
        let mut q = JobQueue::new();
        assert_eq!(q.demand_nodes(), 0);
        q.push(qj(1, 0, 4, 10, 0.0));
        q.push(qj(2, 1, 16, 10, 0.0));
        q.push(qj(3, 2, 1, 10, 0.0));
        assert_eq!(q.demand_nodes(), 21);
        q.remove_placed(&[JobId(2), JobId(3)]);
        assert_eq!(q.demand_nodes(), 4);
        q.sort_by_key_stable(|j| j.priority);
        assert_eq!(q.demand_nodes(), 4, "sorting must not change demand");
        q.remove_placed(&[JobId(1)]);
        assert_eq!(q.demand_nodes(), 0);
    }

    #[test]
    fn sort_is_stable_and_deterministic() {
        let mut q = JobQueue::new();
        q.push(qj(2, 5, 1, 10, 1.0));
        q.push(qj(1, 5, 1, 10, 1.0)); // same key & submit → id breaks tie
        q.push(qj(3, 0, 1, 10, 1.0));
        q.sort_by_key_stable(|j| j.priority);
        let ids: Vec<u64> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }
}
