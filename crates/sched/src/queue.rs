//! The scheduler-facing job queue.

use crate::policy::PolicyKind;
use serde::{Deserialize, Serialize};
use sraps_types::{AccountId, JobId, NodeSet, SimDuration, SimTime};
use std::cmp::Ordering;

/// What the scheduler knows about one queued job — deliberately *only*
/// pre-submission information plus the recorded fields replay needs
/// (§3.2.3: "the scheduler is not aware of jobs not yet in the queue", and
/// knows nothing a real scheduler would not).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QueuedJob {
    pub id: JobId,
    pub account: AccountId,
    pub submit: SimTime,
    pub nodes: u32,
    /// Runtime estimate (wall-time limit) used for reservations.
    pub estimate: SimDuration,
    /// Site/dataset priority.
    pub priority: f64,
    /// ML pipeline score, if the inference pass annotated this job (§4.4).
    pub ml_score: Option<f64>,
    /// Recorded start (replay only).
    pub recorded_start: SimTime,
    /// Recorded placement (replay only).
    pub recorded_nodes: Option<NodeSet>,
}

/// Identity of the key function a sorted [`JobQueue`] reflects: the
/// policy, plus a version for key sources that can change between calls
/// (account statistics fold in completed jobs, so account-policy keys are
/// versioned by the scheduler's completion count; every other builtin key
/// is a pure function of immutable job fields and stays at epoch 0).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrderStamp {
    pub policy: PolicyKind,
    pub key_epoch: u64,
}

/// FIFO-by-submission queue that policies reorder in place each tick.
///
/// The queue maintains its aggregate node demand incrementally (every
/// mutation goes through [`JobQueue::push`] / [`JobQueue::remove_placed`]),
/// so the engine's per-tick `queue_demand` history is O(1) instead of
/// re-summing the queue.
///
/// Policy order is maintained incrementally too: builtin sort keys are
/// time-invariant between queue mutations (PR 4 made even aging a pure
/// function of the job), so once sorted under an [`OrderStamp`], only
/// jobs pushed since need placing — [`JobQueue::ensure_order_by`] inserts
/// them by binary search and falls back to a full stable sort only when
/// the stamp (policy or key version) actually changes.
/// Serialization (engine snapshots) round-trips every field, including
/// the sorted-prefix length and order stamp, so a restored queue resumes
/// the incremental-order fast path without a re-sort.
#[derive(Debug, Default, Serialize, Deserialize)]
pub struct JobQueue {
    jobs: Vec<QueuedJob>,
    /// Σ `nodes` over queued jobs, kept in sync by push/remove.
    demand_nodes: u64,
    /// `jobs[..sorted_len]` is in `stamp` order; entries past it are
    /// unsorted arrivals awaiting the next `ensure_order_by`.
    sorted_len: usize,
    /// Which key function the sorted prefix reflects, if any.
    stamp: Option<OrderStamp>,
}

impl Clone for JobQueue {
    fn clone(&self) -> Self {
        JobQueue {
            jobs: self.jobs.clone(),
            demand_nodes: self.demand_nodes,
            sorted_len: self.sorted_len,
            stamp: self.stamp,
        }
    }

    /// Reuses `self`'s job buffer — the power-cap scheduler mirrors the
    /// real queue into its shadow copy every invocation, so this keeps
    /// that mirror allocation-free in steady state. The order stamp comes
    /// along, so a shadow cloned from an already-ordered queue needs no
    /// re-sort either.
    fn clone_from(&mut self, source: &Self) {
        self.jobs.clone_from(&source.jobs);
        self.demand_nodes = source.demand_nodes;
        self.sorted_len = source.sorted_len;
        self.stamp = source.stamp;
    }
}

impl JobQueue {
    pub fn new() -> Self {
        JobQueue::default()
    }

    pub fn push(&mut self, job: QueuedJob) {
        self.demand_nodes += job.nodes as u64;
        self.jobs.push(job);
    }

    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    pub fn jobs(&self) -> &[QueuedJob] {
        &self.jobs
    }

    /// Aggregate node demand of all queued jobs.
    pub fn demand_nodes(&self) -> u64 {
        self.demand_nodes
    }

    /// Remove the queued entries whose ids are in `placed` (called by the
    /// engine after starting them). Removal preserves relative order, so
    /// the sorted prefix stays sorted; only its length shrinks.
    pub fn remove_placed(&mut self, placed: &[JobId]) {
        if placed.is_empty() {
            return;
        }
        let demand = &mut self.demand_nodes;
        let sorted_len = self.sorted_len;
        let mut index = 0usize;
        let mut removed_sorted = 0usize;
        self.jobs.retain(|j| {
            let keep = !placed.contains(&j.id);
            if !keep {
                *demand -= j.nodes as u64;
                if index < sorted_len {
                    removed_sorted += 1;
                }
            }
            index += 1;
            keep
        });
        self.sorted_len -= removed_sorted;
    }

    /// Stable sort by a policy key, breaking ties by submit time then id so
    /// results are deterministic across runs.
    ///
    /// This is the from-scratch path; it forgets any incremental-order
    /// stamp (the key's identity is unknown here). Schedulers use
    /// [`JobQueue::ensure_order_by`] instead.
    pub fn sort_by_key_stable<F: FnMut(&QueuedJob) -> f64>(&mut self, mut key: F) {
        self.jobs.sort_by(|a, b| Self::cmp_by(&mut key, a, b));
        self.stamp = None;
        self.sorted_len = self.jobs.len();
    }

    /// The canonical policy order: ascending key, ties by submit time then
    /// id. Ids are unique, so this is a strict total order — which is why
    /// binary insertion reproduces the stable sort exactly.
    fn cmp_by<F: FnMut(&QueuedJob) -> f64>(key: &mut F, a: &QueuedJob, b: &QueuedJob) -> Ordering {
        key(a)
            .partial_cmp(&key(b))
            .unwrap_or(Ordering::Equal)
            .then(a.submit.cmp(&b.submit))
            .then(a.id.cmp(&b.id))
    }

    /// Establish the total order defined by `key` (ties by submit, then
    /// id), incrementally when possible:
    ///
    /// * stamp matches, no arrivals — nothing to do (the no-op scheduler
    ///   call's path: zero work, zero allocation);
    /// * stamp matches — binary-insert each arrival into the sorted
    ///   prefix (O(log n) key probes each, one `rotate_right` memmove);
    /// * stamp differs (policy switched or the key source was re-versioned)
    ///   — full stable sort, and the stamp is adopted.
    ///
    /// The result is always exactly what [`JobQueue::sort_by_key_stable`]
    /// would produce with the same key.
    pub fn ensure_order_by<F: FnMut(&QueuedJob) -> f64>(&mut self, stamp: OrderStamp, mut key: F) {
        if self.stamp != Some(stamp) {
            sraps_obs::bump(sraps_obs::Counter::QueueResorts);
            self.jobs.sort_by(|a, b| Self::cmp_by(&mut key, a, b));
            self.stamp = Some(stamp);
            self.sorted_len = self.jobs.len();
            return;
        }
        sraps_obs::add(
            sraps_obs::Counter::QueueBinaryInserts,
            (self.jobs.len() - self.sorted_len) as u64,
        );
        for i in self.sorted_len..self.jobs.len() {
            let new_key = key(&self.jobs[i]);
            let (submit, id) = (self.jobs[i].submit, self.jobs[i].id);
            let pos = self.jobs[..i].partition_point(|p| {
                key(p)
                    .partial_cmp(&new_key)
                    .unwrap_or(Ordering::Equal)
                    .then(p.submit.cmp(&submit))
                    .then(p.id.cmp(&id))
                    != Ordering::Greater
            });
            self.jobs[pos..=i].rotate_right(1);
        }
        self.sorted_len = self.jobs.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    pub(crate) fn qj(id: u64, submit: i64, nodes: u32, est: i64, prio: f64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(0),
            submit: SimTime::seconds(submit),
            nodes,
            estimate: SimDuration::seconds(est),
            priority: prio,
            ml_score: None,
            recorded_start: SimTime::seconds(submit),
            recorded_nodes: None,
        }
    }

    #[test]
    fn push_and_remove_placed() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 0.0));
        q.push(qj(2, 1, 1, 10, 0.0));
        q.push(qj(3, 2, 1, 10, 0.0));
        q.remove_placed(&[JobId(2)]);
        assert_eq!(q.len(), 2);
        assert!(q.jobs().iter().all(|j| j.id != JobId(2)));
    }

    #[test]
    fn demand_nodes_tracks_mutations() {
        let mut q = JobQueue::new();
        assert_eq!(q.demand_nodes(), 0);
        q.push(qj(1, 0, 4, 10, 0.0));
        q.push(qj(2, 1, 16, 10, 0.0));
        q.push(qj(3, 2, 1, 10, 0.0));
        assert_eq!(q.demand_nodes(), 21);
        q.remove_placed(&[JobId(2), JobId(3)]);
        assert_eq!(q.demand_nodes(), 4);
        q.sort_by_key_stable(|j| j.priority);
        assert_eq!(q.demand_nodes(), 4, "sorting must not change demand");
        q.remove_placed(&[JobId(1)]);
        assert_eq!(q.demand_nodes(), 0);
    }

    #[test]
    fn sort_is_stable_and_deterministic() {
        let mut q = JobQueue::new();
        q.push(qj(2, 5, 1, 10, 1.0));
        q.push(qj(1, 5, 1, 10, 1.0)); // same key & submit → id breaks tie
        q.push(qj(3, 0, 1, 10, 1.0));
        q.sort_by_key_stable(|j| j.priority);
        let ids: Vec<u64> = q.jobs().iter().map(|j| j.id.0).collect();
        assert_eq!(ids, vec![3, 1, 2]);
    }

    fn stamp() -> OrderStamp {
        OrderStamp {
            policy: PolicyKind::Priority,
            key_epoch: 0,
        }
    }

    fn ids(q: &JobQueue) -> Vec<u64> {
        q.jobs().iter().map(|j| j.id.0).collect()
    }

    #[test]
    fn ensure_order_inserts_arrivals_like_a_full_sort() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 10, 3.0));
        q.push(qj(2, 1, 1, 10, 1.0));
        q.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&q), vec![2, 1]);
        // Arrivals land at their sorted positions without a re-sort.
        q.push(qj(3, 2, 1, 10, 2.0));
        q.push(qj(4, 3, 1, 10, 0.5));
        q.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&q), vec![4, 2, 3, 1]);
        // And match what the stable sort would say.
        let mut full = q.clone();
        full.sort_by_key_stable(|j| j.priority);
        assert_eq!(ids(&q), ids(&full));
    }

    #[test]
    fn ensure_order_resorts_on_stamp_change() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 1, 300, 0.0));
        q.push(qj(2, 1, 1, 100, 9.0));
        q.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&q), vec![1, 2]);
        // New epoch: keys changed identity → full re-sort under new key.
        let bumped = OrderStamp {
            policy: PolicyKind::Priority,
            key_epoch: 1,
        };
        q.ensure_order_by(bumped, |j| -j.priority);
        assert_eq!(ids(&q), vec![2, 1]);
    }

    #[test]
    fn removal_keeps_the_sorted_prefix_consistent() {
        let mut q = JobQueue::new();
        for (id, prio) in [(1, 5.0), (2, 1.0), (3, 3.0), (4, 4.0)] {
            q.push(qj(id, id as i64, 1, 10, prio));
        }
        q.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&q), vec![2, 3, 4, 1]);
        q.remove_placed(&[JobId(3), JobId(1)]);
        q.push(qj(5, 9, 1, 10, 2.0));
        q.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&q), vec![2, 5, 4]);
    }

    #[test]
    fn clone_carries_the_order_stamp() {
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 2, 10, 1.0));
        q.push(qj(2, 1, 3, 10, 0.0));
        q.ensure_order_by(stamp(), |j| j.priority);
        let mut shadow = JobQueue::new();
        shadow.clone_from(&q);
        assert_eq!(ids(&shadow), ids(&q));
        assert_eq!(shadow.demand_nodes(), q.demand_nodes());
        // The shadow sees the same stamp, so ensuring order is a no-op
        // that cannot scramble anything.
        shadow.ensure_order_by(stamp(), |j| j.priority);
        assert_eq!(ids(&shadow), ids(&q));
    }
}
