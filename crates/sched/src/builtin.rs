//! The built-in scheduler: policy ordering + backfill + placement.
//!
//! This is the simulation's hot path on saturated machines, so every
//! per-call rebuild is replaced with incrementally-maintained state:
//! policy order lives in the queue ([`JobQueue::ensure_order_by`]),
//! capacity-release information lives in a [`CapacityTimeline`] fed by
//! the engine's start/complete notifications, and the conservative
//! planner's working buffers persist across calls ([`PlanScratch`]). A
//! scheduler call that places nothing performs no allocation at all.

use crate::backfill::{easy_admits, next_planned_start, BackfillKind};
use crate::policy::PolicyKind;
use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use crate::scheduler::{
    snapshot_unsupported, BuiltinSchedulerState, Placement, PlacementPath, SchedContext,
    SchedulerBackend, SchedulerState, SchedulerStats,
};
use crate::timeline::{CapacityTimeline, PlanScratch};
use sraps_types::{JobId, Result, SimTime};

/// The default scheduler (`--scheduler default`): one of the built-in
/// policies combined with a backfill strategy.
#[derive(Debug, Clone)]
pub struct BuiltinScheduler {
    policy: PolicyKind,
    backfill: BackfillKind,
    stats: SchedulerStats,
    /// [`SchedulerBackend::next_decision_time`] answer, refreshed by every
    /// `schedule` call (the engine consults it right after one):
    /// * none/first-fit/EASY — `None`: every built-in policy orders by a
    ///   time-invariant key, EASY admission only hardens as `now`
    ///   advances, so decisions change only at events;
    /// * replay — earliest future recorded start still in the queue;
    /// * conservative — earliest future planned reservation, or "pin to
    ///   every tick" when a matured reservation could not actually be
    ///   allocated (estimates overran: the plan's phantom free nodes
    ///   shift with `now`, so no sound bound exists).
    decision_hint: Option<SimTime>,
    /// Free-capacity timeline over the running jobs' estimated ends, kept
    /// in lockstep with the engine via the start/complete notifications.
    timeline: CapacityTimeline,
    /// Completions seen so far: versions the account-policy sort keys
    /// (account statistics only move when a job completes).
    completion_epoch: u64,
    /// Conservative-plan working buffers, reused across calls.
    plan: PlanScratch,
    /// Scratch for the ids handed to [`JobQueue::remove_placed`].
    placed_ids: Vec<JobId>,
}

impl BuiltinScheduler {
    pub fn new(policy: PolicyKind, backfill: BackfillKind) -> Self {
        BuiltinScheduler {
            policy,
            backfill,
            stats: SchedulerStats::default(),
            decision_hint: None,
            timeline: CapacityTimeline::new(),
            completion_epoch: 0,
            plan: PlanScratch::new(),
            placed_ids: Vec::new(),
        }
    }

    pub fn policy(&self) -> PolicyKind {
        self.policy
    }

    pub fn backfill(&self) -> BackfillKind {
        self.backfill
    }

    /// Establish this scheduler's policy order on `queue` (incremental:
    /// a no-op when nothing was pushed and no key changed). The power-cap
    /// wrapper calls this on the *real* queue before mirroring it, so the
    /// shadow copy arrives pre-ordered and the inner pass re-sorts
    /// nothing.
    pub fn order_queue(&self, queue: &mut JobQueue, ctx: &SchedContext<'_>) {
        if self.policy != PolicyKind::Replay {
            self.policy
                .order_incremental(queue, ctx, self.completion_epoch);
        }
    }

    /// Replay placement: jobs start exactly at their recorded start, on
    /// their recorded nodes when those are free (always true for
    /// self-consistent traces); otherwise fall back to first-fit and count
    /// the deviation.
    fn schedule_replay(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        out: &mut Vec<Placement>,
    ) {
        // Queued replay jobs start exactly at their recorded start (or
        // wait for capacity, which only completions — events — release),
        // so the earliest *future* recorded start bounds the next
        // time-driven decision change. Jobs already due are either placed
        // below or stuck on capacity, never a time deadline.
        self.decision_hint = queue
            .jobs()
            .iter()
            .map(|j| j.recorded_start)
            .filter(|&rs| rs > now)
            .min();
        for job in queue.jobs() {
            if job.recorded_start > now {
                continue;
            }
            let (nodes, path) = match &job.recorded_nodes {
                Some(set) if rm.allocate_exact(set).is_ok() => {
                    (set.clone(), PlacementPath::Ordered)
                }
                Some(_) => {
                    // Recorded nodes busy (capture-window edge) → fall back
                    // to count-based placement and flag the deviation.
                    match rm.allocate(job.nodes) {
                        Ok(set) => (set, PlacementPath::RecordedFallback),
                        Err(_) => continue, // machine full; retry next tick
                    }
                }
                // Summary datasets publish no node lists; count-based
                // placement is the expected path, not a fallback.
                None => match rm.allocate(job.nodes) {
                    Ok(set) => (set, PlacementPath::Ordered),
                    Err(_) => continue,
                },
            };
            out.push(Placement::via(job.id, nodes, path));
        }
    }

    /// Scheduled placement: policy order, then walk the queue placing jobs
    /// according to the backfill rule.
    fn schedule_ordered(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) {
        self.policy
            .order_incremental(queue, ctx, self.completion_epoch);
        self.stats.recomputations += 1;

        if self.backfill == BackfillKind::Conservative {
            return self.schedule_conservative(now, queue, rm, out);
        }
        // Every built-in policy key is time-invariant between events
        // (aging is uniform-rate, so pairwise order never changes), and
        // none/first-fit/EASY admission can only *harden* as `now`
        // advances against a fixed reservation: no internal deadline.
        self.decision_hint = None;

        let mut reservation = None;
        // Nodes virtually consumed by jobs placed in this pass are already
        // reflected in `rm`, so free_count is always current.
        for job in queue.jobs() {
            if reservation.is_none() {
                // Queue-order phase: place until the head blocks.
                if rm.can_allocate(job.nodes) {
                    if let Ok(nodes) = rm.allocate(job.nodes) {
                        out.push(Placement::new(job.id, nodes));
                        continue;
                    }
                }
                // Head blocked: stop (none), or switch to a backfill phase.
                match self.backfill {
                    BackfillKind::None => break,
                    BackfillKind::FirstFit => {
                        // Sentinel reservation admitting any fitting job.
                        reservation = Some(crate::backfill::Reservation {
                            shadow_time: SimTime::MAX,
                            extra_nodes: u32::MAX,
                        });
                        continue;
                    }
                    BackfillKind::Easy => {
                        match self.timeline.easy_reservation(job.nodes, rm.free_count()) {
                            Some(res) => {
                                reservation = Some(res);
                                continue;
                            }
                            // Head cannot ever fit (wider than machine):
                            // skip it and keep scheduling in order.
                            None => continue,
                        }
                    }
                    BackfillKind::Conservative => unreachable!("handled above"),
                }
            }
            // Backfill phase. With zero free nodes no candidate can be
            // admitted (`easy_admits` rejects on width first) and
            // admission is the only thing that mutates reservation or
            // occupancy state — the rest of the walk is a provable no-op.
            // On a saturated machine this truncates the O(queue) scan to
            // the handful of jobs that fit before capacity ran out.
            if rm.free_count() == 0 {
                break;
            }
            let res = reservation.as_mut().expect("set when head blocked");
            if easy_admits(job, now, rm.free_count(), res) {
                // A job that outlives the shadow time was admitted on the
                // strength of the reservation's spare nodes — consume them,
                // or a train of long narrow jobs would eat the head's
                // reserved nodes and starve it.
                if now + job.estimate > res.shadow_time {
                    res.extra_nodes = res.extra_nodes.saturating_sub(job.nodes);
                }
                if let Ok(nodes) = rm.allocate(job.nodes) {
                    out.push(Placement::via(job.id, nodes, PlacementPath::Backfilled));
                }
            }
        }
    }

    /// Conservative backfill: plan a reservation for *every* queued job in
    /// policy order, then start exactly those whose reserved time has come.
    fn schedule_conservative(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        out: &mut Vec<Placement>,
    ) {
        let mut scratch = std::mem::take(&mut self.plan);
        self.timeline.plan_conservative(
            queue.jobs(),
            now,
            rm.free_count(),
            rm.total_nodes(),
            &mut scratch,
        );
        let mut unallocatable_due = false;
        let mut placed_any = false;
        for (job, &start) in queue.jobs().iter().zip(scratch.plan()) {
            if start > now {
                continue;
            }
            if let Ok(nodes) = rm.allocate(job.nodes) {
                // Everything after the head position counts as backfilled.
                let path = if placed_any {
                    PlacementPath::Backfilled
                } else {
                    PlacementPath::Ordered
                };
                placed_any = true;
                out.push(Placement::via(job.id, nodes, path));
            } else {
                // The plan thought this reservation matured (estimated
                // ends counted as releases) but the nodes are still busy:
                // the phantom capacity now slides with `now`, re-planning
                // each tick, so later jobs' reservations are unstable.
                unallocatable_due = true;
            }
        }
        self.decision_hint = if unallocatable_due {
            Some(now) // pin: no sound time bound until the plan settles
        } else {
            next_planned_start(scratch.plan(), now)
        };
        self.plan = scratch;
    }

    /// The builtin's mid-run state (also what wrappers embed).
    pub(crate) fn state(&self) -> BuiltinSchedulerState {
        BuiltinSchedulerState {
            stats: self.stats,
            decision_hint: self.decision_hint,
            timeline: self.timeline.snapshot(),
            completion_epoch: self.completion_epoch,
        }
    }

    pub(crate) fn apply_state(&mut self, state: &BuiltinSchedulerState) {
        self.stats = state.stats;
        self.decision_hint = state.decision_hint;
        self.timeline.restore(&state.timeline);
        self.completion_epoch = state.completion_epoch;
    }
}

impl SchedulerBackend for BuiltinScheduler {
    fn name(&self) -> &'static str {
        "default"
    }

    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) -> Result<()> {
        debug_assert!(
            self.timeline.matches(ctx.running),
            "timeline out of lockstep with ctx.running: {} tracked vs {} running",
            self.timeline.jobs(),
            ctx.running.len()
        );
        let _s = sraps_obs::span(sraps_obs::Phase::SchedSchedule);
        self.stats.invocations += 1;
        if self.policy == PolicyKind::Replay {
            self.schedule_replay(now, queue, rm, out);
        } else {
            self.schedule_ordered(now, queue, rm, ctx, out);
        }
        self.stats.record_placements(out);
        self.placed_ids.clear();
        self.placed_ids.extend(out.iter().map(|p| p.job));
        queue.remove_placed(&self.placed_ids);
        Ok(())
    }

    fn on_job_started(&mut self, est_end: SimTime, nodes: u32) {
        self.timeline.add(est_end, nodes);
    }

    fn on_job_completed(&mut self, est_end: SimTime, nodes: u32) {
        self.timeline.remove(est_end, nodes);
        // Account statistics fold in completed jobs, so account-policy
        // sort keys are only stale across completions: version them.
        self.completion_epoch += 1;
    }

    fn next_decision_time(&self, _now: SimTime) -> Option<SimTime> {
        self.decision_hint
    }

    fn stats(&self) -> SchedulerStats {
        self.stats
    }

    fn snapshot_state(&self) -> Result<SchedulerState> {
        Ok(SchedulerState::Builtin(self.state()))
    }

    /// Accepts its own record, and tolerates a power-cap record by
    /// adopting the embedded inner state — the cap-removal direction of a
    /// late-binding fork.
    fn restore_state(&mut self, state: &SchedulerState) -> Result<()> {
        match state {
            SchedulerState::Builtin(s) => self.apply_state(s),
            SchedulerState::PowerCap(s) => self.apply_state(&s.inner),
            SchedulerState::External(_) => return Err(snapshot_unsupported(self.name())),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueuedJob;
    use crate::scheduler::RunningView;
    use sraps_types::{AccountId, JobId, NodeSet, SimDuration};

    fn qj(id: u64, submit: i64, nodes: u32, est: i64) -> QueuedJob {
        QueuedJob {
            id: JobId(id),
            account: AccountId(0),
            submit: SimTime::seconds(submit),
            nodes,
            estimate: SimDuration::seconds(est),
            priority: 0.0,
            ml_score: None,
            recorded_start: SimTime::seconds(submit),
            recorded_nodes: None,
        }
    }

    fn ctx_with<'a>(running: &'a [RunningView]) -> SchedContext<'a> {
        SchedContext {
            running,
            accounts: None,
        }
    }

    /// Engine contract: every entry of `running` was announced to the
    /// scheduler via `on_job_started` before this call (tests do that
    /// with [`announce`]).
    fn schedule(
        s: &mut BuiltinScheduler,
        now: i64,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        running: &[RunningView],
    ) -> Vec<Placement> {
        let mut out = Vec::new();
        s.schedule(
            SimTime::seconds(now),
            queue,
            rm,
            &ctx_with(running),
            &mut out,
        )
        .unwrap();
        out
    }

    fn announce(s: &mut BuiltinScheduler, running: &[RunningView]) {
        for r in running {
            s.on_job_started(r.estimated_end, r.nodes);
        }
    }

    #[test]
    fn fcfs_no_backfill_blocks_behind_head() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::None);
        let mut rm = ResourceManager::new(10);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 8, 100)); // fits
        q.push(qj(2, 1, 8, 100)); // blocks (2 free)
        q.push(qj(3, 2, 1, 100)); // would fit, must NOT run (no backfill)
        let placed = schedule(&mut s, 10, &mut q, &mut rm, &[]);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].job, JobId(1));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn first_fit_backfills_any_fitting_job() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::FirstFit);
        let mut rm = ResourceManager::new(10);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 8, 100));
        q.push(qj(2, 1, 8, 100)); // blocks
        q.push(qj(3, 2, 2, 1_000_000)); // long but fits → first-fit takes it
        let placed = schedule(&mut s, 10, &mut q, &mut rm, &[]);
        let ids: Vec<u64> = placed.iter().map(|p| p.job.0).collect();
        assert_eq!(ids, vec![1, 3]);
        assert_eq!(s.stats().backfilled, 1);
    }

    #[test]
    fn easy_backfill_respects_reservation() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::Easy);
        let mut rm = ResourceManager::new(10);
        // 8 nodes busy until t=1000 (estimated).
        let busy = rm.allocate(8).unwrap();
        let running = [RunningView {
            id: JobId(100),
            nodes: 8,
            estimated_end: SimTime::seconds(1000),
        }];
        announce(&mut s, &running);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 10, 100)); // head: needs the whole machine → blocked
        q.push(qj(2, 1, 2, 500)); // ends at 10+500 < 1000 → backfills
        q.push(qj(3, 2, 2, 5000)); // would end after shadow & extra=0 → no
        let placed = schedule(&mut s, 10, &mut q, &mut rm, &running);
        let ids: Vec<u64> = placed.iter().map(|p| p.job.0).collect();
        assert_eq!(ids, vec![2]);
        rm.release(&busy);
    }

    #[test]
    fn easy_skips_impossible_head_and_continues() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::Easy);
        let mut rm = ResourceManager::new(4);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 100, 10)); // wider than machine, no running jobs
        q.push(qj(2, 1, 2, 10));
        let placed = schedule(&mut s, 10, &mut q, &mut rm, &[]);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].job, JobId(2));
    }

    #[test]
    fn replay_waits_for_recorded_start_and_uses_recorded_nodes() {
        let mut s = BuiltinScheduler::new(PolicyKind::Replay, BackfillKind::None);
        let mut rm = ResourceManager::new(10);
        let mut q = JobQueue::new();
        let mut j = qj(1, 0, 2, 100);
        j.recorded_start = SimTime::seconds(50);
        j.recorded_nodes = Some(NodeSet::from_indices(vec![7, 8]));
        q.push(j);
        // Too early: nothing placed.
        assert!(schedule(&mut s, 10, &mut q, &mut rm, &[]).is_empty());
        // At recorded start: exact placement honored.
        let placed = schedule(&mut s, 50, &mut q, &mut rm, &[]);
        assert_eq!(placed.len(), 1);
        assert_eq!(placed[0].nodes.as_slice(), &[7, 8]);
        assert_eq!(s.stats().placement_fallbacks, 0);
    }

    #[test]
    fn replay_falls_back_when_recorded_nodes_busy() {
        let mut s = BuiltinScheduler::new(PolicyKind::Replay, BackfillKind::None);
        let mut rm = ResourceManager::new(10);
        rm.allocate_exact(&NodeSet::from_indices(vec![7, 8]))
            .unwrap();
        let mut q = JobQueue::new();
        let mut j = qj(1, 0, 2, 100);
        j.recorded_start = SimTime::seconds(0);
        j.recorded_nodes = Some(NodeSet::from_indices(vec![7, 8]));
        q.push(j);
        let placed = schedule(&mut s, 0, &mut q, &mut rm, &[]);
        assert_eq!(placed.len(), 1);
        assert_ne!(placed[0].nodes.as_slice(), &[7, 8]);
        assert_eq!(s.stats().placement_fallbacks, 1);
    }

    #[test]
    fn placed_jobs_leave_the_queue_and_stats_count() {
        let mut s = BuiltinScheduler::new(PolicyKind::Sjf, BackfillKind::FirstFit);
        let mut rm = ResourceManager::new(4);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 2, 10));
        q.push(qj(2, 0, 2, 5));
        let placed = schedule(&mut s, 0, &mut q, &mut rm, &[]);
        assert_eq!(placed.len(), 2);
        assert!(q.is_empty());
        assert_eq!(s.stats().invocations, 1);
        assert_eq!(s.stats().placements, 2);
        // SJF: shorter job (2) placed first.
        assert_eq!(placed[0].job, JobId(2));
    }

    #[test]
    fn event_bound_backfills_report_no_deadline() {
        for backfill in [
            BackfillKind::None,
            BackfillKind::FirstFit,
            BackfillKind::Easy,
        ] {
            let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, backfill);
            let mut rm = ResourceManager::new(4);
            let mut q = JobQueue::new();
            q.push(qj(1, 0, 8, 100)); // wider than free → blocked
            schedule(&mut s, 10, &mut q, &mut rm, &[]);
            assert_eq!(
                s.next_decision_time(SimTime::seconds(10)),
                None,
                "{backfill:?} must be event-bound"
            );
        }
    }

    #[test]
    fn replay_hint_is_earliest_future_recorded_start() {
        let mut s = BuiltinScheduler::new(PolicyKind::Replay, BackfillKind::None);
        let mut rm = ResourceManager::new(10);
        let mut q = JobQueue::new();
        let mut a = qj(1, 0, 2, 100);
        a.recorded_start = SimTime::seconds(500);
        let mut b = qj(2, 0, 2, 100);
        b.recorded_start = SimTime::seconds(300);
        q.push(a);
        q.push(b);
        schedule(&mut s, 10, &mut q, &mut rm, &[]);
        assert_eq!(
            s.next_decision_time(SimTime::seconds(10)),
            Some(SimTime::seconds(300))
        );
        // Once every queued job is due (stuck on capacity only), the
        // backend is event-bound: completions release capacity.
        rm.allocate(10).unwrap();
        schedule(&mut s, 600, &mut q, &mut rm, &[]);
        assert_eq!(s.next_decision_time(SimTime::seconds(600)), None);
    }

    #[test]
    fn conservative_hint_is_earliest_future_reservation() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::Conservative);
        let mut rm = ResourceManager::new(8);
        let busy = rm.allocate(8).unwrap();
        let running = [RunningView {
            id: JobId(100),
            nodes: 8,
            estimated_end: SimTime::seconds(1000),
        }];
        announce(&mut s, &running);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 8, 100)); // reserved at the running job's est end
        let placed = schedule(&mut s, 10, &mut q, &mut rm, &running);
        assert!(placed.is_empty());
        assert_eq!(
            s.next_decision_time(SimTime::seconds(10)),
            Some(SimTime::seconds(1000)),
            "reservation matures at the estimated end"
        );
        rm.release(&busy);
    }

    #[test]
    fn conservative_pins_when_matured_reservation_cannot_allocate() {
        // The running job overran its estimate: the plan's release at
        // t=50 is phantom, the queued job's reservation matures but the
        // allocation fails — the scheduler must demand per-tick calls.
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::Conservative);
        let mut rm = ResourceManager::new(8);
        let _busy = rm.allocate(8).unwrap();
        let running = [RunningView {
            id: JobId(100),
            nodes: 8,
            estimated_end: SimTime::seconds(50), // already passed
        }];
        announce(&mut s, &running);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 8, 100));
        let placed = schedule(&mut s, 100, &mut q, &mut rm, &running);
        assert!(placed.is_empty(), "nodes are actually still busy");
        assert_eq!(
            s.next_decision_time(SimTime::seconds(100)),
            Some(SimTime::seconds(100)),
            "phantom capacity ⇒ pin to every tick"
        );
    }

    #[test]
    fn no_double_allocation_across_ticks() {
        let mut s = BuiltinScheduler::new(PolicyKind::Fcfs, BackfillKind::FirstFit);
        let mut rm = ResourceManager::new(6);
        let mut q = JobQueue::new();
        q.push(qj(1, 0, 4, 100));
        q.push(qj(2, 0, 4, 100));
        let p1 = schedule(&mut s, 0, &mut q, &mut rm, &[]);
        assert_eq!(p1.len(), 1);
        let p2 = schedule(&mut s, 10, &mut q, &mut rm, &[]);
        assert!(p2.is_empty(), "only 2 nodes free");
        rm.release(&p1[0].nodes);
        let p3 = schedule(&mut s, 20, &mut q, &mut rm, &[]);
        assert_eq!(p3.len(), 1);
        assert!(p1[0].nodes.is_disjoint(&p3[0].nodes) || p1[0].nodes == p3[0].nodes);
    }
}
