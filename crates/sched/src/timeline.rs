//! The free-capacity timeline: a persistent availability profile over the
//! running jobs' *estimated* ends.
//!
//! Every reservation computation — EASY's shadow time, conservative
//! backfill's per-job plan — is a question about when capacity frees up
//! at the latest-known wall-time estimates. The from-scratch planners in
//! [`crate::backfill`] answer it by collecting and sorting every
//! [`RunningView`](crate::scheduler::RunningView) end on every scheduler
//! call; on a saturated machine that sort dominates the whole simulation.
//!
//! [`CapacityTimeline`] keeps the same information incrementally: the
//! engine notifies the scheduler on every job start and completion
//! ([`SchedulerBackend::on_job_started`](crate::scheduler::SchedulerBackend::on_job_started)
//! /
//! [`on_job_completed`](crate::scheduler::SchedulerBackend::on_job_completed)),
//! and the timeline maintains a sorted map from estimated end to the
//! total nodes releasing at that instant — O(log n) per transition, zero
//! allocation and zero sorting per query. Outages need no notification:
//! like the from-scratch planners, the timeline prices a running job at
//! its full width (nodes downed mid-run stay down on release, but the
//! scheduler's view has always treated estimates as full releases).
//!
//! Queries are *bit-identical* to their from-scratch counterparts
//! ([`backfill::easy_reservation`](crate::backfill::easy_reservation) and
//! [`backfill::conservative_plan`](crate::backfill::conservative_plan));
//! the property tests in `tests/incremental.rs` pin that equivalence on
//! random running/queue states.

use crate::backfill::Reservation;
use crate::queue::QueuedJob;
use crate::scheduler::RunningView;
use serde::{Deserialize, Serialize};
use sraps_types::SimTime;

/// Serializable image of a [`CapacityTimeline`] for engine snapshots.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TimelineState {
    pub ends: Vec<(SimTime, u32)>,
    pub jobs: usize,
    pub nodes: u64,
}

/// Sorted aggregate of the running jobs' estimated ends: for each distinct
/// end time, the total nodes whose estimates mature then.
///
/// Backed by a sorted `Vec` rather than a tree: estimated ends are
/// quantized to the tick grid, so many jobs share an end and most
/// transitions are an in-place `+=`/`-=` after a binary search; a true
/// insert is a small memmove within retained capacity. Steady-state
/// maintenance therefore allocates nothing and stays cache-resident.
#[derive(Debug, Clone, Default)]
pub struct CapacityTimeline {
    /// (estimated end, total nodes releasing then), ascending by time.
    ends: Vec<(SimTime, u32)>,
    /// Running jobs tracked (for the cross-check against `ctx.running`).
    jobs: usize,
    /// Σ nodes over tracked jobs.
    nodes: u64,
}

impl CapacityTimeline {
    pub fn new() -> Self {
        CapacityTimeline::default()
    }

    /// A job started: `nodes` wide, estimated to end at `est_end`.
    pub fn add(&mut self, est_end: SimTime, nodes: u32) {
        let at = self.ends.partition_point(|&(t, _)| t < est_end);
        match self.ends.get_mut(at) {
            Some(entry) if entry.0 == est_end => {
                entry.1 += nodes;
                sraps_obs::bump(sraps_obs::Counter::TimelineInPlace);
            }
            _ => {
                self.ends.insert(at, (est_end, nodes));
                sraps_obs::bump(sraps_obs::Counter::TimelineEdits);
            }
        }
        self.jobs += 1;
        self.nodes += nodes as u64;
    }

    /// A running job completed; `est_end`/`nodes` must match its `add`.
    pub fn remove(&mut self, est_end: SimTime, nodes: u32) {
        let at = self.ends.partition_point(|&(t, _)| t < est_end);
        let entry = self
            .ends
            .get_mut(at)
            .filter(|e| e.0 == est_end)
            .expect("remove of an end never added");
        debug_assert!(entry.1 >= nodes, "timeline node count underflow");
        entry.1 -= nodes;
        if entry.1 == 0 {
            self.ends.remove(at);
            sraps_obs::bump(sraps_obs::Counter::TimelineEdits);
        } else {
            sraps_obs::bump(sraps_obs::Counter::TimelineInPlace);
        }
        self.jobs -= 1;
        self.nodes -= nodes as u64;
    }

    /// Running jobs tracked.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Capture the timeline for an engine snapshot.
    pub fn snapshot(&self) -> TimelineState {
        TimelineState {
            ends: self.ends.clone(),
            jobs: self.jobs,
            nodes: self.nodes,
        }
    }

    /// Replace this timeline with a previously captured image.
    pub fn restore(&mut self, state: &TimelineState) {
        self.ends.clear();
        self.ends.extend_from_slice(&state.ends);
        self.jobs = state.jobs;
        self.nodes = state.nodes;
    }

    /// Whether the timeline agrees with a [`RunningView`] slice — the
    /// engine-plumbing invariant the builtin scheduler asserts in debug
    /// builds.
    pub fn matches(&self, running: &[RunningView]) -> bool {
        self.jobs == running.len()
            && self.nodes == running.iter().map(|r| r.nodes as u64).sum::<u64>()
    }

    /// The EASY reservation for a blocked head needing `head_nodes`, with
    /// `free_now` nodes free: walk the ends in order accumulating freed
    /// nodes until the head fits. Same contract as
    /// [`backfill::easy_reservation`](crate::backfill::easy_reservation),
    /// minus the per-call collect + sort.
    pub fn easy_reservation(&self, head_nodes: u32, free_now: u32) -> Option<Reservation> {
        debug_assert!(head_nodes > free_now, "reservation only for blocked heads");
        sraps_obs::bump(sraps_obs::Counter::SchedEasyReservations);
        let mut avail = free_now;
        for &(end, nodes) in &self.ends {
            avail += nodes;
            if avail >= head_nodes {
                return Some(Reservation {
                    shadow_time: end,
                    extra_nodes: avail - head_nodes,
                });
            }
        }
        None
    }

    /// Conservative plan over the timeline: the earliest feasible start
    /// per queued job, in queue order, holding earlier jobs' reservations
    /// fixed — exactly
    /// [`backfill::conservative_plan`](crate::backfill::conservative_plan)
    /// (`SimTime::MAX` for jobs wider than the machine), computed by one
    /// forward sweep over a free-capacity step profile per job instead of
    /// a candidate-set collect + sort + per-candidate rescan. Jobs whose
    /// demand fits under the profile's minimum free capacity skip the
    /// sweep entirely: they anchor at the first breakpoint in O(1).
    ///
    /// The profile lives in `scratch` (read the result via
    /// [`PlanScratch::plan`]), so steady-state calls allocate nothing.
    pub fn plan_conservative(
        &self,
        queue: &[QueuedJob],
        now: SimTime,
        free_now: u32,
        total_nodes: u32,
        scratch: &mut PlanScratch,
    ) {
        // Capacity deltas by time, ascending: releases from the running
        // set, plus `now` as a zero-delta breakpoint so it is a candidate
        // start. Entries sharing a time are summed before any feasibility
        // decision (all estimates maturing at an instant release together).
        let deltas = &mut scratch.deltas;
        deltas.clear();
        deltas.extend(self.ends.iter().map(|&(t, n)| (t, n as i64)));
        let at = deltas.partition_point(|&(t, _)| t < now);
        deltas.insert(at, (now, 0));

        // Before any reservation lands, every delta is a release (≥ 0),
        // so free capacity is non-decreasing over the profile and its
        // minimum sits at the first breakpoint. Maintain that minimum as
        // a lower bound across reservations (each subtracts at most
        // `need` everywhere): any job whose demand fits under it anchors
        // at the first breakpoint with no walk — the sweep below could
        // never invalidate an anchor the profile never dips under.
        let t_first = deltas[0].0;
        let mut min_free = free_now as i64;
        for &(t, d) in deltas.iter() {
            if t != t_first {
                break;
            }
            min_free += d;
        }

        scratch.plan.clear();
        let mut sweeps = 0u64;
        let mut fast_paths = 0u64;
        for job in queue {
            if job.nodes > total_nodes {
                scratch.plan.push(SimTime::MAX);
                continue;
            }
            let need = job.nodes as i64;
            if need <= min_free {
                fast_paths += 1;
                let end = t_first + job.estimate;
                scratch.plan.push(t_first);
                deltas.insert(0, (t_first, -need));
                let at = deltas.partition_point(|&(t, _)| t < end);
                deltas.insert(at, (end, need));
                min_free -= need;
                continue;
            }
            sweeps += 1;
            // Sweep the profile keeping `anchor` = the earliest breakpoint
            // from which free capacity has stayed ≥ `need`. The moment the
            // sweep passes `anchor + estimate`, the whole window is
            // covered and the anchor is the earliest feasible start; a dip
            // below `need` invalidates it. Feasible starts only ever sit
            // at capacity *increases* (or `now`), which is exactly the
            // candidate set the from-scratch planner enumerates.
            let mut free = free_now as i64;
            let mut anchor: Option<SimTime> = None;
            let mut start = None;
            let mut i = 0;
            while i < deltas.len() {
                let t = deltas[i].0;
                if let Some(a) = anchor {
                    if t >= a + job.estimate {
                        start = Some(a);
                        break;
                    }
                }
                while i < deltas.len() && deltas[i].0 == t {
                    free += deltas[i].1;
                    i += 1;
                }
                if free < need {
                    anchor = None;
                } else if anchor.is_none() {
                    anchor = Some(t);
                }
            }
            // Past the last breakpoint the profile is flat forever, so a
            // surviving anchor's window is covered no matter the estimate.
            let start = start.or(anchor).unwrap_or(SimTime::MAX);
            scratch.plan.push(start);
            if start != SimTime::MAX {
                let end = start + job.estimate;
                let at = deltas.partition_point(|&(t, _)| t < start);
                deltas.insert(at, (start, -need));
                let at = deltas.partition_point(|&(t, _)| t < end);
                deltas.insert(at, (end, need));
                // The reservation lowers the profile by at most `need`
                // anywhere, so the bound stays sound.
                min_free -= need;
            }
        }
        sraps_obs::add(sraps_obs::Counter::SchedAnchorSweeps, sweeps);
        sraps_obs::add(sraps_obs::Counter::SchedPlanFastPaths, fast_paths);
    }
}

/// Reusable buffers for [`CapacityTimeline::plan_conservative`]: the
/// per-call capacity profile and the resulting plan, retained across
/// scheduler invocations so the conservative hot path stops allocating.
#[derive(Debug, Clone, Default)]
pub struct PlanScratch {
    /// (time, capacity delta) breakpoints, ascending by time.
    deltas: Vec<(SimTime, i64)>,
    /// One planned start per queue entry, in queue order.
    plan: Vec<SimTime>,
}

impl PlanScratch {
    pub fn new() -> Self {
        PlanScratch::default()
    }

    /// The plan produced by the last `plan_conservative` call.
    pub fn plan(&self) -> &[SimTime] {
        &self.plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backfill;
    use sraps_types::{AccountId, JobId, SimDuration};

    fn view(id: u64, nodes: u32, end: i64) -> RunningView {
        RunningView {
            id: JobId(id),
            nodes,
            estimated_end: SimTime::seconds(end),
        }
    }

    fn qj(nodes: u32, est: i64) -> QueuedJob {
        QueuedJob {
            id: JobId(99),
            account: AccountId(0),
            submit: SimTime::ZERO,
            nodes,
            estimate: SimDuration::seconds(est),
            priority: 0.0,
            ml_score: None,
            recorded_start: SimTime::ZERO,
            recorded_nodes: None,
        }
    }

    fn timeline_of(running: &[RunningView]) -> CapacityTimeline {
        let mut t = CapacityTimeline::new();
        for r in running {
            t.add(r.estimated_end, r.nodes);
        }
        t
    }

    #[test]
    fn add_remove_roundtrip_empties() {
        let mut t = CapacityTimeline::new();
        t.add(SimTime::seconds(100), 4);
        t.add(SimTime::seconds(100), 2);
        t.add(SimTime::seconds(50), 8);
        assert_eq!(t.jobs(), 3);
        t.remove(SimTime::seconds(100), 4);
        t.remove(SimTime::seconds(50), 8);
        t.remove(SimTime::seconds(100), 2);
        assert_eq!(t.jobs(), 0);
        assert!(t.matches(&[]));
    }

    #[test]
    fn matches_checks_count_and_width() {
        let running = [view(1, 4, 100), view(2, 6, 200)];
        let t = timeline_of(&running);
        assert!(t.matches(&running));
        assert!(!t.matches(&running[..1]));
    }

    #[test]
    fn easy_reservation_equals_from_scratch() {
        let running = [view(1, 4, 100), view(2, 6, 200), view(3, 2, 100)];
        let t = timeline_of(&running);
        for (head, free) in [(10, 2), (5, 1), (100, 1), (7, 0)] {
            assert_eq!(
                t.easy_reservation(head, free),
                backfill::easy_reservation(head, free, &running),
                "head={head} free={free}"
            );
        }
    }

    #[test]
    fn conservative_plan_equals_from_scratch() {
        let running = [view(1, 6, 100), view(2, 7, 100), view(3, 3, 250)];
        let t = timeline_of(&running);
        let queue = vec![qj(8, 100), qj(2, 50), qj(2, 500), qj(100, 10), qj(16, 40)];
        let mut scratch = PlanScratch::new();
        let now = SimTime::seconds(10);
        t.plan_conservative(&queue, now, 2, 16, &mut scratch);
        assert_eq!(
            scratch.plan(),
            backfill::conservative_plan(&queue, now, 2, 16, &running).as_slice()
        );
    }

    #[test]
    fn fast_path_plan_equals_from_scratch() {
        // Plenty of headroom: the narrow jobs anchor via the O(1)
        // min-free fast path, the wide one walks the profile; both must
        // match the from-scratch planner, including the reservations the
        // fast-pathed jobs leave behind for later queue entries.
        let running = [view(1, 2, 100), view(2, 3, 200)];
        let t = timeline_of(&running);
        let queue = vec![qj(1, 50), qj(2, 80), qj(14, 30), qj(1, 10)];
        let mut scratch = PlanScratch::new();
        let now = SimTime::seconds(10);
        t.plan_conservative(&queue, now, 11, 16, &mut scratch);
        assert_eq!(
            scratch.plan(),
            backfill::conservative_plan(&queue, now, 11, 16, &running).as_slice()
        );
        assert_eq!(scratch.plan()[0], now, "headroom jobs start immediately");
    }

    #[test]
    fn overdue_estimates_count_as_phantom_capacity() {
        // A running job past its estimated end still releases "phantom"
        // nodes in the plan — the overrun case the engine pin relies on.
        let running = [view(1, 8, 50)];
        let t = timeline_of(&running);
        let queue = vec![qj(8, 100)];
        let mut scratch = PlanScratch::new();
        let now = SimTime::seconds(100);
        t.plan_conservative(&queue, now, 0, 8, &mut scratch);
        assert_eq!(
            scratch.plan(),
            backfill::conservative_plan(&queue, now, 0, 8, &running).as_slice()
        );
        assert_eq!(scratch.plan()[0], SimTime::seconds(50), "phantom release");
    }
}
