//! The scheduler abstraction (§3.2.4): the contract between the simulation
//! engine and any scheduler, built-in or external.

use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use serde::{Deserialize, Serialize};
use sraps_acct::Accounts;
use sraps_types::{JobId, NodeSet, Result, SimTime};

/// A placement decision: start `job` now on `nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub job: JobId,
    pub nodes: NodeSet,
}

/// The scheduler's view of one running job — what a real batch system
/// would know: when the job is *expected* to end (from its wall-time
/// limit), not when it actually will.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningView {
    pub id: JobId,
    pub nodes: u32,
    /// Estimated end = start + wall-time limit.
    pub estimated_end: SimTime,
}

/// Read-only context handed to the scheduler each invocation.
pub struct SchedContext<'a> {
    /// Jobs currently executing (for reservation computation).
    pub running: &'a [RunningView],
    /// Account statistics from a collection run, when the incentive
    /// policies are active (§4.3).
    pub accounts: Option<&'a Accounts>,
}

/// Counters every backend maintains; surfaced in the run statistics so the
/// overhead comparisons of §4.2 can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Times `schedule` was invoked by the engine.
    pub invocations: u64,
    /// Jobs placed.
    pub placements: u64,
    /// Full schedule recomputations performed (≫ placements for the
    /// recompute-per-event ScheduleFlow integration).
    pub recomputations: u64,
    /// Replay placements that fell back from the recorded node set to a
    /// first-fit allocation (recorded nodes busy — capture-window edge).
    pub placement_fallbacks: u64,
    /// Jobs placed via a backfill path rather than queue order.
    pub backfilled: u64,
}

/// Any scheduler S-RAPS can drive: the built-in one, the experimental
/// account-priority one, or adapters around external simulators (§4.2).
///
/// The engine guarantees: `queue` contains only submitted, unstarted jobs;
/// `rm` reflects current occupancy; invocations are monotone in `now`.
/// The backend guarantees: returned placements reference queued job ids
/// and nodes handed out by `rm` within this call.
pub trait SchedulerBackend {
    /// Name for logs and output directories.
    fn name(&self) -> &'static str;

    /// Decide placements for this tick. Implementations allocate from `rm`
    /// themselves so the engine can trust the returned node sets.
    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
    ) -> Result<Vec<Placement>>;

    /// Cumulative counters.
    fn stats(&self) -> SchedulerStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let s = SchedulerStats::default();
        assert_eq!(s.invocations, 0);
        assert_eq!(s.placements, 0);
    }
}
