//! The scheduler abstraction (§3.2.4): the contract between the simulation
//! engine and any scheduler, built-in or external.

use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use crate::timeline::TimelineState;
use serde::{Deserialize, Serialize};
use sraps_acct::Accounts;
use sraps_types::{JobId, NodeSet, Result, SimTime, SrapsError};

/// How a placement came about — carried on the [`Placement`] itself so
/// wrappers that admit only a subset of a proposal (the power-cap
/// scheduler) can attribute statistics to the placements that actually
/// took effect instead of to every shadow proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPath {
    /// Queue/policy order, or replay on its recorded nodes.
    #[default]
    Ordered,
    /// A backfill rule moved it ahead of queue order.
    Backfilled,
    /// Replay fell back from busy recorded nodes to count-based placement
    /// (capture-window edge).
    RecordedFallback,
}

/// A placement decision: start `job` now on `nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub job: JobId,
    pub nodes: NodeSet,
    pub path: PlacementPath,
}

impl Placement {
    pub fn new(job: JobId, nodes: NodeSet) -> Placement {
        Placement {
            job,
            nodes,
            path: PlacementPath::Ordered,
        }
    }

    pub fn via(job: JobId, nodes: NodeSet, path: PlacementPath) -> Placement {
        Placement { job, nodes, path }
    }
}

/// The scheduler's view of one running job — what a real batch system
/// would know: when the job is *expected* to end (from its wall-time
/// limit), not when it actually will.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningView {
    pub id: JobId,
    pub nodes: u32,
    /// Estimated end = start + wall-time limit.
    pub estimated_end: SimTime,
}

/// Read-only context handed to the scheduler each invocation.
pub struct SchedContext<'a> {
    /// Jobs currently executing (for reservation computation).
    pub running: &'a [RunningView],
    /// Account statistics from a collection run, when the incentive
    /// policies are active (§4.3).
    pub accounts: Option<&'a Accounts>,
}

/// Counters every backend maintains; surfaced in the run statistics so the
/// overhead comparisons of §4.2 can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Times `schedule` was invoked by the engine.
    pub invocations: u64,
    /// Jobs placed.
    pub placements: u64,
    /// Full schedule recomputations performed (≫ placements for the
    /// recompute-per-event ScheduleFlow integration).
    pub recomputations: u64,
    /// Replay placements that fell back from the recorded node set to a
    /// first-fit allocation (recorded nodes busy — capture-window edge).
    pub placement_fallbacks: u64,
    /// Jobs placed via a backfill path rather than queue order.
    pub backfilled: u64,
}

impl SchedulerStats {
    /// Fold a batch of *effected* placements into the placement-derived
    /// counters, attributing by [`PlacementPath`].
    pub fn record_placements(&mut self, placed: &[Placement]) {
        self.placements += placed.len() as u64;
        for p in placed {
            match p.path {
                PlacementPath::Ordered => {}
                PlacementPath::Backfilled => self.backfilled += 1,
                PlacementPath::RecordedFallback => self.placement_fallbacks += 1,
            }
        }
    }
}

/// Serializable mid-run state of a scheduler backend — everything a
/// backend accumulates between `schedule` calls that is not rebuilt from
/// its construction inputs. Captured by
/// [`SchedulerBackend::snapshot_state`] and replayed into a freshly
/// constructed backend by [`SchedulerBackend::restore_state`], so an
/// engine snapshot round-trips the PR 5 incremental structures (capacity
/// timeline, decision hints, power-cap deferral state, external-adapter
/// bookkeeping) bit-identically.
///
/// Restoration is tolerant across *wrapper* boundaries: a
/// [`SchedulerState::Builtin`] record restores into a power-cap wrapper
/// (the wrapper's own counters start at zero) and vice versa. That is
/// what makes late-binding forks — "run uncapped to *t*, then continue
/// under a cap" — a plain snapshot/restore composition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SchedulerState {
    /// [`crate::BuiltinScheduler`] (also the state the experimental
    /// wrapper delegates to — its account table is construction input).
    Builtin(BuiltinSchedulerState),
    /// [`crate::PowerCapScheduler`] wrapper around a builtin.
    PowerCap(PowerCapSchedulerState),
    /// An external-simulator adapter: bookkeeping plus the engine's own
    /// opaque serialized state.
    External(ExternalSchedulerState),
}

/// Mid-run state of the builtin scheduler.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BuiltinSchedulerState {
    pub stats: SchedulerStats,
    /// The cached [`SchedulerBackend::next_decision_time`] answer.
    pub decision_hint: Option<SimTime>,
    pub timeline: TimelineState,
    pub completion_epoch: u64,
}

/// Mid-run state of the power-cap wrapper (inner builtin included).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerCapSchedulerState {
    pub inner: BuiltinSchedulerState,
    pub deferred: u64,
    pub deferred_last_call: bool,
    pub stats: SchedulerStats,
}

/// Mid-run state of an external-scheduler adapter. The wrapped engine
/// serializes itself to an opaque `engine` blob (JSON by convention) via
/// its own snapshot hooks, so this crate needs no knowledge of the
/// engine's internals.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExternalSchedulerState {
    /// Sorted ids already forwarded as submissions.
    pub submitted: Vec<JobId>,
    /// Sorted ids the adapter last saw running.
    pub last_running: Vec<JobId>,
    pub stats: SchedulerStats,
    pub engine: String,
}

/// The uniform "this backend/state combination cannot round-trip" error.
pub fn snapshot_unsupported(name: &str) -> SrapsError {
    SrapsError::Snapshot(format!(
        "scheduler '{name}' does not support state snapshots"
    ))
}

/// Any scheduler S-RAPS can drive: the built-in one, the experimental
/// account-priority one, or adapters around external simulators (§4.2).
///
/// The engine guarantees: `queue` contains only submitted, unstarted jobs;
/// `rm` reflects current occupancy; invocations are monotone in `now`.
/// The backend guarantees: returned placements reference queued job ids
/// and nodes handed out by `rm` within this call.
pub trait SchedulerBackend {
    /// Name for logs and output directories.
    fn name(&self) -> &'static str;

    /// Decide placements for this tick, appending them to `out` (handed
    /// in empty; the engine owns and reuses the buffer across calls so
    /// the hot path stops allocating a placement list per invocation).
    /// Implementations allocate from `rm` themselves so the engine can
    /// trust the returned node sets.
    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) -> Result<()>;

    /// Notification: a job `nodes` wide started (or was prepopulated)
    /// with scheduler-visible estimated end `est_end`. The engine calls
    /// this for every activation, letting backends maintain incremental
    /// state — the builtin scheduler's free-capacity timeline — instead
    /// of rebuilding it from [`SchedContext::running`] each invocation.
    fn on_job_started(&mut self, _est_end: SimTime, _nodes: u32) {}

    /// Notification: a running job completed and released its nodes.
    /// `est_end`/`nodes` match the values its `on_job_started` carried.
    fn on_job_completed(&mut self, _est_end: SimTime, _nodes: u32) {}

    /// The earliest future instant at which this backend's scheduling
    /// answer could change *without* an engine-visible event (completion,
    /// submission, outage edge) happening first — an internal deadline
    /// such as a conservative reservation maturing, a replay job reaching
    /// its recorded start, or an external engine's internal completion.
    ///
    /// The engine's event core consults this immediately after a
    /// [`SchedulerBackend::schedule`] call that placed nothing, so
    /// implementations may answer from state cached by that call:
    ///
    /// * `None` — fully event-bound: no internal deadline exists; the
    ///   engine may skip straight to its event horizon.
    /// * `Some(t)` with `t > now` — decisions are frozen before `t`; the
    ///   engine may skip to `min(horizon, t)`.
    /// * `Some(t)` with `t <= now` — the backend cannot bound its next
    ///   decision change; the engine must offer the queue every tick.
    ///
    /// The default, `Some(now)`, is the always-sound "call me every tick".
    fn next_decision_time(&self, now: SimTime) -> Option<SimTime> {
        Some(now)
    }

    /// Cumulative counters.
    fn stats(&self) -> SchedulerStats;

    /// Capture this backend's mid-run state for an engine snapshot.
    ///
    /// The default refuses: a backend must opt in, because a silently
    /// partial snapshot would restore into a run that diverges from the
    /// uninterrupted one — the one guarantee snapshots exist to give.
    fn snapshot_state(&self) -> Result<SchedulerState> {
        Err(snapshot_unsupported(self.name()))
    }

    /// Replay a previously captured state into this freshly constructed
    /// backend, after which scheduling continues bit-identically to the
    /// run the state was captured from.
    fn restore_state(&mut self, _state: &SchedulerState) -> Result<()> {
        Err(snapshot_unsupported(self.name()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let s = SchedulerStats::default();
        assert_eq!(s.invocations, 0);
        assert_eq!(s.placements, 0);
    }
}
