//! The scheduler abstraction (§3.2.4): the contract between the simulation
//! engine and any scheduler, built-in or external.

use crate::queue::JobQueue;
use crate::resource_manager::ResourceManager;
use serde::{Deserialize, Serialize};
use sraps_acct::Accounts;
use sraps_types::{JobId, NodeSet, Result, SimTime};

/// How a placement came about — carried on the [`Placement`] itself so
/// wrappers that admit only a subset of a proposal (the power-cap
/// scheduler) can attribute statistics to the placements that actually
/// took effect instead of to every shadow proposal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PlacementPath {
    /// Queue/policy order, or replay on its recorded nodes.
    #[default]
    Ordered,
    /// A backfill rule moved it ahead of queue order.
    Backfilled,
    /// Replay fell back from busy recorded nodes to count-based placement
    /// (capture-window edge).
    RecordedFallback,
}

/// A placement decision: start `job` now on `nodes`.
#[derive(Debug, Clone, PartialEq)]
pub struct Placement {
    pub job: JobId,
    pub nodes: NodeSet,
    pub path: PlacementPath,
}

impl Placement {
    pub fn new(job: JobId, nodes: NodeSet) -> Placement {
        Placement {
            job,
            nodes,
            path: PlacementPath::Ordered,
        }
    }

    pub fn via(job: JobId, nodes: NodeSet, path: PlacementPath) -> Placement {
        Placement { job, nodes, path }
    }
}

/// The scheduler's view of one running job — what a real batch system
/// would know: when the job is *expected* to end (from its wall-time
/// limit), not when it actually will.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunningView {
    pub id: JobId,
    pub nodes: u32,
    /// Estimated end = start + wall-time limit.
    pub estimated_end: SimTime,
}

/// Read-only context handed to the scheduler each invocation.
pub struct SchedContext<'a> {
    /// Jobs currently executing (for reservation computation).
    pub running: &'a [RunningView],
    /// Account statistics from a collection run, when the incentive
    /// policies are active (§4.3).
    pub accounts: Option<&'a Accounts>,
}

/// Counters every backend maintains; surfaced in the run statistics so the
/// overhead comparisons of §4.2 can be reproduced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SchedulerStats {
    /// Times `schedule` was invoked by the engine.
    pub invocations: u64,
    /// Jobs placed.
    pub placements: u64,
    /// Full schedule recomputations performed (≫ placements for the
    /// recompute-per-event ScheduleFlow integration).
    pub recomputations: u64,
    /// Replay placements that fell back from the recorded node set to a
    /// first-fit allocation (recorded nodes busy — capture-window edge).
    pub placement_fallbacks: u64,
    /// Jobs placed via a backfill path rather than queue order.
    pub backfilled: u64,
}

impl SchedulerStats {
    /// Fold a batch of *effected* placements into the placement-derived
    /// counters, attributing by [`PlacementPath`].
    pub fn record_placements(&mut self, placed: &[Placement]) {
        self.placements += placed.len() as u64;
        for p in placed {
            match p.path {
                PlacementPath::Ordered => {}
                PlacementPath::Backfilled => self.backfilled += 1,
                PlacementPath::RecordedFallback => self.placement_fallbacks += 1,
            }
        }
    }
}

/// Any scheduler S-RAPS can drive: the built-in one, the experimental
/// account-priority one, or adapters around external simulators (§4.2).
///
/// The engine guarantees: `queue` contains only submitted, unstarted jobs;
/// `rm` reflects current occupancy; invocations are monotone in `now`.
/// The backend guarantees: returned placements reference queued job ids
/// and nodes handed out by `rm` within this call.
pub trait SchedulerBackend {
    /// Name for logs and output directories.
    fn name(&self) -> &'static str;

    /// Decide placements for this tick, appending them to `out` (handed
    /// in empty; the engine owns and reuses the buffer across calls so
    /// the hot path stops allocating a placement list per invocation).
    /// Implementations allocate from `rm` themselves so the engine can
    /// trust the returned node sets.
    fn schedule(
        &mut self,
        now: SimTime,
        queue: &mut JobQueue,
        rm: &mut ResourceManager,
        ctx: &SchedContext<'_>,
        out: &mut Vec<Placement>,
    ) -> Result<()>;

    /// Notification: a job `nodes` wide started (or was prepopulated)
    /// with scheduler-visible estimated end `est_end`. The engine calls
    /// this for every activation, letting backends maintain incremental
    /// state — the builtin scheduler's free-capacity timeline — instead
    /// of rebuilding it from [`SchedContext::running`] each invocation.
    fn on_job_started(&mut self, _est_end: SimTime, _nodes: u32) {}

    /// Notification: a running job completed and released its nodes.
    /// `est_end`/`nodes` match the values its `on_job_started` carried.
    fn on_job_completed(&mut self, _est_end: SimTime, _nodes: u32) {}

    /// The earliest future instant at which this backend's scheduling
    /// answer could change *without* an engine-visible event (completion,
    /// submission, outage edge) happening first — an internal deadline
    /// such as a conservative reservation maturing, a replay job reaching
    /// its recorded start, or an external engine's internal completion.
    ///
    /// The engine's event core consults this immediately after a
    /// [`SchedulerBackend::schedule`] call that placed nothing, so
    /// implementations may answer from state cached by that call:
    ///
    /// * `None` — fully event-bound: no internal deadline exists; the
    ///   engine may skip straight to its event horizon.
    /// * `Some(t)` with `t > now` — decisions are frozen before `t`; the
    ///   engine may skip to `min(horizon, t)`.
    /// * `Some(t)` with `t <= now` — the backend cannot bound its next
    ///   decision change; the engine must offer the queue every tick.
    ///
    /// The default, `Some(now)`, is the always-sound "call me every tick".
    fn next_decision_time(&self, now: SimTime) -> Option<SimTime> {
        Some(now)
    }

    /// Cumulative counters.
    fn stats(&self) -> SchedulerStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_default_is_zeroed() {
        let s = SchedulerStats::default();
        assert_eq!(s.invocations, 0);
        assert_eq!(s.placements, 0);
    }
}
