//! Regression guard for the scheduler hot path: a `schedule` call that
//! places nothing must perform **zero heap allocations**.
//!
//! On a saturated machine the engine issues such no-op calls at every
//! event, and the pre-timeline code paid a full queue sort plus a
//! collect+sort of every running end for each one. The incremental queue
//! order, the capacity timeline, and the persistent plan scratch exist
//! precisely so that work (and its allocator traffic) disappears; this
//! test pins the "zero allocations" half with a counting global allocator.

use sraps_sched::{
    BackfillKind, BuiltinScheduler, JobQueue, Placement, PolicyKind, QueuedJob, ResourceManager,
    RunningView, SchedContext, SchedulerBackend,
};
use sraps_types::{AccountId, JobId, SimDuration, SimTime};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Obs enablement is process-global; the two tests below must not overlap.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// `System`, with every allocation and reallocation counted.
struct CountingAlloc;

static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

fn qj(id: u64, submit: i64, nodes: u32, est: i64) -> QueuedJob {
    QueuedJob {
        id: JobId(id),
        account: AccountId(0),
        submit: SimTime::seconds(submit),
        nodes,
        estimate: SimDuration::seconds(est),
        priority: (id % 7) as f64,
        ml_score: None,
        recorded_start: SimTime::seconds(submit),
        recorded_nodes: None,
    }
}

/// Drive one saturated configuration: a wide running job pins the machine,
/// a deep queue sits blocked behind it. After a warm-up call (which may
/// size scratch buffers and sort once), every further no-op call must not
/// touch the allocator.
fn assert_noop_calls_do_not_allocate(policy: PolicyKind, backfill: BackfillKind) {
    let mut sched = BuiltinScheduler::new(policy, backfill);
    let mut rm = ResourceManager::new(64);
    let busy = rm.allocate(60).unwrap();
    let running = [RunningView {
        id: JobId(10_000),
        nodes: 60,
        estimated_end: SimTime::seconds(100_000),
    }];
    sched.on_job_started(SimTime::seconds(100_000), 60);

    let mut queue = JobQueue::new();
    for i in 0..64 {
        // All wider than the 4 free nodes: nothing can ever be placed.
        queue.push(qj(i, i as i64, 8 + (i % 9) as u32, 600 + 60 * i as i64));
    }
    let ctx = SchedContext {
        running: &running,
        accounts: None,
    };
    let mut out: Vec<Placement> = Vec::new();

    // Warm-up: first call may sort the queue and size the plan scratch.
    sched
        .schedule(SimTime::seconds(100), &mut queue, &mut rm, &ctx, &mut out)
        .unwrap();
    assert!(out.is_empty(), "{policy:?}-{backfill:?}: nothing fits");

    let before = allocations();
    for call in 0..50i64 {
        sched
            .schedule(
                SimTime::seconds(160 + 60 * call),
                &mut queue,
                &mut rm,
                &ctx,
                &mut out,
            )
            .unwrap();
        assert!(out.is_empty());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{policy:?}-{backfill:?}: a no-op schedule call allocated"
    );

    // New arrivals binary-insert without a re-sort. The absorbing call may
    // grow scratch buffers once (the queue got longer); every no-op call
    // after it must be allocation-free again.
    queue.push(qj(1_000, 5_000, 9, 700));
    sched
        .schedule(SimTime::seconds(5_060), &mut queue, &mut rm, &ctx, &mut out)
        .unwrap();
    assert!(out.is_empty());
    let before = allocations();
    for call in 0..20i64 {
        sched
            .schedule(
                SimTime::seconds(5_120 + 60 * call),
                &mut queue,
                &mut rm,
                &ctx,
                &mut out,
            )
            .unwrap();
        assert!(out.is_empty());
    }
    let after = allocations();
    assert_eq!(
        after - before,
        0,
        "{policy:?}-{backfill:?}: no-op calls after an arrival allocated"
    );

    rm.release(&busy);
}

const COMBOS: [(PolicyKind, BackfillKind); 7] = [
    (PolicyKind::Fcfs, BackfillKind::None),
    (PolicyKind::Fcfs, BackfillKind::FirstFit),
    (PolicyKind::Fcfs, BackfillKind::Easy),
    (PolicyKind::Sjf, BackfillKind::Easy),
    (PolicyKind::PriorityAging, BackfillKind::Easy),
    (PolicyKind::Fcfs, BackfillKind::Conservative),
    (PolicyKind::Sjf, BackfillKind::Conservative),
];

/// The headline pin: obs compiled in but *disabled* (the default state) —
/// the instrumented hot path still makes zero heap allocations.
#[test]
fn noop_schedule_calls_allocate_nothing() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    assert!(
        !sraps_obs::profile_enabled() && !sraps_obs::trace_enabled(),
        "obs must be disabled by default"
    );
    for (policy, backfill) in COMBOS {
        assert_noop_calls_do_not_allocate(policy, backfill);
    }
}

/// Even with *profiling on*, the recorder stays allocation-free: spans and
/// counters land in const-initialized thread-local atomic arrays (no lazy
/// boxes, no destructor registration, no trace buffering).
#[test]
fn noop_schedule_calls_allocate_nothing_with_profiling_enabled() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    sraps_obs::set_profile(true);
    // Touch the thread-local recorder once outside the counted window, on
    // the off chance TLS setup itself ever costs an allocation.
    sraps_obs::bump(sraps_obs::Counter::SchedInvocations);
    for (policy, backfill) in COMBOS {
        assert_noop_calls_do_not_allocate(policy, backfill);
    }
    sraps_obs::set_profile(false);
}
