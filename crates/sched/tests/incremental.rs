//! Equivalence properties for the scheduler hot-path rewrites:
//!
//! * the incrementally-sorted [`JobQueue`] equals a from-scratch
//!   [`JobQueue::sort_by_key_stable`] under arbitrary push / remove /
//!   re-key sequences;
//! * the timeline-backed EASY reservation and conservative plan equal
//!   the from-scratch planners in [`sraps_sched::backfill`] on random
//!   running/queue states.
//!
//! These are the oracles that let the engine swap the per-call rebuilds
//! for incremental state without risking the bit-parity claim.

use proptest::prelude::*;
use sraps_sched::backfill::{conservative_plan, easy_reservation};
use sraps_sched::{
    CapacityTimeline, JobQueue, OrderStamp, PlanScratch, PolicyKind, QueuedJob, RunningView,
};
use sraps_types::{AccountId, JobId, SimDuration, SimTime};

fn qj(id: u64, submit: i64, nodes: u32, est: i64, prio: f64) -> QueuedJob {
    QueuedJob {
        id: JobId(id),
        account: AccountId((id % 5) as u32),
        submit: SimTime::seconds(submit),
        nodes,
        estimate: SimDuration::seconds(est),
        priority: prio,
        ml_score: None,
        recorded_start: SimTime::seconds(submit),
        recorded_nodes: None,
    }
}

fn ids(q: &JobQueue) -> Vec<u64> {
    q.jobs().iter().map(|j| j.id.0).collect()
}

proptest! {
    /// Arbitrary interleavings of push, remove_placed, and key-version
    /// bumps: after every ensure_order_by the queue must be exactly what
    /// a full stable re-sort with the same key would produce.
    #[test]
    fn incremental_order_equals_full_sort(
        ops in prop::collection::vec((0u32..10, 0i64..100, 1u32..32, 10i64..500, 0u32..6), 1..60),
    ) {
        // Key table per epoch: epoch e orders by priority * sign(e) with a
        // shift, exercising genuine re-keying (not just re-sorts).
        let key_for = |epoch: u64, j: &QueuedJob| -> f64 {
            if epoch.is_multiple_of(2) { j.priority + epoch as f64 } else { -j.priority }
        };
        let mut epoch = 0u64;
        let mut q = JobQueue::new();
        let mut next_id = 0u64;
        for (op, submit, nodes, est, prio) in ops {
            match op {
                // push one job (~half of all ops)
                0..=4 => {
                    q.push(qj(next_id, submit, nodes, est, prio as f64));
                    next_id += 1;
                }
                // remove up to two jobs that are still queued
                5 | 6 => {
                    let present = ids(&q);
                    let victims: Vec<JobId> = present
                        .iter()
                        .skip(submit as usize % (present.len().max(1)))
                        .take(2)
                        .map(|&i| JobId(i))
                        .collect();
                    q.remove_placed(&victims);
                }
                // bump the key epoch (keys change identity)
                7 => epoch += 1,
                // no-op call: order must already hold
                _ => {}
            }
            let stamp = OrderStamp { policy: PolicyKind::Priority, key_epoch: epoch };
            q.ensure_order_by(stamp, |j| key_for(epoch, j));
            let mut reference = q.clone();
            reference.sort_by_key_stable(|j| key_for(epoch, j));
            prop_assert_eq!(ids(&q), ids(&reference), "epoch {}", epoch);
            prop_assert_eq!(
                q.demand_nodes(),
                q.jobs().iter().map(|j| j.nodes as u64).sum::<u64>()
            );
        }
    }

    /// Timeline EASY == from-scratch EASY on random running sets,
    /// including tied estimated ends and overdue estimates.
    #[test]
    fn timeline_easy_equals_from_scratch(
        running in prop::collection::vec((1u32..64, -50i64..500), 0..24),
        head in 1u32..128,
        free in 0u32..64,
    ) {
        prop_assume!(head > free);
        let views: Vec<RunningView> = running
            .iter()
            .enumerate()
            .map(|(i, &(n, end))| RunningView {
                id: JobId(i as u64),
                nodes: n,
                estimated_end: SimTime::seconds(end % 7), // force tie collisions
            })
            .collect();
        let mut timeline = CapacityTimeline::new();
        for v in &views {
            timeline.add(v.estimated_end, v.nodes);
        }
        prop_assert!(timeline.matches(&views));
        prop_assert_eq!(
            timeline.easy_reservation(head, free),
            easy_reservation(head, free, &views)
        );
    }

    /// Timeline conservative plan == from-scratch conservative plan on
    /// random running/queue states — after random add/remove churn on the
    /// timeline, not just a fresh build.
    #[test]
    fn timeline_conservative_plan_equals_from_scratch(
        running in prop::collection::vec((1u32..48, -100i64..2_000), 0..16),
        queue in prop::collection::vec((1u32..80, 1i64..800, 0i64..50), 0..16),
        churn in prop::collection::vec((1u32..48, -100i64..2_000), 0..8),
        now in 0i64..200,
        free in 0u32..64,
        total in 1u32..64,
    ) {
        let views: Vec<RunningView> = running
            .iter()
            .enumerate()
            .map(|(i, &(n, end))| RunningView {
                id: JobId(i as u64),
                nodes: n,
                estimated_end: SimTime::seconds(end),
            })
            .collect();
        let mut timeline = CapacityTimeline::new();
        // Exercise the incremental maintenance: transient jobs come and go
        // before the final running set settles.
        for &(n, end) in &churn {
            timeline.add(SimTime::seconds(end), n);
        }
        for v in &views {
            timeline.add(v.estimated_end, v.nodes);
        }
        for &(n, end) in &churn {
            timeline.remove(SimTime::seconds(end), n);
        }
        prop_assert!(timeline.matches(&views));

        let jobs: Vec<QueuedJob> = queue
            .iter()
            .enumerate()
            .map(|(i, &(nodes, est, submit))| qj(i as u64, submit, nodes, est, 0.0))
            .collect();
        let now = SimTime::seconds(now);
        let mut scratch = PlanScratch::new();
        timeline.plan_conservative(&jobs, now, free, total, &mut scratch);
        let reference = conservative_plan(&jobs, now, free, total, &views);
        prop_assert_eq!(scratch.plan(), reference.as_slice());
        // Scratch reuse across calls must not leak state between plans.
        timeline.plan_conservative(&jobs, now, free, total, &mut scratch);
        prop_assert_eq!(scratch.plan(), reference.as_slice());
    }

    /// Fast-path-weighted variant: generous headroom and mostly-narrow
    /// jobs so the O(1) min-free anchor fires for most queue entries,
    /// with occasional wide jobs forcing the full sweep in between. The
    /// interleaving matters: fast-pathed reservations must leave the
    /// profile exactly as a swept placement would, or later sweeps (and
    /// the from-scratch oracle) diverge.
    #[test]
    fn timeline_conservative_fast_path_equals_from_scratch(
        running in prop::collection::vec((1u32..24, -100i64..2_000), 0..12),
        queue in prop::collection::vec((1u32..200, 0i64..800, 0i64..50), 0..24),
        now in 0i64..200,
        free in 64u32..256,
    ) {
        let views: Vec<RunningView> = running
            .iter()
            .enumerate()
            .map(|(i, &(n, end))| RunningView {
                id: JobId(i as u64),
                nodes: n,
                estimated_end: SimTime::seconds(end),
            })
            .collect();
        let mut timeline = CapacityTimeline::new();
        for v in &views {
            timeline.add(v.estimated_end, v.nodes);
        }
        let jobs: Vec<QueuedJob> = queue
            .iter()
            .enumerate()
            // Mostly narrow (fast path under `free` ≥ 64), every fifth
            // wide enough to need the sweep or be outright infeasible.
            .map(|(i, &(nodes, est, submit))| {
                let nodes = if i % 5 == 4 { nodes.max(64) } else { nodes % 16 + 1 };
                qj(i as u64, submit, nodes, est, 0.0)
            })
            .collect();
        let now = SimTime::seconds(now);
        let total = 255u32;
        let mut scratch = PlanScratch::new();
        timeline.plan_conservative(&jobs, now, free, total, &mut scratch);
        let reference = conservative_plan(&jobs, now, free, total, &views);
        prop_assert_eq!(scratch.plan(), reference.as_slice());
    }
}
