//! Cooling distribution unit: the liquid-to-liquid heat exchanger coupling
//! the rack (primary) loop to the facility (secondary) loop.

use serde::{Deserialize, Serialize};

/// Effectiveness-model CDU.
///
/// Real CDUs transfer `Q = ε · C_min · (T_hot,in − T_cold,in)`. At the
/// fidelity the digital twin needs, the primary loop tracks IT heat almost
/// instantly (small water volume next to kilowatt-dense blades), so we model
/// the primary side as a heat *source* whose outlet temperature rises above
/// the secondary supply by `Q / (ε · C)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Cdu {
    /// Heat-exchanger effectiveness in (0, 1].
    pub effectiveness: f64,
    /// Secondary mass flow through the CDU bank, kg/s.
    pub flow_kg_s: f64,
}

/// Specific heat of water, kJ/(kg·°C).
pub const CP_WATER: f64 = 4.186;

impl Cdu {
    pub fn new(effectiveness: f64, flow_kg_s: f64) -> Self {
        debug_assert!((0.0..=1.0).contains(&effectiveness));
        debug_assert!(flow_kg_s > 0.0);
        Cdu {
            effectiveness,
            flow_kg_s,
        }
    }

    /// Heat capacity rate of the secondary stream, kW/°C.
    pub fn capacity_rate(&self) -> f64 {
        self.flow_kg_s * CP_WATER
    }

    /// Secondary return temperature (°C) when absorbing `heat_kw` with
    /// supply water at `supply_c`.
    ///
    /// Energy balance: all IT heat ends up in the secondary stream, so
    /// `T_return = T_supply + Q / (ṁ·c_p)`; the effectiveness bounds how
    /// much of the stream participates, raising the effective ΔT.
    pub fn secondary_return_c(&self, supply_c: f64, heat_kw: f64) -> f64 {
        supply_c + heat_kw / (self.effectiveness * self.capacity_rate())
    }

    /// Rack-side (primary) hot temperature implied by the same transfer —
    /// what blade inlets would see; reported for diagnostics.
    pub fn primary_hot_c(&self, supply_c: f64, heat_kw: f64) -> f64 {
        // Primary must be hotter than secondary return for heat to flow.
        self.secondary_return_c(supply_c, heat_kw) + heat_kw / self.capacity_rate() * 0.25
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_heat_means_no_temperature_rise() {
        let cdu = Cdu::new(0.9, 100.0);
        assert_eq!(cdu.secondary_return_c(24.0, 0.0), 24.0);
    }

    #[test]
    fn return_temp_rises_linearly_with_heat() {
        let cdu = Cdu::new(1.0, 100.0);
        let t1 = cdu.secondary_return_c(24.0, 1000.0) - 24.0;
        let t2 = cdu.secondary_return_c(24.0, 2000.0) - 24.0;
        assert!((t2 - 2.0 * t1).abs() < 1e-9);
        // Sanity: 1000 kW into 100 kg/s water is ~2.39 °C.
        assert!((t1 - 1000.0 / (100.0 * CP_WATER)).abs() < 1e-9);
    }

    #[test]
    fn lower_effectiveness_raises_return_temp() {
        let good = Cdu::new(1.0, 100.0);
        let poor = Cdu::new(0.5, 100.0);
        assert!(poor.secondary_return_c(24.0, 500.0) > good.secondary_return_c(24.0, 500.0));
    }

    #[test]
    fn primary_always_hotter_than_secondary() {
        let cdu = Cdu::new(0.92, 200.0);
        for q in [10.0, 100.0, 5_000.0] {
            assert!(cdu.primary_hot_c(24.0, q) > cdu.secondary_return_c(24.0, q));
        }
    }
}
