//! Transient thermo-fluid cooling model.
//!
//! Substitutes the Modelica cooling model of Kumar et al. \[25\] with a
//! lumped-parameter plant that preserves the couplings the paper studies:
//!
//! * IT power becomes heat in the **secondary (facility water) loop** via
//!   the CDUs' heat exchangers;
//! * loop temperature integrates a first-order energy balance (thermal
//!   capacitance), so scheduling-induced power swings appear as *lagged*
//!   temperature swings at the **cooling tower** (Fig 6, bottom panel);
//! * tower fans and pumps draw auxiliary power that, together with
//!   electrical losses, yields **PUE** (Fig 6, third panel).
//!
//! The chain per tick: heat in → loop temperature ODE (explicit Euler) →
//! tower return temperature → fan demand from required rejection → PUE.

pub mod cdu;
pub mod plant;
pub mod tower;

pub use cdu::Cdu;
pub use plant::{CoolingPlant, CoolingSample};
pub use tower::CoolingTower;
