//! Evaporative cooling tower: rejects the loop's heat to ambient.

use serde::{Deserialize, Serialize};

/// Cooling-tower model with load-dependent approach temperature and
/// fan-affinity power law.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingTower {
    /// Approach above ambient wet-bulb at design load, °C.
    pub design_approach_c: f64,
    /// Fan power at design rejection, kW.
    pub fan_design_kw: f64,
    /// Heat rejection the tower was sized for, kW.
    pub design_load_kw: f64,
}

impl CoolingTower {
    /// Coldest water the tower can produce at `load_fraction` of design:
    /// wet-bulb plus an approach that grows with load (heavily loaded fill
    /// approaches saturation). Approach shrinks at part load but never
    /// below 40 % of design — a standard counterflow-tower characteristic.
    pub fn cold_water_c(&self, wetbulb_c: f64, load_fraction: f64) -> f64 {
        let l = load_fraction.max(0.0);
        let approach = self.design_approach_c * (0.4 + 0.6 * l.min(1.5));
        wetbulb_c + approach
    }

    /// Fan power needed to reject `heat_kw`, by the fan-affinity cube law:
    /// airflow scales with load, power with airflow³. Above design the fans
    /// saturate at full speed.
    pub fn fan_power_kw(&self, heat_kw: f64) -> f64 {
        if self.design_load_kw <= 0.0 {
            return 0.0;
        }
        let l = (heat_kw / self.design_load_kw).max(0.0);
        self.fan_design_kw * l.min(1.0).powi(3) + self.fan_design_kw * (l - 1.0).max(0.0) * 0.1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tower() -> CoolingTower {
        CoolingTower {
            design_approach_c: 4.0,
            fan_design_kw: 300.0,
            design_load_kw: 20_000.0,
        }
    }

    #[test]
    fn cold_water_above_wetbulb() {
        let t = tower();
        for l in [0.0, 0.5, 1.0, 1.4] {
            assert!(t.cold_water_c(20.0, l) > 20.0);
        }
    }

    #[test]
    fn approach_grows_with_load() {
        let t = tower();
        assert!(t.cold_water_c(20.0, 1.0) > t.cold_water_c(20.0, 0.2));
        // At design load, approach equals the design approach.
        assert!((t.cold_water_c(20.0, 1.0) - 24.0).abs() < 1e-9);
    }

    #[test]
    fn fan_power_cubic_then_saturating() {
        let t = tower();
        let half = t.fan_power_kw(10_000.0);
        let full = t.fan_power_kw(20_000.0);
        assert!((half - 300.0 * 0.125).abs() < 1e-9, "cube law at half load");
        assert!((full - 300.0).abs() < 1e-9);
        // Overload only adds the small linear penalty term.
        assert!(t.fan_power_kw(24_000.0) < 320.0);
    }

    #[test]
    fn degenerate_tower_is_safe() {
        let t = CoolingTower {
            design_approach_c: 4.0,
            fan_design_kw: 0.0,
            design_load_kw: 0.0,
        };
        assert_eq!(t.fan_power_kw(1000.0), 0.0);
    }
}
