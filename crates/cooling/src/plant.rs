//! The assembled cooling plant stepped once per engine tick.

use crate::cdu::Cdu;
use crate::tower::CoolingTower;
use serde::{Deserialize, Serialize};
use sraps_systems::CoolingSpec;
use sraps_types::SimDuration;

/// One cooling reading per tick — the series Fig 6 plots.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CoolingSample {
    /// Water temperature arriving at the cooling towers, °C
    /// (Fig 6 "Cooling Tower Return Temperature").
    pub tower_return_c: f64,
    /// Facility supply temperature after the tower, °C.
    pub supply_c: f64,
    /// Tower fan power, kW.
    pub fan_power_kw: f64,
    /// Loop pump power, kW.
    pub pump_power_kw: f64,
    /// Power usage effectiveness = (IT + losses + cooling aux) / IT.
    pub pue: f64,
    /// Heat carried by the loop this tick, kW.
    pub heat_kw: f64,
}

/// Transient lumped plant: CDU bank + water loop with thermal mass +
/// cooling tower.
///
/// State is the loop's mean water temperature; each tick integrates
/// `C·dT/dt = Q_in − Q_rejected` with explicit Euler at the engine step.
/// `Q_rejected` rises with how far the loop runs above the tower's
/// achievable cold-water temperature, which is what creates the lag between
/// a power swing and the tower response visible in the paper's Fig 6.
#[derive(Debug, Clone)]
pub struct CoolingPlant {
    spec: CoolingSpec,
    cdu: Cdu,
    tower: CoolingTower,
    /// Mean loop water temperature, °C (the integrated state).
    loop_temp_c: f64,
}

impl CoolingPlant {
    pub fn new(spec: &CoolingSpec) -> Self {
        CoolingPlant {
            spec: *spec,
            cdu: Cdu::new(spec.hx_effectiveness, spec.design_flow_kg_s),
            tower: CoolingTower {
                design_approach_c: spec.tower_approach_c,
                fan_design_kw: spec.fan_design_kw,
                design_load_kw: spec.design_load_kw,
            },
            loop_temp_c: spec.supply_setpoint_c,
        }
    }

    /// Current loop temperature (diagnostics/tests).
    pub fn loop_temp_c(&self) -> f64 {
        self.loop_temp_c
    }

    /// Overwrite the integrated loop temperature. The loop temperature is
    /// the plant's *only* mutable state (spec, CDU and tower are rebuilt
    /// from the [`CoolingSpec`]), so restoring it from an engine snapshot
    /// resumes the transient bit-identically.
    pub fn set_loop_temp_c(&mut self, temp_c: f64) {
        self.loop_temp_c = temp_c;
    }

    /// Advance the plant one tick at the system's design ambient.
    ///
    /// * `dt` — engine tick;
    /// * `it_heat_kw` — heat entering the loop this tick (IT power; the
    ///   rectifier losses heat air handled separately and are excluded);
    /// * `it_plus_losses_kw` — electrical input, for the PUE numerator.
    pub fn step(
        &mut self,
        dt: SimDuration,
        it_heat_kw: f64,
        it_plus_losses_kw: f64,
    ) -> CoolingSample {
        self.step_at_ambient(
            dt,
            it_heat_kw,
            it_plus_losses_kw,
            self.spec.ambient_wetbulb_c,
        )
    }

    /// Advance the plant one tick under an explicit ambient wet-bulb
    /// temperature (weather-trace runs).
    pub fn step_at_ambient(
        &mut self,
        dt: SimDuration,
        it_heat_kw: f64,
        it_plus_losses_kw: f64,
        wetbulb_c: f64,
    ) -> CoolingSample {
        let load_fraction = if self.spec.design_load_kw > 0.0 {
            it_heat_kw / self.spec.design_load_kw
        } else {
            0.0
        };

        // Tower-side: achievable cold water at this load and ambient.
        let cold_c = self.tower.cold_water_c(wetbulb_c, load_fraction);

        // Heat rejected grows with loop-above-cold-water excess, with the
        // loop's full capacity rate as the transfer coefficient. At steady
        // state this balances Q_in, pinning T_loop = cold + Q/(ṁ·c_p·k).
        let ua = self.cdu.capacity_rate(); // kW/°C
        let rejected_kw = (ua * (self.loop_temp_c - cold_c)).max(0.0);

        // Integrate the loop energy balance.
        let c = self.spec.loop_thermal_capacity_kj_per_c.max(1e-6); // kJ/°C
        let dtemp = (it_heat_kw - rejected_kw) * dt.as_secs_f64() / c;
        self.loop_temp_c += dtemp;
        // Water loops are protected; clamp to physical band.
        self.loop_temp_c = self.loop_temp_c.clamp(wetbulb_c - 5.0, 95.0);

        // The CDU return (hot side of the loop) arrives at the tower.
        let tower_return_c = self
            .cdu
            .secondary_return_c(self.loop_temp_c, it_heat_kw * 0.5)
            .min(95.0);

        let fan_kw = self.tower.fan_power_kw(rejected_kw.max(it_heat_kw * 0.2));
        let pump_kw = self.spec.design_load_kw * self.spec.pump_frac_of_design;

        let pue = if it_heat_kw > 0.0 {
            (it_plus_losses_kw + fan_kw + pump_kw) / it_heat_kw
        } else {
            1.0
        };

        CoolingSample {
            tower_return_c,
            supply_c: cold_c,
            fan_power_kw: fan_kw,
            pump_power_kw: pump_kw,
            pue,
            heat_kw: it_heat_kw,
        }
    }

    /// Batch entry point: advance `ticks` ticks under a constant heat
    /// load at the design ambient, appending one sample per tick to
    /// `out`. Each tick goes through [`CoolingPlant::step`] unchanged —
    /// the loop state still integrates tick by tick (the transient lag
    /// is the point of the model), so the series is bit-identical to
    /// calling `step` in a loop; only the dispatch is hoisted.
    pub fn step_many(
        &mut self,
        dt: SimDuration,
        it_heat_kw: f64,
        it_plus_losses_kw: f64,
        ticks: usize,
        out: &mut Vec<CoolingSample>,
    ) {
        out.reserve(ticks);
        for _ in 0..ticks {
            out.push(self.step(dt, it_heat_kw, it_plus_losses_kw));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_systems::presets;

    fn plant() -> CoolingPlant {
        CoolingPlant::new(&presets::frontier().cooling)
    }

    fn run_steady(plant: &mut CoolingPlant, heat_kw: f64, ticks: usize) -> CoolingSample {
        let mut last = CoolingSample::default();
        for _ in 0..ticks {
            last = plant.step(SimDuration::seconds(15), heat_kw, heat_kw * 1.05);
        }
        last
    }

    #[test]
    fn steady_state_balances_heat() {
        let mut p = plant();
        let s = run_steady(&mut p, 15_000.0, 20_000);
        // At steady state the loop stops moving: |Q_in − Q_out| small, i.e.
        // temperature change per tick is negligible.
        let t1 = p.loop_temp_c();
        p.step(SimDuration::seconds(15), 15_000.0, 15_750.0);
        assert!((p.loop_temp_c() - t1).abs() < 1e-3);
        assert!(s.tower_return_c > s.supply_c, "return hotter than supply");
    }

    #[test]
    fn hotter_load_means_hotter_return_water() {
        let mut p1 = plant();
        let mut p2 = plant();
        let low = run_steady(&mut p1, 10_000.0, 20_000);
        let high = run_steady(&mut p2, 24_000.0, 20_000);
        assert!(high.tower_return_c > low.tower_return_c + 0.5);
    }

    #[test]
    fn step_many_equals_sequential_steps() {
        let mut batched = plant();
        let mut reference = plant();
        let dt = SimDuration::seconds(15);
        // Warm both plants off the setpoint first so the batch starts
        // mid-transient, then compare the whole series and final state.
        run_steady(&mut batched, 18_000.0, 50);
        run_steady(&mut reference, 18_000.0, 50);
        let mut series = Vec::new();
        batched.step_many(dt, 12_000.0, 12_600.0, 200, &mut series);
        for (k, s) in series.iter().enumerate() {
            assert_eq!(*s, reference.step(dt, 12_000.0, 12_600.0), "tick {k}");
        }
        assert_eq!(batched.loop_temp_c(), reference.loop_temp_c());
    }

    #[test]
    fn pue_in_plausible_band_and_worse_at_low_load() {
        let mut p1 = plant();
        let mut p2 = plant();
        let low = run_steady(&mut p1, 8_000.0, 10_000);
        let high = run_steady(&mut p2, 24_000.0, 10_000);
        for s in [low, high] {
            assert!(s.pue > 1.0 && s.pue < 1.5, "pue {} out of band", s.pue);
        }
        // Fixed pump power hurts proportionally more at low load.
        assert!(low.pue >= high.pue - 0.05);
    }

    #[test]
    fn temperature_response_lags_power_step() {
        let mut p = plant();
        run_steady(&mut p, 10_000.0, 20_000);
        let before = p.loop_temp_c();
        // Step power up; one tick later the loop has moved only a little —
        // the lag Fig 6 relies on.
        p.step(SimDuration::seconds(15), 25_000.0, 26_000.0);
        let after_1 = p.loop_temp_c();
        run_steady(&mut p, 25_000.0, 20_000);
        let settled = p.loop_temp_c();
        assert!(after_1 > before && after_1 < settled);
        assert!(
            (after_1 - before) < (settled - before) * 0.2,
            "single tick must cover <20% of the settling distance"
        );
    }

    #[test]
    fn zero_heat_drifts_to_ambient_band_with_unit_pue() {
        let mut p = plant();
        let s = run_steady(&mut p, 0.0, 5_000);
        assert_eq!(s.pue, 1.0);
        assert!(p.loop_temp_c() >= presets::frontier().cooling.ambient_wetbulb_c - 5.0);
    }
}
