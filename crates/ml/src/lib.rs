//! ML-guided scheduling pipeline (§4.4), implemented from scratch.
//!
//! The paper's pipeline has three training stages and an inference stage:
//!
//! 1. **Clustering** — K-means over static + dynamic job features
//!    partitions historical jobs into behavioural clusters.
//! 2. **Classification** — a random forest learns to map *pre-submission*
//!    features to the cluster label (dynamic features don't exist yet at
//!    submit time).
//! 3. **Prediction** — per cluster, regressors predict target metrics
//!    (runtime, power, …) from static inputs.
//! 4. **Inference** — new jobs are normalized, classified into a cluster,
//!    run through that cluster's regressor, and ranked by the score
//!    `S(Xᵢ) = Σⱼ αⱼ · exp(√(Xᵢⱼ + 1))⁻¹`.
//!
//! Everything (K-means++, CART trees, bootstrap forests, ridge regression,
//! z-score scaling) is implemented here — the paper uses scikit-learn, but
//! the *policy* the pipeline produces only depends on these standard
//! algorithms behaving standardly. Forest training is parallelized with
//! Rayon (tree fits are embarrassingly parallel).

pub mod features;
pub mod fingerprint;
pub mod forest;
pub mod kmeans;
pub mod pipeline;
pub mod ridge;
pub mod scaler;
pub mod scoring;
pub mod tree;
pub mod walltime;

pub use features::{dynamic_features, static_features, FeatureMatrix, DYNAMIC_DIM, STATIC_DIM};
pub use forest::RandomForest;
pub use kmeans::KMeans;
pub use pipeline::{InferenceResult, MlPipeline, PipelineConfig};
pub use ridge::Ridge;
pub use scaler::Scaler;
pub use scoring::{score, ScoreWeights};
pub use tree::{DecisionTree, TreeKind};
pub use walltime::WalltimeModel;
