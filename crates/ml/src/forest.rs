//! Random forest on bootstrap samples (training stage 2: the cluster
//! classifier; also usable for per-cluster regression).

use crate::tree::{DecisionTree, TreeKind, TreeParams};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// A fitted forest.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomForest {
    kind: TreeKind,
    trees: Vec<DecisionTree>,
}

impl RandomForest {
    /// Fit `n_trees` trees, each on a bootstrap resample with √dim feature
    /// subsampling. Tree fits run in parallel (Rayon) — they are
    /// independent given per-tree seeds.
    pub fn fit(
        kind: TreeKind,
        x: &[Vec<f64>],
        y: &[f64],
        n_trees: usize,
        max_depth: usize,
        seed: u64,
    ) -> RandomForest {
        assert!(!x.is_empty(), "forest needs data");
        let dim = x[0].len();
        let params = TreeParams {
            max_depth,
            min_samples_split: 4,
            max_features: Some(((dim as f64).sqrt().ceil() as usize).max(1)),
        };
        let trees: Vec<DecisionTree> = (0..n_trees)
            .into_par_iter()
            .map(|t| {
                let mut rng = SmallRng::seed_from_u64(seed ^ (t as u64).wrapping_mul(0x9E37));
                let idx: Vec<usize> = (0..x.len()).map(|_| rng.gen_range(0..x.len())).collect();
                DecisionTree::fit(kind, x, y, &idx, &params, &mut rng)
            })
            .collect();
        RandomForest { kind, trees }
    }

    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Predict: majority vote (classification) or mean (regression).
    pub fn predict(&self, row: &[f64]) -> f64 {
        match self.kind {
            TreeKind::Regression => {
                self.trees.iter().map(|t| t.predict(row)).sum::<f64>() / self.trees.len() as f64
            }
            TreeKind::Classification => {
                let mut votes: Vec<(i64, usize)> = Vec::new();
                for t in &self.trees {
                    let label = t.predict(row) as i64;
                    match votes.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, c)) => *c += 1,
                        None => votes.push((label, 1)),
                    }
                }
                votes
                    .into_iter()
                    .max_by_key(|&(l, c)| (c, -l))
                    .map(|(l, _)| l as f64)
                    .unwrap_or(0.0)
            }
        }
    }

    /// Classification accuracy on a labelled set.
    pub fn accuracy(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        debug_assert_eq!(self.kind, TreeKind::Classification);
        let hit = x
            .iter()
            .zip(y)
            .filter(|(row, &label)| self.predict(row) == label)
            .count();
        hit as f64 / x.len().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| vec![rng.gen_range(0.0..1.0), rng.gen_range(0.0..1.0)])
            .collect();
        let y = x
            .iter()
            .map(|v| ((v[0] > 0.5) ^ (v[1] > 0.5)) as i64 as f64)
            .collect();
        (x, y)
    }

    #[test]
    fn learns_xor_which_single_splits_cannot() {
        let (x, y) = xor_data(600, 2);
        let f = RandomForest::fit(TreeKind::Classification, &x, &y, 40, 10, 3);
        assert!(f.accuracy(&x, &y) > 0.9, "{}", f.accuracy(&x, &y));
    }

    #[test]
    fn generalizes_to_held_out_data() {
        let (xtr, ytr) = xor_data(600, 2);
        let (xte, yte) = xor_data(200, 99);
        let f = RandomForest::fit(TreeKind::Classification, &xtr, &ytr, 40, 10, 3);
        assert!(f.accuracy(&xte, &yte) > 0.8, "{}", f.accuracy(&xte, &yte));
    }

    #[test]
    fn regression_mean_of_trees() {
        let mut rng = SmallRng::seed_from_u64(7);
        let x: Vec<Vec<f64>> = (0..400).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = x.iter().map(|v| 3.0 * v[0] + 1.0).collect();
        let f = RandomForest::fit(TreeKind::Regression, &x, &y, 30, 10, 11);
        // Prediction near the line in the interior.
        for probe in [2.0, 5.0, 8.0] {
            let p = f.predict(&[probe]);
            assert!((p - (3.0 * probe + 1.0)).abs() < 2.0, "f({probe}) = {p}");
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let (x, y) = xor_data(200, 2);
        let a = RandomForest::fit(TreeKind::Classification, &x, &y, 10, 8, 5);
        let b = RandomForest::fit(TreeKind::Classification, &x, &y, 10, 8, 5);
        for row in x.iter().take(20) {
            assert_eq!(a.predict(row), b.predict(row));
        }
    }
}
