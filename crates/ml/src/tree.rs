//! CART decision trees: Gini-split classification and variance-split
//! regression, the base learner of the random forest.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Whether a tree predicts a class label or a real value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TreeKind {
    Classification,
    Regression,
}

#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
enum Node {
    Leaf {
        /// Majority class (classification) or mean target (regression).
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        left: usize,
        right: usize,
    },
}

/// A fitted CART tree (arena-allocated nodes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionTree {
    kind: TreeKind,
    nodes: Vec<Node>,
}

/// Hyper-parameters for tree fitting.
#[derive(Debug, Clone, Copy)]
pub struct TreeParams {
    pub max_depth: usize,
    pub min_samples_split: usize,
    /// Features tried per split; `None` = all (single tree), forests pass
    /// ~√dim for decorrelation.
    pub max_features: Option<usize>,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 12,
            min_samples_split: 4,
            max_features: None,
        }
    }
}

impl DecisionTree {
    /// Fit on row-major `x` and targets `y` (class indices as f64 for
    /// classification). `idx` selects the rows in scope (bootstrap sample).
    pub fn fit(
        kind: TreeKind,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &[usize],
        params: &TreeParams,
        rng: &mut SmallRng,
    ) -> DecisionTree {
        assert_eq!(x.len(), y.len());
        assert!(!idx.is_empty(), "tree needs samples");
        let mut tree = DecisionTree {
            kind,
            nodes: Vec::new(),
        };
        let mut scratch = idx.to_vec();
        tree.build(x, y, &mut scratch, 0, params, rng);
        tree
    }

    fn leaf_value(kind: TreeKind, y: &[f64], idx: &[usize]) -> f64 {
        match kind {
            TreeKind::Regression => idx.iter().map(|&i| y[i]).sum::<f64>() / idx.len() as f64,
            TreeKind::Classification => {
                // Majority vote over small integer labels.
                let mut counts: Vec<(i64, usize)> = Vec::new();
                for &i in idx {
                    let label = y[i] as i64;
                    match counts.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((label, 1)),
                    }
                }
                counts
                    .into_iter()
                    .max_by_key(|&(l, c)| (c, -l)) // deterministic tie-break
                    .map(|(l, _)| l as f64)
                    .unwrap_or(0.0)
            }
        }
    }

    /// Impurity of a set: Gini for classification, variance for regression.
    fn impurity(kind: TreeKind, y: &[f64], idx: &[usize]) -> f64 {
        if idx.is_empty() {
            return 0.0;
        }
        match kind {
            TreeKind::Regression => {
                let n = idx.len() as f64;
                let mean = idx.iter().map(|&i| y[i]).sum::<f64>() / n;
                idx.iter()
                    .map(|&i| (y[i] - mean) * (y[i] - mean))
                    .sum::<f64>()
                    / n
            }
            TreeKind::Classification => {
                let mut counts: Vec<(i64, usize)> = Vec::new();
                for &i in idx {
                    let label = y[i] as i64;
                    match counts.iter_mut().find(|(l, _)| *l == label) {
                        Some((_, c)) => *c += 1,
                        None => counts.push((label, 1)),
                    }
                }
                let n = idx.len() as f64;
                1.0 - counts
                    .iter()
                    .map(|&(_, c)| (c as f64 / n) * (c as f64 / n))
                    .sum::<f64>()
            }
        }
    }

    /// Recursively build; returns node index.
    fn build(
        &mut self,
        x: &[Vec<f64>],
        y: &[f64],
        idx: &mut [usize],
        depth: usize,
        params: &TreeParams,
        rng: &mut SmallRng,
    ) -> usize {
        let parent_imp = Self::impurity(self.kind, y, idx);
        if depth >= params.max_depth || idx.len() < params.min_samples_split || parent_imp < 1e-12 {
            let v = Self::leaf_value(self.kind, y, idx);
            self.nodes.push(Node::Leaf { value: v });
            return self.nodes.len() - 1;
        }

        let dim = x[0].len();
        let n_try = params.max_features.unwrap_or(dim).clamp(1, dim);
        let mut feats: Vec<usize> = (0..dim).collect();
        feats.shuffle(rng);
        feats.truncate(n_try);

        // Best split over tried features; thresholds from random sample
        // quantiles (cheaper than exhaustive sort per feature, standard for
        // forests).
        let mut best: Option<(usize, f64, f64)> = None; // (feat, thr, score)
        for &f in &feats {
            // Candidate thresholds: up to 12 random pivots from the data.
            for _ in 0..12 {
                let pivot = x[idx[rng.gen_range(0..idx.len())]][f];
                let (mut nl, mut nr) = (0usize, 0usize);
                for &i in idx.iter() {
                    if x[i][f] <= pivot {
                        nl += 1;
                    } else {
                        nr += 1;
                    }
                }
                if nl == 0 || nr == 0 {
                    continue;
                }
                // Weighted child impurity.
                let left: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] <= pivot).collect();
                let right: Vec<usize> = idx.iter().copied().filter(|&i| x[i][f] > pivot).collect();
                let score = (left.len() as f64 * Self::impurity(self.kind, y, &left)
                    + right.len() as f64 * Self::impurity(self.kind, y, &right))
                    / idx.len() as f64;
                if best.is_none() || score < best.expect("checked").2 {
                    best = Some((f, pivot, score));
                }
            }
        }

        let Some((feat, thr, score)) = best else {
            let v = Self::leaf_value(self.kind, y, idx);
            self.nodes.push(Node::Leaf { value: v });
            return self.nodes.len() - 1;
        };
        if score >= parent_imp - 1e-12 {
            // No impurity reduction.
            let v = Self::leaf_value(self.kind, y, idx);
            self.nodes.push(Node::Leaf { value: v });
            return self.nodes.len() - 1;
        }

        // Partition in place.
        let mut left: Vec<usize> = Vec::new();
        let mut right: Vec<usize> = Vec::new();
        for &i in idx.iter() {
            if x[i][feat] <= thr {
                left.push(i);
            } else {
                right.push(i);
            }
        }
        // Reserve this node's slot before children are built.
        self.nodes.push(Node::Leaf { value: 0.0 });
        let me = self.nodes.len() - 1;
        let l = self.build(x, y, &mut left, depth + 1, params, rng);
        let r = self.build(x, y, &mut right, depth + 1, params, rng);
        self.nodes[me] = Node::Split {
            feature: feat,
            threshold: thr,
            left: l,
            right: r,
        };
        me
    }

    /// Predict one row. Note the arena root is the *first reserved* node
    /// (index of the outermost build call): we track it as node pushed
    /// first for leaves, or the reserved slot for splits — both are 0.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut at = 0usize;
        loop {
            match &self.nodes[at] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    at = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn classifies_linearly_separable_data() {
        // Class = x0 > 0.5.
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..200)
            .map(|_| vec![r.gen_range(0.0..1.0), r.gen_range(0.0..1.0)])
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] > 0.5 { 1.0 } else { 0.0 })
            .collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree = DecisionTree::fit(
            TreeKind::Classification,
            &x,
            &y,
            &idx,
            &TreeParams::default(),
            &mut r,
        );
        let correct = x
            .iter()
            .zip(&y)
            .filter(|(row, &label)| tree.predict(row) == label)
            .count();
        assert!(correct as f64 / x.len() as f64 > 0.95, "{correct}/200");
    }

    #[test]
    fn regresses_step_function() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..300).map(|_| vec![r.gen_range(0.0..1.0)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| if v[0] > 0.3 { 10.0 } else { 2.0 })
            .collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let tree = DecisionTree::fit(
            TreeKind::Regression,
            &x,
            &y,
            &idx,
            &TreeParams::default(),
            &mut r,
        );
        assert!((tree.predict(&[0.1]) - 2.0).abs() < 1.0);
        assert!((tree.predict(&[0.9]) - 10.0).abs() < 1.0);
    }

    #[test]
    fn pure_node_becomes_leaf() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![1.0, 1.0, 1.0];
        let idx = vec![0, 1, 2];
        let mut r = rng();
        let tree = DecisionTree::fit(
            TreeKind::Classification,
            &x,
            &y,
            &idx,
            &TreeParams::default(),
            &mut r,
        );
        assert_eq!(tree.node_count(), 1, "pure targets need no splits");
        assert_eq!(tree.predict(&[99.0]), 1.0);
    }

    #[test]
    fn depth_limit_bounds_tree() {
        let mut r = rng();
        let x: Vec<Vec<f64>> = (0..500).map(|_| vec![r.gen_range(0.0..1.0)]).collect();
        let y: Vec<f64> = x.iter().map(|v| v[0] * 7.0).collect();
        let idx: Vec<usize> = (0..x.len()).collect();
        let params = TreeParams {
            max_depth: 2,
            ..Default::default()
        };
        let tree = DecisionTree::fit(TreeKind::Regression, &x, &y, &idx, &params, &mut r);
        // Depth-2 binary tree ≤ 7 nodes.
        assert!(tree.node_count() <= 7, "{}", tree.node_count());
    }

    #[test]
    fn single_sample_is_a_leaf() {
        let x = vec![vec![1.0, 2.0]];
        let y = vec![5.0];
        let mut r = rng();
        let tree = DecisionTree::fit(
            TreeKind::Regression,
            &x,
            &y,
            &[0],
            &TreeParams::default(),
            &mut r,
        );
        assert_eq!(tree.predict(&[0.0, 0.0]), 5.0);
    }
}
