//! End-to-end pipeline: train (split → preprocess → cluster → classify →
//! regress) and infer (classify → predict → score), mirroring the
//! `driver.py fugaku split/train/test` flow of artifact A4.

use crate::features::{clustering_features, static_features, targets};
use crate::forest::RandomForest;
use crate::kmeans::KMeans;
use crate::ridge::Ridge;
use crate::scaler::Scaler;
use crate::scoring::{score, ScoreWeights};
use crate::tree::TreeKind;
use sraps_types::{Job, Result, SrapsError};

/// Pipeline hyper-parameters (the artifact's config file).
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// Number of behavioural clusters (the artifact uses 5).
    pub n_clusters: usize,
    /// Trees in the cluster classifier.
    pub n_trees: usize,
    pub max_tree_depth: usize,
    /// Ridge penalty for per-cluster predictors.
    pub ridge_lambda: f64,
    pub seed: u64,
    /// Score coefficients over `[nodes, predicted_runtime_h,
    /// predicted_power_kw]`.
    pub weights: ScoreWeights,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            n_clusters: 5,
            n_trees: 30,
            max_tree_depth: 10,
            ridge_lambda: 0.1,
            seed: 0x4D4C_5EED, // "ML SEED"
            weights: ScoreWeights::default_for_scheduling(),
        }
    }
}

/// A trained pipeline.
#[derive(Debug, Clone)]
pub struct MlPipeline {
    config: PipelineConfig,
    /// Scaler over clustering (static+dynamic) features.
    cluster_scaler: Scaler,
    /// Scaler over static features (inference input).
    static_scaler: Scaler,
    kmeans: KMeans,
    classifier: RandomForest,
    /// Per-cluster per-target ridge predictors: `[cluster][target]`.
    predictors: Vec<Vec<Ridge>>,
}

/// Inference output for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct InferenceResult {
    pub cluster: usize,
    pub predicted_runtime_h: f64,
    pub predicted_node_power_kw: f64,
    pub score: f64,
}

impl MlPipeline {
    /// Train on historical jobs (with telemetry).
    pub fn train(historical: &[Job], config: PipelineConfig) -> Result<MlPipeline> {
        if historical.len() < config.n_clusters.max(8) {
            return Err(SrapsError::Config(format!(
                "need at least {} historical jobs, got {}",
                config.n_clusters.max(8),
                historical.len()
            )));
        }
        // Stage 0: preprocess.
        let cluster_rows: Vec<Vec<f64>> = historical.iter().map(clustering_features).collect();
        let static_rows: Vec<Vec<f64>> = historical.iter().map(static_features).collect();
        let target_rows: Vec<Vec<f64>> = historical.iter().map(targets).collect();
        let cluster_scaler = Scaler::fit(&cluster_rows);
        let static_scaler = Scaler::fit(&static_rows);
        let scaled_cluster = cluster_scaler.transform(&cluster_rows);
        let scaled_static = static_scaler.transform(&static_rows);

        // Stage 1: cluster on static+dynamic features.
        let kmeans = KMeans::fit(&scaled_cluster, config.n_clusters, 100, config.seed);
        let labels: Vec<f64> = scaled_cluster
            .iter()
            .map(|r| kmeans.predict(r) as f64)
            .collect();

        // Stage 2: classifier maps *static-only* features → cluster label.
        let classifier = RandomForest::fit(
            TreeKind::Classification,
            &scaled_static,
            &labels,
            config.n_trees,
            config.max_tree_depth,
            config.seed ^ 0xC1A5,
        );

        // Stage 3: per-cluster ridge predictors for each target metric.
        let n_targets = target_rows[0].len();
        let mut predictors = Vec::with_capacity(kmeans.k());
        for c in 0..kmeans.k() {
            let member_idx: Vec<usize> = labels
                .iter()
                .enumerate()
                .filter(|(_, &l)| l as usize == c)
                .map(|(i, _)| i)
                .collect();
            let mut per_target = Vec::with_capacity(n_targets);
            for t in 0..n_targets {
                let (x, y): (Vec<Vec<f64>>, Vec<f64>) = if member_idx.is_empty() {
                    // Empty cluster: fall back to the global fit.
                    (
                        scaled_static.clone(),
                        target_rows.iter().map(|r| r[t]).collect(),
                    )
                } else {
                    (
                        member_idx
                            .iter()
                            .map(|&i| scaled_static[i].clone())
                            .collect(),
                        member_idx.iter().map(|&i| target_rows[i][t]).collect(),
                    )
                };
                per_target.push(Ridge::fit(&x, &y, config.ridge_lambda));
            }
            predictors.push(per_target);
        }

        Ok(MlPipeline {
            config,
            cluster_scaler,
            static_scaler,
            kmeans,
            classifier,
            predictors,
        })
    }

    /// Classification accuracy of the static→cluster mapping on a test set
    /// (clusters derived from full features, prediction from static only).
    pub fn classifier_accuracy(&self, jobs: &[Job]) -> f64 {
        let mut hit = 0usize;
        for j in jobs {
            let truth = self
                .kmeans
                .predict(&self.cluster_scaler.transform_row(&clustering_features(j)));
            let pred = self
                .classifier
                .predict(&self.static_scaler.transform_row(&static_features(j)))
                as usize;
            if truth == pred {
                hit += 1;
            }
        }
        hit as f64 / jobs.len().max(1) as f64
    }

    /// Run inference for one submitted job: normalize static features,
    /// predict the cluster, invoke that cluster's predictors, and score.
    pub fn infer(&self, job: &Job) -> InferenceResult {
        let scaled = self.static_scaler.transform_row(&static_features(job));
        let cluster = (self.classifier.predict(&scaled) as usize).min(self.predictors.len() - 1);
        let runtime_h = self.predictors[cluster][0].predict(&scaled).max(0.0);
        let power_kw = self.predictors[cluster][1].predict(&scaled).max(0.0);
        let s = score(
            &self.config.weights,
            &[job.nodes_requested as f64, runtime_h, power_kw],
        );
        InferenceResult {
            cluster,
            predicted_runtime_h: runtime_h,
            predicted_node_power_kw: power_kw,
            score: s,
        }
    }

    /// Annotate jobs with their ML score in place — the hand-off to the
    /// `ml` policy (artifact: `inference_results.parquet` feeding S-RAPS).
    pub fn annotate(&self, jobs: &mut [Job]) {
        for j in jobs.iter_mut() {
            j.ml_score = Some(self.infer(j).score);
        }
    }

    pub fn n_clusters(&self) -> usize {
        self.kmeans.k()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::job::JobBuilder;
    use sraps_types::{JobTelemetry, SimDuration, SimTime};

    /// Two behavioural families: small/short/cool vs wide/long/hot.
    fn historical(n: usize) -> Vec<Job> {
        (0..n as u64)
            .map(|i| {
                let hot = i % 2 == 0;
                let nodes = if hot {
                    64 + (i % 8) as u32
                } else {
                    2 + (i % 3) as u32
                };
                let dur = if hot {
                    7200 + (i % 600) as i64
                } else {
                    600 + (i % 120) as i64
                };
                let power = if hot { 1800.0 } else { 500.0 };
                JobBuilder::new(i)
                    .user((i % 10) as u32)
                    .account((i % 5) as u32)
                    .submit(SimTime::seconds(i as i64 * 60))
                    .window(
                        SimTime::seconds(i as i64 * 60 + 30),
                        SimTime::seconds(i as i64 * 60 + 30 + dur),
                    )
                    .walltime(SimDuration::seconds(dur * 2))
                    .nodes(nodes)
                    .telemetry(JobTelemetry::from_scalars(
                        if hot { 0.9 } else { 0.3 },
                        None,
                        power + (i % 50) as f32,
                    ))
                    .build()
            })
            .collect()
    }

    fn config() -> PipelineConfig {
        PipelineConfig {
            n_clusters: 2,
            n_trees: 20,
            max_tree_depth: 8,
            ridge_lambda: 0.1,
            seed: 9,
            weights: ScoreWeights::default_for_scheduling(),
        }
    }

    #[test]
    fn train_then_infer_separates_families() {
        let jobs = historical(200);
        let p = MlPipeline::train(&jobs, config()).unwrap();
        assert_eq!(p.n_clusters(), 2);
        // Static features alone recover the behavioural cluster.
        assert!(
            p.classifier_accuracy(&jobs) > 0.9,
            "{}",
            p.classifier_accuracy(&jobs)
        );
        // Small jobs must out-score wide/hot jobs.
        let small = p.infer(&jobs[1]);
        let hot = p.infer(&jobs[0]);
        assert!(small.score > hot.score);
    }

    #[test]
    fn predictions_in_plausible_ranges() {
        let jobs = historical(200);
        let p = MlPipeline::train(&jobs, config()).unwrap();
        for j in jobs.iter().take(20) {
            let r = p.infer(j);
            assert!(r.predicted_runtime_h >= 0.0 && r.predicted_runtime_h < 24.0);
            assert!(r.predicted_node_power_kw >= 0.0 && r.predicted_node_power_kw < 5.0);
        }
    }

    #[test]
    fn annotate_fills_scores() {
        let mut jobs = historical(100);
        let p = MlPipeline::train(&jobs, config()).unwrap();
        p.annotate(&mut jobs);
        assert!(jobs.iter().all(|j| j.ml_score.is_some()));
    }

    #[test]
    fn too_little_data_is_a_config_error() {
        let jobs = historical(4);
        assert!(matches!(
            MlPipeline::train(&jobs, config()),
            Err(SrapsError::Config(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let jobs = historical(150);
        let a = MlPipeline::train(&jobs, config()).unwrap();
        let b = MlPipeline::train(&jobs, config()).unwrap();
        for j in jobs.iter().take(10) {
            assert_eq!(a.infer(j), b.infer(j));
        }
    }
}
