//! Ridge regression via the normal equations (training stage 3: the
//! per-cluster metric predictors). Solved with Gaussian elimination and
//! partial pivoting — dimensions here are tiny (≤ 16 features).

use serde::{Deserialize, Serialize};

/// Fitted ridge model: ŷ = w·x + b.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Ridge {
    pub weights: Vec<f64>,
    pub bias: f64,
}

impl Ridge {
    /// Fit with L2 penalty `lambda` (not applied to the bias).
    pub fn fit(x: &[Vec<f64>], y: &[f64], lambda: f64) -> Ridge {
        assert_eq!(x.len(), y.len());
        assert!(!x.is_empty(), "ridge needs data");
        let n = x.len();
        let d = x[0].len();
        // Augmented design: [x, 1] → (d+1)² normal matrix.
        let m = d + 1;
        let mut a = vec![vec![0.0f64; m]; m];
        let mut b = vec![0.0f64; m];
        for (row, &target) in x.iter().zip(y) {
            for i in 0..m {
                let xi = if i < d { row[i] } else { 1.0 };
                b[i] += xi * target;
                for j in 0..m {
                    let xj = if j < d { row[j] } else { 1.0 };
                    a[i][j] += xi * xj;
                }
            }
        }
        for (i, row) in a.iter_mut().enumerate().take(d) {
            row[i] += lambda * n as f64;
        }
        let sol = solve(a, b);
        Ridge {
            bias: sol[d],
            weights: sol[..d].to_vec(),
        }
    }

    pub fn predict(&self, row: &[f64]) -> f64 {
        self.bias
            + self
                .weights
                .iter()
                .zip(row)
                .map(|(w, v)| w * v)
                .sum::<f64>()
    }

    /// Mean squared error over a set.
    pub fn mse(&self, x: &[Vec<f64>], y: &[f64]) -> f64 {
        x.iter()
            .zip(y)
            .map(|(row, &t)| {
                let e = self.predict(row) - t;
                e * e
            })
            .sum::<f64>()
            / x.len().max(1) as f64
    }
}

/// Gaussian elimination with partial pivoting. Singular systems return the
/// least-effort solution (zero rows skipped) — with ridge regularization
/// the matrix is SPD and this path is never hit for λ > 0.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Vec<f64> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let mut piv = col;
        for r in col + 1..n {
            if a[r][col].abs() > a[piv][col].abs() {
                piv = r;
            }
        }
        if a[piv][col].abs() < 1e-12 {
            continue;
        }
        a.swap(col, piv);
        b.swap(col, piv);
        for r in col + 1..n {
            let f = a[r][col] / a[col][col];
            if f == 0.0 {
                continue;
            }
            // r > col, so the pivot row sits in the head partition.
            let (head, tail) = a.split_at_mut(r);
            let pivot_row = &head[col];
            for (rc, pc) in tail[0][col..].iter_mut().zip(&pivot_row[col..]) {
                *rc -= f * pc;
            }
            b[r] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        if a[col][col].abs() < 1e-12 {
            x[col] = 0.0;
            continue;
        }
        let mut acc = b[col];
        for c in col + 1..n {
            acc -= a[col][c] * x[c];
        }
        x[col] = acc / a[col][col];
    }
    x
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn recovers_exact_linear_relation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let x: Vec<Vec<f64>> = (0..100)
            .map(|_| vec![rng.gen_range(-5.0..5.0), rng.gen_range(-5.0..5.0)])
            .collect();
        let y: Vec<f64> = x.iter().map(|v| 2.0 * v[0] - 3.0 * v[1] + 7.0).collect();
        let m = Ridge::fit(&x, &y, 1e-9);
        assert!((m.weights[0] - 2.0).abs() < 1e-6);
        assert!((m.weights[1] + 3.0).abs() < 1e-6);
        assert!((m.bias - 7.0).abs() < 1e-6);
        assert!(m.mse(&x, &y) < 1e-10);
    }

    #[test]
    fn regularization_shrinks_weights() {
        let mut rng = SmallRng::seed_from_u64(4);
        let x: Vec<Vec<f64>> = (0..60).map(|_| vec![rng.gen_range(-1.0..1.0)]).collect();
        let y: Vec<f64> = x.iter().map(|v| 5.0 * v[0]).collect();
        let loose = Ridge::fit(&x, &y, 1e-9);
        let tight = Ridge::fit(&x, &y, 10.0);
        assert!(tight.weights[0].abs() < loose.weights[0].abs());
    }

    #[test]
    fn noisy_fit_is_close() {
        let mut rng = SmallRng::seed_from_u64(5);
        let x: Vec<Vec<f64>> = (0..500).map(|_| vec![rng.gen_range(0.0..10.0)]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|v| 1.5 * v[0] + 2.0 + rng.gen_range(-0.5..0.5))
            .collect();
        let m = Ridge::fit(&x, &y, 0.01);
        assert!((m.weights[0] - 1.5).abs() < 0.1);
        assert!((m.bias - 2.0).abs() < 0.5);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        // x1 = x0 duplicated: OLS is singular; ridge handles it.
        let x: Vec<Vec<f64>> = (0..50).map(|i| vec![i as f64, i as f64]).collect();
        let y: Vec<f64> = (0..50).map(|i| 4.0 * i as f64).collect();
        let m = Ridge::fit(&x, &y, 0.1);
        // Combined effect ≈ 4 split across the twins.
        let pred = m.predict(&[10.0, 10.0]);
        assert!((pred - 40.0).abs() < 2.0, "{pred}");
    }
}
