//! Z-score feature normalization ("we normalize static features", §4.4.2).

use serde::{Deserialize, Serialize};

/// Per-column standardizer: x → (x − μ) / σ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scaler {
    pub means: Vec<f64>,
    pub stds: Vec<f64>,
}

impl Scaler {
    /// Fit on row-major data with `dim` columns.
    pub fn fit(rows: &[Vec<f64>]) -> Scaler {
        assert!(!rows.is_empty(), "cannot fit a scaler on no data");
        let dim = rows[0].len();
        let n = rows.len() as f64;
        let mut means = vec![0.0; dim];
        for r in rows {
            for (m, v) in means.iter_mut().zip(r) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut stds = vec![0.0; dim];
        for r in rows {
            for ((s, v), m) in stds.iter_mut().zip(r).zip(&means) {
                *s += (v - m) * (v - m);
            }
        }
        for s in &mut stds {
            *s = (*s / n).sqrt();
            // Constant columns scale to zero offset, not NaN.
            if *s < 1e-12 {
                *s = 1.0;
            }
        }
        Scaler { means, stds }
    }

    pub fn transform_row(&self, row: &[f64]) -> Vec<f64> {
        row.iter()
            .zip(&self.means)
            .zip(&self.stds)
            .map(|((v, m), s)| (v - m) / s)
            .collect()
    }

    pub fn transform(&self, rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
        rows.iter().map(|r| self.transform_row(r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transforms_to_zero_mean_unit_variance() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let s = Scaler::fit(&rows);
        let t = s.transform(&rows);
        for col in 0..2 {
            let mean: f64 = t.iter().map(|r| r[col]).sum::<f64>() / 3.0;
            let var: f64 = t.iter().map(|r| r[col] * r[col]).sum::<f64>() / 3.0;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn constant_column_does_not_nan() {
        let rows = vec![vec![7.0], vec![7.0]];
        let s = Scaler::fit(&rows);
        let t = s.transform_row(&[7.0]);
        assert_eq!(t[0], 0.0);
        assert!(t[0].is_finite());
    }

    #[test]
    #[should_panic(expected = "cannot fit")]
    fn empty_fit_panics() {
        Scaler::fit(&[]);
    }
}
