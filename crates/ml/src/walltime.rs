//! Walltime-estimate correction — the paper's closing future-work item:
//! "if this information is not available, we have to rely on user
//! estimates, or fingerprinting and prediction, which are prime candidates
//! for future work" (§5).
//!
//! Users over-request walltime by 1.1–3× (the generators model this), and
//! EASY/conservative backfill compute reservations from those requests —
//! padded estimates inflate shadow times and block legitimate backfills.
//! [`WalltimeModel`] learns the actual-runtime distribution from history
//! (ridge regression on log-runtime over static features) and produces
//! tightened estimates with a safety margin.

use crate::features::static_features;
use crate::ridge::Ridge;
use crate::scaler::Scaler;
use sraps_types::{Job, Result, SimDuration, SrapsError};

/// A fitted walltime-correction model.
#[derive(Debug, Clone)]
pub struct WalltimeModel {
    scaler: Scaler,
    model: Ridge,
    /// Residual standard deviation on the log-runtime scale. Corrections
    /// pad by 2σ: on a real system a job exceeding its (corrected) limit
    /// is killed, so corrections must be upper quantiles, not means —
    /// under-estimates also poison EASY reservations.
    log_resid_sigma: f64,
    /// Extra multiplicative safety margin on top of the 2σ pad (e.g. 1.2).
    pub safety_factor: f64,
}

impl WalltimeModel {
    /// Fit on historical jobs with known runtimes.
    pub fn fit(historical: &[Job], safety_factor: f64) -> Result<WalltimeModel> {
        if historical.len() < 8 {
            return Err(SrapsError::Config(format!(
                "walltime model needs ≥8 historical jobs, got {}",
                historical.len()
            )));
        }
        let x: Vec<Vec<f64>> = historical.iter().map(feature_row).collect();
        let y: Vec<f64> = historical
            .iter()
            .map(|j| (j.duration().as_secs_f64().max(60.0)).ln())
            .collect();
        let scaler = Scaler::fit(&x);
        let scaled = scaler.transform(&x);
        let model = Ridge::fit(&scaled, &y, 0.1);
        let resid_var = scaled
            .iter()
            .zip(&y)
            .map(|(row, &t)| {
                let e = model.predict(row) - t;
                e * e
            })
            .sum::<f64>()
            / historical.len() as f64;
        Ok(WalltimeModel {
            scaler,
            model,
            log_resid_sigma: resid_var.sqrt(),
            safety_factor,
        })
    }

    /// Predicted (median) runtime for a job, seconds.
    pub fn predict_runtime_secs(&self, job: &Job) -> f64 {
        let row = self.scaler.transform_row(&feature_row(job));
        self.model.predict(&row).exp().max(60.0)
    }

    /// Residual σ on the log-runtime scale (diagnostics).
    pub fn log_resid_sigma(&self) -> f64 {
        self.log_resid_sigma
    }

    /// Corrected walltime estimate: the ~P97.5 runtime (median × e^{2σ})
    /// times the safety factor, never *looser* than the user's own request
    /// (the request stays an upper bound — exceeding it would get the job
    /// killed on a real system).
    pub fn corrected_estimate(&self, job: &Job) -> SimDuration {
        let upper = self.predict_runtime_secs(job)
            * (2.0 * self.log_resid_sigma).exp()
            * self.safety_factor;
        let user = job.estimate().as_secs_f64();
        SimDuration::seconds(upper.min(user).max(60.0) as i64)
    }

    /// Rewrite the wall-time limits of a job set with corrected estimates.
    /// Returns how many jobs were tightened.
    pub fn apply(&self, jobs: &mut [Job]) -> usize {
        let mut tightened = 0;
        for j in jobs.iter_mut() {
            let corrected = self.corrected_estimate(j);
            if corrected < j.walltime_limit {
                j.walltime_limit = corrected;
                tightened += 1;
            }
        }
        tightened
    }

    /// Mean absolute error of runtime prediction over a job set, seconds.
    pub fn mae_secs(&self, jobs: &[Job]) -> f64 {
        if jobs.is_empty() {
            return 0.0;
        }
        jobs.iter()
            .map(|j| (self.predict_runtime_secs(j) - j.duration().as_secs_f64()).abs())
            .sum::<f64>()
            / jobs.len() as f64
    }
}

/// Features for walltime prediction: the user's own request is the
/// strongest signal, plus size and submission context.
fn feature_row(job: &Job) -> Vec<f64> {
    let mut v = static_features(job);
    v.push(job.estimate().as_secs_f64().max(60.0).ln());
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::job::JobBuilder;
    use sraps_types::SimTime;

    /// Jobs whose actual runtime is a stable fraction of the request, by
    /// user: user 0 runs at 40 % of request, user 1 at 80 %.
    fn history(n: usize) -> Vec<Job> {
        (0..n as u64)
            .map(|i| {
                let user = (i % 2) as u32;
                let request = 3600 + (i % 7) as i64 * 900;
                let frac = if user == 0 { 0.4 } else { 0.8 };
                let runtime = (request as f64 * frac) as i64;
                JobBuilder::new(i)
                    .user(user)
                    .account(user)
                    .submit(SimTime::seconds(i as i64 * 100))
                    .window(
                        SimTime::seconds(i as i64 * 100 + 60),
                        SimTime::seconds(i as i64 * 100 + 60 + runtime),
                    )
                    .walltime(SimDuration::seconds(request))
                    .nodes(4)
                    .build()
            })
            .collect()
    }

    #[test]
    fn learns_per_user_over_request_patterns() {
        let jobs = history(200);
        let m = WalltimeModel::fit(&jobs, 1.2).unwrap();
        // Prediction error far below the raw over-request error.
        let mae = m.mae_secs(&jobs);
        let raw_mae: f64 = jobs
            .iter()
            .map(|j| (j.estimate().as_secs_f64() - j.duration().as_secs_f64()).abs())
            .sum::<f64>()
            / jobs.len() as f64;
        assert!(mae < raw_mae * 0.5, "mae {mae:.0}s vs raw {raw_mae:.0}s");
    }

    #[test]
    fn corrected_estimate_tighter_but_bounded() {
        let jobs = history(200);
        let m = WalltimeModel::fit(&jobs, 1.2).unwrap();
        for j in jobs.iter().take(20) {
            let corrected = m.corrected_estimate(j);
            assert!(corrected <= j.estimate(), "never looser than the request");
            assert!(corrected.as_secs() >= 60);
        }
    }

    #[test]
    fn apply_tightens_over_requesters() {
        let mut jobs = history(100);
        let m = WalltimeModel::fit(&jobs, 1.2).unwrap();
        let tightened = m.apply(&mut jobs);
        // User-0 jobs (40 % usage) must all be tightened.
        assert!(tightened >= 50, "only {tightened} tightened");
    }

    #[test]
    fn too_little_history_errors() {
        assert!(matches!(
            WalltimeModel::fit(&history(3), 1.2),
            Err(SrapsError::Config(_))
        ));
    }
}
