//! The ranking score of §4.4.2:
//!
//! `S(Xᵢ) = Σⱼ αⱼ · exp(√(Xᵢⱼ + 1))⁻¹`
//!
//! Each feature contributes `αⱼ / exp(√(xⱼ+1))`: the exponential damping
//! means a job's score *falls* as its predicted impact (runtime, power,
//! size) grows, while small differences between small jobs stay resolvable
//! ("the exponential function captures fine-grained differences"). With
//! positive weights, **higher score = lower predicted system impact** —
//! the ML policy schedules high scores first, which under pressure prefers
//! small jobs over large ones exactly as §4.4.3 reports.

use serde::{Deserialize, Serialize};

/// Per-feature coefficients αⱼ.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoreWeights {
    pub alphas: Vec<f64>,
}

impl ScoreWeights {
    /// Balanced default over `[nodes, predicted_runtime_h,
    /// predicted_power_kw]`: the multi-objective trade-off of Fig 10(b).
    pub fn default_for_scheduling() -> ScoreWeights {
        ScoreWeights {
            alphas: vec![1.0, 1.0, 1.0],
        }
    }
}

/// Evaluate `S(X)`; features below −1 are clamped (the formula's domain).
pub fn score(weights: &ScoreWeights, features: &[f64]) -> f64 {
    debug_assert_eq!(weights.alphas.len(), features.len());
    weights
        .alphas
        .iter()
        .zip(features)
        .map(|(a, &x)| a / ((x.max(-1.0) + 1.0).sqrt()).exp())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn w3() -> ScoreWeights {
        ScoreWeights {
            alphas: vec![1.0, 1.0, 1.0],
        }
    }

    #[test]
    fn zero_features_score_sum_alpha_over_e() {
        let s = score(&w3(), &[0.0, 0.0, 0.0]);
        assert!((s - 3.0 / std::f64::consts::E).abs() < 1e-12);
    }

    #[test]
    fn score_decreases_with_feature_magnitude() {
        let small = score(&w3(), &[1.0, 1.0, 1.0]);
        let big = score(&w3(), &[100.0, 100.0, 100.0]);
        assert!(small > big, "bigger predicted impact must score lower");
    }

    #[test]
    fn weights_steer_the_tradeoff() {
        // Same features, runtime-heavy weights penalize the long job more.
        let runtime_heavy = ScoreWeights {
            alphas: vec![0.1, 10.0, 0.1],
        };
        let long_job = [4.0, 50.0, 1.0];
        let wide_job = [50.0, 4.0, 1.0];
        assert!(
            score(&runtime_heavy, &wide_job) > score(&runtime_heavy, &long_job),
            "runtime-heavy weights must prefer the wide-but-short job"
        );
    }

    #[test]
    fn domain_clamp_keeps_score_finite() {
        let s = score(&w3(), &[-5.0, -1.0, 0.0]);
        assert!(s.is_finite());
    }

    #[test]
    fn monotone_per_feature() {
        let w = ScoreWeights { alphas: vec![1.0] };
        let mut prev = f64::INFINITY;
        for x in [0.0, 1.0, 4.0, 9.0, 100.0] {
            let s = score(&w, &[x]);
            assert!(s < prev);
            prev = s;
        }
    }
}
