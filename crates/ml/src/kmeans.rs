//! K-means clustering with K-means++ seeding (training stage 1, §4.4.1).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Fitted K-means model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KMeans {
    pub centroids: Vec<Vec<f64>>,
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl KMeans {
    /// Fit `k` clusters on row-major `data` with Lloyd's algorithm,
    /// K-means++ initialization, and at most `max_iter` sweeps.
    pub fn fit(data: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeans {
        assert!(!data.is_empty(), "kmeans needs data");
        let k = k.min(data.len()).max(1);
        let mut rng = SmallRng::seed_from_u64(seed);

        // K-means++ seeding: first centroid uniform, then proportional to
        // squared distance from the nearest chosen centroid.
        let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
        centroids.push(data[rng.gen_range(0..data.len())].clone());
        let mut d2: Vec<f64> = data.iter().map(|r| sq_dist(r, &centroids[0])).collect();
        while centroids.len() < k {
            let total: f64 = d2.iter().sum();
            let next = if total <= 0.0 {
                // All points coincide with centroids; pick any.
                rng.gen_range(0..data.len())
            } else {
                let mut target = rng.gen_range(0.0..total);
                let mut idx = 0;
                for (i, &w) in d2.iter().enumerate() {
                    if target < w {
                        idx = i;
                        break;
                    }
                    target -= w;
                    idx = i;
                }
                idx
            };
            centroids.push(data[next].clone());
            let c = centroids.last().expect("just pushed");
            for (di, row) in d2.iter_mut().zip(data) {
                *di = di.min(sq_dist(row, c));
            }
        }

        // Lloyd iterations.
        let dim = data[0].len();
        let mut assign = vec![0usize; data.len()];
        for _ in 0..max_iter {
            let mut moved = false;
            for (a, row) in assign.iter_mut().zip(data) {
                let best = Self::nearest(&centroids, row);
                if best != *a {
                    *a = best;
                    moved = true;
                }
            }
            let mut sums = vec![vec![0.0; dim]; centroids.len()];
            let mut counts = vec![0usize; centroids.len()];
            for (a, row) in assign.iter().zip(data) {
                counts[*a] += 1;
                for (s, v) in sums[*a].iter_mut().zip(row) {
                    *s += v;
                }
            }
            for ((c, s), &n) in centroids.iter_mut().zip(&sums).zip(&counts) {
                if n > 0 {
                    for (ci, si) in c.iter_mut().zip(s) {
                        *ci = si / n as f64;
                    }
                }
            }
            if !moved {
                break;
            }
        }
        KMeans { centroids }
    }

    fn nearest(centroids: &[Vec<f64>], row: &[f64]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in centroids.iter().enumerate() {
            let d = sq_dist(row, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster index for a row.
    pub fn predict(&self, row: &[f64]) -> usize {
        Self::nearest(&self.centroids, row)
    }

    /// Within-cluster sum of squares (inertia) over a dataset.
    pub fn inertia(&self, data: &[Vec<f64>]) -> f64 {
        data.iter()
            .map(|r| sq_dist(r, &self.centroids[self.predict(r)]))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three well-separated blobs.
    fn blobs() -> Vec<Vec<f64>> {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut data = Vec::new();
        for &(cx, cy) in &[(0.0, 0.0), (10.0, 10.0), (-10.0, 10.0)] {
            for _ in 0..50 {
                data.push(vec![
                    cx + rng.gen_range(-1.0..1.0),
                    cy + rng.gen_range(-1.0..1.0),
                ]);
            }
        }
        data
    }

    #[test]
    fn recovers_separated_blobs() {
        let data = blobs();
        let km = KMeans::fit(&data, 3, 50, 7);
        assert_eq!(km.k(), 3);
        // Points of the same blob share a label; different blobs differ.
        let l0 = km.predict(&data[0]);
        let l1 = km.predict(&data[50]);
        let l2 = km.predict(&data[100]);
        assert!(l0 != l1 && l1 != l2 && l0 != l2);
        for (i, row) in data.iter().enumerate() {
            let expected = [l0, l1, l2][i / 50];
            assert_eq!(km.predict(row), expected, "row {i}");
        }
    }

    #[test]
    fn inertia_far_below_single_cluster() {
        let data = blobs();
        let km3 = KMeans::fit(&data, 3, 50, 7);
        let km1 = KMeans::fit(&data, 1, 50, 7);
        assert!(km3.inertia(&data) < km1.inertia(&data) / 10.0);
    }

    #[test]
    fn k_clamped_to_data_size() {
        let data = vec![vec![1.0], vec![2.0]];
        let km = KMeans::fit(&data, 10, 10, 1);
        assert_eq!(km.k(), 2);
    }

    #[test]
    fn deterministic_per_seed() {
        let data = blobs();
        let a = KMeans::fit(&data, 3, 50, 42);
        let b = KMeans::fit(&data, 3, 50, 42);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn identical_points_do_not_crash() {
        let data = vec![vec![5.0, 5.0]; 20];
        let km = KMeans::fit(&data, 3, 10, 1);
        assert!(km.k() >= 1);
        assert_eq!(km.predict(&[5.0, 5.0]), km.predict(&[5.0, 5.0]));
    }
}
