//! Power-profile fingerprinting — the other half of the paper's §5 future
//! work: "we have to rely on user estimates, or **fingerprinting** and
//! prediction".
//!
//! Fig 5 shows that with perfect job power profiles the twin predicts
//! facility power swings exactly; fingerprinting recovers an approximate
//! profile when none is recorded. The library clusters historical jobs'
//! *normalized* power shapes (resampled to a fixed number of phases); at
//! prediction time, a job's observed prefix is matched against the
//! library and the best cluster's remaining shape — scaled to the observed
//! level — becomes the forecast.

use sraps_types::{Job, Result, SimDuration, SrapsError, Trace};

/// Number of equal-length phases a profile is resampled to.
pub const PROFILE_BINS: usize = 16;

/// A library of representative power shapes.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintLibrary {
    /// Cluster centroids: normalized (mean = 1) shapes over PROFILE_BINS.
    pub shapes: Vec<Vec<f64>>,
}

/// Resample a job's power trace to `bins` equal phases, normalized to
/// mean 1 (shape only; level is carried separately).
pub fn normalized_shape(trace: &Trace, duration: SimDuration, bins: usize) -> Option<Vec<f64>> {
    if trace.is_empty() || duration.as_secs() <= 0 {
        return None;
    }
    let mut shape = Vec::with_capacity(bins);
    for b in 0..bins {
        // Sample the bin's midpoint.
        let t = duration.as_secs() * (2 * b as i64 + 1) / (2 * bins as i64);
        shape.push(trace.sample(SimDuration::seconds(t)) as f64);
    }
    let mean = shape.iter().sum::<f64>() / bins as f64;
    if mean <= 0.0 {
        return None;
    }
    for v in &mut shape {
        *v /= mean;
    }
    Some(shape)
}

fn sq_dist(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

impl FingerprintLibrary {
    /// Build the library from historical jobs with recorded traces.
    pub fn build(historical: &[Job], n_clusters: usize, seed: u64) -> Result<FingerprintLibrary> {
        let shapes: Vec<Vec<f64>> = historical
            .iter()
            .filter_map(|j| {
                j.telemetry
                    .node_power_w
                    .as_ref()
                    .and_then(|t| normalized_shape(t, j.duration(), PROFILE_BINS))
            })
            .collect();
        if shapes.len() < n_clusters.max(4) {
            return Err(SrapsError::Config(format!(
                "fingerprinting needs ≥{} traced jobs, got {}",
                n_clusters.max(4),
                shapes.len()
            )));
        }
        let km = crate::kmeans::KMeans::fit(&shapes, n_clusters, 100, seed);
        Ok(FingerprintLibrary {
            shapes: km.centroids,
        })
    }

    /// Match an observed prefix (normalized by its own mean) to the
    /// closest library shape. Library prefixes are renormalized by *their*
    /// prefix mean so shapes are compared like-for-like — the observer
    /// cannot know where its prefix sits in the full profile's level.
    pub fn match_prefix(&self, prefix: &[f64]) -> usize {
        let k = prefix.len().min(PROFILE_BINS);
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, s) in self.shapes.iter().enumerate() {
            let pm = s[..k].iter().sum::<f64>() / k as f64;
            if pm <= 0.0 {
                continue;
            }
            let renorm: Vec<f64> = s[..k].iter().map(|v| v / pm).collect();
            let d = sq_dist(&renorm, &prefix[..k]);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }

    /// Forecast a job's full per-node power profile from a partial
    /// observation: the observed prefix picks a shape; the prefix's mean
    /// level rescales it back to watts. Returns a trace over the job's
    /// expected duration.
    pub fn predict_profile(
        &self,
        observed: &Trace,
        observed_span: SimDuration,
        expected_duration: SimDuration,
    ) -> Option<Trace> {
        let frac_bins = ((observed_span.as_secs_f64() / expected_duration.as_secs_f64())
            * PROFILE_BINS as f64)
            .floor()
            .clamp(1.0, PROFILE_BINS as f64) as usize;
        // Prefix in normalized space (normalize by its own mean).
        let raw = normalized_shape(observed, observed_span, frac_bins)?;
        let cluster = self.match_prefix(&raw);
        let shape = &self.shapes[cluster];
        // Observed absolute level.
        let level = observed.mean() as f64;
        if level <= 0.0 {
            return None;
        }
        // The prefix of the matched shape has some mean; scale so the
        // predicted prefix reproduces the observed level.
        let prefix_mean = shape[..frac_bins].iter().sum::<f64>() / frac_bins as f64;
        let scale = level / prefix_mean.max(1e-9);
        let dt = SimDuration::seconds((expected_duration.as_secs() / PROFILE_BINS as i64).max(1));
        Some(Trace::new(
            SimDuration::ZERO,
            dt,
            shape.iter().map(|&v| (v * scale) as f32).collect(),
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::job::JobBuilder;
    use sraps_types::{JobTelemetry, SimTime};

    /// Two shape families: ramp-up (0.5→1.5) and flat.
    fn traced_job(id: u64, ramp: bool, level: f32) -> Job {
        let dur = 1600i64;
        let dt = SimDuration::seconds(100);
        let values: Vec<f32> = (0..16)
            .map(|i| {
                if ramp {
                    level * (0.5 + i as f32 / 15.0)
                } else {
                    level
                }
            })
            .collect();
        JobBuilder::new(id)
            .window(SimTime::ZERO, SimTime::seconds(dur))
            .walltime(SimDuration::seconds(dur))
            .nodes(2)
            .telemetry(JobTelemetry {
                node_power_w: Some(Trace::new(SimDuration::ZERO, dt, values)),
                ..Default::default()
            })
            .build()
    }

    fn library() -> FingerprintLibrary {
        let jobs: Vec<Job> = (0..40)
            .map(|i| traced_job(i, i % 2 == 0, 800.0 + (i % 5) as f32 * 40.0))
            .collect();
        FingerprintLibrary::build(&jobs, 2, 3).unwrap()
    }

    #[test]
    fn normalized_shape_has_unit_mean() {
        let t = Trace::new(
            SimDuration::ZERO,
            SimDuration::seconds(10),
            vec![2.0, 4.0, 6.0],
        );
        let s = normalized_shape(&t, SimDuration::seconds(30), 8).unwrap();
        let mean = s.iter().sum::<f64>() / s.len() as f64;
        assert!((mean - 1.0).abs() < 1e-9);
        assert!(s[0] < s[7], "rising trace keeps its shape");
    }

    #[test]
    fn library_separates_shape_families() {
        let lib = library();
        assert_eq!(lib.shapes.len(), 2);
        // One centroid rises, the other is flat.
        let rises: Vec<bool> = lib
            .shapes
            .iter()
            .map(|s| s[PROFILE_BINS - 1] > s[0] + 0.3)
            .collect();
        assert!(rises.iter().any(|&r| r) && rises.iter().any(|&r| !r));
    }

    #[test]
    fn prefix_match_recovers_family_and_level() {
        let lib = library();
        // Observe the first quarter of a ramp job at a new power level.
        let dt = SimDuration::seconds(100);
        let observed = Trace::new(
            SimDuration::ZERO,
            dt,
            (0..4).map(|i| 1200.0 * (0.5 + i as f32 / 15.0)).collect(),
        );
        let predicted = lib
            .predict_profile(
                &observed,
                SimDuration::seconds(400),
                SimDuration::seconds(1600),
            )
            .unwrap();
        // The forecast must keep rising past the observed prefix…
        let tail = predicted.sample(SimDuration::seconds(1500));
        let head = predicted.sample(SimDuration::seconds(50));
        assert!(tail > head * 1.5, "ramp family: {head} → {tail}");
        // …and its early level should sit near the observation (~1200·0.55).
        assert!((head as f64 - 1200.0 * 0.55).abs() / (1200.0 * 0.55) < 0.35);
    }

    #[test]
    fn too_few_traces_is_an_error() {
        let jobs: Vec<Job> = (0..2).map(|i| traced_job(i, false, 500.0)).collect();
        assert!(FingerprintLibrary::build(&jobs, 2, 1).is_err());
    }

    #[test]
    fn degenerate_traces_rejected() {
        let t = Trace::new(SimDuration::ZERO, SimDuration::seconds(10), vec![0.0, 0.0]);
        assert!(normalized_shape(&t, SimDuration::seconds(20), 4).is_none());
        assert!(normalized_shape(&t, SimDuration::ZERO, 4).is_none());
    }
}
