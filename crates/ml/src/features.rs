//! Feature extraction from jobs (§4.4.3): static (pre-submission)
//! features available at inference time, and dynamic (telemetry-summary)
//! features available only for historical jobs.
//!
//! "Since timeseries data is inherently noisy and high-dimensional … we
//! extract summary statistics from timeseries metrics such as maximum,
//! minimum, and standard deviation" — dynamic features are exactly those
//! summaries.

use sraps_types::Job;

/// Number of static features.
pub const STATIC_DIM: usize = 5;
/// Number of dynamic features.
pub const DYNAMIC_DIM: usize = 4;

/// Row-major feature matrix with its row-aligned target vectors.
#[derive(Debug, Clone, Default)]
pub struct FeatureMatrix {
    pub rows: Vec<Vec<f64>>,
}

/// Static features: what a scheduler knows at submit time.
/// `[nodes, walltime_estimate_h, user_id_bucket, account_id_bucket,
///   submit_hour_of_day]`
pub fn static_features(job: &Job) -> Vec<f64> {
    vec![
        job.nodes_requested as f64,
        job.estimate().as_hours_f64(),
        (job.user.0 % 16) as f64,
        (job.account.0 % 16) as f64,
        ((job.submit.as_secs().rem_euclid(86_400)) / 3600) as f64,
    ]
}

/// Dynamic features: summary statistics of the job's recorded telemetry.
/// `[power_mean, power_max, power_std, cpu_util_mean]`
pub fn dynamic_features(job: &Job) -> Vec<f64> {
    let p = job.telemetry.node_power_w.as_ref();
    let c = job.telemetry.cpu_util.as_ref();
    vec![
        p.map_or(0.0, |t| t.mean() as f64),
        p.map_or(0.0, |t| t.max() as f64),
        p.map_or(0.0, |t| t.std_dev() as f64),
        c.map_or(0.0, |t| t.mean() as f64),
    ]
}

/// Combined clustering features (static + dynamic), the stage-1 input.
pub fn clustering_features(job: &Job) -> Vec<f64> {
    let mut v = static_features(job);
    v.extend(dynamic_features(job));
    v
}

/// Training targets predicted per cluster: `[runtime_h, node_power_kw]`.
pub fn targets(job: &Job) -> Vec<f64> {
    let p = job
        .telemetry
        .node_power_w
        .as_ref()
        .map_or(0.0, |t| t.mean() as f64);
    vec![job.duration().as_hours_f64(), p / 1000.0]
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::job::JobBuilder;
    use sraps_types::{JobTelemetry, SimDuration, SimTime};

    fn job() -> Job {
        JobBuilder::new(1)
            .user(21)
            .account(37)
            .submit(SimTime::seconds(13 * 3600 + 120))
            .window(SimTime::seconds(14 * 3600), SimTime::seconds(16 * 3600))
            .walltime(SimDuration::hours(3))
            .nodes(32)
            .telemetry(JobTelemetry::from_scalars(0.7, None, 450.0))
            .build()
    }

    #[test]
    fn static_features_have_documented_layout() {
        let f = static_features(&job());
        assert_eq!(f.len(), STATIC_DIM);
        assert_eq!(f[0], 32.0);
        assert!((f[1] - 3.0).abs() < 1e-12);
        assert_eq!(f[2], (21 % 16) as f64);
        assert_eq!(f[3], (37 % 16) as f64);
        assert_eq!(f[4], 13.0);
    }

    #[test]
    fn dynamic_features_summarize_telemetry() {
        let f = dynamic_features(&job());
        assert_eq!(f.len(), DYNAMIC_DIM);
        assert!((f[0] - 450.0).abs() < 1e-3);
        assert!((f[1] - 450.0).abs() < 1e-3);
        assert_eq!(f[2], 0.0, "constant trace has zero std");
        assert!((f[3] - 0.7).abs() < 1e-6);
    }

    #[test]
    fn clustering_features_concatenate() {
        assert_eq!(clustering_features(&job()).len(), STATIC_DIM + DYNAMIC_DIM);
    }

    #[test]
    fn targets_are_runtime_and_power() {
        let t = targets(&job());
        assert!((t[0] - 2.0).abs() < 1e-12);
        assert!((t[1] - 0.45).abs() < 1e-6);
    }

    #[test]
    fn missing_telemetry_is_zeroes_not_nan() {
        let j = JobBuilder::new(2)
            .window(SimTime::ZERO, SimTime::seconds(60))
            .build();
        let f = dynamic_features(&j);
        assert!(f.iter().all(|v| v.is_finite()));
        assert_eq!(f[0], 0.0);
    }
}
