//! `sraps-obs` — zero-cost-when-off instrumentation for the simulator.
//!
//! Three primitives, one rule: **when nothing is enabled, every call site
//! compiles down to one relaxed load of a static byte and a predictable
//! branch** — no clock reads, no heap allocations, no TLS registration.
//! The scheduler's no-op hot path stays allocation-free with this crate
//! wired in (pinned by `crates/sched/tests/no_alloc.rs`).
//!
//! * **Spans** ([`span`], [`Phase`]) — RAII monotonic-clock phase timing.
//!   Enabled spans accumulate `(calls, total_ns)` into fixed thread-local
//!   arrays of relaxed atomics; with tracing on they additionally emit
//!   `B`/`E` chrome-trace events. [`stopwatch`] is the *forced* variant:
//!   it always measures and returns the `Duration` (the single timing
//!   pathway behind `SimOutput::wall_time` and sweep wall clocks), but
//!   records into the profile only when enabled.
//! * **Counters** ([`bump`], [`add`], [`Counter`]) — a static registry of
//!   named event counters bumped via plain relaxed loads/stores on
//!   thread-local atomics. Each sweep cell runs wholly on one worker
//!   thread, so snapshot-deltas over these monotone accumulators give
//!   deterministic per-cell counts regardless of `--jobs`.
//! * **Captures** ([`capture`], [`Profile`]) — delta-snapshots of the
//!   current thread's accumulators, folded into a serializable
//!   [`Profile`] (per-phase timing + counter values) that merges
//!   deterministically across cells and exports as an aligned table.
//!
//! Tracing ([`set_trace`], [`write_trace`]) buffers `B`/`E` events per
//! thread and drains them into a chrome-trace JSON file that
//! `chrome://tracing` and <https://ui.perfetto.dev> load directly.
//! [`validate_chrome_trace`] checks well-formedness (every `E` matches a
//! `B`, per-thread timestamps monotone) and backs both the unit tests and
//! the CI smoke job.

use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

// ------------------------------------------------------------ global state

const PROFILE_BIT: u8 = 1;
const TRACE_BIT: u8 = 2;

/// The one static every disabled call site reads.
static STATE: AtomicU8 = AtomicU8::new(0);

/// Enable/disable profile accumulation (spans + counters).
pub fn set_profile(on: bool) {
    set_bit(PROFILE_BIT, on);
}

/// Enable/disable chrome-trace event collection.
pub fn set_trace(on: bool) {
    set_bit(TRACE_BIT, on);
}

fn set_bit(bit: u8, on: bool) {
    if on {
        STATE.fetch_or(bit, Ordering::Relaxed);
    } else {
        STATE.fetch_and(!bit, Ordering::Relaxed);
    }
}

/// True when profile accumulation is on.
#[inline]
pub fn profile_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & PROFILE_BIT != 0
}

/// True when trace collection is on.
#[inline]
pub fn trace_enabled() -> bool {
    STATE.load(Ordering::Relaxed) & TRACE_BIT != 0
}

// --------------------------------------------------------------- registry

/// Timed phases. The enum discriminant indexes the thread-local
/// accumulator arrays; `name()` is the stable identifier used in
/// profiles, tables, and trace files.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Whole `Engine::run` (forced: its duration is `SimOutput::wall_time`).
    EngineRun,
    /// Loop steps 1–2: completions, outage edges, eligibility.
    EngineEvents,
    /// Loop step 3: the scheduler invocation as seen by the engine.
    EngineScheduler,
    /// Event-core skip decision + event-horizon computation.
    EngineHorizon,
    /// Loop step 4: physics advanced across the span.
    EnginePhysics,
    /// Batched physics chunk: one pass advancing every lane of a
    /// `BatchedEngine` by the shared chunk.
    PhysicsBatched,
    /// Post-loop history grid + stats assembly.
    EngineFinalize,
    /// Scheduler backend `schedule()` body (nests inside `engine.scheduler`).
    SchedSchedule,
    /// One cell-cache lookup (hit or miss).
    CacheRead,
    /// One cell-cache write-back.
    CacheWrite,
    /// Whole sweep cell: cache consult + (on miss) simulation.
    SweepCell,
    /// Whole `SweepRunner::run` (forced: its duration is the sweep wall).
    SweepRun,
    /// One `sraps serve` request, admission to response (warm answers
    /// close it on the connection thread, cold ones on a worker).
    ServeRequest,
    /// Time a cold `sraps serve` request spent in the pending queue
    /// before a worker picked it up.
    ServeQueueWait,
}

const PHASE_COUNT: usize = 14;

impl Phase {
    pub const ALL: [Phase; PHASE_COUNT] = [
        Phase::EngineRun,
        Phase::EngineEvents,
        Phase::EngineScheduler,
        Phase::EngineHorizon,
        Phase::EnginePhysics,
        Phase::PhysicsBatched,
        Phase::EngineFinalize,
        Phase::SchedSchedule,
        Phase::CacheRead,
        Phase::CacheWrite,
        Phase::SweepCell,
        Phase::SweepRun,
        Phase::ServeRequest,
        Phase::ServeQueueWait,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Phase::EngineRun => "engine.run",
            Phase::EngineEvents => "engine.events",
            Phase::EngineScheduler => "engine.scheduler",
            Phase::EngineHorizon => "engine.horizon",
            Phase::EnginePhysics => "engine.physics",
            Phase::PhysicsBatched => "physics.batched",
            Phase::EngineFinalize => "engine.finalize",
            Phase::SchedSchedule => "sched.schedule",
            Phase::CacheRead => "cache.read",
            Phase::CacheWrite => "cache.write",
            Phase::SweepCell => "sweep.cell",
            Phase::SweepRun => "sweep.run",
            Phase::ServeRequest => "serve.request",
            Phase::ServeQueueWait => "serve.queue_wait",
        }
    }
}

/// Counted events. Like [`Phase`], the discriminant indexes the
/// accumulators and `name()` is the stable identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Ticks the event core skipped (span − 1 per loop iteration).
    EngineTicksSkipped,
    /// Completions popped off the engine's completion heap.
    EngineHeapPops,
    /// Scheduler invocations (folded from `SchedulerStats`).
    SchedInvocations,
    /// Placements effected (folded from `SchedulerStats`).
    SchedPlacements,
    /// Queue-order recomputations (folded from `SchedulerStats`).
    SchedRecomputations,
    /// Jobs placed out of order by backfill (folded from `SchedulerStats`).
    SchedBackfilled,
    /// Replay placements that fell back to first-fit (folded from
    /// `SchedulerStats`).
    SchedPlacementFallbacks,
    /// Conservative-backfill anchor sweeps over the capacity timeline
    /// (one per queued job that walked the breakpoint profile).
    SchedAnchorSweeps,
    /// Conservative-backfill jobs anchored by the O(1) min-free fast
    /// path, skipping the breakpoint walk entirely.
    SchedPlanFastPaths,
    /// EASY shadow-time reservations computed against the timeline.
    SchedEasyReservations,
    /// Power-cap proposals deferred by the admission loop.
    SchedCapDeferrals,
    /// Full stable re-sorts of the job queue (order stamp changed).
    QueueResorts,
    /// Arrivals binary-inserted into the maintained queue order.
    QueueBinaryInserts,
    /// Capacity-timeline updates absorbed in place (`+=`/`-=` on an
    /// existing entry).
    TimelineInPlace,
    /// Capacity-timeline updates that inserted or removed an entry.
    TimelineEdits,
    /// Sweep cells served from the cell cache.
    CacheHits,
    /// Sweep cells the cache could not serve (absent or defective entry).
    CacheMisses,
    /// Defective cache entries (truncated, corrupt, stale schema, missing
    /// spill) demoted to misses for recompute-and-rewrite.
    CacheSelfHeals,
    /// Cells claimed off the shared cursor by spawned sweep workers.
    SweepWorkerSteals,
    /// Lane groups executed by a `BatchedEngine`.
    BatchLanes,
    /// Sweep cells simulated inside a batched lane group.
    BatchCells,
    /// Defective snapshot entries (truncated, corrupt, stale schema)
    /// demoted to misses for recompute-and-rewrite.
    SnapshotSelfHeals,
    /// Cell claim leases acquired (this process owns the simulation).
    ClaimsAcquired,
    /// Stale claim leases (heartbeat older than the TTL) reclaimed from
    /// a dead or wedged worker.
    ClaimsStaleReclaimed,
    /// Claim attempts that found a live lease held by another worker
    /// (the cell was deferred, not simulated).
    ClaimsContended,
    /// Per-cell retry attempts after a worker panic or transient I/O
    /// failure (attempts beyond the first).
    CellRetries,
    /// Cells that exhausted their retries and landed in the failed-cells
    /// table instead of the report.
    CellsFailed,
    /// Faults fired by an armed `FaultPlan` (panics, failed/delayed
    /// writes, truncations).
    FaultsInjected,
    /// Cache write-backs degraded to a warning (disk full, permission
    /// denied, …); the cell result still flowed to the report.
    CacheWriteErrors,
    /// `sraps serve` requests admitted (warm or queued for a worker).
    ServeRequests,
    /// `sraps serve` requests rejected at admission (queue full,
    /// per-client cap, injected accept-fail, draining).
    ServeRejected,
    /// `sraps serve` requests that hit their deadline and returned a
    /// structured timeout instead of a result.
    ServeTimeouts,
    /// Requests still pending or in flight when a drain began, all of
    /// which completed (or timed out) before the daemon exited.
    ServeDrained,
}

const COUNTER_COUNT: usize = 33;

impl Counter {
    pub const ALL: [Counter; COUNTER_COUNT] = [
        Counter::EngineTicksSkipped,
        Counter::EngineHeapPops,
        Counter::SchedInvocations,
        Counter::SchedPlacements,
        Counter::SchedRecomputations,
        Counter::SchedBackfilled,
        Counter::SchedPlacementFallbacks,
        Counter::SchedAnchorSweeps,
        Counter::SchedPlanFastPaths,
        Counter::SchedEasyReservations,
        Counter::SchedCapDeferrals,
        Counter::QueueResorts,
        Counter::QueueBinaryInserts,
        Counter::TimelineInPlace,
        Counter::TimelineEdits,
        Counter::CacheHits,
        Counter::CacheMisses,
        Counter::CacheSelfHeals,
        Counter::SweepWorkerSteals,
        Counter::BatchLanes,
        Counter::BatchCells,
        Counter::SnapshotSelfHeals,
        Counter::ClaimsAcquired,
        Counter::ClaimsStaleReclaimed,
        Counter::ClaimsContended,
        Counter::CellRetries,
        Counter::CellsFailed,
        Counter::FaultsInjected,
        Counter::CacheWriteErrors,
        Counter::ServeRequests,
        Counter::ServeRejected,
        Counter::ServeTimeouts,
        Counter::ServeDrained,
    ];

    pub const fn name(self) -> &'static str {
        match self {
            Counter::EngineTicksSkipped => "engine.ticks_skipped",
            Counter::EngineHeapPops => "engine.heap_pops",
            Counter::SchedInvocations => "sched.invocations",
            Counter::SchedPlacements => "sched.placements",
            Counter::SchedRecomputations => "sched.recomputations",
            Counter::SchedBackfilled => "sched.backfilled",
            Counter::SchedPlacementFallbacks => "sched.placement_fallbacks",
            Counter::SchedAnchorSweeps => "sched.anchor_sweeps",
            Counter::SchedPlanFastPaths => "sched.plan_fast_paths",
            Counter::SchedEasyReservations => "sched.easy_reservations",
            Counter::SchedCapDeferrals => "sched.cap_deferrals",
            Counter::QueueResorts => "queue.resorts",
            Counter::QueueBinaryInserts => "queue.binary_inserts",
            Counter::TimelineInPlace => "timeline.in_place",
            Counter::TimelineEdits => "timeline.edits",
            Counter::CacheHits => "cache.hits",
            Counter::CacheMisses => "cache.misses",
            Counter::CacheSelfHeals => "cache.self_heals",
            Counter::SweepWorkerSteals => "sweep.worker_steals",
            Counter::BatchLanes => "batch.lanes",
            Counter::BatchCells => "batch.cells",
            Counter::SnapshotSelfHeals => "snapshot.self_heals",
            Counter::ClaimsAcquired => "claims.acquired",
            Counter::ClaimsStaleReclaimed => "claims.stale_reclaimed",
            Counter::ClaimsContended => "claims.contended",
            Counter::CellRetries => "sweep.cell_retries",
            Counter::CellsFailed => "sweep.cells_failed",
            Counter::FaultsInjected => "faults.injected",
            Counter::CacheWriteErrors => "cache.write_errors",
            Counter::ServeRequests => "serve.requests",
            Counter::ServeRejected => "serve.rejected",
            Counter::ServeTimeouts => "serve.timeouts",
            Counter::ServeDrained => "serve.drained",
        }
    }

    /// One-line glossary entry (mirrored in the README).
    pub const fn describe(self) -> &'static str {
        match self {
            Counter::EngineTicksSkipped => "ticks the event core skipped outright",
            Counter::EngineHeapPops => "completions popped off the completion heap",
            Counter::SchedInvocations => "scheduler invocations",
            Counter::SchedPlacements => "placements effected",
            Counter::SchedRecomputations => "queue-order recomputations",
            Counter::SchedBackfilled => "jobs placed out of order by backfill",
            Counter::SchedPlacementFallbacks => "replay placements that fell back to first-fit",
            Counter::SchedAnchorSweeps => "conservative anchor sweeps over the timeline",
            Counter::SchedPlanFastPaths => "conservative jobs anchored by the min-free fast path",
            Counter::SchedEasyReservations => "EASY shadow-time reservations computed",
            Counter::SchedCapDeferrals => "power-cap proposals deferred",
            Counter::QueueResorts => "full queue re-sorts (order stamp changed)",
            Counter::QueueBinaryInserts => "arrivals binary-inserted into queue order",
            Counter::TimelineInPlace => "timeline updates absorbed in place",
            Counter::TimelineEdits => "timeline updates that inserted/removed entries",
            Counter::CacheHits => "sweep cells served from the cell cache",
            Counter::CacheMisses => "sweep cells the cache could not serve",
            Counter::CacheSelfHeals => "defective cache entries demoted to misses",
            Counter::SweepWorkerSteals => "cells claimed by spawned sweep workers",
            Counter::BatchLanes => "lane groups executed by the batched engine",
            Counter::BatchCells => "cells simulated inside batched lane groups",
            Counter::SnapshotSelfHeals => "defective snapshot entries demoted to misses",
            Counter::ClaimsAcquired => "cell claim leases acquired by this worker",
            Counter::ClaimsStaleReclaimed => "stale claim leases reclaimed after the TTL",
            Counter::ClaimsContended => "claim attempts that found a live foreign lease",
            Counter::CellRetries => "cell retry attempts after a panic or I/O fault",
            Counter::CellsFailed => "cells that exhausted retries (failed-cells table)",
            Counter::FaultsInjected => "faults fired by an armed fault plan",
            Counter::CacheWriteErrors => "cache write-backs degraded to a warning",
            Counter::ServeRequests => "serve requests admitted (warm or queued)",
            Counter::ServeRejected => "serve requests rejected at admission",
            Counter::ServeTimeouts => "serve requests that returned a structured timeout",
            Counter::ServeDrained => "requests in flight when a graceful drain began",
        }
    }
}

// ----------------------------------------------------- thread-local store

/// Per-thread monotone accumulators. Fixed arrays of atomics, const-
/// initialized: first access registers no destructor and allocates
/// nothing, and relaxed load+store bumps never touch the heap.
struct Recorder {
    counters: [AtomicU64; COUNTER_COUNT],
    phase_ns: [AtomicU64; PHASE_COUNT],
    phase_calls: [AtomicU64; PHASE_COUNT],
}

impl Recorder {
    const fn new() -> Self {
        Recorder {
            counters: [const { AtomicU64::new(0) }; COUNTER_COUNT],
            phase_ns: [const { AtomicU64::new(0) }; PHASE_COUNT],
            phase_calls: [const { AtomicU64::new(0) }; PHASE_COUNT],
        }
    }
}

thread_local! {
    static REC: Recorder = const { Recorder::new() };
}

#[inline]
fn relaxed_add(slot: &AtomicU64, n: u64) {
    // Thread-local, so a load+store pair is race-free and avoids the
    // read-modify-write lock prefix of `fetch_add`.
    slot.store(
        slot.load(Ordering::Relaxed).wrapping_add(n),
        Ordering::Relaxed,
    );
}

/// Count one event. Disabled cost: one relaxed static load + branch.
#[inline]
pub fn bump(counter: Counter) {
    add(counter, 1);
}

/// Count `n` events at once (e.g. ticks skipped per span).
#[inline]
pub fn add(counter: Counter, n: u64) {
    if STATE.load(Ordering::Relaxed) & PROFILE_BIT == 0 || n == 0 {
        return;
    }
    REC.with(|r| relaxed_add(&r.counters[counter as usize], n));
}

/// Record one already-measured occurrence of `phase` (`ns` nanoseconds).
/// For durations that span threads — e.g. a serve request's queue wait
/// starts on the connection thread and ends on a worker — where a RAII
/// [`span`] cannot be carried across. Profile-only (no trace events:
/// chrome-trace B/E pairs must share a thread).
#[inline]
pub fn record(phase: Phase, ns: u64) {
    if !profile_enabled() {
        return;
    }
    REC.with(|r| {
        relaxed_add(&r.phase_ns[phase as usize], ns);
        relaxed_add(&r.phase_calls[phase as usize], 1);
    });
}

// ------------------------------------------------------------------ spans

/// RAII span: created by [`span`], records on drop. Inert (no clock read)
/// when nothing is enabled at creation.
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
    traced: bool,
}

/// Open a span over `phase`. Disabled cost: one relaxed load + branch.
#[inline]
pub fn span(phase: Phase) -> Span {
    let state = STATE.load(Ordering::Relaxed);
    if state == 0 {
        return Span {
            phase,
            start: None,
            traced: false,
        };
    }
    let traced = state & TRACE_BIT != 0;
    if traced {
        emit(phase.name(), b'B');
    }
    Span {
        phase,
        start: Some(Instant::now()),
        traced,
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(start) = self.start {
            close_span(self.phase, start, self.traced);
        }
    }
}

fn close_span(phase: Phase, start: Instant, traced: bool) {
    let ns = start.elapsed().as_nanos() as u64;
    if profile_enabled() {
        REC.with(|r| {
            relaxed_add(&r.phase_ns[phase as usize], ns);
            relaxed_add(&r.phase_calls[phase as usize], 1);
        });
    }
    if traced {
        emit(phase.name(), b'E');
    }
}

/// Forced timer: **always** measures (the caller needs the `Duration`
/// regardless of instrumentation state), records into the profile/trace
/// only when enabled. The single timing pathway for wall-clock fields.
pub struct Stopwatch {
    phase: Phase,
    start: Instant,
    traced: bool,
}

/// Start a forced timer over `phase`.
pub fn stopwatch(phase: Phase) -> Stopwatch {
    let traced = trace_enabled();
    if traced {
        emit(phase.name(), b'B');
    }
    Stopwatch {
        phase,
        start: Instant::now(),
        traced,
    }
}

impl Stopwatch {
    /// Stop, record (when enabled), and return the measured duration.
    pub fn finish(self) -> Duration {
        let elapsed = self.start.elapsed();
        if profile_enabled() {
            REC.with(|r| {
                relaxed_add(&r.phase_ns[self.phase as usize], elapsed.as_nanos() as u64);
                relaxed_add(&r.phase_calls[self.phase as usize], 1);
            });
        }
        if self.traced {
            emit(self.phase.name(), b'E');
        }
        elapsed
    }
}

// --------------------------------------------------------------- captures

/// Snapshot of the current thread's accumulators; [`Capture::finish`]
/// yields the delta as a [`Profile`]. Captures nest (the accumulators are
/// monotone), and because each sweep cell runs wholly on one thread, a
/// per-cell capture is deterministic for any `--jobs` value.
pub struct Capture {
    active: bool,
    counters: [u64; COUNTER_COUNT],
    phase_ns: [u64; PHASE_COUNT],
    phase_calls: [u64; PHASE_COUNT],
}

/// Begin a capture. Inactive (and free) when profiling is off.
pub fn capture() -> Capture {
    if !profile_enabled() {
        return Capture {
            active: false,
            counters: [0; COUNTER_COUNT],
            phase_ns: [0; PHASE_COUNT],
            phase_calls: [0; PHASE_COUNT],
        };
    }
    REC.with(|r| Capture {
        active: true,
        counters: snapshot(&r.counters),
        phase_ns: snapshot(&r.phase_ns),
        phase_calls: snapshot(&r.phase_calls),
    })
}

fn snapshot<const N: usize>(slots: &[AtomicU64; N]) -> [u64; N] {
    let mut out = [0u64; N];
    for (o, s) in out.iter_mut().zip(slots) {
        *o = s.load(Ordering::Relaxed);
    }
    out
}

impl Capture {
    /// The delta since [`capture`], as a profile; `None` when profiling
    /// was off at begin time.
    pub fn finish(&self) -> Option<Profile> {
        if !self.active {
            return None;
        }
        REC.with(|r| {
            let mut profile = Profile::default();
            for phase in Phase::ALL {
                let i = phase as usize;
                let calls = r.phase_calls[i].load(Ordering::Relaxed) - self.phase_calls[i];
                let ns = r.phase_ns[i].load(Ordering::Relaxed) - self.phase_ns[i];
                if calls > 0 || ns > 0 {
                    profile.phases.push(PhaseStat {
                        name: phase.name().to_string(),
                        calls,
                        total_ns: ns,
                    });
                }
            }
            for counter in Counter::ALL {
                let i = counter as usize;
                let value = r.counters[i].load(Ordering::Relaxed) - self.counters[i];
                if value > 0 {
                    profile.counters.push(CounterStat {
                        name: counter.name().to_string(),
                        value,
                    });
                }
            }
            Some(profile)
        })
    }
}

// --------------------------------------------------------------- profiles

/// Accumulated time in one phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseStat {
    pub name: String,
    pub calls: u64,
    pub total_ns: u64,
}

/// Accumulated count of one event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterStat {
    pub name: String,
    pub value: u64,
}

/// A run's aggregated observability record: per-phase timing plus counter
/// values, in registry order. Merges are associative and name-keyed, so
/// per-cell profiles fold into one sweep profile deterministically.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Profile {
    pub phases: Vec<PhaseStat>,
    pub counters: Vec<CounterStat>,
}

impl Profile {
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty() && self.counters.is_empty()
    }

    /// Accumulate `(calls, total_ns)` under a phase name.
    pub fn record_phase(&mut self, name: &str, calls: u64, total_ns: u64) {
        if let Some(p) = self.phases.iter_mut().find(|p| p.name == name) {
            p.calls += calls;
            p.total_ns += total_ns;
        } else {
            self.phases.push(PhaseStat {
                name: name.to_string(),
                calls,
                total_ns,
            });
        }
    }

    /// Accumulate `value` under a counter name (no-op for zero on a
    /// missing entry, so empty sections stay empty).
    pub fn add_counter(&mut self, name: &str, value: u64) {
        if let Some(c) = self.counters.iter_mut().find(|c| c.name == name) {
            c.value += value;
        } else if value > 0 {
            self.counters.push(CounterStat {
                name: name.to_string(),
                value,
            });
        }
    }

    /// Fold `other` into `self`, matching entries by name.
    pub fn merge(&mut self, other: &Profile) {
        for p in &other.phases {
            self.record_phase(&p.name, p.calls, p.total_ns);
        }
        for c in &other.counters {
            self.add_counter(&c.name, c.value);
        }
    }

    /// Timing entry for a phase name, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.name == name)
    }

    /// Counter value for a name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Aligned per-phase / per-counter table (what `--profile` prints).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        if !self.phases.is_empty() {
            s.push_str(&format!(
                "{:<26} {:>12} {:>12} {:>12}\n",
                "phase", "calls", "total", "mean"
            ));
            for p in &self.phases {
                let mean = p.total_ns / p.calls.max(1);
                s.push_str(&format!(
                    "{:<26} {:>12} {:>12} {:>12}\n",
                    p.name,
                    p.calls,
                    format_ns(p.total_ns),
                    format_ns(mean)
                ));
            }
        }
        if !self.counters.is_empty() {
            if !s.is_empty() {
                s.push('\n');
            }
            s.push_str(&format!("{:<26} {:>12}\n", "counter", "value"));
            for c in &self.counters {
                s.push_str(&format!("{:<26} {:>12}\n", c.name, c.value));
            }
        }
        s
    }
}

/// Human-readable rendering of a nanosecond count (ns/us/ms/s).
pub fn format_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

// ---------------------------------------------------------------- tracing

#[derive(Clone, Copy)]
struct RawEvent {
    name: &'static str,
    ph: u8,
    ts_ns: u64,
    tid: u64,
}

/// Flushed events from every thread, per-thread chunks in order.
static SINK: Mutex<Vec<RawEvent>> = Mutex::new(Vec::new());
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Per-thread event buffer; drains into [`SINK`] on flush and at thread
/// exit, preserving per-thread event order.
struct TraceBuf {
    tid: u64,
    events: RefCell<Vec<RawEvent>>,
}

impl TraceBuf {
    fn flush(&self) {
        let mut events = self.events.borrow_mut();
        if !events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(&mut events);
            }
        }
    }
}

impl Drop for TraceBuf {
    fn drop(&mut self) {
        let events = self.events.get_mut();
        if !events.is_empty() {
            if let Ok(mut sink) = SINK.lock() {
                sink.append(events);
            }
        }
    }
}

thread_local! {
    static TRACE_TLS: TraceBuf = TraceBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        events: RefCell::new(Vec::new()),
    };
}

fn emit(name: &'static str, ph: u8) {
    let ts_ns = now_ns();
    let _ = TRACE_TLS.try_with(|t| {
        t.events.borrow_mut().push(RawEvent {
            name,
            ph,
            ts_ns,
            tid: t.tid,
        });
    });
}

/// Flush the calling thread's buffered trace events to the global sink.
/// Worker threads flush automatically at exit; the thread that writes the
/// trace file calls this via [`take_trace_json`].
pub fn flush_thread_trace() {
    let _ = TRACE_TLS.try_with(TraceBuf::flush);
}

/// Drain every flushed event into chrome-trace JSON text
/// (`{"traceEvents": [...]}`), events grouped by thread with per-thread
/// order preserved.
pub fn take_trace_json() -> String {
    flush_thread_trace();
    let mut events = std::mem::take(&mut *SINK.lock().unwrap_or_else(|e| e.into_inner()));
    // Stable: groups by tid, keeps each thread's B/E order intact.
    events.sort_by_key(|e| e.tid);
    let mut s = String::from("{\"traceEvents\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n{{\"name\":\"{}\",\"ph\":\"{}\",\"ts\":{:.3},\"pid\":1,\"tid\":{}}}",
            e.name,
            e.ph as char,
            e.ts_ns as f64 / 1000.0,
            e.tid
        ));
    }
    s.push_str("\n]}\n");
    s
}

/// Write the collected trace as a chrome-trace file at `path`. Installed
/// via temp file + rename (this crate sits below `sraps-types`, so the
/// idiom is inlined rather than shared) — a killed process never leaves
/// a torn trace behind.
pub fn write_trace(path: &std::path::Path) -> std::io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => std::path::Path::new("."),
    };
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("trace");
    let tmp = dir.join(format!(".{name}.tmp.{}", std::process::id()));
    std::fs::write(&tmp, take_trace_json())?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

// ------------------------------------------------------------- validation

/// One parsed chrome-trace event (duration events only).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceEventRecord {
    pub name: String,
    pub ph: String,
    pub ts: f64,
    pub pid: u64,
    pub tid: u64,
}

/// The chrome-trace envelope. Deserialized by hand because the JSON key
/// is camel-case (`traceEvents`), which the serde shim derive can't map.
pub struct ChromeTrace {
    pub events: Vec<TraceEventRecord>,
}

impl serde::Deserialize for ChromeTrace {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ChromeTrace {
            events: serde::field(v, "traceEvents")?,
        })
    }
}

/// Check a chrome-trace JSON text for well-formedness: parseable, only
/// `B`/`E` phases, per-thread timestamps non-decreasing, every `E`
/// matching the innermost open `B` of its thread, and no span left open.
/// Returns the event count.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let trace: ChromeTrace =
        serde_json::from_str(text).map_err(|e| format!("trace does not parse: {e}"))?;
    let mut stacks: std::collections::BTreeMap<u64, Vec<String>> = Default::default();
    let mut last_ts: std::collections::BTreeMap<u64, f64> = Default::default();
    for (i, e) in trace.events.iter().enumerate() {
        if let Some(&prev) = last_ts.get(&e.tid) {
            if e.ts < prev {
                return Err(format!(
                    "event {i} ({}): ts {} < previous ts {prev} on tid {}",
                    e.name, e.ts, e.tid
                ));
            }
        }
        last_ts.insert(e.tid, e.ts);
        match e.ph.as_str() {
            "B" => stacks.entry(e.tid).or_default().push(e.name.clone()),
            "E" => {
                let open = stacks.get_mut(&e.tid).and_then(Vec::pop);
                match open {
                    Some(name) if name == e.name => {}
                    Some(name) => {
                        return Err(format!(
                            "event {i}: E \"{}\" does not match open B \"{name}\" on tid {}",
                            e.name, e.tid
                        ));
                    }
                    None => {
                        return Err(format!(
                            "event {i}: E \"{}\" without a matching B on tid {}",
                            e.name, e.tid
                        ));
                    }
                }
            }
            other => return Err(format!("event {i}: unsupported phase {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if let Some(open) = stack.last() {
            return Err(format!("tid {tid}: span \"{open}\" was never closed"));
        }
    }
    Ok(trace.events.len())
}

// ------------------------------------------------------------------ tests

#[cfg(test)]
mod tests {
    use super::*;

    /// Obs state is process-global; tests that toggle it serialize here
    /// and restore the disabled default before releasing the lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    // The held lock is the point; it is never read.
    struct ObsGuard<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);

    fn enable(profile: bool, trace: bool) -> ObsGuard<'static> {
        let guard = TEST_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = take_trace_json(); // drain leftovers
        set_profile(profile);
        set_trace(trace);
        ObsGuard(guard)
    }

    impl Drop for ObsGuard<'_> {
        fn drop(&mut self) {
            set_profile(false);
            set_trace(false);
            let _ = take_trace_json();
        }
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let _g = enable(false, false);
        let cap = capture();
        bump(Counter::CacheHits);
        let _s = span(Phase::CacheRead);
        drop(_s);
        assert!(cap.finish().is_none(), "inactive capture yields no profile");
        assert!(
            take_trace_json().contains("[\n]"),
            "no trace events buffered"
        );
    }

    #[test]
    fn counters_and_spans_accumulate_into_captures() {
        let _g = enable(true, false);
        let cap = capture();
        bump(Counter::CacheHits);
        add(Counter::EngineTicksSkipped, 41);
        add(Counter::EngineTicksSkipped, 1);
        {
            let _s = span(Phase::EngineRun);
            let _inner = span(Phase::EngineScheduler);
        }
        let profile = cap.finish().expect("active capture");
        assert_eq!(profile.counter("cache.hits"), 1);
        assert_eq!(profile.counter("engine.ticks_skipped"), 42);
        assert_eq!(
            profile.counter("cache.misses"),
            0,
            "untouched counter absent"
        );
        let run = profile.phase("engine.run").expect("span recorded");
        assert_eq!(run.calls, 1);
        assert_eq!(profile.phase("engine.scheduler").unwrap().calls, 1);
        // Nested captures see only their own window.
        let cap2 = capture();
        bump(Counter::CacheMisses);
        let p2 = cap2.finish().unwrap();
        assert_eq!(p2.counter("cache.misses"), 1);
        assert_eq!(p2.counter("cache.hits"), 0);
    }

    #[test]
    fn stopwatch_measures_even_when_disabled() {
        let _g = enable(false, false);
        let cap = capture();
        let watch = stopwatch(Phase::EngineRun);
        let d = watch.finish();
        assert!(d.as_nanos() > 0 || d.is_zero()); // a real Duration either way
        assert!(cap.finish().is_none());

        set_profile(true);
        let cap = capture();
        let watch = stopwatch(Phase::EngineRun);
        std::thread::yield_now();
        let d = watch.finish();
        let p = cap.finish().unwrap();
        let stat = p.phase("engine.run").unwrap();
        assert_eq!(stat.calls, 1);
        assert!(stat.total_ns >= d.as_nanos() as u64 / 2);
    }

    #[test]
    fn profiles_merge_by_name() {
        let mut a = Profile::default();
        a.record_phase("engine.run", 1, 100);
        a.add_counter("cache.hits", 2);
        let mut b = Profile::default();
        b.record_phase("engine.run", 1, 50);
        b.record_phase("cache.read", 3, 9);
        b.add_counter("cache.hits", 1);
        b.add_counter("cache.misses", 4);
        a.merge(&b);
        assert_eq!(a.phase("engine.run").unwrap().calls, 2);
        assert_eq!(a.phase("engine.run").unwrap().total_ns, 150);
        assert_eq!(a.phase("cache.read").unwrap().calls, 3);
        assert_eq!(a.counter("cache.hits"), 3);
        assert_eq!(a.counter("cache.misses"), 4);
        let table = a.render_table();
        assert!(table.contains("engine.run"));
        assert!(table.contains("cache.misses"));
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let mut p = Profile::default();
        p.record_phase("engine.run", 7, 123_456_789);
        p.add_counter("queue.resorts", 3);
        let text = serde_json::to_string_pretty(&p).unwrap();
        let back: Profile = serde_json::from_str(&text).unwrap();
        assert_eq!(p, back);
    }

    #[test]
    fn trace_spans_nest_and_validate_across_threads() {
        let _g = enable(true, true);
        {
            let _outer = span(Phase::SweepRun);
            std::thread::scope(|scope| {
                for _ in 0..2 {
                    scope.spawn(|| {
                        {
                            let _cell = span(Phase::SweepCell);
                            for _ in 0..3 {
                                let _run = span(Phase::EngineRun);
                                let _sched = span(Phase::EngineScheduler);
                            }
                        }
                        // Scoped threads signal completion before TLS
                        // destructors run, so flush before returning.
                        flush_thread_trace();
                    });
                }
            });
        }
        let text = take_trace_json();
        let count = validate_chrome_trace(&text).expect("trace is well-formed");
        // 1 sweep.run pair + per thread: 1 cell pair + 3×2 engine pairs.
        assert_eq!(count, 2 * (1 + 2 * (1 + 6)));
        assert!(text.contains("\"ph\":\"B\""));
        assert!(text.contains("\"name\":\"engine.scheduler\""));
    }

    #[test]
    fn validator_rejects_malformed_traces() {
        assert!(validate_chrome_trace("not json").is_err());
        // E without B.
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"E","ts":1.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("without a matching B"));
        // Mismatched nesting.
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1},
            {"name":"b","ph":"B","ts":2.0,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":3.0,"pid":1,"tid":1},
            {"name":"b","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("does not match"));
        // Backwards time on one thread.
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":5.0,"pid":1,"tid":1},
            {"name":"a","ph":"E","ts":4.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("previous ts"));
        // Unclosed span.
        let text = r#"{"traceEvents":[
            {"name":"a","ph":"B","ts":1.0,"pid":1,"tid":1}
        ]}"#;
        assert!(validate_chrome_trace(text)
            .unwrap_err()
            .contains("never closed"));
    }

    #[test]
    fn registry_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Counter::ALL
            .iter()
            .map(|c| c.name())
            .chain(Phase::ALL.iter().map(|p| p.name()))
            .collect();
        assert!(names.iter().all(|n| n.contains('.')));
        let total = names.len();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate registry name");
        for (i, c) in Counter::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i, "discriminant order matches ALL");
            assert!(!c.describe().is_empty());
        }
        for (i, p) in Phase::ALL.iter().enumerate() {
            assert_eq!(*p as usize, i);
        }
    }
}
