//! Per-node power from component utilizations or recorded telemetry.

use sraps_systems::NodePowerSpec;
use sraps_types::{JobTelemetry, SimDuration};

/// Compute one node's power draw in watts for the given component
/// utilizations (each clamped to `[0, 1]`).
///
/// CPU and GPU interpolate linearly between idle and peak; memory and
/// board/static power are constant. Linear interpolation is the model RAPS
/// itself uses for utilization-only datasets and is accurate to a few
/// percent for the GPU-dominated nodes that set these systems' power.
pub fn node_power_w(spec: &NodePowerSpec, cpu_util: f64, gpu_util: f64) -> f64 {
    let cu = cpu_util.clamp(0.0, 1.0);
    let gu = gpu_util.clamp(0.0, 1.0);
    let cpu = spec.cpu_idle_w + (spec.cpu_peak_w - spec.cpu_idle_w) * cu;
    let gpu = spec.gpu_idle_w + (spec.gpu_peak_w - spec.gpu_idle_w) * gu;
    cpu + gpu + spec.mem_w + spec.static_w
}

/// Per-node power for a job at `offset` into its execution.
///
/// Datasets that record node power directly (PM100, Frontier) take
/// precedence — replay should reproduce recorded power, not re-derive it.
/// Utilization-only telemetry falls back to the component model.
pub fn node_power_from_telemetry(
    spec: &NodePowerSpec,
    telemetry: &JobTelemetry,
    offset: SimDuration,
) -> f64 {
    if let Some(p) = telemetry.power_at(offset) {
        return p as f64;
    }
    node_power_w(
        spec,
        telemetry.cpu_util_at(offset) as f64,
        telemetry.gpu_util_at(offset) as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_types::Trace;

    fn spec() -> NodePowerSpec {
        NodePowerSpec {
            cpus_per_node: 1,
            gpus_per_node: 4,
            cpu_idle_w: 100.0,
            cpu_peak_w: 300.0,
            gpu_idle_w: 400.0,
            gpu_peak_w: 2000.0,
            mem_w: 100.0,
            static_w: 100.0,
        }
    }

    #[test]
    fn idle_and_peak_endpoints() {
        let s = spec();
        assert_eq!(node_power_w(&s, 0.0, 0.0), s.idle_node_w());
        assert_eq!(node_power_w(&s, 1.0, 1.0), s.peak_node_w());
    }

    #[test]
    fn interpolation_is_linear() {
        let s = spec();
        let half = node_power_w(&s, 0.5, 0.5);
        assert!((half - (s.idle_node_w() + s.peak_node_w()) / 2.0).abs() < 1e-9);
    }

    #[test]
    fn utilization_is_clamped() {
        let s = spec();
        assert_eq!(node_power_w(&s, -3.0, 2.0), node_power_w(&s, 0.0, 1.0));
    }

    #[test]
    fn recorded_power_takes_precedence() {
        let s = spec();
        let mut tel = JobTelemetry::from_scalars(1.0, Some(1.0), 1234.0);
        assert_eq!(
            node_power_from_telemetry(&s, &tel, SimDuration::ZERO),
            1234.0
        );
        // Without recorded power, fall back to the component model.
        tel.node_power_w = None;
        assert_eq!(
            node_power_from_telemetry(&s, &tel, SimDuration::ZERO),
            s.peak_node_w()
        );
    }

    #[test]
    fn trace_offset_is_respected() {
        let s = spec();
        let tel = JobTelemetry {
            node_power_w: Some(Trace::new(
                SimDuration::ZERO,
                SimDuration::seconds(10),
                vec![500.0, 900.0],
            )),
            ..Default::default()
        };
        assert_eq!(
            node_power_from_telemetry(&s, &tel, SimDuration::seconds(0)),
            500.0
        );
        assert_eq!(
            node_power_from_telemetry(&s, &tel, SimDuration::seconds(10)),
            900.0
        );
    }
}
