//! Facility-level power aggregation.

use crate::loss::{distribution_loss_w, rectifier_loss_w};
use serde::{Deserialize, Serialize};
use sraps_systems::SystemConfig;

/// One facility power reading produced each tick.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerSample {
    /// Power delivered to compute nodes (busy + idle), kW.
    pub it_power_kw: f64,
    /// Rectification + distribution losses, kW.
    pub loss_kw: f64,
    /// Total electrical input to the machine (IT + losses), kW. Cooling
    /// auxiliaries are accounted by the cooling model, not here.
    pub total_kw: f64,
    /// IT load as a fraction of the system's peak.
    pub load_fraction: f64,
}

impl PowerSample {
    /// System power efficiency: delivered / drawn (the paper tracks this as
    /// "system power efficiency" in §3.2.6).
    pub fn efficiency(&self) -> f64 {
        if self.total_kw <= 0.0 {
            1.0
        } else {
            self.it_power_kw / self.total_kw
        }
    }
}

/// Computes facility power from the sum of node draws.
///
/// The engine supplies `busy_power_w` (Σ node power of running jobs, from
/// traces or the component model) and the count of idle nodes; the model
/// adds idle draw and pushes the total through the loss chain.
#[derive(Debug, Clone)]
pub struct PowerModel {
    peak_it_w: f64,
    idle_node_w: f64,
    loss: sraps_systems::LossSpec,
}

impl PowerModel {
    pub fn new(cfg: &SystemConfig) -> Self {
        PowerModel {
            peak_it_w: cfg.peak_it_power_kw() * 1000.0,
            idle_node_w: cfg.node_power.idle_node_w(),
            loss: cfg.loss,
        }
    }

    /// Facility sample for this tick.
    ///
    /// * `busy_power_w` — aggregate power of all allocated nodes, watts.
    /// * `idle_nodes` — nodes with no job; they draw idle power.
    pub fn sample(&self, busy_power_w: f64, idle_nodes: u32) -> PowerSample {
        let it_w = busy_power_w + idle_nodes as f64 * self.idle_node_w;
        let load_fraction = if self.peak_it_w > 0.0 {
            (it_w / self.peak_it_w).clamp(0.0, 1.0)
        } else {
            0.0
        };
        let rect_loss = rectifier_loss_w(&self.loss, it_w, load_fraction);
        let dist_loss = distribution_loss_w(&self.loss, it_w + rect_loss);
        let loss_w = rect_loss + dist_loss;
        PowerSample {
            it_power_kw: it_w / 1000.0,
            loss_kw: loss_w / 1000.0,
            total_kw: (it_w + loss_w) / 1000.0,
            load_fraction,
        }
    }

    /// Batch entry point: one sample per `busy` entry (all with the same
    /// idle-node count), appended to `out` in order. Each element goes
    /// through [`PowerModel::sample`] unchanged — callers integrating a
    /// pre-summed span of busy power get samples bit-identical to the
    /// per-tick loop, with the model parameters hoisted out of it.
    pub fn sample_each(&self, busy: &[f64], idle_nodes: u32, out: &mut Vec<PowerSample>) {
        out.reserve(busy.len());
        for &busy_power_w in busy {
            out.push(self.sample(busy_power_w, idle_nodes));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sraps_systems::presets;

    #[test]
    fn empty_system_draws_idle_power() {
        let cfg = presets::marconi100();
        let model = PowerModel::new(&cfg);
        let s = model.sample(0.0, cfg.total_nodes);
        assert!((s.it_power_kw - cfg.idle_it_power_kw()).abs() < 1e-6);
        assert!(s.loss_kw > 0.0, "losses exist even at idle");
        assert!(s.total_kw > s.it_power_kw);
    }

    #[test]
    fn full_system_hits_peak() {
        let cfg = presets::adastra();
        let model = PowerModel::new(&cfg);
        let busy = cfg.total_nodes as f64 * cfg.node_power.peak_node_w();
        let s = model.sample(busy, 0);
        assert!((s.it_power_kw - cfg.peak_it_power_kw()).abs() < 1e-6);
        assert!((s.load_fraction - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sample_each_equals_per_call_sample() {
        let cfg = presets::lassen();
        let model = PowerModel::new(&cfg);
        let busy: Vec<f64> = (0..64).map(|i| i as f64 * 37_500.0).collect();
        let mut batch = Vec::new();
        model.sample_each(&busy, 7, &mut batch);
        assert_eq!(batch.len(), busy.len());
        for (&b, s) in busy.iter().zip(&batch) {
            assert_eq!(*s, model.sample(b, 7), "bit-identical batch sample");
        }
    }

    #[test]
    fn efficiency_in_unit_interval() {
        let cfg = presets::frontier();
        let model = PowerModel::new(&cfg);
        for frac in [0.0, 0.25, 0.5, 0.75, 1.0] {
            let busy = frac * cfg.total_nodes as f64 * cfg.node_power.peak_node_w();
            let idle = ((1.0 - frac) * cfg.total_nodes as f64) as u32;
            let s = model.sample(busy, idle);
            assert!(
                s.efficiency() > 0.9 && s.efficiency() <= 1.0,
                "{}",
                s.efficiency()
            );
        }
    }

    #[test]
    fn power_monotone_in_load() {
        let cfg = presets::lassen();
        let model = PowerModel::new(&cfg);
        let mut prev = -1.0;
        for i in 0..=10 {
            let frac = i as f64 / 10.0;
            let busy = frac * cfg.total_nodes as f64 * cfg.node_power.peak_node_w();
            let idle = cfg.total_nodes - (frac * cfg.total_nodes as f64) as u32;
            let s = model.sample(busy, idle);
            assert!(s.total_kw > prev, "total power must rise with load");
            prev = s.total_kw;
        }
    }

    #[test]
    fn zero_sample_is_identity() {
        let s = PowerSample::default();
        assert_eq!(s.efficiency(), 1.0);
    }
}
