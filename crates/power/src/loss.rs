//! Electrical conversion losses (rectification + distribution).
//!
//! Rectifier efficiency follows a concave quadratic of load fraction —
//! the characteristic shape of the measured conversion-stage curves in
//! Wojda et al. \[42\]: efficiency peaks at partial load and falls off toward
//! both idle (fixed losses dominate) and full load (resistive losses grow).

use sraps_systems::LossSpec;

/// Rectifier efficiency at `load_fraction` of rated power, in `(0, 1]`.
pub fn rectifier_efficiency(spec: &LossSpec, load_fraction: f64) -> f64 {
    let l = load_fraction.clamp(0.0, 1.0);
    let d = l - spec.rectifier_peak_load;
    (spec.rectifier_peak_eff - spec.rectifier_curvature * d * d).clamp(0.5, 1.0)
}

/// Watts lost in rectification when delivering `power_w` to IT at the given
/// facility load fraction. Loss = input − output = P·(1/η − 1).
pub fn rectifier_loss_w(spec: &LossSpec, power_w: f64, load_fraction: f64) -> f64 {
    let eta = rectifier_efficiency(spec, load_fraction);
    power_w * (1.0 / eta - 1.0)
}

/// Watts lost in distribution (transformers, busbars) upstream of the
/// rectifiers when the rectifier *input* is `rectifier_input_w`.
pub fn distribution_loss_w(spec: &LossSpec, rectifier_input_w: f64) -> f64 {
    rectifier_input_w * (1.0 / spec.distribution_eff - 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> LossSpec {
        LossSpec {
            rectifier_peak_eff: 0.975,
            rectifier_peak_load: 0.6,
            rectifier_curvature: 0.06,
            distribution_eff: 0.99,
        }
    }

    #[test]
    fn efficiency_peaks_at_design_load() {
        let s = spec();
        let at_peak = rectifier_efficiency(&s, 0.6);
        assert!((at_peak - 0.975).abs() < 1e-12);
        assert!(rectifier_efficiency(&s, 0.1) < at_peak);
        assert!(rectifier_efficiency(&s, 1.0) < at_peak);
    }

    #[test]
    fn efficiency_clamped_to_sane_band() {
        let s = LossSpec {
            rectifier_curvature: 10.0, // absurd curvature
            ..spec()
        };
        assert!(rectifier_efficiency(&s, 0.0) >= 0.5);
        assert!(rectifier_efficiency(&s, 2.0) <= 1.0); // load clamped to 1
    }

    #[test]
    fn loss_positive_and_grows_off_peak() {
        let s = spec();
        let at_peak = rectifier_loss_w(&s, 1_000_000.0, 0.6);
        let at_low = rectifier_loss_w(&s, 1_000_000.0, 0.1);
        assert!(at_peak > 0.0);
        assert!(
            at_low > at_peak,
            "same power at worse efficiency loses more"
        );
    }

    #[test]
    fn distribution_loss_scales_linearly() {
        let s = spec();
        let l1 = distribution_loss_w(&s, 100.0);
        let l2 = distribution_loss_w(&s, 200.0);
        assert!((l2 - 2.0 * l1).abs() < 1e-9);
    }
}
