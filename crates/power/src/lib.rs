//! Power modeling: utilization → node power → conversion losses → facility
//! power.
//!
//! This substitutes the component-behaviour power computation of Wojda et
//! al. \[42\] used by ExaDigiT: each node's CPU/GPU power interpolates between
//! idle and peak with utilization, memory and board power are constant, and
//! the node's draw then passes through a load-dependent rectifier efficiency
//! curve and a fixed distribution efficiency. The digital twin cares about
//! this structure because losses (and therefore heat and PUE) change with
//! *how* load is spread over time — which is exactly what scheduling
//! policies alter.

pub mod loss;
pub mod node_power;
pub mod system;

pub use loss::{distribution_loss_w, rectifier_efficiency, rectifier_loss_w};
pub use node_power::{node_power_from_telemetry, node_power_w};
pub use system::{PowerModel, PowerSample};
