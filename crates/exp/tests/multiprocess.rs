//! Crash-safety end-to-end tests: several real `sraps sweep` processes
//! cooperating on one cache directory through the claim-lease protocol.
//!
//! The headline invariants, pinned here exactly as the CI chaos job pins
//! them:
//! * concurrent sweeps never simulate a cell twice — per-process
//!   `cache: H hits, M misses` lines sum to the matrix size;
//! * a `kill -9`'d worker leaves only a stale lease behind; a restarted
//!   sweep reclaims it and finishes the matrix;
//! * every recovered report is byte-identical to a clean serial run.

use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};

/// Locate the `sraps` binary at runtime. The bin target lives in
/// `crates/serve` (the CLI dispatches serve/query too), so
/// `env!("CARGO_BIN_EXE_sraps")` is unavailable here; a workspace-level
/// `cargo build`/`cargo test` places it next to the test binary's
/// profile directory.
fn sraps_bin() -> PathBuf {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("sraps");
    assert!(
        path.is_file(),
        "sraps binary not built at {} — run a workspace-level `cargo build` \
         (the bin target lives in crates/serve)",
        path.display()
    );
    path
}

fn sraps() -> Command {
    Command::new(sraps_bin())
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sraps-mp-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

const MATRIX: &[&str] = &[
    "sweep",
    "--system",
    "lassen",
    "--span",
    "2h",
    "--policies",
    "fcfs,sjf",
    "--backfills",
    "none,easy",
    "--quiet",
    "--jobs",
    "2",
];
const MATRIX_CELLS: usize = 4;

fn sweep_cmd(out: &Path, cache: &Path) -> Command {
    let mut cmd = sraps();
    cmd.args(MATRIX)
        .arg("-o")
        .arg(out)
        .arg("--cache-dir")
        .arg(cache)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    cmd
}

/// Parse the pinned `cache: H hits, M misses (...)` stdout line.
fn hits_misses(stdout: &str) -> (usize, usize) {
    let line = stdout
        .lines()
        .find(|l| l.starts_with("cache: "))
        .unwrap_or_else(|| panic!("no cache line in:\n{stdout}"));
    let mut nums = line
        .split_whitespace()
        .filter_map(|w| w.parse::<usize>().ok());
    (nums.next().unwrap(), nums.next().unwrap())
}

fn read(path: PathBuf) -> String {
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn concurrent_sweeps_partition_the_matrix_without_duplicate_work() {
    let base = temp_dir("partition");
    let cache = base.join("cache");
    // Reference: a clean serial run with its own cache.
    let reference = sweep_cmd(&base.join("ref"), &base.join("ref-cache"))
        .output()
        .expect("binary runs");
    assert!(reference.status.success());

    let workers: Vec<_> = (0..2)
        .map(|w| {
            sweep_cmd(&base.join(format!("out{w}")), &cache)
                .spawn()
                .expect("worker spawns")
        })
        .collect();
    let outputs: Vec<_> = workers
        .into_iter()
        .map(|w| w.wait_with_output().expect("worker finishes"))
        .collect();

    // Each worker exits clean and accounts for the full matrix; between
    // them every cell simulated exactly once.
    let mut total_misses = 0;
    for (w, out) in outputs.iter().enumerate() {
        assert!(
            out.status.success(),
            "worker {w} failed:\n{}",
            String::from_utf8_lossy(&out.stderr)
        );
        let (h, m) = hits_misses(&String::from_utf8_lossy(&out.stdout));
        assert_eq!(h + m, MATRIX_CELLS, "worker {w} matrix coverage");
        total_misses += m;
    }
    assert_eq!(
        total_misses, MATRIX_CELLS,
        "claim leases must stop any cell from simulating twice"
    );

    // Every worker's report is byte-identical to the clean serial run.
    let want = read(base.join("ref").join("sweep.csv"));
    for w in 0..2 {
        assert_eq!(
            read(base.join(format!("out{w}")).join("sweep.csv")),
            want,
            "worker {w} report diverged"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn racing_one_cell_simulates_it_exactly_once() {
    let base = temp_dir("one-cell");
    let cache = base.join("cache");
    let single = |out: PathBuf| {
        let mut cmd = sraps();
        cmd.args([
            "sweep", "--system", "lassen", "--span", "2h", "--quiet", "--jobs", "1",
        ])
        .arg("-o")
        .arg(out)
        .arg("--cache-dir")
        .arg(&cache)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
        cmd
    };
    let workers: Vec<_> = (0..2)
        .map(|w| single(base.join(format!("out{w}"))).spawn().unwrap())
        .collect();
    let outputs: Vec<_> = workers
        .into_iter()
        .map(|w| w.wait_with_output().unwrap())
        .collect();
    let mut misses = 0;
    for out in &outputs {
        assert!(out.status.success());
        misses += hits_misses(&String::from_utf8_lossy(&out.stdout)).1;
    }
    assert_eq!(misses, 1, "the contended cell ran exactly once");
    let entries = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "json"))
        .count();
    assert_eq!(entries, 1, "exactly one cache entry, no torn leftovers");
    assert_eq!(
        read(base.join("out0").join("sweep.csv")),
        read(base.join("out1").join("sweep.csv")),
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn killed_worker_is_reclaimed_and_the_matrix_completes() {
    let base = temp_dir("kill9");
    let cache = base.join("cache");
    let reference = sweep_cmd(&base.join("ref"), &base.join("ref-cache"))
        .output()
        .expect("binary runs");
    assert!(reference.status.success());

    // A worker whose every cache write stalls 10 s: guaranteed to be
    // mid-sweep (holding claims) when the SIGKILL lands.
    let mut victim = sweep_cmd(&base.join("victim"), &cache)
        .env("SRAPS_FAULTS", "write-delay%100:10000ms")
        .spawn()
        .expect("victim spawns");
    std::thread::sleep(std::time::Duration::from_millis(1500));
    victim.kill().expect("kill -9");
    let _ = victim.wait();
    let stale_claims = std::fs::read_dir(&cache)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "claim"))
                .count()
        })
        .unwrap_or(0);

    // Restart with a short TTL: the corpse's leases age out and are
    // reclaimed; the sweep finishes the whole matrix.
    let out = sweep_cmd(&base.join("restart"), &cache)
        .env("SRAPS_CLAIM_TTL_MS", "250")
        .output()
        .expect("restart runs");
    assert!(
        out.status.success(),
        "restart failed ({stale_claims} stale claims left by corpse):\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (h, m) = hits_misses(&String::from_utf8_lossy(&out.stdout));
    assert_eq!(h + m, MATRIX_CELLS, "full matrix accounted for");

    assert_eq!(
        read(base.join("restart").join("sweep.csv")),
        read(base.join("ref").join("sweep.csv")),
        "recovered report must match the uninterrupted serial run byte-for-byte"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cli_faults_persist_panic_exits_nonzero_with_failed_table() {
    let base = temp_dir("cli-faults");
    let out = sraps()
        .args(MATRIX)
        .args(["--faults", "panic@1:persist", "--retries", "1"])
        .arg("-o")
        .arg(base.join("out"))
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "exhausted retries must exit nonzero");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("failed cells"), "table printed: {stdout}");
    assert!(
        stdout.contains("failed: 1 cells exhausted retries"),
        "greppable summary: {stdout}"
    );
    // Reports still land (written before the nonzero exit) and the
    // failure is recorded in them.
    let json = read(base.join("out").join("sweep.json"));
    assert!(json.contains("worker panic"), "{json}");
    let csv = read(base.join("out").join("sweep.csv"));
    assert_eq!(
        csv.lines().count(),
        1 + MATRIX_CELLS - 1,
        "failed cell excluded from report rows"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cli_fault_injected_run_converges_on_rerun() {
    let base = temp_dir("cli-converge");
    let cache = base.join("cache");
    // Fire-once panics plus a torn cache entry: the run itself converges
    // (retries), the torn entry self-heals on the rerun.
    let first = sweep_cmd(&base.join("out1"), &cache)
        .args(["--faults", "panic@0,panic@3,truncate@2"])
        .output()
        .expect("binary runs");
    assert!(
        first.status.success(),
        "fire-once faults converge in-run:\n{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let rerun = sweep_cmd(&base.join("out2"), &cache)
        .output()
        .expect("binary runs");
    assert!(rerun.status.success());
    let (h, m) = hits_misses(&String::from_utf8_lossy(&rerun.stdout));
    assert_eq!(h, MATRIX_CELLS - 1, "only the torn entry re-simulates");
    assert_eq!(m, 1);
    assert_eq!(
        read(base.join("out1").join("sweep.csv")),
        read(base.join("out2").join("sweep.csv")),
        "injected faults never perturb report bytes"
    );
    std::fs::remove_dir_all(&base).ok();
}

/// Fabricate a claim file as a (possibly dead) owner would leave it.
fn write_claim(path: &Path, owner: &str, heartbeat_ms: u64) {
    std::fs::create_dir_all(path.parent().unwrap()).unwrap();
    std::fs::write(
        path,
        format!(r#"{{"owner":"{owner}","pid":1,"heartbeat_ms":{heartbeat_ms}}}"#),
    )
    .unwrap();
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .unwrap()
        .as_millis() as u64
}

#[test]
fn deferred_cell_resolves_after_owner_dies_between_heartbeats() {
    let base = temp_dir("dead-owner");
    let cache = base.join("cache");
    // Learn the single cell's cache key from a clean run, then reset the
    // cache to just a *fresh* claim owned by a worker that will never
    // heartbeat again — exactly what a crash between refreshes leaves.
    let single = |out: &str| {
        let mut cmd = sraps();
        cmd.args([
            "sweep", "--system", "lassen", "--span", "2h", "--quiet", "--jobs", "1",
        ])
        .arg("-o")
        .arg(base.join(out))
        .arg("--cache-dir")
        .arg(&cache)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
        cmd
    };
    let learn = single("learn").output().expect("binary runs");
    assert!(learn.status.success());
    let key = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("one cache entry")
        .file_stem()
        .unwrap()
        .to_string_lossy()
        .into_owned();
    std::fs::remove_dir_all(&cache).unwrap();
    write_claim(&cache.join(format!("{key}.claim")), "dead:1:0", now_ms());

    // The sweep first sees a live foreign lease (heartbeat is fresh) and
    // defers; the owner is dead, so the heartbeat ages past the TTL and
    // the deferral loop's claim re-attempt reclaims and simulates.
    let out = single("resolved")
        .env("SRAPS_CLAIM_TTL_MS", "300")
        .env("SRAPS_CLAIM_POLL_MS", "20")
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "deferred cell must resolve once the dead owner's lease ages out:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let (h, m) = hits_misses(&String::from_utf8_lossy(&out.stdout));
    assert_eq!((h, m), (0, 1), "the cell simulated here, not skipped");
    assert_eq!(
        read(base.join("learn").join("sweep.csv")),
        read(base.join("resolved").join("sweep.csv")),
        "recovery never perturbs report bytes"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn tombstone_rename_race_elects_exactly_one_reclaimer() {
    use sraps_exp::{ClaimOutcome, ClaimSet};
    use std::time::Duration;
    let base = temp_dir("reclaim-race");
    // Several rounds: the race window (pause → re-read → rename) is
    // jittered per owner, so one round might not actually collide.
    for round in 0..5 {
        let key = format!("hot{round}");
        write_claim(&base.join(format!("{key}.claim")), "dead:1:0", 1);
        let sets: Vec<ClaimSet> = (0..4)
            .map(|_| {
                ClaimSet::open_with(&base, Duration::from_millis(20), Duration::from_millis(2))
                    .unwrap()
            })
            .collect();
        let wins: Vec<bool> = std::thread::scope(|s| {
            let handles: Vec<_> = sets
                .iter()
                .map(|set| {
                    s.spawn(|| matches!(set.try_acquire(&key).unwrap(), ClaimOutcome::Acquired(_)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            wins.iter().filter(|w| **w).count(),
            1,
            "round {round}: exactly one of 4 racing reclaimers wins the rename"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sigterm_mid_sweep_releases_claim_leases() {
    let base = temp_dir("sigterm-release");
    let cache = base.join("cache");
    // Every cache write stalls 10 s: the worker is guaranteed to be
    // holding claims when the signal lands.
    let victim = sweep_cmd(&base.join("victim"), &cache)
        .env("SRAPS_FAULTS", "write-delay%100:10000ms")
        .spawn()
        .expect("victim spawns");
    std::thread::sleep(std::time::Duration::from_millis(1500));
    let held: usize = std::fs::read_dir(&cache)
        .map(|d| {
            d.filter_map(|e| e.ok())
                .filter(|e| e.path().extension().is_some_and(|x| x == "claim"))
                .count()
        })
        .unwrap_or(0);
    assert!(held > 0, "victim must be holding claims when signaled");
    let kill = Command::new("kill")
        .arg("-TERM")
        .arg(victim.id().to_string())
        .status()
        .expect("kill runs");
    assert!(kill.success());
    let out = victim.wait_with_output().expect("victim exits");
    assert_eq!(out.status.code(), Some(130), "interrupt exit status");
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("released"),
        "release is announced:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let leaked = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| e.path().extension().is_some_and(|x| x == "claim"))
        .count();
    assert_eq!(leaked, 0, "no claim file survives a SIGTERM'd sweep");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn profile_counters_pin_the_claim_protocol() {
    let base = temp_dir("claim-counters");
    let out = sweep_cmd(&base.join("out"), &base.join("cache"))
        .arg("--profile")
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    // Zero-valued counters are omitted from the table, so absence is the
    // assertion for the never-fired ones.
    let counter = |name: &str| -> u64 {
        stderr
            .lines()
            .find(|l| l.trim_start().starts_with(name))
            .and_then(|l| l.split_whitespace().last())
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    assert_eq!(
        counter("claims.acquired") as usize,
        MATRIX_CELLS,
        "single process: every miss acquires its claim\n{stderr}"
    );
    assert_eq!(counter("claims.contended"), 0, "{stderr}");
    assert_eq!(counter("claims.stale_reclaimed"), 0, "{stderr}");
    assert_eq!(counter("sweep.cells_failed"), 0, "{stderr}");
    std::fs::remove_dir_all(&base).ok();
}
