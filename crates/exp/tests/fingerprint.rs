//! Fingerprint-stability suite: the cache key must change whenever any
//! sim-relevant axis changes, collide for identical specs, and stay
//! stable across processes and releases (golden-key fixtures — if one of
//! those fails, the canonical serialization drifted and every on-disk
//! cache silently went stale: bump `ENGINE_SCHEMA_VERSION` and repin).

use proptest::prelude::*;
use sraps_core::{EngineMode, SchedulerSelect};
use sraps_exp::{CellSpec, WorkloadPlan};
use sraps_types::SimDuration;

const SYSTEMS: &[&str] = &["frontier", "marconi100", "fugaku", "lassen", "adastra"];
const POLICIES: &[&str] = &["fcfs", "sjf", "priority"];
const BACKFILLS: &[&str] = &["none", "firstfit", "easy"];

fn plan(system: &str, load: f64, seed: u64, span_hours: i64, scale: f64) -> WorkloadPlan {
    WorkloadPlan::Synthetic {
        label: "probe".into(),
        group: "probe".into(),
        system: system.into(),
        load,
        seed,
        span: SimDuration::hours(span_hours),
        scale,
    }
}

#[allow(clippy::too_many_arguments)]
fn cell(
    policy: &str,
    backfill: &str,
    cooling: bool,
    power_cap_kw: Option<f64>,
    engine: EngineMode,
) -> CellSpec {
    CellSpec {
        index: 0,
        label: "probe-cell".into(),
        workload: 0,
        policy: policy.into(),
        backfill: backfill.into(),
        cooling,
        power_cap_kw,
        cap_at: None,
        scheduler: SchedulerSelect::Default,
        engine,
        accounts_in: None,
    }
}

/// The full sim-relevant axis tuple one generated case covers.
type Axes = (
    (usize, f64, u64),    // system index, load, seed
    (i64, f64),           // span hours, scale
    (usize, usize, bool), // policy index, backfill index, cooling
    (f64, bool),          // power cap value, cap present
    bool,                 // engine: true ⇒ event, false ⇒ tick
);

fn key_of(a: &Axes) -> String {
    let ((sys, load, seed), (span, scale), (pol, bf, cooling), (cap, capped), event) = *a;
    let plan = plan(SYSTEMS[sys], load, seed, span, scale);
    let spec = cell(
        POLICIES[pol],
        BACKFILLS[bf],
        cooling,
        capped.then_some(cap),
        if event {
            EngineMode::Event
        } else {
            EngineMode::Tick
        },
    );
    spec.fingerprint(plan.fingerprint().expect("known system"))
        .hex()
}

fn axes_strategy() -> impl Strategy<Value = Axes> {
    (
        (0usize..SYSTEMS.len(), 0.1f64..1.5, 0u64..1000),
        (1i64..72, 0.25f64..1.0),
        (
            0usize..POLICIES.len(),
            0usize..BACKFILLS.len(),
            any::<bool>(),
        ),
        (100.0f64..5000.0, any::<bool>()),
        any::<bool>(),
    )
}

proptest! {
    /// Identical specs collide; both halves of the cache contract in one
    /// property: key equality ⇔ axis-tuple equality.
    #[test]
    fn keys_equal_iff_axes_equal(a in axes_strategy(), b in axes_strategy()) {
        let (ka, kb) = (key_of(&a), key_of(&b));
        // Normalize: an absent power cap makes its value unobservable.
        let canon = |mut x: Axes| { if !x.3.1 { x.3.0 = 0.0; } x };
        if canon(a) == canon(b) {
            prop_assert_eq!(ka, kb, "identical specs must share a key");
        } else {
            prop_assert!(ka != kb, "distinct specs {a:?} vs {b:?} collided");
        }
    }

    /// Any single-axis mutation changes the key.
    #[test]
    fn single_axis_mutations_change_the_key(
        a in axes_strategy(),
        load_bump in 0.01f64..0.2,
        seed_bump in 1u64..50,
        span_bump in 1i64..24,
        scale_drop in 0.01f64..0.2,
        cap_bump in 1.0f64..100.0,
    ) {
        let base = key_of(&a);
        let mut m = a; m.0.0 = (m.0.0 + 1) % SYSTEMS.len();
        prop_assert!(key_of(&m) != base, "system mutation kept the key");
        let mut m = a; m.0.1 += load_bump;
        prop_assert!(key_of(&m) != base, "load mutation kept the key");
        let mut m = a; m.0.2 += seed_bump;
        prop_assert!(key_of(&m) != base, "seed mutation kept the key");
        let mut m = a; m.1.0 += span_bump;
        prop_assert!(key_of(&m) != base, "span mutation kept the key");
        let mut m = a; m.1.1 -= scale_drop;
        prop_assume!(m.1.1 > 0.0);
        prop_assert!(key_of(&m) != base, "scale mutation kept the key");
        let mut m = a; m.2.0 = (m.2.0 + 1) % POLICIES.len();
        prop_assert!(key_of(&m) != base, "policy mutation kept the key");
        let mut m = a; m.2.1 = (m.2.1 + 1) % BACKFILLS.len();
        prop_assert!(key_of(&m) != base, "backfill mutation kept the key");
        let mut m = a; m.2.2 = !m.2.2;
        prop_assert!(key_of(&m) != base, "cooling mutation kept the key");
        let mut m = a; m.3.1 = !m.3.1;
        prop_assert!(key_of(&m) != base, "cap presence mutation kept the key");
        if a.3.1 {
            let mut m = a; m.3.0 += cap_bump;
            prop_assert!(key_of(&m) != base, "cap value mutation kept the key");
        }
        let mut m = a; m.4 = !m.4;
        prop_assert!(key_of(&m) != base, "engine mutation kept the key");
    }

    /// Recomputing in the same process is deterministic (the on-disk
    /// contract beyond that — stability across *processes* — is pinned by
    /// the golden keys below).
    #[test]
    fn keys_are_deterministic(a in axes_strategy()) {
        prop_assert_eq!(key_of(&a), key_of(&a));
    }
}

/// Golden keys: fixed specs hashed today. These encode the cross-process
/// stability promise — a failure means the canonical serialization (or a
/// preset system, whose config is folded into synthetic fingerprints)
/// changed, and `ENGINE_SCHEMA_VERSION` must be bumped before repinning.
#[test]
fn golden_keys_pin_the_schema() {
    let wfp = plan("lassen", 0.7, 42, 24, 1.0)
        .fingerprint()
        .expect("lassen is a preset");
    let base = cell("fcfs", "easy", true, Some(1500.0), EngineMode::Event);
    assert_eq!(
        base.fingerprint(wfp).hex(),
        "37dae47215ddbc576b81ddb927d8fdf0",
        "cell fingerprint schema drifted"
    );
    assert_eq!(
        wfp.hex(),
        "5c2a9c083412fd8fa59300c305f18801",
        "workload fingerprint schema drifted"
    );
}

/// The scheduler axis is hashed too: the same policy through a different
/// backend is a different simulation.
#[test]
fn scheduler_axis_changes_the_key() {
    let wfp = plan("lassen", 0.7, 42, 24, 1.0).fingerprint().unwrap();
    let a = cell("fcfs", "easy", false, None, EngineMode::Event);
    let mut b = a.clone();
    b.scheduler = SchedulerSelect::FastSim;
    assert_ne!(a.fingerprint(wfp), b.fingerprint(wfp));
}

/// Labels and positions are cosmetic: renaming or reordering a study
/// must not orphan its cache entries.
#[test]
fn cosmetic_fields_do_not_affect_the_key() {
    let wfp = plan("lassen", 0.7, 42, 24, 1.0).fingerprint().unwrap();
    let a = cell("fcfs", "easy", false, None, EngineMode::Event);
    let mut b = a.clone();
    b.label = "renamed/other-label".into();
    b.index = 99;
    b.workload = 7;
    assert_eq!(a.fingerprint(wfp), b.fingerprint(wfp));

    let p = plan("lassen", 0.7, 42, 24, 1.0);
    let q = WorkloadPlan::Synthetic {
        label: "renamed".into(),
        group: "other-group".into(),
        system: "lassen".into(),
        load: 0.7,
        seed: 42,
        span: SimDuration::hours(24),
        scale: 1.0,
    };
    assert_eq!(p.fingerprint().unwrap(), q.fingerprint().unwrap());
}
