//! End-to-end smoke tests for `sraps sweep`: drive the real binary over a
//! small policy×backfill grid and check the report artifacts.

use std::path::Path;
use std::process::Command;

/// Locate the `sraps` binary at runtime — the bin target lives in
/// `crates/serve` (see tests/multiprocess.rs for the rationale).
fn sraps() -> Command {
    let mut path = std::env::current_exe().expect("test binary path");
    path.pop();
    if path.ends_with("deps") {
        path.pop();
    }
    path.push("sraps");
    assert!(
        path.is_file(),
        "sraps binary not built at {} — run a workspace-level `cargo build`",
        path.display()
    );
    Command::new(path)
}

#[test]
fn sweep_smoke_over_policy_backfill_grid() {
    let dir = std::env::temp_dir().join(format!("sraps-sweep-smoke-{}", std::process::id()));
    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "fcfs,sjf",
            "--backfills",
            "none,easy",
            "--span",
            "2h",
            "--jobs",
            "2",
            "--quiet",
            "-o",
        ])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "sweep failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sweep: 4 cells"),
        "cell count in banner: {stdout}"
    );
    assert!(stdout.contains("fcfs-none"), "table lists cells: {stdout}");
    assert!(stdout.contains("*base"), "baseline marked: {stdout}");

    let csv = std::fs::read_to_string(dir.join("sweep.csv")).expect("sweep.csv written");
    assert!(csv.starts_with("kind,workload,cell"));
    assert_eq!(csv.lines().count(), 1 + 4, "header + 4 cells: {csv}");
    let json = std::fs::read_to_string(dir.join("sweep.json")).expect("sweep.json written");
    assert!(json.contains("\"rows\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_is_bit_identical_across_jobs() {
    let base = std::env::temp_dir().join(format!("sraps-sweep-jobs-{}", std::process::id()));
    let run = |jobs: &str, sub: &str| -> (String, String) {
        let dir = base.join(sub);
        let out = sraps()
            .args([
                "sweep",
                "--system",
                "lassen",
                "--policies",
                "fcfs,sjf",
                "--backfills",
                "none,easy",
                "--span",
                "2h",
                "--quiet",
                "--jobs",
                jobs,
                "-o",
            ])
            .arg(&dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(dir.join("sweep.csv")).unwrap(),
            std::fs::read_to_string(dir.join("sweep.json")).unwrap(),
        )
    };
    let (csv1, json1) = run("1", "serial");
    let (csv4, json4) = run("4", "parallel");
    assert_eq!(csv1, csv4, "CSV must be bit-identical for --jobs 1 vs 4");
    assert_eq!(json1, json4, "JSON must be bit-identical for --jobs 1 vs 4");
    std::fs::remove_dir_all(&base).ok();
}

/// Shared small grid used by the cache tests below.
fn grid_args(jobs: &str) -> Vec<String> {
    [
        "sweep",
        "--system",
        "lassen",
        "--policies",
        "fcfs,sjf",
        "--backfills",
        "none,easy",
        "--span",
        "2h",
        "--quiet",
        "--jobs",
        jobs,
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

#[test]
fn cold_parallel_vs_warm_serial_cache_is_deterministic() {
    // The satellite scenario: a cold --jobs 4 run fills the cache, a warm
    // --jobs 1 run serves every cell from it, and the reports match byte
    // for byte (caching must not interact with the executor).
    let base = std::env::temp_dir().join(format!("sraps-cli-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    let run = |jobs: &str, sub: &str| -> (String, String, String) {
        let dir = base.join(sub);
        let mut args = grid_args(jobs);
        args.extend([
            "--cache-dir".into(),
            cache.display().to_string(),
            "-o".into(),
        ]);
        let out = sraps().args(&args).arg(&dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            std::fs::read_to_string(dir.join("sweep.csv")).unwrap(),
            std::fs::read_to_string(dir.join("sweep.json")).unwrap(),
        )
    };

    let (cold_stdout, cold_csv, cold_json) = run("4", "cold");
    assert!(
        cold_stdout.contains("cache: 0 hits, 4 misses"),
        "cold run misses everything: {cold_stdout}"
    );
    let (warm_stdout, warm_csv, warm_json) = run("1", "warm");
    assert!(
        warm_stdout.contains("cache: 4 hits, 0 misses"),
        "warm run must be 100% hits: {warm_stdout}"
    );
    assert_eq!(cold_csv, warm_csv, "cold/warm sweep.csv must be identical");
    assert_eq!(cold_json, warm_json);

    // Truncate one entry: the runner recomputes and rewrites it.
    let entry = std::fs::read_dir(&cache)
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .find(|p| p.extension().is_some_and(|x| x == "json"))
        .expect("cache has entries");
    let full = std::fs::read_to_string(&entry).unwrap();
    std::fs::write(&entry, &full[..full.len() / 2]).unwrap();
    let (healed_stdout, healed_csv, _) = run("2", "healed");
    assert!(
        healed_stdout.contains("cache: 3 hits, 1 misses"),
        "only the truncated entry recomputes: {healed_stdout}"
    );
    assert_eq!(healed_csv, cold_csv);
    assert_eq!(
        std::fs::read_to_string(&entry).unwrap(),
        full,
        "the truncated entry was rewritten"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn metrics_only_reports_match_full_retention_byte_for_byte() {
    let base = std::env::temp_dir().join(format!("sraps-cli-lean-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let run = |extra: &[&str], sub: &str| -> (String, String) {
        let dir = base.join(sub);
        let mut args = grid_args("2");
        args.extend(extra.iter().map(|s| s.to_string()));
        args.push("-o".into());
        let out = sraps().args(&args).arg(&dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(dir.join("sweep.csv")).unwrap(),
            std::fs::read_to_string(dir.join("sweep.json")).unwrap(),
        )
    };
    let (full_csv, full_json) = run(&["--no-cache"], "full");
    let (lean_csv, lean_json) = run(&["--metrics-only", "--no-cache"], "lean");
    assert_eq!(full_csv, lean_csv);
    assert_eq!(full_json, lean_json);
    // --metrics-only --write-histories without a cache cannot work and
    // says so.
    let out = sraps()
        .args(grid_args("1"))
        .args(["--metrics-only", "--write-histories", "--no-cache", "-o"])
        .arg(base.join("bad"))
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs --cache"));
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cache_env_var_enables_and_no_cache_overrides() {
    let base = std::env::temp_dir().join(format!("sraps-cli-env-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("envcache");
    // SRAPS_CACHE_DIR alone turns caching on…
    let out = sraps()
        .args(grid_args("2"))
        .arg("-o")
        .arg(base.join("a"))
        .env("SRAPS_CACHE_DIR", &cache)
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("cache: 0 hits, 4 misses"), "{stdout}");
    assert!(cache.is_dir(), "cache created at $SRAPS_CACHE_DIR");
    // …and --no-cache wins over the environment.
    let out = sraps()
        .args(grid_args("2"))
        .args(["--no-cache", "-o"])
        .arg(base.join("b"))
        .env("SRAPS_CACHE_DIR", &cache)
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(
        !String::from_utf8_lossy(&out.stdout).contains("cache:"),
        "--no-cache suppresses caching entirely"
    );
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn cached_write_histories_exports_from_the_spill() {
    let base = std::env::temp_dir().join(format!("sraps-cli-hist-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let cache = base.join("cache");
    let run = |sub: &str| {
        let dir = base.join(sub);
        let mut args = grid_args("2");
        args.extend([
            "--cache-dir".into(),
            cache.display().to_string(),
            "--metrics-only".into(),
            "--write-histories".into(),
            "-o".into(),
        ]);
        let out = sraps().args(&args).arg(&dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        dir
    };
    let cold = run("cold");
    let warm = run("warm");
    for dir in [&cold, &warm] {
        for stem in ["fcfs-none", "fcfs-easy", "sjf-none", "sjf-easy"] {
            let power = std::fs::read_to_string(dir.join(format!("{stem}-power.csv")))
                .unwrap_or_else(|_| panic!("{stem}-power.csv in {}", dir.display()));
            assert!(power.starts_with("t_secs,it_kw"));
        }
    }
    // Cold (simulated+spilled) and warm (copied from spill) histories agree.
    for stem in ["fcfs-none", "sjf-easy"] {
        let name = format!("{stem}-power.csv");
        assert_eq!(
            std::fs::read_to_string(cold.join(&name)).unwrap(),
            std::fs::read_to_string(warm.join(&name)).unwrap()
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn profile_and_trace_smoke() {
    let base = std::env::temp_dir().join(format!("sraps-cli-prof-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let trace = base.join("trace.json");
    let cache = base.join("cache");
    let run = |jobs: &str, sub: &str| -> (String, String) {
        let dir = base.join(sub);
        let mut args = grid_args(jobs);
        args.extend([
            "--profile".into(),
            "--trace-out".into(),
            trace.display().to_string(),
            "--cache-dir".into(),
            cache.display().to_string(),
            "-o".into(),
        ]);
        let out = sraps().args(&args).arg(&dir).output().expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            String::from_utf8_lossy(&out.stdout).to_string(),
            String::from_utf8_lossy(&out.stderr).to_string(),
        )
    };

    // Cold run: every cell simulates; the profile shows engine phases.
    let (stdout, stderr) = run("2", "cold");
    assert!(
        stdout.contains("cache: 0 hits, 4 misses"),
        "grepped cache line intact with --profile: {stdout}"
    );
    assert!(stderr.contains("sweep profile: 4 cells"), "{stderr}");
    assert!(stderr.contains("engine.run"), "phase table: {stderr}");
    assert!(stderr.contains("sched.invocations"), "counters: {stderr}");
    assert!(stderr.contains("trace written to"), "{stderr}");

    // The trace file is Perfetto-loadable: the validator subcommand
    // checks B/E nesting and per-thread timestamp monotonicity.
    let out = sraps()
        .arg("validate-trace")
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "validate-trace failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("trace ok:"));

    // Warm run: hits profile as cache reads, never zeroed engine phases.
    let (stdout, stderr) = run("1", "warm");
    assert!(stdout.contains("cache: 4 hits, 0 misses"), "{stdout}");
    assert!(stderr.contains("cache.read"), "hits show reads: {stderr}");
    assert!(stderr.contains("cache.hits"), "{stderr}");
    assert!(
        !stderr.contains("engine.run"),
        "all-hit sweeps report no engine phases: {stderr}"
    );

    // A corrupt trace is rejected with a nonzero exit.
    std::fs::write(
        &trace,
        "{\"traceEvents\":[{\"name\":\"x\",\"ph\":\"E\",\"ts\":1,\"pid\":1,\"tid\":1}]}",
    )
    .unwrap();
    let out = sraps()
        .arg("validate-trace")
        .arg(&trace)
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "unmatched E must fail validation");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sweep_help_and_errors() {
    let out = sraps().args(["sweep", "--help"]).output().unwrap();
    assert!(out.status.success(), "--help is a success");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("usage: sraps sweep"),
        "usage on stdout: {text}"
    );

    let out = sraps()
        .args(["sweep", "--system", "summit"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "frobnicate",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown policy must fail");

    // Synthetic-only axes are rejected for scenario sweeps, not ignored.
    let out = sraps()
        .args(["sweep", "--scenario", "fig4", "--seeds", "3", "-q"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--seeds with --scenario must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seeds"));

    // A baseline kind that matches no cell is an error, not a silent
    // report with empty delta columns.
    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "fcfs",
            "--span",
            "1h",
            "--baseline",
            "typo-kind",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown baseline must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("matches no cell"));
}

#[test]
fn classic_single_run_interface_still_works() {
    let dir = std::env::temp_dir().join(format!("sraps-classic-{}", std::process::id()));
    let out = sraps()
        .args([
            "--system",
            "lassen",
            "--policy",
            "fcfs",
            "--backfill",
            "easy",
            "--span",
            "1h",
            "-o",
        ])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "classic run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(Path::new(&dir.join("stats.out")).exists());
    std::fs::remove_dir_all(&dir).ok();
}
