//! End-to-end smoke tests for `sraps sweep`: drive the real binary over a
//! small policy×backfill grid and check the report artifacts.

use std::path::Path;
use std::process::Command;

fn sraps() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sraps"))
}

#[test]
fn sweep_smoke_over_policy_backfill_grid() {
    let dir = std::env::temp_dir().join(format!("sraps-sweep-smoke-{}", std::process::id()));
    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "fcfs,sjf",
            "--backfills",
            "none,easy",
            "--span",
            "2h",
            "--jobs",
            "2",
            "--quiet",
            "-o",
        ])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "sweep failed:\nstdout: {}\nstderr: {}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("sweep: 4 cells"),
        "cell count in banner: {stdout}"
    );
    assert!(stdout.contains("fcfs-none"), "table lists cells: {stdout}");
    assert!(stdout.contains("*base"), "baseline marked: {stdout}");

    let csv = std::fs::read_to_string(dir.join("sweep.csv")).expect("sweep.csv written");
    assert!(csv.starts_with("kind,workload,cell"));
    assert_eq!(csv.lines().count(), 1 + 4, "header + 4 cells: {csv}");
    let json = std::fs::read_to_string(dir.join("sweep.json")).expect("sweep.json written");
    assert!(json.contains("\"rows\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_is_bit_identical_across_jobs() {
    let base = std::env::temp_dir().join(format!("sraps-sweep-jobs-{}", std::process::id()));
    let run = |jobs: &str, sub: &str| -> (String, String) {
        let dir = base.join(sub);
        let out = sraps()
            .args([
                "sweep",
                "--system",
                "lassen",
                "--policies",
                "fcfs,sjf",
                "--backfills",
                "none,easy",
                "--span",
                "2h",
                "--quiet",
                "--jobs",
                jobs,
                "-o",
            ])
            .arg(&dir)
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        (
            std::fs::read_to_string(dir.join("sweep.csv")).unwrap(),
            std::fs::read_to_string(dir.join("sweep.json")).unwrap(),
        )
    };
    let (csv1, json1) = run("1", "serial");
    let (csv4, json4) = run("4", "parallel");
    assert_eq!(csv1, csv4, "CSV must be bit-identical for --jobs 1 vs 4");
    assert_eq!(json1, json4, "JSON must be bit-identical for --jobs 1 vs 4");
    std::fs::remove_dir_all(&base).ok();
}

#[test]
fn sweep_help_and_errors() {
    let out = sraps().args(["sweep", "--help"]).output().unwrap();
    assert!(out.status.success(), "--help is a success");
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("usage: sraps sweep"),
        "usage on stdout: {text}"
    );

    let out = sraps()
        .args(["sweep", "--system", "summit"])
        .output()
        .unwrap();
    assert!(!out.status.success());

    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "frobnicate",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown policy must fail");

    // Synthetic-only axes are rejected for scenario sweeps, not ignored.
    let out = sraps()
        .args(["sweep", "--scenario", "fig4", "--seeds", "3", "-q"])
        .output()
        .unwrap();
    assert!(!out.status.success(), "--seeds with --scenario must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--seeds"));

    // A baseline kind that matches no cell is an error, not a silent
    // report with empty delta columns.
    let out = sraps()
        .args([
            "sweep",
            "--system",
            "lassen",
            "--policies",
            "fcfs",
            "--span",
            "1h",
            "--baseline",
            "typo-kind",
            "-q",
        ])
        .output()
        .unwrap();
    assert!(!out.status.success(), "unknown baseline must fail");
    assert!(String::from_utf8_lossy(&out.stderr).contains("matches no cell"));
}

#[test]
fn classic_single_run_interface_still_works() {
    let dir = std::env::temp_dir().join(format!("sraps-classic-{}", std::process::id()));
    let out = sraps()
        .args([
            "--system",
            "lassen",
            "--policy",
            "fcfs",
            "--backfill",
            "easy",
            "--span",
            "1h",
            "-o",
        ])
        .arg(&dir)
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "classic run failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(Path::new(&dir.join("stats.out")).exists());
    std::fs::remove_dir_all(&dir).ok();
}
