//! Batched-sweep parity suite: `SweepRunner::batched` must be a pure
//! execution-strategy switch. Reports, CSV/JSON exports, retained
//! outputs, and cache entries are byte-identical to the per-cell path;
//! cache hits never enter a lane; and the batched path stays
//! deterministic across `--jobs` values.

use sraps_exp::{CellCache, ExperimentMatrix, Report, SweepOptions, SweepResults, SweepRunner};
use sraps_obs::Counter;
use sraps_types::SimDuration;
use std::path::PathBuf;
use std::sync::Mutex;

/// Obs enablement is process-global; profiled tests must not overlap.
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// Two workloads × three cells each — grouping has multiple buckets.
fn matrix() -> ExperimentMatrix {
    ExperimentMatrix::synthetic(["lassen"])
        .span(SimDuration::hours(2))
        .loads([0.5])
        .seed_count(2)
        .pairs([("fcfs", "none"), ("fcfs", "easy"), ("sjf", "easy")])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sraps-batched-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Everything a results consumer can observe, cell for cell.
fn assert_same_results(a: &SweepResults, b: &SweepResults, what: &str) {
    assert_eq!(a.cells.len(), b.cells.len(), "{what}: cell count");
    for (x, y) in a.cells.iter().zip(&b.cells) {
        assert_eq!(x.spec.label, y.spec.label, "{what}: order");
        assert_eq!(x.metrics, y.metrics, "{what}: metrics ({})", x.spec.label);
        assert_eq!(x.cache_key, y.cache_key, "{what}: keys ({})", x.spec.label);
        match (&x.output, &y.output) {
            (Some(xo), Some(yo)) => {
                assert_eq!(
                    xo.power_csv(),
                    yo.power_csv(),
                    "{what}: power CSV ({})",
                    x.spec.label
                );
                assert_eq!(
                    xo.util_csv(),
                    yo.util_csv(),
                    "{what}: util CSV ({})",
                    x.spec.label
                );
                assert_eq!(xo.outcomes, yo.outcomes, "{what}: outcomes");
                assert_eq!(xo.sched_stats, yo.sched_stats, "{what}: sched stats");
            }
            (None, None) => {}
            _ => panic!("{what}: output retention differs ({})", x.spec.label),
        }
    }
    let (ra, rb) = (Report::from_results(a), Report::from_results(b));
    assert_eq!(ra.to_csv(), rb.to_csv(), "{what}: report CSV");
    assert_eq!(ra.to_json(), rb.to_json(), "{what}: report JSON");
    assert_eq!(ra.render_table(), rb.render_table(), "{what}: table");
}

#[test]
fn batched_sweep_matches_unbatched_byte_for_byte() {
    let m = matrix();
    let plain = SweepRunner::new(2).run(&m).unwrap();
    let batched = SweepRunner::with_options(2, SweepOptions::new().batch(true))
        .run(&m)
        .unwrap();
    assert_same_results(&plain, &batched, "batched vs per-cell");
    // A lane cap below the bucket size forces chunked groups — still
    // identical (chunking only changes which engines share a pass).
    let chunked = SweepRunner::with_options(2, SweepOptions::new().batch(true).batch_max_lanes(2))
        .run(&m)
        .unwrap();
    assert_same_results(&plain, &chunked, "chunked lanes");
    // Degenerate single-lane groups are per-cell execution in disguise.
    let single = SweepRunner::with_options(2, SweepOptions::new().batch(true).batch_max_lanes(1))
        .run(&m)
        .unwrap();
    assert_same_results(&plain, &single, "single-lane groups");
}

#[test]
fn batched_jobs_one_equals_jobs_four() {
    let m = matrix();
    let serial = SweepRunner::with_options(1, SweepOptions::new().batch(true))
        .run(&m)
        .unwrap();
    let parallel = SweepRunner::with_options(4, SweepOptions::new().batch(true))
        .run(&m)
        .unwrap();
    assert_same_results(&serial, &parallel, "batched --jobs 1 vs --jobs 4");
}

#[test]
fn batched_cache_entries_match_unbatched_bytes() {
    let m = matrix();
    let plain_dir = temp_dir("plain");
    let batch_dir = temp_dir("batch");
    let plain = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&plain_dir))
        .run(&m)
        .unwrap();
    let batched =
        SweepRunner::with_options(2, SweepOptions::new().cache_dir(&batch_dir).batch(true))
            .run(&m)
            .unwrap();
    assert_same_results(&plain, &batched, "cold cached runs");
    for cell in &plain.cells {
        let key = cell.cache_key.as_ref().unwrap();
        let name = format!("{key}.json");
        let a = std::fs::read(plain_dir.join(&name)).unwrap();
        let b = std::fs::read(batch_dir.join(&name)).unwrap();
        assert_eq!(a, b, "cache entry {} differs", cell.spec.label);
    }
    std::fs::remove_dir_all(&plain_dir).ok();
    std::fs::remove_dir_all(&batch_dir).ok();
}

#[test]
fn warm_cells_are_excluded_from_lanes_in_a_mixed_batch() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let dir = temp_dir("mixed");
    // Warm exactly one cell kind (both seeds): the full matrix then
    // mixes 2 hits with 4 misses.
    let subset = ExperimentMatrix::synthetic(["lassen"])
        .span(SimDuration::hours(2))
        .loads([0.5])
        .seed_count(2)
        .pairs([("fcfs", "none")]);
    let warmed = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir))
        .run(&subset)
        .unwrap();
    assert_eq!(warmed.cache_misses(), 2);

    sraps_obs::set_profile(true);
    let mixed = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir).batch(true))
        .run(&matrix())
        .unwrap();
    sraps_obs::set_profile(false);
    assert_eq!(mixed.cache_hits(), 2, "warmed kind hits for both seeds");
    assert_eq!(mixed.cache_misses(), 4);
    for cell in &mixed.cells {
        assert_eq!(
            cell.from_cache,
            cell.spec.label.ends_with("fcfs-none"),
            "{}",
            cell.spec.label
        );
    }
    // Only the misses entered lanes: `batch.cells` counts simulated
    // lanes, and the 4 misses split into one group per workload.
    let profile = mixed.merged_profile().expect("profiling was on");
    assert_eq!(profile.counter(Counter::BatchCells.name()), 4);
    assert_eq!(profile.counter(Counter::BatchLanes.name()), 2);

    // And the mixed run's report matches a fully-cold unbatched run.
    let cold = SweepRunner::new(2).run(&matrix()).unwrap();
    let (rm, rc) = (Report::from_results(&mixed), Report::from_results(&cold));
    assert_eq!(rm.to_csv(), rc.to_csv(), "mixed warm/cold report CSV");
    assert_eq!(rm.to_json(), rc.to_json(), "mixed warm/cold report JSON");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_metrics_only_and_spill_survive_hits() {
    let dir = temp_dir("spill");
    let runner = SweepRunner::with_options(
        2,
        SweepOptions::new()
            .cache_dir(&dir)
            .metrics_only(true)
            .spill_histories(true)
            .batch(true),
    );
    let cold = runner.run(&matrix()).unwrap();
    assert!(cold.cells.iter().all(|c| c.output.is_none()));
    let cache = CellCache::open(&dir).unwrap();
    for cell in &cold.cells {
        let (power, util) = cache.history_paths(cell.cache_key.as_ref().unwrap());
        assert!(power.is_file(), "spilled power CSV ({})", cell.spec.label);
        assert!(util.is_file(), "spilled util CSV ({})", cell.spec.label);
    }
    let warm = runner.run(&matrix()).unwrap();
    assert_eq!(warm.cache_hits(), 6, "hits satisfied from the spill");
    let (rc, rw) = (Report::from_results(&cold), Report::from_results(&warm));
    assert_eq!(rc.to_csv(), rw.to_csv());
    std::fs::remove_dir_all(&dir).ok();
}
