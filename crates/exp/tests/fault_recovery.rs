//! Recovery-path tests for the sweep runner, driven by the deterministic
//! fault-injection harness ([`sraps_exp::faults`]).
//!
//! The fault gate is process-global, so these tests live in their own
//! test binary (no other suite's sweeps can trip an armed plan) and
//! serialize against each other through `FAULT_GATE`. Every arm is
//! wrapped in a guard that disarms on drop, assertion failures included.

use sraps_exp::faults::{self, FaultPlan};
use sraps_exp::{ExperimentMatrix, Report, SweepOptions, SweepRunner};
use sraps_types::SimDuration;
use std::path::PathBuf;
use std::sync::Mutex;

static FAULT_GATE: Mutex<()> = Mutex::new(());

/// Arm `spec` for the guard's lifetime, holding the process-wide gate.
struct Armed<'a> {
    _lock: std::sync::MutexGuard<'a, ()>,
}

fn armed(spec: &str) -> Armed<'_> {
    let lock = FAULT_GATE
        .lock()
        .unwrap_or_else(|poison| poison.into_inner());
    faults::arm(FaultPlan::parse(spec).expect("test specs parse"));
    Armed { _lock: lock }
}

impl Drop for Armed<'_> {
    fn drop(&mut self) {
        faults::disarm();
    }
}

fn small_matrix() -> ExperimentMatrix {
    ExperimentMatrix::synthetic(["lassen"])
        .span(SimDuration::hours(2))
        .loads([0.5])
        .seed_count(1)
        .pairs([("fcfs", "none"), ("fcfs", "easy"), ("sjf", "easy")])
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sraps-faults-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn persistent_panic_degrades_to_failed_cell_and_sweep_continues() {
    let _armed = armed("panic@1:persist");
    let results = SweepRunner::new(2).run(&small_matrix()).unwrap();
    assert_eq!(results.cells.len(), 3, "every cell produces a row");
    let failed = results.failed_cells();
    assert_eq!(failed.len(), 1, "exactly the poisoned cell fails");
    let failure = failed[0].failure.as_ref().unwrap();
    assert!(
        failure.error.contains("worker panic"),
        "panic surfaces in the error: {}",
        failure.error
    );
    assert_eq!(failure.attempts, 3, "default retries=2 ⇒ 3 attempts");
    assert_eq!(results.cells[1].metrics.jobs_completed, 0);
    for i in [0, 2] {
        assert!(results.cells[i].failure.is_none());
        assert!(results.cells[i].metrics.jobs_completed > 0);
    }
    // The report quarantines the failure: deltas come from healthy rows.
    let report = Report::from_results(&results);
    assert_eq!(report.rows.len(), 2);
    assert_eq!(report.failed.len(), 1);
    assert!(report.render_failed_table().contains("worker panic"));
    assert!(report.to_json().contains("\"failed\""));
}

#[test]
fn fire_once_panic_converges_via_retry() {
    let _armed = armed("panic@0");
    let results = SweepRunner::new(2).run(&small_matrix()).unwrap();
    assert!(
        results.cells.iter().all(|c| c.failure.is_none()),
        "one charge, retries=2 ⇒ the retry lands"
    );
    assert!(results.cells[0].metrics.jobs_completed > 0);
}

#[test]
fn fail_fast_aborts_on_the_poisoned_cell() {
    let _armed = armed("panic@1:persist");
    let err = SweepRunner::with_options(2, SweepOptions::new().fail_fast(true))
        .run(&small_matrix())
        .unwrap_err();
    assert!(
        err.to_string().contains("worker panic"),
        "fail-fast surfaces the cell error: {err}"
    );
}

#[test]
fn zero_retries_means_a_single_attempt() {
    let _armed = armed("panic@2");
    let results = SweepRunner::with_options(2, SweepOptions::new().retries(0))
        .run(&small_matrix())
        .unwrap();
    let failure = results.cells[2].failure.as_ref().expect("no retry budget");
    assert_eq!(failure.attempts, 1);
}

#[test]
fn cache_write_failure_degrades_and_the_cell_still_reports() {
    let dir = temp_dir("write-fail");
    let runner = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir));
    {
        let _armed = armed("write-fail@0:persist");
        let cold = runner.run(&small_matrix()).unwrap();
        assert!(
            cold.cells.iter().all(|c| c.failure.is_none()),
            "a failed write-back never fails the cell"
        );
        assert_eq!(cold.cache_misses(), 3);
    }
    // Cell 0's entry was never installed; the others were.
    let warm = runner.run(&small_matrix()).unwrap();
    assert_eq!(warm.cache_hits(), 2);
    assert_eq!(warm.cache_misses(), 1);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncation_fault_self_heals_on_rerun() {
    let dir = temp_dir("truncate");
    let runner = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir));
    let cold = {
        let _armed = armed("truncate@1");
        runner.run(&small_matrix()).unwrap()
    };
    // The torn entry fails validation, re-simulates, and is rewritten.
    let heal = runner.run(&small_matrix()).unwrap();
    assert_eq!(heal.cache_hits(), 2);
    assert_eq!(heal.cache_misses(), 1);
    assert_eq!(heal.cells[1].metrics, cold.cells[1].metrics);
    assert_eq!(
        runner.run(&small_matrix()).unwrap().cache_hits(),
        3,
        "healed cache serves every cell"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn batched_group_panic_falls_back_to_per_cell_isolation() {
    let opts = || SweepOptions::new().batch(true);
    {
        // Fire-once: the group attempt burns the charge, the per-cell
        // fallback succeeds — no failures anywhere.
        let _armed = armed("panic@1");
        let results = SweepRunner::with_options(2, opts())
            .run(&small_matrix())
            .unwrap();
        assert!(results.cells.iter().all(|c| c.failure.is_none()));
    }
    {
        // Persistent: only the poisoned lane fails; its groupmates
        // complete through the fallback path.
        let _armed = armed("panic@1:persist");
        let results = SweepRunner::with_options(2, opts())
            .run(&small_matrix())
            .unwrap();
        assert_eq!(results.failed_cells().len(), 1);
        assert!(results.cells[1].failure.is_some());
        for i in [0, 2] {
            assert!(results.cells[i].metrics.jobs_completed > 0);
        }
    }
}

#[test]
fn faulted_cold_run_matches_a_clean_run_byte_for_byte() {
    // Panics, retries, and a torn write later, the surviving artifacts
    // must be indistinguishable from a run that never saw a fault.
    let clean = SweepRunner::new(1).run(&small_matrix()).unwrap();
    let dir = temp_dir("parity");
    let runner = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir));
    {
        let _armed = armed("panic@0,write-fail@1,truncate@2");
        runner.run(&small_matrix()).unwrap();
    }
    let recovered = runner.run(&small_matrix()).unwrap();
    assert!(recovered.cells.iter().all(|c| c.failure.is_none()));
    assert_eq!(
        Report::from_results(&clean).to_csv(),
        Report::from_results(&recovered).to_csv(),
        "fault recovery must not perturb a single byte of the report"
    );
    std::fs::remove_dir_all(&dir).ok();
}
