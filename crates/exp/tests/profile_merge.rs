//! Profile determinism suite: the observability layer must report the
//! same *counters* no matter how a sweep's cells are spread over worker
//! threads, and cache hits must profile as cache reads rather than
//! zeroed engine phases.
//!
//! Phase *timings* are wall-clock and naturally vary run-to-run, so the
//! assertions here compare counter vectors and phase presence/call
//! counts, never nanoseconds.

use proptest::prelude::*;
use sraps_exp::{ExperimentMatrix, SweepOptions, SweepResults, SweepRunner};
use sraps_obs::{Counter, Phase};
use sraps_types::SimDuration;
use std::sync::Mutex;

/// Obs enablement is process-global; tests that flip it must not
/// overlap (the harness runs tests on parallel threads).
static OBS_LOCK: Mutex<()> = Mutex::new(());

/// RAII: profiling on for the scope, off (and trace drained) after.
struct ProfiledScope<'a> {
    _guard: std::sync::MutexGuard<'a, ()>,
}

impl ProfiledScope<'_> {
    fn new() -> Self {
        let guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        sraps_obs::set_profile(true);
        ProfiledScope { _guard: guard }
    }
}

impl Drop for ProfiledScope<'_> {
    fn drop(&mut self) {
        sraps_obs::set_profile(false);
        sraps_obs::set_trace(false);
        let _ = sraps_obs::take_trace_json();
    }
}

fn matrix(seed: u64, span_hours: i64, easy: bool) -> ExperimentMatrix {
    let backfills: &[&str] = if easy { &["none", "easy"] } else { &["none"] };
    ExperimentMatrix::synthetic(["lassen"])
        .seeds([seed])
        .span(SimDuration::hours(span_hours))
        .policies(["fcfs", "sjf"])
        .backfills(backfills.iter().copied())
}

fn run(matrix: &ExperimentMatrix, jobs: usize) -> SweepResults {
    SweepRunner::new(jobs).run(matrix).expect("sweep runs")
}

/// The deterministic face of a cell's profile: label, provenance, and
/// counters (no timings).
type CellCounters = Vec<(String, bool, Vec<(String, u64)>)>;

fn cell_counters(results: &SweepResults) -> CellCounters {
    results
        .cells
        .iter()
        .map(|c| {
            let counters = c
                .profile
                .as_ref()
                .map(|p| {
                    p.counters
                        .iter()
                        .map(|s| (s.name.clone(), s.value))
                        .collect()
                })
                .unwrap_or_default();
            (c.spec.label.clone(), c.from_cache, counters)
        })
        .collect()
}

proptest! {
    /// Merging per-cell profiles must be order-independent: a serial and
    /// a 4-worker run of the same deterministic matrix report identical
    /// aggregated counters and identical per-cell counter sets.
    #[test]
    fn merged_counters_are_jobs_independent(
        seed in 1u64..500,
        span_hours in 1i64..4,
        easy in any::<bool>(),
    ) {
        let _obs = ProfiledScope::new();
        let m = matrix(seed, span_hours, easy);
        let serial = run(&m, 1);
        let parallel = run(&m, 4);

        let merged_serial = serial.merged_profile().expect("profiling was on");
        let merged_parallel = parallel.merged_profile().expect("profiling was on");
        prop_assert_eq!(&merged_serial.counters, &merged_parallel.counters);
        prop_assert_eq!(cell_counters(&serial), cell_counters(&parallel));
        // Same phases fire in both (calls match; durations may not).
        let calls = |p: &sraps_obs::Profile| -> Vec<(String, u64)> {
            p.phases.iter().map(|s| (s.name.clone(), s.calls)).collect()
        };
        prop_assert_eq!(calls(&merged_serial), calls(&merged_parallel));
    }
}

#[test]
fn profiles_absent_when_disabled() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let results = run(&matrix(7, 1, false), 2);
    assert!(
        results.cells.iter().all(|c| c.profile.is_none()),
        "no cell carries a profile unless profiling is enabled"
    );
    assert!(results.merged_profile().is_none());
}

#[test]
fn metrics_only_counters_match_full_retention() {
    let _obs = ProfiledScope::new();
    let m = matrix(11, 2, true);
    let full = run(&m, 2);
    let lean = SweepRunner::with_options(2, SweepOptions::new().metrics_only(true))
        .run(&m)
        .expect("sweep runs");
    // --metrics-only drops outputs, not instrumentation: identical
    // counters, cell for cell.
    assert_eq!(cell_counters(&full), cell_counters(&lean));
}

#[test]
fn cache_hits_profile_as_cache_reads_not_zeroed_engine_phases() {
    let _obs = ProfiledScope::new();
    let dir = std::env::temp_dir().join(format!("sraps-profile-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let m = matrix(23, 1, false);
    let runner = |jobs| {
        let r = SweepRunner::with_options(jobs, SweepOptions::new().cache_dir(&dir));
        r.run(&m).expect("sweep runs")
    };

    let cold = runner(2);
    assert_eq!(cold.cache_hits(), 0);
    for cell in &cold.cells {
        let p = cell.profile.as_ref().expect("profiling was on");
        assert!(
            p.phase(Phase::EngineRun.name()).is_some(),
            "a miss simulates: engine phases present ({})",
            cell.spec.label
        );
        assert_eq!(p.counter(Counter::CacheMisses.name()), 1);
        assert_eq!(p.counter(Counter::CacheHits.name()), 0);
    }

    let warm = runner(1);
    assert_eq!(warm.cache_misses(), 0);
    for cell in &warm.cells {
        assert!(cell.from_cache);
        let p = cell.profile.as_ref().expect("profiling stays on for hits");
        // The hit's cost is the cache read — never a zeroed engine run.
        assert!(
            p.phase(Phase::EngineRun.name()).is_none(),
            "a hit must not report engine phases ({})",
            cell.spec.label
        );
        let read = p
            .phase(Phase::CacheRead.name())
            .expect("hit reports the cache read");
        assert_eq!(read.calls, 1);
        assert_eq!(p.counter(Counter::CacheHits.name()), 1);
        let cell_span = p
            .phase(Phase::SweepCell.name())
            .expect("every cell reports its span");
        assert_eq!(cell_span.calls, 1);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn sweep_trace_is_well_formed_and_nests() {
    let _guard = OBS_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let _ = sraps_obs::take_trace_json(); // drop any stale events
    sraps_obs::set_trace(true);
    let results = run(&matrix(31, 1, true), 4);
    sraps_obs::set_trace(false);
    let json = sraps_obs::take_trace_json();
    let events = sraps_obs::validate_chrome_trace(&json)
        .unwrap_or_else(|e| panic!("sweep trace invalid: {e}\n{json}"));
    // 4 cells × (sweep.cell + engine spans) — at least B/E per cell.
    assert!(events >= 2 * results.cells.len(), "events: {events}");
    assert!(json.contains("\"name\":\"sweep.cell\""), "{json}");
    assert!(json.contains("\"name\":\"engine.run\""), "{json}");
}
