//! Cells and workloads: the concrete units a sweep executes.
//!
//! [`WorkloadPlan`] describes *how to obtain* a dataset (synthesize by
//! system/load/seed, or use a prebuilt one); [`MaterializedWorkload`] is
//! the dataset in memory, shared by every cell that uses it;
//! [`CellSpec`] is one simulation to run — it knows how to turn itself
//! into a [`SimConfig`] against its workload.

use crate::matrix::PrebuiltWorkload;
use sraps_acct::Accounts;
use sraps_core::{EngineMode, Fingerprint, Fingerprinter, SchedulerSelect, SimConfig};
use sraps_data::{Dataset, WorkloadSpec};
use sraps_systems::{presets, SystemConfig};
use sraps_types::{Result, SimDuration, SimTime, SrapsError};
use std::sync::Arc;

/// How to obtain one workload of the sweep.
#[derive(Debug, Clone)]
pub enum WorkloadPlan {
    /// Synthesize a dataset shaped like the system's public dataset.
    Synthetic {
        label: String,
        /// Label minus the seed component — the key seed aggregation
        /// groups by (`lassen-l0.70` for `lassen-l0.70-s43`).
        group: String,
        system: String,
        load: f64,
        seed: u64,
        span: SimDuration,
        scale: f64,
    },
    /// Use a caller-provided dataset (boxed: it carries a full
    /// `SystemConfig`, far larger than the synthetic parameters).
    Prebuilt(Box<PrebuiltWorkload>),
}

impl WorkloadPlan {
    pub fn label(&self) -> String {
        match self {
            WorkloadPlan::Synthetic { label, .. } => label.clone(),
            WorkloadPlan::Prebuilt(w) => w.label.clone(),
        }
    }

    /// The seed-aggregation group this workload belongs to.
    pub fn group(&self) -> String {
        match self {
            WorkloadPlan::Synthetic { group, .. } => group.clone(),
            WorkloadPlan::Prebuilt(w) => w.label.clone(),
        }
    }

    /// The workload seed, when synthetic — identical to what
    /// [`WorkloadPlan::materialize`] records, so cache hits can fill in
    /// workload metadata without building the dataset.
    pub fn seed(&self) -> Option<u64> {
        match self {
            WorkloadPlan::Synthetic { seed, .. } => Some(*seed),
            WorkloadPlan::Prebuilt(_) => None,
        }
    }

    /// Canonical content fingerprint of the workload this plan produces.
    ///
    /// Covers every field the simulation can observe — synthetic plans
    /// hash their generator parameters plus the resolved (scaled) system
    /// config; prebuilt plans hash the system config, the full dataset
    /// (every job, telemetry included), and the documented window. Labels
    /// and groups are cosmetic and deliberately excluded, so renaming a
    /// study does not orphan its cache entries.
    pub fn fingerprint(&self) -> Result<Fingerprint> {
        let mut fp = Fingerprinter::new();
        match self {
            WorkloadPlan::Synthetic {
                system,
                load,
                seed,
                span,
                scale,
                ..
            } => {
                fp.write_str("synthetic");
                fp.write_str(system);
                fp.write_f64(*load);
                fp.write_u64(*seed);
                fp.write_i64(span.as_secs());
                fp.write_f64(*scale);
                // The generators derive the dataset from the (scaled)
                // system config too — preset drift must miss the cache.
                fp.write_debug(&system_scaled(system, *scale)?);
            }
            WorkloadPlan::Prebuilt(w) => {
                fp.write_str("prebuilt");
                fp.write_debug(&w.config);
                fp.write_debug(w.dataset.as_ref());
                match w.window {
                    Some((s, e)) => {
                        fp.write_u8(1);
                        fp.write_i64(s.as_secs());
                        fp.write_i64(e.as_secs());
                    }
                    None => fp.write_u8(0),
                }
            }
        }
        Ok(fp.finish())
    }

    /// Build the dataset. Deterministic: same plan ⇒ identical workload.
    pub fn materialize(&self) -> Result<MaterializedWorkload> {
        match self {
            WorkloadPlan::Prebuilt(w) => Ok(MaterializedWorkload {
                label: w.label.clone(),
                group: w.label.clone(),
                seed: None,
                config: w.config.clone(),
                dataset: Arc::clone(&w.dataset),
                window: w.window,
            }),
            WorkloadPlan::Synthetic {
                label,
                group,
                system,
                load,
                seed,
                span,
                scale,
            } => {
                let cfg = system_scaled(system, *scale)?;
                let mut spec = WorkloadSpec::for_system(&cfg, *load, *seed);
                spec.span = *span;
                let dataset = synthesize_by_name(system, &cfg, &spec)?;
                Ok(MaterializedWorkload {
                    label: label.clone(),
                    group: group.clone(),
                    seed: Some(*seed),
                    config: cfg,
                    dataset: Arc::new(dataset),
                    window: None,
                })
            }
        }
    }
}

/// Look up a preset system by name, scaled down when `scale < 1`
/// (64-node floor, as the artifact's `--scale`).
pub fn system_scaled(name: &str, scale: f64) -> Result<SystemConfig> {
    let mut cfg = presets::system_by_name(name)
        .ok_or_else(|| SrapsError::Config(format!("unknown system '{name}'")))?;
    if scale < 1.0 {
        cfg = cfg.scaled_to(((cfg.total_nodes as f64 * scale).round() as u32).max(64));
    }
    Ok(cfg)
}

/// Dispatch to the per-system generator (the dataloaders of §3.2.2).
pub fn synthesize_by_name(
    system: &str,
    cfg: &SystemConfig,
    spec: &WorkloadSpec,
) -> Result<Dataset> {
    Ok(match system {
        "frontier" => sraps_data::frontier::synthesize(cfg, spec),
        "marconi100" => sraps_data::marconi100::synthesize(cfg, spec),
        "fugaku" => sraps_data::fugaku::synthesize(cfg, spec),
        "lassen" => sraps_data::lassen::synthesize(cfg, spec),
        "adastra" | "adastraMI250" => sraps_data::adastra::synthesize(cfg, spec),
        other => return Err(SrapsError::Config(format!("no dataloader for '{other}'"))),
    })
}

/// A workload in memory. The dataset sits behind an [`Arc`] so worker
/// threads share one copy.
#[derive(Debug, Clone)]
pub struct MaterializedWorkload {
    pub label: String,
    /// Seed-aggregation group (label minus the seed component).
    pub group: String,
    /// The workload seed, when synthetic.
    pub seed: Option<u64>,
    pub config: SystemConfig,
    pub dataset: Arc<Dataset>,
    pub window: Option<(SimTime, SimTime)>,
}

/// One simulation of the sweep: a schedule-axis point bound to a workload.
#[derive(Debug, Clone)]
pub struct CellSpec {
    /// Position in matrix order; results are collected by this index, which
    /// is what makes parallel output identical to serial.
    pub index: usize,
    /// Unique human-readable name (`fcfs-easy`, `lassen-s43/sjf-none`, …).
    pub label: String,
    /// Index into the matrix's workload list.
    pub workload: usize,
    pub policy: String,
    pub backfill: String,
    pub cooling: bool,
    pub power_cap_kw: Option<f64>,
    /// When set (and the cell is capped), the cap binds only from
    /// `sim_start + cap_at`: the runner simulates the uncapped prefix,
    /// snapshots at the switch instant, and resumes under the cap. Cells
    /// that differ only in `power_cap_kw` then share one prefix.
    pub cap_at: Option<SimDuration>,
    pub scheduler: SchedulerSelect,
    /// Main-loop core for every run of the cell (tick vs event).
    pub engine: EngineMode,
    /// Collection-phase accounts for the experimental scheduler.
    pub accounts_in: Option<Accounts>,
}

impl CellSpec {
    /// Content-addressed cache key of this cell over `workload_fp` (its
    /// workload plan's [`WorkloadPlan::fingerprint`]).
    ///
    /// Hashes every sim-relevant schedule-axis field in fixed order; the
    /// positional fields (`index`, `workload`) and the display `label`
    /// are excluded, so the same simulation is shared across matrices
    /// that arrange or name it differently. `engine` *is* included: the
    /// cores are bit-identical today (the parity suite pins it), but a
    /// cache must never bet correctness on a property a future change
    /// could relax.
    pub fn fingerprint(&self, workload_fp: Fingerprint) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_fingerprint(workload_fp);
        fp.write_str(&self.policy);
        fp.write_str(&self.backfill);
        fp.write_bool(self.cooling);
        fp.write_opt_f64(self.power_cap_kw);
        // The effective late-cap switch: only a *capped* cell observes
        // `cap_at`, so uncapped cells keep one key across `--cap-at`
        // settings.
        match self.late_cap() {
            Some(at) => {
                fp.write_u8(1);
                fp.write_i64(at.as_secs());
            }
            None => fp.write_u8(0),
        }
        fp.write_str(self.scheduler.name());
        fp.write_str(self.engine.name());
        match &self.accounts_in {
            // `Accounts` holds a BTreeMap — Debug order is deterministic.
            Some(accounts) => {
                fp.write_u8(1);
                fp.write_debug(accounts);
            }
            None => fp.write_u8(0),
        }
        fp.finish()
    }

    /// The cap-switch offset, when this cell actually defers a cap:
    /// `Some` only if the cell is capped *and* a `cap_at` is set.
    pub fn late_cap(&self) -> Option<SimDuration> {
        match (self.power_cap_kw, self.cap_at) {
            (Some(_), Some(at)) => Some(at),
            _ => None,
        }
    }

    /// The cell this cell's shared prefix simulates: the same spec with
    /// the late-binding axes (the cap and its switch time) stripped.
    pub fn prefix_spec(&self) -> CellSpec {
        let mut prefix = self.clone();
        prefix.power_cap_kw = None;
        prefix.cap_at = None;
        prefix
    }

    /// Cache key of the shared prefix run: the stripped spec's
    /// fingerprint salted with the switch instant. Every cell whose
    /// late-binding axes diverge only *after* `switch` maps to the same
    /// prefix key, which is what makes prefix snapshots addressable in
    /// the [`crate::CellCache`].
    pub fn prefix_fingerprint(&self, workload_fp: Fingerprint, switch: SimDuration) -> Fingerprint {
        let mut fp = Fingerprinter::new();
        fp.write_str("prefix");
        fp.write_fingerprint(self.prefix_spec().fingerprint(workload_fp));
        fp.write_i64(switch.as_secs());
        fp.finish()
    }

    /// Materialize the cell's [`SimConfig`] against its workload.
    pub fn build_sim(&self, workload: &MaterializedWorkload) -> Result<SimConfig> {
        let mut sim = SimConfig::new(workload.config.clone(), &self.policy, &self.backfill)?;
        if let Some((start, end)) = workload.window {
            sim = sim.with_window(start, end);
        }
        if self.cooling {
            sim = sim.with_cooling();
        }
        if let Some(cap) = self.power_cap_kw {
            sim = sim.with_power_cap(cap);
        }
        sim = sim
            .with_scheduler(self.scheduler.clone())
            .with_engine(self.engine);
        if let Some(accounts) = &self.accounts_in {
            sim = sim.with_accounts_json(accounts.clone());
        }
        sim.validate()?;
        Ok(sim)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_plan_materializes_deterministically() {
        let plan = WorkloadPlan::Synthetic {
            label: "lassen-s7".into(),
            group: "lassen".into(),
            system: "lassen".into(),
            load: 0.5,
            seed: 7,
            span: SimDuration::hours(2),
            scale: 1.0,
        };
        let a = plan.materialize().unwrap();
        let b = plan.materialize().unwrap();
        assert!(!a.dataset.is_empty());
        assert_eq!(a.dataset.jobs, b.dataset.jobs);
        assert_eq!(a.config.name, "lassen");
    }

    #[test]
    fn cell_builds_a_valid_sim() {
        let plan = WorkloadPlan::Synthetic {
            label: "adastra".into(),
            group: "adastra".into(),
            system: "adastra".into(),
            load: 0.4,
            seed: 1,
            span: SimDuration::hours(1),
            scale: 1.0,
        };
        let w = plan.materialize().unwrap();
        let cell = CellSpec {
            index: 0,
            label: "fcfs-easy".into(),
            workload: 0,
            policy: "fcfs".into(),
            backfill: "easy".into(),
            cooling: true,
            power_cap_kw: None,
            cap_at: None,
            scheduler: SchedulerSelect::Default,
            engine: EngineMode::default(),
            accounts_in: None,
        };
        let sim = cell.build_sim(&w).unwrap();
        assert!(sim.cooling);
        assert_eq!(sim.policy.name(), "fcfs");
    }

    #[test]
    fn unknown_system_is_a_config_error() {
        let plan = WorkloadPlan::Synthetic {
            label: "x".into(),
            group: "x".into(),
            system: "summit".into(),
            load: 0.5,
            seed: 1,
            span: SimDuration::hours(1),
            scale: 1.0,
        };
        assert!(plan.materialize().is_err());
    }
}
