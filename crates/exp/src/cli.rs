//! The `sraps sweep` subcommand: a thin argv veneer over
//! [`ExperimentMatrix`] + [`SweepRunner`] + [`Report`].
//!
//! ```text
//! sraps sweep --system lassen --policies fcfs,sjf,priority \
//!             --backfills none,easy --seeds 3 --jobs 4
//! sraps sweep --scenario fig4 --pairs replay:none,fcfs:none,fcfs:easy,priority:firstfit
//! sraps sweep --system frontier --scale 0.1 --loads 0.7,0.9,1.1 --cooling
//! ```
//!
//! Prints the comparison table and writes `sweep.csv` + `sweep.json`
//! (and optionally per-cell histories) into the output directory. The
//! written files are bit-identical for any `--jobs` value.

use crate::cache::CellCache;
use crate::matrix::ExperimentMatrix;
use crate::report::Report;
use crate::runner::{SweepOptions, SweepRunner};
use sraps_core::EngineMode;
use sraps_data::scenario;
use sraps_types::fsio::write_atomic;
use sraps_types::time::parse_duration;
use sraps_types::SimDuration;
use std::path::PathBuf;

pub const SWEEP_USAGE: &str = "\
usage: sraps sweep (--system NAMES | --scenario NAMES) [options]

workload axes:
  --system NAMES         comma-separated: frontier|marconi100|fugaku|lassen|adastra
  --scenario NAMES       comma-separated paper scenarios: fig4|fig5|fig6|fig7|fig8|fig10
  --loads F,F            offered loads for synthetic workloads (default 0.8)
  --seeds N              number of consecutive seeds (default 1)
  --seed N               first seed (default 42)
  --span DUR             synthetic workload span (default 1d; accepts 1h, 15d, 61000)
  --scale F              scale large machines by F (systems, and the
                         fig6/fig7/fig8/fig10 scenarios)

schedule axes:
  --policies P,P         cross-product policies (default fcfs)
  --backfills B,B        cross-product backfills (default none)
  --pairs P:B,P:B        explicit policy:backfill pairs (overrides the cross-product)

run shape:
  -c, --cooling          run the cooling model in every cell
  --power-caps KW,KW     facility power-cap axis; 'none' = uncapped
                         (e.g. --power-caps none,1200)
  --cap-at DUR           defer every cell's power cap until DUR past the
                         window start (uncapped cells unaffected); needs a
                         non-'none' --power-caps value
  --engine E             event|tick main-loop core for every cell
                         (default event; both produce identical output)

execution & output:
  --jobs N               worker threads (default: all cores)
  --batch                batched execution: group cache-missing cells of
                         the same workload into lanes and run each group
                         through one multi-sim engine pass — reports and
                         caches stay bit-identical to the per-cell path
  --batch-max-lanes N    cap lanes per batched group (implies --batch;
                         default 32)
  --prefix-share         simulate the shared pre---cap-at prefix once per
                         group and fork one resumed engine per capped
                         cell; bit-identical to the unshared sweep (with
                         --cache the prefix snapshot is stored and reused
                         across runs); requires --cap-at
  --baseline P-B         baseline cell kind for deltas (default: first cell)
  -o, --output DIR       report directory (default simulation_results/sweep)
  --write-histories      also write per-cell power/util CSVs
  -q, --quiet            suppress per-cell progress lines
  -h, --help             this help

observability:
  --profile              collect per-phase timings and counters; print the
                         aggregated profile table on stderr after the run
  --trace-out PATH       write a chrome-trace (Perfetto-loadable) JSON of
                         every span to PATH (validate with
                         `sraps validate-trace PATH`)

fault tolerance:
  --retries N            per-cell retry budget for worker panics and
                         transient I/O (default 2); exhausted cells land
                         in the failed-cells table and the sweep exits
                         nonzero
  --fail-fast            abort the whole sweep on the first cell that
                         exhausts its retries, instead of collecting it
                         into the failed-cells table
  --no-claims            skip the per-cell claim leases cached sweeps use
                         to partition work across cooperating processes
                         (claim TTL/poll tune via SRAPS_CLAIM_TTL_MS and
                         SRAPS_CLAIM_POLL_MS)
  --faults SPEC          arm the deterministic fault-injection harness
                         (also: SRAPS_FAULTS env; the flag wins). SPEC is
                         comma-separated entries KIND@INDEX or KIND%RATE
                         with optional :persist / :seedN / :DURms
                         modifiers; cell kinds: panic, write-fail,
                         write-delay, truncate; service kinds (indexed
                         by daemon request sequence): accept-fail,
                         slow-worker, drop-conn. e.g.
                         'panic@2,truncate@0', 'panic%25:seed7', or
                         'slow-worker%50:200ms,drop-conn@2'

caching & memory:
  --cache                memoize cells on disk: hits skip simulation,
                         misses simulate and write back atomically
  --cache-dir DIR        cache location (implies --cache; default
                         $SRAPS_CACHE_DIR, else OUTPUT/cache). Setting
                         SRAPS_CACHE_DIR also enables caching.
  --no-cache             disable caching even if SRAPS_CACHE_DIR is set
  --metrics-only         drop each cell's full output after folding it
                         into metrics: sweep memory stays O(cells), and
                         reports are byte-identical to the default path
                         (with --write-histories this needs --cache, the
                         histories spill there)
";

#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    pub systems: Vec<String>,
    pub scenarios: Vec<String>,
    pub policies: Vec<String>,
    pub backfills: Vec<String>,
    pub pairs: Option<Vec<(String, String)>>,
    pub loads: Vec<f64>,
    pub seed_count: u64,
    pub seed_base: u64,
    pub span: SimDuration,
    pub scale: f64,
    pub cooling: bool,
    pub power_caps: Vec<Option<f64>>,
    /// `--cap-at DUR`: defer every cell's cap until this offset.
    pub cap_at: Option<SimDuration>,
    /// `--prefix-share`: fork capped cells off one shared prefix run.
    pub prefix_share: bool,
    pub engine: EngineMode,
    pub jobs: Option<usize>,
    /// `--batch`: lane-grouped multi-sim execution.
    pub batch: bool,
    /// `--batch-max-lanes N` (implies `--batch`); `None` ⇒ runner default.
    pub batch_max_lanes: Option<usize>,
    pub baseline: Option<String>,
    pub out_dir: PathBuf,
    pub write_histories: bool,
    pub quiet: bool,
    /// `Some(true)` ⇒ `--cache`/`--cache-dir`, `Some(false)` ⇒
    /// `--no-cache`, `None` ⇒ enabled iff `SRAPS_CACHE_DIR` is set.
    pub cache: Option<bool>,
    /// Explicit `--cache-dir`; otherwise resolved via
    /// [`CellCache::default_dir`].
    pub cache_dir: Option<PathBuf>,
    pub metrics_only: bool,
    /// `--profile`: collect phase timings + counters and print the
    /// aggregated table on stderr.
    pub profile: bool,
    /// `--trace-out PATH`: write a chrome-trace JSON of every span.
    pub trace_out: Option<PathBuf>,
    /// `--retries N`; `None` ⇒ runner default.
    pub retries: Option<u32>,
    /// `--fail-fast`: abort on the first permanently failed cell.
    pub fail_fast: bool,
    /// `--no-claims` clears this (claim leases are on by default).
    pub claims: bool,
    /// `--faults SPEC`: validated fault-plan spec (armed at run time).
    pub faults: Option<String>,
}

impl Default for SweepArgs {
    fn default() -> Self {
        SweepArgs {
            systems: Vec::new(),
            scenarios: Vec::new(),
            policies: vec!["fcfs".into()],
            backfills: vec!["none".into()],
            pairs: None,
            loads: vec![0.8],
            seed_count: 1,
            seed_base: 42,
            span: SimDuration::days(1),
            scale: 1.0,
            cooling: false,
            power_caps: vec![None],
            cap_at: None,
            prefix_share: false,
            engine: EngineMode::default(),
            jobs: None,
            batch: false,
            batch_max_lanes: None,
            baseline: None,
            out_dir: PathBuf::from("simulation_results").join("sweep"),
            write_histories: false,
            quiet: false,
            cache: None,
            cache_dir: None,
            metrics_only: false,
            profile: false,
            trace_out: None,
            retries: None,
            fail_fast: false,
            claims: true,
            faults: None,
        }
    }
}

impl SweepArgs {
    /// Resolve the cache directory the run will use (`None` ⇒ caching
    /// off): explicit flags beat the `SRAPS_CACHE_DIR` auto-enable.
    pub fn resolved_cache_dir(&self) -> Option<PathBuf> {
        let enabled = match self.cache {
            Some(on) => on,
            None => std::env::var_os("SRAPS_CACHE_DIR").is_some(),
        };
        enabled.then(|| {
            self.cache_dir
                .clone()
                .unwrap_or_else(|| CellCache::default_dir(&self.out_dir))
        })
    }
}

fn split_csv(s: &str) -> Vec<String> {
    s.split(',')
        .map(str::trim)
        .filter(|p| !p.is_empty())
        .map(str::to_string)
        .collect()
}

pub fn parse_sweep_args(argv: &[String]) -> Result<SweepArgs, String> {
    let mut a = SweepArgs::default();
    let mut i = 0;
    let value = |i: &mut usize, flag: &str| -> Result<String, String> {
        *i += 1;
        argv.get(*i)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--system" | "--systems" => a.systems = split_csv(&value(&mut i, "--system")?),
            "--scenario" | "--scenarios" => a.scenarios = split_csv(&value(&mut i, "--scenario")?),
            "--policies" => a.policies = split_csv(&value(&mut i, "--policies")?),
            "--backfills" => a.backfills = split_csv(&value(&mut i, "--backfills")?),
            "--pairs" => {
                let mut pairs = Vec::new();
                for part in split_csv(&value(&mut i, "--pairs")?) {
                    let (p, b) = part
                        .split_once(':')
                        .ok_or_else(|| format!("bad pair '{part}': want policy:backfill"))?;
                    pairs.push((p.to_string(), b.to_string()));
                }
                if pairs.is_empty() {
                    return Err("--pairs needs at least one policy:backfill".into());
                }
                a.pairs = Some(pairs);
            }
            "--loads" => {
                a.loads = split_csv(&value(&mut i, "--loads")?)
                    .iter()
                    .map(|v| v.parse().map_err(|e| format!("bad load '{v}': {e}")))
                    .collect::<Result<_, String>>()?;
            }
            "--seeds" => {
                a.seed_count = value(&mut i, "--seeds")?
                    .parse()
                    .map_err(|e| format!("bad --seeds: {e}"))?;
                if a.seed_count == 0 {
                    return Err("--seeds must be ≥ 1".into());
                }
            }
            "--seed" => {
                a.seed_base = value(&mut i, "--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--span" => {
                let v = value(&mut i, "--span")?;
                a.span = parse_duration(&v).ok_or_else(|| format!("bad --span value '{v}'"))?;
            }
            "--scale" => {
                a.scale = value(&mut i, "--scale")?
                    .parse()
                    .map_err(|e| format!("bad --scale: {e}"))?;
            }
            "-c" | "--cooling" => a.cooling = true,
            "--power-caps" => {
                a.power_caps = split_csv(&value(&mut i, "--power-caps")?)
                    .iter()
                    .map(|v| {
                        if v == "none" {
                            Ok(None)
                        } else {
                            v.parse()
                                .map(Some)
                                .map_err(|e| format!("bad power cap '{v}': {e}"))
                        }
                    })
                    .collect::<Result<_, String>>()?;
            }
            "--cap-at" => {
                let v = value(&mut i, "--cap-at")?;
                a.cap_at =
                    Some(parse_duration(&v).ok_or_else(|| format!("bad --cap-at value '{v}'"))?);
            }
            "--prefix-share" => a.prefix_share = true,
            "--engine" => {
                let v = value(&mut i, "--engine")?;
                a.engine =
                    EngineMode::parse(&v).ok_or_else(|| format!("bad --engine value '{v}'"))?;
            }
            "--jobs" => {
                let v: usize = value(&mut i, "--jobs")?
                    .parse()
                    .map_err(|e| format!("bad --jobs: {e}"))?;
                if v == 0 {
                    return Err("--jobs must be ≥ 1".into());
                }
                a.jobs = Some(v);
            }
            "--batch" => a.batch = true,
            "--batch-max-lanes" => {
                let v: usize = value(&mut i, "--batch-max-lanes")?
                    .parse()
                    .map_err(|e| format!("bad --batch-max-lanes: {e}"))?;
                if v == 0 {
                    return Err("--batch-max-lanes must be ≥ 1".into());
                }
                a.batch = true;
                a.batch_max_lanes = Some(v);
            }
            "--baseline" => a.baseline = Some(value(&mut i, "--baseline")?),
            "-o" | "--output" => a.out_dir = PathBuf::from(value(&mut i, "--output")?),
            "--write-histories" => a.write_histories = true,
            // --no-cache wins over --cache/--cache-dir regardless of
            // argument order (an alias with caching baked in stays
            // overridable from the end of the command line).
            "--cache" => {
                if a.cache != Some(false) {
                    a.cache = Some(true);
                }
            }
            "--cache-dir" => {
                a.cache_dir = Some(PathBuf::from(value(&mut i, "--cache-dir")?));
                if a.cache != Some(false) {
                    a.cache = Some(true);
                }
            }
            "--no-cache" => a.cache = Some(false),
            "--metrics-only" => a.metrics_only = true,
            "--profile" => a.profile = true,
            "--trace-out" => a.trace_out = Some(PathBuf::from(value(&mut i, "--trace-out")?)),
            "--retries" => {
                a.retries = Some(
                    value(&mut i, "--retries")?
                        .parse()
                        .map_err(|e| format!("bad --retries: {e}"))?,
                );
            }
            "--fail-fast" => a.fail_fast = true,
            "--no-claims" => a.claims = false,
            "--faults" => {
                let spec = value(&mut i, "--faults")?;
                // Validate eagerly so a typo fails before any simulation.
                crate::faults::FaultPlan::parse(&spec)?;
                a.faults = Some(spec);
            }
            "-q" | "--quiet" => a.quiet = true,
            "-h" | "--help" => return Err(SWEEP_USAGE.to_string()),
            other => return Err(format!("unknown sweep argument '{other}'\n\n{SWEEP_USAGE}")),
        }
        i += 1;
    }
    if a.systems.is_empty() == a.scenarios.is_empty() {
        return Err(format!(
            "need exactly one of --system or --scenario\n\n{SWEEP_USAGE}"
        ));
    }
    if a.cap_at.is_some() && !a.power_caps.iter().any(Option::is_some) {
        return Err("--cap-at needs at least one non-'none' --power-caps value".into());
    }
    if a.prefix_share && a.cap_at.is_none() {
        return Err(
            "--prefix-share needs --cap-at (there is no shared prefix without \
             a late-binding axis)"
                .into(),
        );
    }
    Ok(a)
}

/// Build the matrix a parsed argv describes.
pub fn build_matrix(a: &SweepArgs) -> Result<ExperimentMatrix, String> {
    let mut matrix = if a.systems.is_empty() {
        // Synthetic-only axes must not be silently ignored: reject them
        // whenever they would have changed a --system sweep's behaviour.
        let defaults = SweepArgs::default();
        for (supplied, flag) in [
            (a.seed_count != defaults.seed_count, "--seeds"),
            (a.loads != defaults.loads, "--loads"),
            (a.span != defaults.span, "--span"),
        ] {
            if supplied {
                return Err(format!(
                    "{flag} applies to --system sweeps only; scenarios fix \
                     their own workload (vary --seed instead)"
                ));
            }
        }
        let mut workloads = Vec::new();
        for name in &a.scenarios {
            // fig4/fig5 run full-size systems with no scale knob; mixing
            // them into a scaled sweep would silently compare across
            // scales, so reject rather than ignore.
            if a.scale != 1.0 && matches!(name.as_str(), "fig4" | "fig5") {
                return Err(format!(
                    "--scale does not apply to scenario '{name}' (only \
                     fig6/fig7/fig8/fig10 scale)"
                ));
            }
            let s = match name.as_str() {
                "fig4" => scenario::fig4(a.seed_base),
                "fig5" => scenario::fig5(a.seed_base),
                "fig6" => scenario::fig6_scaled(a.seed_base, a.scale),
                "fig7" => scenario::fig7(a.seed_base, a.scale),
                "fig8" => scenario::fig8_scaled(a.seed_base, a.scale),
                "fig10" => scenario::fig10(a.seed_base, a.scale.min(4096.0 / 158_976.0)),
                other => return Err(format!("unknown scenario '{other}'")),
            };
            workloads.push(s);
        }
        ExperimentMatrix::scenarios(workloads)
    } else {
        ExperimentMatrix::synthetic(a.systems.clone())
            .loads(a.loads.clone())
            .seed_count_from(a.seed_base, a.seed_count)
            .span(a.span)
            .scale(a.scale)
    };
    matrix = matrix
        .policies(a.policies.clone())
        .backfills(a.backfills.clone());
    if let Some(pairs) = &a.pairs {
        matrix = matrix.pairs(pairs.clone());
    }
    if a.cooling {
        matrix = matrix.with_cooling();
    }
    matrix = matrix.power_caps_kw(a.power_caps.clone()).engine(a.engine);
    if let Some(at) = a.cap_at {
        matrix = matrix.power_cap_at(at);
    }
    Ok(matrix)
}

/// Entry point called by the `sraps` binary for `sraps sweep ...`.
pub fn sweep_command(argv: &[String]) -> Result<(), String> {
    if argv.iter().any(|a| a == "-h" || a == "--help") {
        println!("{SWEEP_USAGE}");
        return Ok(());
    }
    let a = parse_sweep_args(argv)?;
    let matrix = build_matrix(&a)?;
    let cache_dir = a.resolved_cache_dir();
    if a.metrics_only && a.write_histories && cache_dir.is_none() {
        return Err(
            "--metrics-only with --write-histories needs --cache (the histories \
             spill into the cache directory)"
                .into(),
        );
    }
    let mut opts = SweepOptions::new()
        .progress(!a.quiet)
        .metrics_only(a.metrics_only)
        .batch(a.batch)
        .prefix_share(a.prefix_share)
        .claims(a.claims)
        .fail_fast(a.fail_fast);
    if let Some(retries) = a.retries {
        opts = opts.retries(retries);
    }
    if let Some(lanes) = a.batch_max_lanes {
        opts = opts.batch_max_lanes(lanes);
    }
    if let Some(dir) = &cache_dir {
        opts = opts.cache_dir(dir);
        // With a cache in play, hits carry no in-memory output, so the
        // histories must come from (and therefore go to) the spill.
        if a.write_histories {
            opts = opts.spill_histories(true);
        }
    }
    let runner = match a.jobs {
        Some(n) => SweepRunner::with_options(n, opts),
        None => SweepRunner::auto_with(opts),
    };
    // A ctrl-c'd (or SIGTERM'd) sweep must not leave claim files behind
    // for cooperating processes to wait a full TTL on: latch the signal,
    // release every live lease, exit 130.
    if cache_dir.is_some() && a.claims {
        crate::claims::install_interrupt_release();
    }

    println!(
        "sweep: {} cells on {} threads{}",
        matrix.cell_count(),
        runner.jobs(),
        match &cache_dir {
            Some(dir) => format!(", cache {}", dir.display()),
            None => String::new(),
        }
    );
    // Fault injection is process-global and deterministic; arm it for
    // exactly this run. The flag wins over the SRAPS_FAULTS env knob.
    let env_faults = sraps_types::string_env("SRAPS_FAULTS")
        .map_err(|e| e.to_string())?
        .filter(|s| !s.is_empty());
    let fault_spec = a.faults.clone().or(env_faults);
    if let Some(spec) = &fault_spec {
        crate::faults::arm(crate::faults::FaultPlan::parse(spec)?);
        eprintln!("faults armed: {spec}");
    }
    // Instrumentation is process-global; flip it on for exactly this run.
    sraps_obs::set_profile(a.profile);
    sraps_obs::set_trace(a.trace_out.is_some());
    let results = runner.run(&matrix);
    crate::faults::disarm();
    let results = results.map_err(|e| e.to_string())?;
    sraps_obs::set_profile(false);
    sraps_obs::set_trace(false);
    if let Some(path) = &a.trace_out {
        sraps_obs::write_trace(path).map_err(|e| format!("write trace {}: {e}", path.display()))?;
        eprintln!("trace written to {}", path.display());
    }
    let report = match &a.baseline {
        Some(kind) => Report::with_baseline(&results, kind),
        None => Report::from_results(&results),
    };
    if a.baseline.is_some() && !report.rows.iter().any(|r| r.is_baseline) {
        let kinds: Vec<String> = results
            .cells
            .iter()
            .map(|c| match c.spec.label.rsplit_once('/') {
                Some((_, kind)) => kind.to_string(),
                None => c.spec.label.clone(),
            })
            .collect();
        return Err(format!(
            "baseline '{}' matches no cell; cell kinds are: {}",
            a.baseline.as_deref().unwrap_or_default(),
            kinds.join(", ")
        ));
    }

    println!();
    print!("{}", report.render_table());
    if !report.failed.is_empty() {
        println!();
        print!("{}", report.render_failed_table());
    }
    println!(
        "\n{} cells in {:.2}s wall ({} threads)",
        results.cells.len(),
        results.wall.as_secs_f64(),
        results.jobs
    );
    if !report.failed.is_empty() {
        // Greppable (tests and CI pin this shape), mirrors the cache line.
        println!("failed: {} cells exhausted retries", report.failed.len());
    }
    if let Some(dir) = &cache_dir {
        // The CI cache job greps this exact shape.
        println!(
            "cache: {} hits, {} misses ({})",
            results.cache_hits(),
            results.cache_misses(),
            dir.display()
        );
    }
    if a.prefix_share {
        // The CI snapshot-parity job greps this line.
        println!(
            "prefix: {} shared prefixes across {} cells",
            results.prefix_groups, results.prefix_forks
        );
    }
    if a.profile {
        // stderr keeps stdout (table + grepped lines) machine-stable.
        eprint!("\n{}", Report::render_profile_table(&results));
    }

    // Every report artifact installs via temp+rename: a crash (or an
    // injected fault) mid-write never leaves a torn file where a
    // cooperating process — or the user — would read it.
    let install = |path: PathBuf, bytes: &[u8]| -> Result<(), String> {
        write_atomic(&path, bytes).map_err(|e| e.to_string())
    };
    std::fs::create_dir_all(&a.out_dir).map_err(|e| e.to_string())?;
    install(a.out_dir.join("sweep.csv"), report.to_csv().as_bytes())?;
    install(a.out_dir.join("sweep.json"), report.to_json().as_bytes())?;
    if a.write_histories {
        let cache = match &cache_dir {
            Some(dir) => Some(CellCache::open(dir).map_err(|e| e.to_string())?),
            None => None,
        };
        for cell in results.cells.iter().filter(|c| c.failure.is_none()) {
            let stem = cell.spec.label.replace('/', "_");
            let (power_out, util_out) = (
                a.out_dir.join(format!("{stem}-power.csv")),
                a.out_dir.join(format!("{stem}-util.csv")),
            );
            if let Some(cache) = &cache {
                // Cached sweep: the runner spilled (or required) the
                // history CSVs for every cell — copy rather than
                // re-rendering tick-resolution histories from memory.
                let key = cell.cache_key.as_ref().expect("cache implies key");
                let (power_in, util_in) = cache.history_paths(key);
                let read = |p: &std::path::Path| {
                    std::fs::read(p).map_err(|e| format!("{}: {e}", p.display()))
                };
                install(power_out, &read(&power_in)?)?;
                install(util_out, &read(&util_in)?)?;
            } else {
                // Uncached (full-retention) sweep: histories are in
                // memory.
                let out = cell.output.as_ref().expect("uncached retains outputs");
                install(power_out, out.power_csv().as_bytes())?;
                install(util_out, out.util_csv().as_bytes())?;
            }
        }
    }
    println!("report written to {}", a.out_dir.display());
    // The reports above are written first — a partially failed sweep
    // still leaves its (failure-annotated) artifacts behind — and *then*
    // the run exits nonzero so scripts and CI notice.
    if !report.failed.is_empty() {
        return Err(format!(
            "{} of {} cells exhausted retries (see the failed-cells table above)",
            report.failed.len(),
            results.cells.len(),
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<SweepArgs, String> {
        parse_sweep_args(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn acceptance_invocation_parses() {
        let a = parse(&[
            "--system",
            "lassen",
            "--policies",
            "fcfs,sjf,priority",
            "--backfills",
            "none,easy",
            "--seeds",
            "3",
            "--jobs",
            "4",
        ])
        .unwrap();
        assert_eq!(a.systems, vec!["lassen"]);
        assert_eq!(a.policies, vec!["fcfs", "sjf", "priority"]);
        assert_eq!(a.backfills, vec!["none", "easy"]);
        assert_eq!(a.seed_count, 3);
        assert_eq!(a.jobs, Some(4));
        let m = build_matrix(&a).unwrap();
        assert_eq!(m.cell_count(), 18);
    }

    #[test]
    fn pairs_and_caps_parse() {
        let a = parse(&[
            "--scenario",
            "fig4",
            "--pairs",
            "replay:none,fcfs:easy",
            "--power-caps",
            "none,1200",
            "--baseline",
            "replay-none",
            "-q",
        ])
        .unwrap();
        assert_eq!(
            a.pairs,
            Some(vec![
                ("replay".to_string(), "none".to_string()),
                ("fcfs".to_string(), "easy".to_string())
            ])
        );
        assert_eq!(a.power_caps, vec![None, Some(1200.0)]);
        assert_eq!(a.baseline.as_deref(), Some("replay-none"));
        assert!(a.quiet);
    }

    #[test]
    fn engine_flag_parses_and_reaches_the_matrix() {
        let a = parse(&["--system", "lassen", "--engine", "tick"]).unwrap();
        assert_eq!(a.engine, EngineMode::Tick);
        build_matrix(&a).unwrap();
        assert_eq!(
            parse(&["--system", "lassen"]).unwrap().engine,
            EngineMode::Event
        );
        assert!(parse(&["--system", "lassen", "--engine", "warp"]).is_err());
    }

    #[test]
    fn cache_flags_parse_and_resolve() {
        // Note: resolution is checked only for explicit flags here; the
        // SRAPS_CACHE_DIR auto-enable path is covered end-to-end in the
        // CLI smoke tests (env mutation races the parallel test harness).
        let a = parse(&["--system", "lassen"]).unwrap();
        assert_eq!(a.cache, None);
        assert!(!a.metrics_only);

        let a = parse(&["--system", "lassen", "--cache", "--metrics-only"]).unwrap();
        assert_eq!(a.cache, Some(true));
        assert!(a.metrics_only);
        if std::env::var_os("SRAPS_CACHE_DIR").is_none() {
            assert_eq!(
                a.resolved_cache_dir(),
                Some(a.out_dir.join("cache")),
                "--cache defaults under the output dir"
            );
        }

        let a = parse(&["--system", "lassen", "--cache-dir", "/tmp/c"]).unwrap();
        assert_eq!(a.resolved_cache_dir(), Some(PathBuf::from("/tmp/c")));

        // --no-cache wins regardless of order.
        for args in [
            ["--system", "lassen", "--cache", "--no-cache"],
            ["--system", "lassen", "--no-cache", "--cache"],
        ] {
            let a = parse(&args).unwrap();
            assert_eq!(a.cache, Some(false));
            assert_eq!(a.resolved_cache_dir(), None);
        }
    }

    #[test]
    fn batch_flags_parse() {
        let a = parse(&["--system", "lassen"]).unwrap();
        assert!(!a.batch);
        assert_eq!(a.batch_max_lanes, None);

        let a = parse(&["--system", "lassen", "--batch"]).unwrap();
        assert!(a.batch);
        assert_eq!(a.batch_max_lanes, None, "runner default applies");

        // --batch-max-lanes implies --batch.
        let a = parse(&["--system", "lassen", "--batch-max-lanes", "8"]).unwrap();
        assert!(a.batch);
        assert_eq!(a.batch_max_lanes, Some(8));

        assert!(parse(&["--system", "lassen", "--batch-max-lanes", "0"]).is_err());
        assert!(parse(&["--system", "lassen", "--batch-max-lanes"]).is_err());
    }

    #[test]
    fn cap_at_and_prefix_share_parse_with_validation() {
        let a = parse(&[
            "--system",
            "lassen",
            "--power-caps",
            "none,1200",
            "--cap-at",
            "45m",
            "--prefix-share",
        ])
        .unwrap();
        assert_eq!(a.cap_at, Some(SimDuration::minutes(45)));
        assert!(a.prefix_share);
        let m = build_matrix(&a).unwrap();
        assert_eq!(m.cell_count(), 2);

        // --cap-at without any actual cap is meaningless.
        let err = parse(&["--system", "lassen", "--cap-at", "45m"]).unwrap_err();
        assert!(err.contains("non-'none' --power-caps"), "{err}");
        let err = parse(&[
            "--system",
            "lassen",
            "--power-caps",
            "none",
            "--cap-at",
            "45m",
        ])
        .unwrap_err();
        assert!(err.contains("non-'none' --power-caps"), "{err}");

        // --prefix-share without --cap-at has nothing to share.
        let err = parse(&[
            "--system",
            "lassen",
            "--power-caps",
            "1200",
            "--prefix-share",
        ])
        .unwrap_err();
        assert!(err.contains("--prefix-share needs --cap-at"), "{err}");

        assert!(parse(&["--system", "lassen", "--cap-at", "bogus"]).is_err());
    }

    #[test]
    fn profile_and_trace_flags_parse() {
        let a = parse(&["--system", "lassen"]).unwrap();
        assert!(!a.profile);
        assert_eq!(a.trace_out, None);

        let a = parse(&[
            "--system",
            "lassen",
            "--profile",
            "--trace-out",
            "/tmp/trace.json",
        ])
        .unwrap();
        assert!(a.profile);
        assert_eq!(a.trace_out, Some(PathBuf::from("/tmp/trace.json")));
        assert!(parse(&["--system", "lassen", "--trace-out"]).is_err());
    }

    #[test]
    fn rejects_bad_usage() {
        assert!(parse(&[]).is_err(), "no workload");
        assert!(parse(&["--system", "lassen", "--scenario", "fig4"]).is_err());
        assert!(parse(&["--system", "lassen", "--jobs", "0"]).is_err());
        assert!(parse(&["--system", "lassen", "--seeds", "0"]).is_err());
        assert!(parse(&["--system", "lassen", "--pairs", "fcfs"]).is_err());
        assert!(parse(&["--system", "lassen", "--frobnicate"]).is_err());
    }

    #[test]
    fn scale_rejected_for_unscalable_scenarios() {
        let a = parse(&["--scenario", "fig4", "--scale", "0.25"]).unwrap();
        let err = build_matrix(&a).unwrap_err();
        assert!(err.contains("--scale does not apply"), "{err}");
        // Scalable scenarios accept it.
        let a = parse(&["--scenario", "fig6", "--scale", "0.05"]).unwrap();
        assert!(build_matrix(&a).is_ok());
        // Synthetic-only axes stay rejected for scenarios.
        let a = parse(&["--scenario", "fig6", "--loads", "0.5"]).unwrap();
        assert!(build_matrix(&a).unwrap_err().contains("--loads"));
    }

    #[test]
    fn scenario_matrix_builds() {
        let a = parse(&["--scenario", "fig4", "--pairs", "replay:none,fcfs:easy"]).unwrap();
        let m = build_matrix(&a).unwrap();
        assert_eq!(m.cell_count(), 2);
        let a = parse(&["--scenario", "fig99"]).unwrap();
        assert!(build_matrix(&a).is_err());
    }
}
