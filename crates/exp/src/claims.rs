//! Per-cell claim leases: N cooperating sweep processes partition one
//! matrix without duplicating simulation work.
//!
//! The cell cache already dedupes *results* — atomic write-back means
//! two workers racing the same key at worst install identical bytes.
//! What it cannot prevent is both workers *simulating* the cell. A
//! [`ClaimSet`] closes that gap with a lease file beside each cache
//! entry:
//!
//! ```text
//! <dir>/<32-hex-key>.claim    { owner, pid, heartbeat_ms }
//! ```
//!
//! Protocol:
//!
//! * **Acquire** — `O_EXCL` (`create_new`) on the claim path. Exclusive
//!   creation is the only primitive that picks a single winner among
//!   racing processes; rename-then-read-back would let two workers both
//!   observe themselves as owner.
//! * **Heartbeat** — a background thread rewrites every held claim
//!   (temp file + rename, so readers never see a torn claim) every
//!   TTL/4, proving the owner is alive.
//! * **Skip** — a live foreign lease means another worker is simulating
//!   the cell; callers defer the cell and poll for the cache entry
//!   instead of blocking a worker thread on it.
//! * **Reclaim** — a claim whose heartbeat is older than the TTL
//!   (default 30 s, `SRAPS_CLAIM_TTL_MS`) belongs to a dead or wedged
//!   worker. After a jittered confirmation pause the claimant `rename`s
//!   the stale claim to a unique tombstone — rename is atomic, so
//!   exactly one of N racing reclaimers succeeds — and retries the
//!   exclusive create. Corrupt or torn claim files (a worker killed
//!   mid-install) are stale once their mtime ages past the TTL.
//! * **Release** — the lease file is removed on completion (or drop).
//!   Release verifies ownership first so a worker whose lease was
//!   reclaimed while it was wedged cannot delete the new owner's claim.
//!
//! Everything assumes claim files live on one filesystem shared by the
//! cooperating processes (the `SRAPS_CACHE_DIR` partition), which also
//! gives all workers one clock domain for TTL arithmetic in the common
//! single-host case; across hosts, keep the TTL generously above any
//! plausible clock skew.

use crate::faults::splitmix64;
use serde::{Deserialize, Serialize};
use sraps_obs::Counter;
use sraps_types::{fsio, Result, SrapsError};
use std::collections::HashSet;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Every live [`ClaimSet`] in the process, so an interrupt handler (or
/// the daemon's drain path) can release all held leases at once without
/// threading handles through every call site.
static LIVE: Mutex<Vec<Weak<Shared>>> = Mutex::new(Vec::new());

/// Default lease TTL: a heartbeat older than this marks the owner dead.
pub const DEFAULT_TTL: Duration = Duration::from_secs(30);
/// Default base poll/backoff interval for contended cells.
pub const DEFAULT_POLL: Duration = Duration::from_millis(25);

/// On-disk claim body. Readers only trust `heartbeat_ms` (and the file
/// mtime when the JSON is torn); `owner`/`pid` are for ownership checks
/// and post-mortem diagnostics.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct ClaimFile {
    owner: String,
    pid: u32,
    heartbeat_ms: u64,
}

/// Outcome of a claim attempt.
#[derive(Debug)]
pub enum ClaimOutcome {
    /// This worker owns the cell; simulate it, then release the lease.
    Acquired(Lease),
    /// A live foreign lease exists — defer the cell and poll the cache.
    Contended,
}

/// What a claim file looks like to a prospective claimant.
enum ClaimState {
    /// No claim on disk (released or never taken).
    Gone,
    /// Heartbeat within the TTL: the owner is alive.
    Fresh,
    /// Heartbeat (or mtime, for torn files) older than the TTL.
    Stale,
}

struct Shared {
    dir: PathBuf,
    owner: String,
    ttl: Duration,
    poll: Duration,
    held: Mutex<HashSet<String>>,
    stop: Mutex<bool>,
    wake: Condvar,
}

fn now_ms() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

fn fnv64(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

impl Shared {
    fn claim_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.claim"))
    }

    fn claim_body(&self) -> String {
        serde_json::to_string(&ClaimFile {
            owner: self.owner.clone(),
            pid: std::process::id(),
            heartbeat_ms: now_ms(),
        })
        .expect("claim body serializes")
    }

    /// Classify the claim at `path` without trusting its integrity: a
    /// torn or unparseable body (worker killed mid-install) falls back
    /// to file-mtime aging so it cannot wedge the cell forever.
    fn read_state(&self, path: &Path) -> ClaimState {
        let ttl_ms = self.ttl.as_millis() as u64;
        match std::fs::read_to_string(path) {
            Ok(text) => match serde_json::from_str::<ClaimFile>(&text) {
                Ok(claim) => {
                    if now_ms().saturating_sub(claim.heartbeat_ms) > ttl_ms {
                        ClaimState::Stale
                    } else {
                        ClaimState::Fresh
                    }
                }
                Err(_) => match path.metadata().and_then(|m| m.modified()) {
                    Ok(mtime) => match mtime.elapsed() {
                        Ok(age) if age > self.ttl => ClaimState::Stale,
                        _ => ClaimState::Fresh,
                    },
                    Err(_) => ClaimState::Gone,
                },
            },
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => ClaimState::Gone,
            // Unreadable for another reason (permissions?): assume live.
            Err(_) => ClaimState::Fresh,
        }
    }

    /// Whether the claim at `path` currently names this process as owner.
    fn owned_by_us(&self, path: &Path) -> bool {
        std::fs::read_to_string(path)
            .ok()
            .and_then(|t| serde_json::from_str::<ClaimFile>(&t).ok())
            .is_some_and(|c| c.owner == self.owner)
    }

    fn release(&self, key: &str) {
        self.held.lock().unwrap().remove(key);
        let path = self.claim_path(key);
        // Ownership check: if our lease went stale and was reclaimed,
        // the path now holds the new owner's claim — leave it alone.
        if self.owned_by_us(&path) {
            let _ = std::fs::remove_file(&path);
        }
    }

    /// Release every lease this set still holds (interrupt/drain path).
    /// Returns how many claim files were actually removed.
    fn release_all(&self) -> usize {
        let keys: Vec<String> = std::mem::take(&mut *self.held.lock().unwrap())
            .into_iter()
            .collect();
        let mut removed = 0;
        for key in keys {
            let path = self.claim_path(&key);
            if self.owned_by_us(&path) && std::fs::remove_file(&path).is_ok() {
                removed += 1;
            }
        }
        removed
    }
}

/// Release every lease held by every live [`ClaimSet`] in this process.
/// Safe to call from a drain path at any time: later `Lease::release`
/// calls become no-ops (the ownership check sees the file gone or
/// re-owned). Returns the number of claim files removed.
pub fn release_all_live() -> usize {
    let mut live = LIVE.lock().unwrap();
    let mut removed = 0;
    live.retain(|w| match w.upgrade() {
        Some(shared) => {
            removed += shared.release_all();
            true
        }
        None => false,
    });
    removed
}

/// Arm the SIGINT/SIGTERM latch and spawn a watcher that, on the first
/// signal, releases every live claim lease and exits 130. Idempotent.
///
/// This is the `sraps sweep` shutdown path: a ctrl-c'd sweep must not
/// leave `.claim` files for peers to wait a full TTL on. The resident
/// daemon does **not** use this — it arms the same latch but runs its
/// own drain (finish in-flight cells, then [`release_all_live`]).
pub fn install_interrupt_release() {
    static INSTALLED: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
    if INSTALLED.swap(true, std::sync::atomic::Ordering::SeqCst) {
        return;
    }
    sraps_types::signals::arm();
    let _ = std::thread::Builder::new()
        .name("sraps-interrupt-release".into())
        .spawn(|| loop {
            if sraps_types::signals::requested() {
                let removed = release_all_live();
                eprintln!("sraps: interrupted — released {removed} claim lease(s)");
                std::process::exit(130);
            }
            std::thread::sleep(Duration::from_millis(25));
        });
}

/// Handle on the claim namespace of one cache directory. Dropping the
/// set stops the heartbeat thread; leases still held keep their files
/// (they will age out via the TTL), so prefer releasing every lease
/// before the set goes away.
pub struct ClaimSet {
    shared: Arc<Shared>,
    heartbeat: Option<std::thread::JoinHandle<()>>,
}

/// An acquired cell lease. Released on [`Lease::release`] or drop.
pub struct Lease {
    shared: Arc<Shared>,
    key: String,
    released: bool,
}

impl std::fmt::Debug for Lease {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lease").field("key", &self.key).finish()
    }
}

impl Lease {
    pub fn key(&self) -> &str {
        &self.key
    }

    /// Remove the claim file (after the cell's result is installed).
    pub fn release(mut self) {
        self.shared.release(&self.key.clone());
        self.released = true;
    }
}

impl Drop for Lease {
    fn drop(&mut self) {
        if !self.released {
            self.shared.release(&self.key.clone());
            self.released = true;
        }
    }
}

impl ClaimSet {
    /// Open the claim namespace under `dir` (the cache directory) with
    /// TTL/poll taken from `SRAPS_CLAIM_TTL_MS` / `SRAPS_CLAIM_POLL_MS`
    /// or their defaults. A set-but-malformed knob is a
    /// [`SrapsError::Config`] here, not a silent fallback to the default.
    pub fn open(dir: impl Into<PathBuf>) -> Result<ClaimSet> {
        let ttl = sraps_types::parse_env_ms("SRAPS_CLAIM_TTL_MS")?.unwrap_or(DEFAULT_TTL);
        let poll = sraps_types::parse_env_ms("SRAPS_CLAIM_POLL_MS")?.unwrap_or(DEFAULT_POLL);
        Self::open_with(dir, ttl, poll)
    }

    /// Open with explicit knobs (tests shrink the TTL to milliseconds).
    pub fn open_with(dir: impl Into<PathBuf>, ttl: Duration, poll: Duration) -> Result<ClaimSet> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SrapsError::Io(format!("create claim dir {}: {e}", dir.display())))?;
        // Pid alone is not unique across a host's pid-reuse horizon
        // (fold in the creation instant), and pid+instant is not unique
        // across claim sets opened in one process in the same
        // millisecond (fold in a process-global sequence).
        static OWNER_SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let seq = OWNER_SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let owner = format!("{}:{:x}:{seq}", std::process::id(), now_ms());
        let shared = Arc::new(Shared {
            dir,
            owner,
            ttl: ttl.max(Duration::from_millis(1)),
            poll: poll.max(Duration::from_millis(1)),
            held: Mutex::new(HashSet::new()),
            stop: Mutex::new(false),
            wake: Condvar::new(),
        });
        let heartbeat = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("sraps-claim-heartbeat".into())
                .spawn(move || heartbeat_loop(&shared))
                .map_err(|e| SrapsError::Io(format!("spawn heartbeat thread: {e}")))?
        };
        LIVE.lock().unwrap().push(Arc::downgrade(&shared));
        Ok(ClaimSet {
            shared,
            heartbeat: Some(heartbeat),
        })
    }

    /// Base poll interval — the runner's deferral loop scales its
    /// backoff from this.
    pub fn poll(&self) -> Duration {
        self.shared.poll
    }

    pub fn ttl(&self) -> Duration {
        self.shared.ttl
    }

    /// This process's owner id (diagnostics, tests).
    pub fn owner(&self) -> &str {
        &self.shared.owner
    }

    /// The claim path for `key` (tests fabricate stale claims here).
    pub fn claim_path(&self, key: &str) -> PathBuf {
        self.shared.claim_path(key)
    }

    /// Deterministically jittered delay for contended-cell polling:
    /// `base..2*base`, scattered by (owner, key, round) so N workers
    /// that collided once don't re-collide in lockstep.
    pub fn backoff(&self, key: &str, round: u32) -> Duration {
        let base = self.shared.poll.as_millis() as u64;
        let h = splitmix64(fnv64(&self.shared.owner) ^ fnv64(key) ^ round as u64);
        Duration::from_millis(base + h % base.max(1))
    }

    /// One claim attempt for `key`: exclusive-create, or classify the
    /// incumbent and — when it is stale — race to reclaim it. Never
    /// blocks on a live lease.
    pub fn try_acquire(&self, key: &str) -> Result<ClaimOutcome> {
        let path = self.shared.claim_path(key);
        // Two rounds: a reclaim loops back to the exclusive create once.
        for _ in 0..2 {
            match std::fs::OpenOptions::new()
                .write(true)
                .create_new(true)
                .open(&path)
            {
                Ok(mut f) => {
                    if let Err(e) = f.write_all(self.shared.claim_body().as_bytes()) {
                        drop(f);
                        let _ = std::fs::remove_file(&path);
                        return Err(SrapsError::Io(format!(
                            "write claim {}: {e}",
                            path.display()
                        )));
                    }
                    self.shared.held.lock().unwrap().insert(key.to_string());
                    sraps_obs::bump(Counter::ClaimsAcquired);
                    return Ok(ClaimOutcome::Acquired(Lease {
                        shared: Arc::clone(&self.shared),
                        key: key.to_string(),
                        released: false,
                    }));
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    match self.shared.read_state(&path) {
                        ClaimState::Gone => continue, // released just now — retry create
                        ClaimState::Fresh => {
                            sraps_obs::bump(Counter::ClaimsContended);
                            return Ok(ClaimOutcome::Contended);
                        }
                        ClaimState::Stale => {
                            if !self.reclaim(key, &path)? {
                                sraps_obs::bump(Counter::ClaimsContended);
                                return Ok(ClaimOutcome::Contended);
                            }
                            // Reclaimed: loop back to the exclusive create.
                        }
                    }
                }
                Err(e) => {
                    return Err(SrapsError::Io(format!(
                        "create claim {}: {e}",
                        path.display()
                    )))
                }
            }
        }
        // Exclusive create lost twice in a row (heavy churn): defer.
        sraps_obs::bump(Counter::ClaimsContended);
        Ok(ClaimOutcome::Contended)
    }

    /// Race to remove a stale claim. A jittered pause desynchronizes N
    /// simultaneous reclaimers, a re-read confirms the claim is still
    /// stale (the pause may have let a heartbeat land), and an atomic
    /// rename to a unique tombstone picks exactly one winner.
    fn reclaim(&self, key: &str, path: &Path) -> Result<bool> {
        std::thread::sleep(self.backoff(key, u32::MAX));
        if !matches!(self.shared.read_state(path), ClaimState::Stale) {
            return Ok(false);
        }
        let tomb = fsio::temp_sibling(path);
        match std::fs::rename(path, &tomb) {
            Ok(()) => {
                let _ = std::fs::remove_file(&tomb);
                sraps_obs::bump(Counter::ClaimsStaleReclaimed);
                Ok(true)
            }
            // Another reclaimer won the rename (or the owner released).
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(false),
            Err(e) => Err(SrapsError::Io(format!(
                "reclaim stale claim {}: {e}",
                path.display()
            ))),
        }
    }
}

impl Drop for ClaimSet {
    fn drop(&mut self) {
        *self.shared.stop.lock().unwrap() = true;
        self.shared.wake.notify_all();
        if let Some(h) = self.heartbeat.take() {
            let _ = h.join();
        }
    }
}

/// Refresh every held claim at TTL/4 so live leases never age out.
/// Refreshes go through temp+rename (readers never see a torn claim)
/// and re-verify ownership first — a lease stolen while this process
/// was wedged must not be clobbered back.
fn heartbeat_loop(shared: &Shared) {
    let interval = (shared.ttl / 4).max(Duration::from_millis(5));
    let mut stop = shared.stop.lock().unwrap();
    loop {
        let (guard, _timeout) = shared.wake.wait_timeout(stop, interval).unwrap();
        stop = guard;
        if *stop {
            return;
        }
        let keys: Vec<String> = shared.held.lock().unwrap().iter().cloned().collect();
        for key in keys {
            let path = shared.claim_path(&key);
            if shared.owned_by_us(&path) {
                let _ = fsio::write_atomic(&path, shared.claim_body().as_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_set(tag: &str, ttl: Duration) -> ClaimSet {
        let dir = std::env::temp_dir().join(format!("sraps-claims-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ClaimSet::open_with(dir, ttl, Duration::from_millis(2)).unwrap()
    }

    fn cleanup(set: &ClaimSet) {
        std::fs::remove_dir_all(&set.shared.dir).ok();
    }

    #[test]
    fn acquire_release_roundtrip() {
        let set = temp_set("roundtrip", DEFAULT_TTL);
        let lease = match set.try_acquire("k0").unwrap() {
            ClaimOutcome::Acquired(l) => l,
            ClaimOutcome::Contended => panic!("uncontended key must acquire"),
        };
        assert!(set.claim_path("k0").is_file());
        // Same process, second claimant: contended, not a deadlock.
        assert!(matches!(
            set.try_acquire("k0").unwrap(),
            ClaimOutcome::Contended
        ));
        lease.release();
        assert!(!set.claim_path("k0").is_file(), "release removes the file");
        assert!(matches!(
            set.try_acquire("k0").unwrap(),
            ClaimOutcome::Acquired(_)
        ));
        cleanup(&set);
    }

    #[test]
    fn drop_releases_like_release() {
        let set = temp_set("drop", DEFAULT_TTL);
        {
            let _lease = match set.try_acquire("k1").unwrap() {
                ClaimOutcome::Acquired(l) => l,
                ClaimOutcome::Contended => panic!(),
            };
            assert!(set.claim_path("k1").is_file());
        }
        assert!(!set.claim_path("k1").is_file());
        cleanup(&set);
    }

    #[test]
    fn racing_threads_elect_exactly_one_owner() {
        let set = std::sync::Arc::new(temp_set("race", DEFAULT_TTL));
        // Winners park their lease here so it stays held for the whole
        // race — otherwise a slow loser could legitimately acquire the
        // key after an early release.
        let won: std::sync::Mutex<Vec<Lease>> = std::sync::Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let set = std::sync::Arc::clone(&set);
                let won = &won;
                s.spawn(move || {
                    if let ClaimOutcome::Acquired(l) = set.try_acquire("hot").unwrap() {
                        won.lock().unwrap().push(l);
                    }
                });
            }
        });
        let mut won = won.into_inner().unwrap();
        assert_eq!(won.len(), 1, "exactly one of 8 racing claimants may win");
        won.pop().unwrap().release();
        cleanup(&set);
    }

    #[test]
    fn stale_claims_are_reclaimed_after_ttl() {
        let set = temp_set("stale", Duration::from_millis(20));
        // A dead worker's claim: valid JSON, ancient heartbeat.
        let body = serde_json::to_string(&ClaimFile {
            owner: "dead:beef".into(),
            pid: 1,
            heartbeat_ms: 1,
        })
        .unwrap();
        std::fs::write(set.claim_path("k2"), body).unwrap();
        let got = set.try_acquire("k2").unwrap();
        assert!(
            matches!(got, ClaimOutcome::Acquired(_)),
            "stale claim must be reclaimed, got {got:?}"
        );
        cleanup(&set);
    }

    #[test]
    fn torn_claims_age_out_by_mtime() {
        let set = temp_set("torn", Duration::from_millis(30));
        std::fs::write(set.claim_path("k3"), "{\"owner\":\"tru").unwrap();
        // Fresh mtime: conservatively treated as live.
        assert!(matches!(
            set.try_acquire("k3").unwrap(),
            ClaimOutcome::Contended
        ));
        std::thread::sleep(Duration::from_millis(60));
        assert!(matches!(
            set.try_acquire("k3").unwrap(),
            ClaimOutcome::Acquired(_)
        ));
        cleanup(&set);
    }

    #[test]
    fn heartbeat_keeps_a_slow_cell_alive() {
        let set = temp_set("beat", Duration::from_millis(40));
        let _lease = match set.try_acquire("k4").unwrap() {
            ClaimOutcome::Acquired(l) => l,
            ClaimOutcome::Contended => panic!(),
        };
        // Well past the TTL: the heartbeat thread must have refreshed,
        // so a second claimant still sees a live lease.
        std::thread::sleep(Duration::from_millis(120));
        assert!(matches!(
            set.try_acquire("k4").unwrap(),
            ClaimOutcome::Contended
        ));
        cleanup(&set);
    }

    #[test]
    fn release_never_deletes_a_reclaimed_successor() {
        let set = temp_set("steal", Duration::from_millis(10));
        let other = ClaimSet::open_with(
            set.shared.dir.clone(),
            Duration::from_millis(10),
            Duration::from_millis(2),
        )
        .unwrap();
        // Fabricate the on-disk state of a wedged worker: a claim owned
        // by `set` whose heartbeat froze long ago. The key is not in
        // `set.held`, so its heartbeat thread leaves it alone — which is
        // exactly the wedged-owner scenario.
        let body = serde_json::to_string(&ClaimFile {
            owner: set.owner().to_string(),
            pid: std::process::id(),
            heartbeat_ms: 1,
        })
        .unwrap();
        std::fs::write(set.claim_path("k5"), body).unwrap();
        let lease = Lease {
            shared: Arc::clone(&set.shared),
            key: "k5".into(),
            released: false,
        };
        let stolen = match other.try_acquire("k5").unwrap() {
            ClaimOutcome::Acquired(l) => l,
            ClaimOutcome::Contended => panic!("ancient heartbeat must be reclaimable"),
        };
        // Our (stale, stolen) lease releases: must NOT remove the
        // successor's claim file.
        lease.release();
        assert!(set.claim_path("k5").is_file(), "successor claim survives");
        stolen.release();
        cleanup(&set);
    }

    #[test]
    fn release_all_removes_only_owned_claims() {
        // Exercised per-set (not via `release_all_live`, which would
        // race other tests' live leases in this parallel test binary).
        let set = temp_set("relall", DEFAULT_TTL);
        let a = match set.try_acquire("ra").unwrap() {
            ClaimOutcome::Acquired(l) => l,
            ClaimOutcome::Contended => panic!(),
        };
        let b = match set.try_acquire("rb").unwrap() {
            ClaimOutcome::Acquired(l) => l,
            ClaimOutcome::Contended => panic!(),
        };
        // A foreign claim in the same dir must survive the sweep.
        let foreign = serde_json::to_string(&ClaimFile {
            owner: "other:1".into(),
            pid: 1,
            heartbeat_ms: now_ms(),
        })
        .unwrap();
        std::fs::write(set.claim_path("rc"), foreign).unwrap();
        assert_eq!(set.shared.release_all(), 2);
        assert!(!set.claim_path("ra").is_file());
        assert!(!set.claim_path("rb").is_file());
        assert!(set.claim_path("rc").is_file(), "foreign claim untouched");
        // The leases' own Drop releases are now no-ops.
        drop(a);
        drop(b);
        assert!(set.claim_path("rc").is_file());
        cleanup(&set);
    }

    #[test]
    fn malformed_env_knob_is_a_config_error() {
        // `parse_env_value` is the pure core `ClaimSet::open` routes
        // through; asserting on it avoids mutating the process env in a
        // parallel test binary.
        let err = sraps_types::parse_env_value::<u64>("SRAPS_CLAIM_TTL_MS", Some("30s"))
            .expect_err("malformed TTL must not silently default");
        assert!(matches!(err, SrapsError::Config(_)), "got {err:?}");
    }

    #[test]
    fn backoff_is_jittered_and_bounded() {
        let set = temp_set("jitter", DEFAULT_TTL);
        let base = set.poll();
        let delays: Vec<Duration> = (0..16).map(|r| set.backoff("k", r)).collect();
        for d in &delays {
            assert!(*d >= base && *d < base * 2, "{d:?} outside [base, 2*base)");
        }
        assert!(
            delays.windows(2).any(|w| w[0] != w[1]),
            "jitter must vary across rounds"
        );
        cleanup(&set);
    }
}
