//! **sraps-exp** — the experiment-orchestration layer above
//! [`sraps_core`].
//!
//! Every result in the source paper is a *fleet* of S-RAPS runs compared
//! against each other: Fig 4 crosses policies × backfills on one recorded
//! window, Fig 8 replays one day under five incentive policies, Fig 10
//! pits ML scheduling against baselines, and Table 1 spans five systems.
//! This crate is the subsystem that expresses and executes such fleets:
//!
//! * [`ExperimentMatrix`] — a declarative cross-product over axes
//!   (systems × loads × seeds × policies × backfills × cooling ×
//!   power caps), or explicit policy/backfill pairs, over synthetic
//!   workloads or prebuilt [`sraps_data::scenario`] datasets;
//! * [`SweepRunner`] — a work-stealing multi-threaded executor
//!   (std `thread::scope` + a shared atomic cursor) whose collected
//!   results are **bit-identical** regardless of `--jobs`: cells land in
//!   matrix order and every metric is a pure function of the simulation;
//! * [`CellCache`] — a content-addressed on-disk memo of finished cells:
//!   every cell is a pure function of (workload plan, cell spec), so its
//!   metrics are stored under a canonical fingerprint
//!   ([`sraps_core::fingerprint`]) and re-running a matrix after editing
//!   one axis only simulates the cells that axis touched;
//! * [`Report`] — aggregation of cell outputs into comparison tables
//!   (wait/utilization/power/energy deltas against a baseline cell,
//!   seed-averaged summaries) with CSV and JSON export — byte-identical
//!   whether the cells were simulated, cached, or metrics-only.
//!
//! The `sraps sweep` CLI subcommand ([`cli`]) is a thin veneer over these
//! types; benches and integration tests drive them directly.
//!
//! # Quickstart
//!
//! ```
//! use sraps_exp::{ExperimentMatrix, Report, SweepRunner};
//! use sraps_types::SimDuration;
//!
//! let matrix = ExperimentMatrix::synthetic(["lassen"])
//!     .span(SimDuration::hours(2))
//!     .loads([0.6])
//!     .seed_count(1)
//!     .policies(["fcfs", "sjf"])
//!     .backfills(["easy"]);
//! let results = SweepRunner::new(2).run(&matrix).unwrap();
//! assert_eq!(results.cells.len(), 2);
//! let report = Report::from_results(&results);
//! assert_eq!(report.to_csv().lines().count(), 3); // header + 2 cells
//! ```

pub mod cache;
pub mod cell;
pub mod claims;
pub mod cli;
pub mod faults;
pub mod matrix;
pub mod metrics;
pub mod report;
pub mod runner;

pub use cache::{CellCache, CACHE_SCHEMA_VERSION};
pub use cell::{CellSpec, MaterializedWorkload, WorkloadPlan};
pub use claims::{release_all_live, ClaimOutcome, ClaimSet, Lease};
pub use faults::FaultPlan;
pub use matrix::{ExperimentMatrix, PrebuiltWorkload};
pub use metrics::CellMetrics;
pub use report::{Report, ReportRow};
pub use runner::{
    execute_single, CellFailure, CellOutcome, CellResult, SweepOptions, SweepResults, SweepRunner,
    DEFAULT_BATCH_MAX_LANES,
};
