//! [`ExperimentMatrix`]: the declarative description of a sweep.
//!
//! A matrix is a workload axis (synthetic systems × loads × seeds, or
//! prebuilt datasets such as the paper scenarios) crossed with a schedule
//! axis (policies × backfills, or explicit pairs) and run-shape axes
//! (cooling on/off, power caps). [`ExperimentMatrix::expand`] flattens it
//! into concrete [`CellSpec`]s plus the [`WorkloadPlan`]s the cells share,
//! validating every name eagerly so a typo fails before any simulation
//! starts.

use crate::cell::{CellSpec, WorkloadPlan};
use sraps_acct::Accounts;
use sraps_core::{EngineMode, SchedulerSelect};
use sraps_data::scenario::Scenario;
use sraps_data::Dataset;
use sraps_sched::{BackfillKind, PolicyKind};
use sraps_systems::{presets, SystemConfig};
use sraps_types::{Result, SimDuration, SimTime, SrapsError};
use std::sync::Arc;

/// A ready-made workload (dataset already built): what a paper
/// [`Scenario`] or a custom study supplies directly.
#[derive(Debug, Clone)]
pub struct PrebuiltWorkload {
    /// Short label used in cell names and reports (e.g. `fig4-pm100-day50`).
    pub label: String,
    pub config: SystemConfig,
    pub dataset: Arc<Dataset>,
    /// Simulation window, when the workload documents one.
    pub window: Option<(SimTime, SimTime)>,
}

impl From<Scenario> for PrebuiltWorkload {
    fn from(s: Scenario) -> Self {
        PrebuiltWorkload {
            label: s.label.to_string(),
            config: s.config,
            dataset: Arc::new(s.dataset),
            window: Some((s.sim_start, s.sim_end)),
        }
    }
}

/// The workload side of the matrix.
#[derive(Debug, Clone)]
enum WorkloadAxis {
    /// Synthetic datasets: systems × loads × seeds at one span/scale.
    Synthetic {
        systems: Vec<String>,
        loads: Vec<f64>,
        seeds: Vec<u64>,
        span: SimDuration,
        scale: f64,
    },
    /// Caller-provided datasets (paper scenarios, custom traces).
    Prebuilt(Vec<PrebuiltWorkload>),
}

/// Declarative sweep description. Build with [`ExperimentMatrix::synthetic`]
/// or [`ExperimentMatrix::scenarios`], chain axis setters, then hand to
/// [`crate::SweepRunner`].
#[derive(Debug, Clone)]
pub struct ExperimentMatrix {
    workloads: WorkloadAxis,
    policies: Vec<String>,
    backfills: Vec<String>,
    /// Explicit (policy, backfill) pairs; overrides the cross-product.
    pairs: Option<Vec<(String, String)>>,
    cooling: Vec<bool>,
    power_caps_kw: Vec<Option<f64>>,
    /// Cap-switch offset: capped cells bind their cap only from
    /// `sim_start + cap_at` (the prefix before it is shared — see
    /// [`crate::SweepOptions::prefix_share`]).
    cap_at: Option<SimDuration>,
    scheduler: SchedulerSelect,
    /// Main-loop core for every cell (default: the hybrid event core).
    engine: EngineMode,
    accounts_in: Option<Accounts>,
}

impl ExperimentMatrix {
    /// Sweep over synthetic workloads for the named systems
    /// (`frontier | marconi100 | fugaku | lassen | adastra`).
    pub fn synthetic<I, S>(systems: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ExperimentMatrix {
            workloads: WorkloadAxis::Synthetic {
                systems: systems.into_iter().map(Into::into).collect(),
                loads: vec![0.8],
                seeds: vec![42],
                span: SimDuration::days(1),
                scale: 1.0,
            },
            policies: vec!["fcfs".into()],
            backfills: vec!["none".into()],
            pairs: None,
            cooling: vec![false],
            power_caps_kw: vec![None],
            cap_at: None,
            scheduler: SchedulerSelect::Default,
            engine: EngineMode::default(),
            accounts_in: None,
        }
    }

    /// Sweep over prebuilt workloads (paper scenarios or custom datasets).
    pub fn scenarios<I, W>(workloads: I) -> Self
    where
        I: IntoIterator<Item = W>,
        W: Into<PrebuiltWorkload>,
    {
        ExperimentMatrix {
            workloads: WorkloadAxis::Prebuilt(workloads.into_iter().map(Into::into).collect()),
            policies: vec!["fcfs".into()],
            backfills: vec!["none".into()],
            pairs: None,
            cooling: vec![false],
            power_caps_kw: vec![None],
            cap_at: None,
            scheduler: SchedulerSelect::Default,
            engine: EngineMode::default(),
            accounts_in: None,
        }
    }

    /// One prebuilt workload — the common single-scenario study.
    pub fn scenario(workload: impl Into<PrebuiltWorkload>) -> Self {
        Self::scenarios([workload.into()])
    }

    // ------------------------------------------------- axis setters

    pub fn policies<I, S>(mut self, policies: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.policies = policies.into_iter().map(Into::into).collect();
        self
    }

    pub fn backfills<I, S>(mut self, backfills: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.backfills = backfills.into_iter().map(Into::into).collect();
        self
    }

    /// Explicit (policy, backfill) combinations instead of the full
    /// cross-product — how the figure studies pick their four runs.
    pub fn pairs<I, A, B>(mut self, pairs: I) -> Self
    where
        I: IntoIterator<Item = (A, B)>,
        A: Into<String>,
        B: Into<String>,
    {
        self.pairs = Some(
            pairs
                .into_iter()
                .map(|(p, b)| (p.into(), b.into()))
                .collect(),
        );
        self
    }

    /// Offered-load axis for synthetic workloads.
    pub fn loads<I: IntoIterator<Item = f64>>(mut self, loads: I) -> Self {
        if let WorkloadAxis::Synthetic { loads: l, .. } = &mut self.workloads {
            *l = loads.into_iter().collect();
        }
        self
    }

    /// Explicit seed list for synthetic workloads.
    pub fn seeds<I: IntoIterator<Item = u64>>(mut self, seeds: I) -> Self {
        if let WorkloadAxis::Synthetic { seeds: s, .. } = &mut self.workloads {
            *s = seeds.into_iter().collect();
        }
        self
    }

    /// `n` consecutive seeds starting at 42 (the artifact's default).
    pub fn seed_count(self, n: u64) -> Self {
        self.seed_count_from(42, n)
    }

    /// `n` consecutive seeds starting at `base`.
    pub fn seed_count_from(self, base: u64, n: u64) -> Self {
        self.seeds((0..n).map(|i| base + i))
    }

    /// Synthetic workload span (default 1 day).
    pub fn span(mut self, span: SimDuration) -> Self {
        if let WorkloadAxis::Synthetic { span: s, .. } = &mut self.workloads {
            *s = span;
        }
        self
    }

    /// Scale factor for large machines (as `sraps --scale`).
    pub fn scale(mut self, scale: f64) -> Self {
        if let WorkloadAxis::Synthetic { scale: f, .. } = &mut self.workloads {
            *f = scale;
        }
        self
    }

    /// Cooling axis: `[false]` (default), `[true]`, or both.
    pub fn cooling<I: IntoIterator<Item = bool>>(mut self, cooling: I) -> Self {
        self.cooling = cooling.into_iter().collect();
        self
    }

    /// Run every cell with the cooling model on.
    pub fn with_cooling(self) -> Self {
        self.cooling([true])
    }

    /// Facility power-cap axis (`None` = uncapped).
    pub fn power_caps_kw<I: IntoIterator<Item = Option<f64>>>(mut self, caps: I) -> Self {
        self.power_caps_kw = caps.into_iter().collect();
        self
    }

    /// Defer every cell's power cap until `at` past the window start
    /// (uncapped cells are unaffected). Cells that differ only in the
    /// cap value then share their pre-switch prefix, which
    /// [`crate::SweepOptions::prefix_share`] simulates once and forks.
    pub fn power_cap_at(mut self, at: SimDuration) -> Self {
        self.cap_at = Some(at);
        self
    }

    /// Scheduler backend for every cell (default: builtin).
    pub fn scheduler(mut self, scheduler: SchedulerSelect) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Main-loop core for every cell (default: the hybrid event core;
    /// `EngineMode::Tick` restores the paper's fixed-tick loop).
    pub fn engine(mut self, engine: EngineMode) -> Self {
        self.engine = engine;
        self
    }

    /// Collection-phase accounts for the experimental incentive scheduler.
    pub fn accounts_in(mut self, accounts: Accounts) -> Self {
        self.accounts_in = Some(accounts);
        self
    }

    // ------------------------------------------------- expansion

    /// The (policy, backfill) combinations this matrix runs.
    fn schedule_pairs(&self) -> Vec<(String, String)> {
        match &self.pairs {
            Some(p) => p.clone(),
            None => self
                .policies
                .iter()
                .flat_map(|p| self.backfills.iter().map(move |b| (p.clone(), b.clone())))
                .collect(),
        }
    }

    /// Number of cells the matrix expands to.
    pub fn cell_count(&self) -> usize {
        let workloads = match &self.workloads {
            WorkloadAxis::Synthetic {
                systems,
                loads,
                seeds,
                ..
            } => systems.len() * loads.len() * seeds.len(),
            WorkloadAxis::Prebuilt(w) => w.len(),
        };
        workloads * self.schedule_pairs().len() * self.cooling.len() * self.power_caps_kw.len()
    }

    /// Flatten into workload plans and cell specs, validating every axis
    /// value. Cell order is the deterministic matrix order: workloads
    /// outermost, then schedule pairs, cooling, power caps.
    pub fn expand(&self) -> Result<(Vec<WorkloadPlan>, Vec<CellSpec>)> {
        let pairs = self.schedule_pairs();
        if pairs.is_empty() {
            return Err(SrapsError::Config(
                "matrix has no policy/backfill pairs".into(),
            ));
        }
        for (p, b) in &pairs {
            PolicyKind::parse(p)
                .ok_or_else(|| SrapsError::Config(format!("unknown policy '{p}'")))?;
            BackfillKind::parse(b)
                .ok_or_else(|| SrapsError::Config(format!("unknown backfill '{b}'")))?;
        }
        if self.cooling.is_empty() {
            return Err(SrapsError::Config(
                "matrix has an empty cooling axis".into(),
            ));
        }
        if self.power_caps_kw.is_empty() {
            return Err(SrapsError::Config(
                "matrix has an empty power-cap axis".into(),
            ));
        }
        if self.scheduler == SchedulerSelect::Experimental && self.accounts_in.is_none() {
            return Err(SrapsError::Config(
                "experimental scheduler sweeps need accounts_in (collection-phase accounts)".into(),
            ));
        }

        let workloads = self.workload_plans()?;
        if workloads.is_empty() {
            return Err(SrapsError::Config("matrix has no workloads".into()));
        }

        // Label components are included only for axes that actually vary,
        // so small studies keep the familiar `<policy>-<backfill>` names.
        let many_workloads = workloads.len() > 1;
        let many_cooling = self.cooling.len() > 1;
        let many_caps = self.power_caps_kw.len() > 1;

        let mut cells = Vec::with_capacity(self.cell_count());
        for (w_ix, plan) in workloads.iter().enumerate() {
            for (policy, backfill) in &pairs {
                for &cooling in &self.cooling {
                    for &cap in &self.power_caps_kw {
                        let mut label = String::new();
                        if many_workloads {
                            label.push_str(&plan.label());
                            label.push('/');
                        }
                        label.push_str(policy);
                        label.push('-');
                        label.push_str(backfill);
                        if many_cooling && cooling {
                            label.push_str("+cool");
                        }
                        if many_caps {
                            if let Some(kw) = cap {
                                // Shortest-roundtrip float: distinct caps
                                // always yield distinct labels.
                                label.push_str(&format!("+cap{kw}"));
                                if let Some(at) = self.cap_at {
                                    label.push_str(&format!("@{}s", at.as_secs()));
                                }
                            }
                        }
                        cells.push(CellSpec {
                            index: cells.len(),
                            label,
                            workload: w_ix,
                            policy: policy.clone(),
                            backfill: backfill.clone(),
                            cooling,
                            power_cap_kw: cap,
                            cap_at: self.cap_at,
                            scheduler: self.scheduler.clone(),
                            engine: self.engine,
                            accounts_in: self.accounts_in.clone(),
                        });
                    }
                }
            }
        }
        // Labels key reports, `SweepResults::cell`, and history file
        // names — a collision would silently merge or overwrite cells.
        // (Cache keys hash the underlying axis values instead of the
        // label, so this check also guarantees one cache entry per cell
        // within a run.)
        let mut seen = std::collections::HashSet::new();
        for cell in &cells {
            if !seen.insert(&cell.label) {
                return Err(SrapsError::Config(format!(
                    "duplicate cell label '{}' — repeated axis values?",
                    cell.label
                )));
            }
        }
        Ok((workloads, cells))
    }

    fn workload_plans(&self) -> Result<Vec<WorkloadPlan>> {
        match &self.workloads {
            WorkloadAxis::Prebuilt(list) => Ok(list
                .iter()
                .cloned()
                .map(|w| WorkloadPlan::Prebuilt(Box::new(w)))
                .collect()),
            WorkloadAxis::Synthetic {
                systems,
                loads,
                seeds,
                span,
                scale,
            } => {
                if systems.is_empty() || loads.is_empty() || seeds.is_empty() {
                    return Err(SrapsError::Config(
                        "synthetic matrix needs ≥1 system, load, and seed".into(),
                    ));
                }
                let many_seeds = seeds.len() > 1;
                let many_loads = loads.len() > 1;
                let mut plans = Vec::new();
                for system in systems {
                    // Validate the system name up front.
                    presets::system_by_name(system)
                        .ok_or_else(|| SrapsError::Config(format!("unknown system '{system}'")))?;
                    for &load in loads {
                        if !load.is_finite() || load <= 0.0 {
                            return Err(SrapsError::Config(format!("non-positive load {load}")));
                        }
                        for &seed in seeds {
                            let mut group = system.clone();
                            if many_loads {
                                group.push_str(&format!("-l{load:.2}"));
                            }
                            let mut label = group.clone();
                            if many_seeds {
                                label.push_str(&format!("-s{seed}"));
                            }
                            plans.push(WorkloadPlan::Synthetic {
                                label,
                                group,
                                system: system.clone(),
                                load,
                                seed,
                                span: *span,
                                scale: *scale,
                            });
                        }
                    }
                }
                Ok(plans)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_product_expands_in_matrix_order() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .policies(["fcfs", "sjf", "priority"])
            .backfills(["none", "easy"])
            .seed_count(3);
        assert_eq!(m.cell_count(), 18);
        let (workloads, cells) = m.expand().unwrap();
        assert_eq!(workloads.len(), 3, "three seeds of one system/load");
        assert_eq!(cells.len(), 18);
        // Deterministic order: workload-major, then pairs.
        assert_eq!(cells[0].label, "lassen-s42/fcfs-none");
        assert_eq!(cells[1].label, "lassen-s42/fcfs-easy");
        assert_eq!(cells[6].label, "lassen-s43/fcfs-none");
        for (i, c) in cells.iter().enumerate() {
            assert_eq!(c.index, i);
        }
    }

    #[test]
    fn pairs_override_cross_product() {
        let m = ExperimentMatrix::synthetic(["adastra"])
            .policies(["ignored"])
            .pairs([("replay", "none"), ("fcfs", "easy")]);
        let (_, cells) = m.expand().unwrap();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].label, "replay-none");
        assert_eq!(cells[1].label, "fcfs-easy");
    }

    #[test]
    fn bad_names_fail_eagerly() {
        assert!(ExperimentMatrix::synthetic(["lassen"])
            .policies(["frobnicate"])
            .expand()
            .is_err());
        assert!(ExperimentMatrix::synthetic(["lassen"])
            .backfills(["frobnicate"])
            .expand()
            .is_err());
        assert!(ExperimentMatrix::synthetic(["summit"]).expand().is_err());
        assert!(ExperimentMatrix::synthetic(["lassen"])
            .loads([0.0])
            .expand()
            .is_err());
    }

    #[test]
    fn experimental_scheduler_requires_accounts() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .policies(["acct_edp"])
            .backfills(["firstfit"])
            .scheduler(SchedulerSelect::Experimental);
        assert!(m.expand().is_err());
        let m = m.accounts_in(Accounts::new(1.0));
        assert!(m.expand().is_ok());
    }

    #[test]
    fn label_axes_appear_only_when_varying() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .policies(["fcfs"])
            .backfills(["easy"])
            .power_caps_kw([None, Some(1200.0)]);
        let (_, cells) = m.expand().unwrap();
        assert_eq!(cells[0].label, "fcfs-easy");
        assert_eq!(cells[1].label, "fcfs-easy+cap1200");
    }

    #[test]
    fn close_power_caps_get_distinct_labels() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .policies(["fcfs"])
            .backfills(["easy"])
            .power_caps_kw([Some(1200.2), Some(1200.4)]);
        let (_, cells) = m.expand().unwrap();
        assert_eq!(cells[0].label, "fcfs-easy+cap1200.2");
        assert_eq!(cells[1].label, "fcfs-easy+cap1200.4");
    }

    #[test]
    fn expanded_cells_have_distinct_cache_keys() {
        // Every schedule-axis combination must fingerprint differently
        // over the same workload — aliasing keys would silently serve one
        // cell's metrics as another's.
        let m = ExperimentMatrix::synthetic(["lassen"])
            .policies(["fcfs", "sjf"])
            .backfills(["none", "easy"])
            .cooling([false, true])
            .power_caps_kw([None, Some(1200.0)]);
        let (plans, cells) = m.expand().unwrap();
        let wfp = plans[0].fingerprint().unwrap();
        let keys: std::collections::HashSet<String> =
            cells.iter().map(|c| c.fingerprint(wfp).hex()).collect();
        assert_eq!(keys.len(), cells.len(), "cache keys collided");
    }

    #[test]
    fn cap_at_salts_labels_and_keys_of_capped_cells_only() {
        let base = ExperimentMatrix::synthetic(["lassen"])
            .policies(["fcfs"])
            .backfills(["easy"])
            .power_caps_kw([None, Some(1200.0)]);
        let late = base.clone().power_cap_at(SimDuration::minutes(30));
        let (plans, plain) = base.expand().unwrap();
        let (_, deferred) = late.expand().unwrap();
        assert_eq!(deferred[0].label, "fcfs-easy");
        assert_eq!(deferred[1].label, "fcfs-easy+cap1200@1800s");
        assert_eq!(deferred[1].late_cap(), Some(SimDuration::minutes(30)));
        assert_eq!(deferred[0].late_cap(), None, "uncapped cell has no switch");
        let wfp = plans[0].fingerprint().unwrap();
        // An uncapped cell keeps its cache key across `--cap-at` settings;
        // a capped cell is salted by the switch instant.
        assert_eq!(plain[0].fingerprint(wfp), deferred[0].fingerprint(wfp));
        assert_ne!(plain[1].fingerprint(wfp), deferred[1].fingerprint(wfp));
        // The shared prefix of a deferred-cap cell keys like its uncapped
        // sibling's simulation prefix — cap stripped, switch salted in.
        let pfp = deferred[1].prefix_fingerprint(wfp, SimDuration::minutes(30));
        assert_eq!(
            pfp,
            deferred[0].prefix_fingerprint(wfp, SimDuration::minutes(30)),
            "cells differing only in cap share one prefix key"
        );
        assert_ne!(pfp, deferred[0].fingerprint(wfp));
    }

    #[test]
    fn duplicate_cells_are_rejected() {
        let m = ExperimentMatrix::synthetic(["lassen"]).pairs([("fcfs", "easy"), ("fcfs", "easy")]);
        let err = m.expand().unwrap_err();
        assert!(err.to_string().contains("duplicate cell label"), "{err}");
    }
}
