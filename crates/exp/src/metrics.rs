//! [`CellMetrics`]: the deterministic scalar summary of one cell.
//!
//! Everything here is a pure function of the simulation (never of wall
//! clock, thread count, or execution order), which is what lets a sweep's
//! aggregate report be bit-identical between `--jobs 1` and `--jobs N`.

use serde::{Deserialize, Serialize};
use sraps_core::SimOutput;

/// Scalar summary of one finished cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellMetrics {
    pub jobs_completed: u64,
    /// Jobs still running when the window closed (no outcome recorded);
    /// non-zero flags a truncated window whose wait/energy aggregates
    /// under-count the workload.
    pub jobs_censored: u64,
    /// Mean node-occupancy utilization over the window, in \[0,1\].
    pub mean_utilization: f64,
    /// Mean total facility power, kW.
    pub mean_power_kw: f64,
    /// Peak total facility power, kW.
    pub peak_power_kw: f64,
    /// Largest tick-to-tick power change, kW (the smoothing metric).
    pub max_power_swing_kw: f64,
    /// Total energy over the window, MWh.
    pub energy_mwh: f64,
    /// Mean job wait, seconds.
    pub avg_wait_secs: f64,
    /// 99th-percentile job wait, seconds (tail fairness).
    pub p99_wait_secs: f64,
    /// Mean job turnaround (submit → end), seconds.
    pub avg_turnaround_secs: f64,
    /// Energy-weighted PUE; `None` when the cooling model was off.
    pub run_pue: Option<f64>,
}

impl CellMetrics {
    pub fn from_output(out: &SimOutput) -> Self {
        CellMetrics {
            jobs_completed: out.stats.jobs_completed,
            jobs_censored: out.stats.jobs_censored,
            mean_utilization: out.mean_utilization(),
            mean_power_kw: out.mean_power_kw(),
            peak_power_kw: out.peak_power_kw(),
            max_power_swing_kw: out.max_power_swing_kw(),
            energy_mwh: out.stats.total_energy_mwh,
            avg_wait_secs: out.stats.avg_wait_secs(),
            p99_wait_secs: out.stats.wait_percentile_secs(0.99),
            avg_turnaround_secs: out.stats.avg_turnaround_secs(),
            run_pue: out.run_pue(),
        }
    }

    /// All-zero placeholder carried by a cell that exhausted its retries
    /// and landed in the failed-cells table. Never aggregated into
    /// reports — report builders skip failed cells entirely.
    pub fn failed() -> Self {
        CellMetrics {
            jobs_completed: 0,
            jobs_censored: 0,
            mean_utilization: 0.0,
            mean_power_kw: 0.0,
            peak_power_kw: 0.0,
            max_power_swing_kw: 0.0,
            energy_mwh: 0.0,
            avg_wait_secs: 0.0,
            p99_wait_secs: 0.0,
            avg_turnaround_secs: 0.0,
            run_pue: None,
        }
    }

    /// Element-wise mean over a set of metrics (seed aggregation). `None`
    /// PUEs poison the mean, mirroring "cooling was off somewhere".
    pub fn mean(samples: &[&CellMetrics]) -> Option<CellMetrics> {
        if samples.is_empty() {
            return None;
        }
        let n = samples.len() as f64;
        let avg = |f: fn(&CellMetrics) -> f64| samples.iter().map(|m| f(m)).sum::<f64>() / n;
        let pues: Vec<f64> = samples.iter().filter_map(|m| m.run_pue).collect();
        Some(CellMetrics {
            jobs_completed: (samples.iter().map(|m| m.jobs_completed).sum::<u64>() as f64 / n)
                .round() as u64,
            jobs_censored: (samples.iter().map(|m| m.jobs_censored).sum::<u64>() as f64 / n).round()
                as u64,
            mean_utilization: avg(|m| m.mean_utilization),
            mean_power_kw: avg(|m| m.mean_power_kw),
            peak_power_kw: avg(|m| m.peak_power_kw),
            max_power_swing_kw: avg(|m| m.max_power_swing_kw),
            energy_mwh: avg(|m| m.energy_mwh),
            avg_wait_secs: avg(|m| m.avg_wait_secs),
            p99_wait_secs: avg(|m| m.p99_wait_secs),
            avg_turnaround_secs: avg(|m| m.avg_turnaround_secs),
            run_pue: (pues.len() == samples.len())
                .then(|| pues.iter().sum::<f64>() / pues.len() as f64),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(util: f64, pue: Option<f64>) -> CellMetrics {
        CellMetrics {
            jobs_completed: 10,
            jobs_censored: 1,
            mean_utilization: util,
            mean_power_kw: 100.0 * util,
            peak_power_kw: 200.0,
            max_power_swing_kw: 50.0,
            energy_mwh: 2.4,
            avg_wait_secs: 30.0,
            p99_wait_secs: 300.0,
            avg_turnaround_secs: 900.0,
            run_pue: pue,
        }
    }

    #[test]
    fn mean_averages_elementwise() {
        let (a, b) = (sample(0.4, Some(1.1)), sample(0.8, Some(1.3)));
        let m = CellMetrics::mean(&[&a, &b]).unwrap();
        assert!((m.mean_utilization - 0.6).abs() < 1e-12);
        assert!((m.mean_power_kw - 60.0).abs() < 1e-12);
        assert!((m.run_pue.unwrap() - 1.2).abs() < 1e-12);
        assert_eq!(m.jobs_completed, 10);
    }

    #[test]
    fn missing_pue_disables_the_mean_pue() {
        let (a, b) = (sample(0.4, Some(1.1)), sample(0.8, None));
        let m = CellMetrics::mean(&[&a, &b]).unwrap();
        assert_eq!(m.run_pue, None);
        assert!(CellMetrics::mean(&[]).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let a = sample(0.5, Some(1.06));
        let text = serde_json::to_string_pretty(&a).unwrap();
        let back: CellMetrics = serde_json::from_str(&text).unwrap();
        assert_eq!(a, back);
    }

    #[test]
    fn json_roundtrip_is_bit_exact_for_awkward_floats() {
        // The sweep cache serves metrics from JSON; warm-run reports are
        // byte-identical to cold runs only if every f64 survives the
        // write/parse cycle bit-for-bit (shortest-roundtrip formatting).
        // The PUE sits one ULP above 1.06, so its shortest-roundtrip
        // form needs every digit.
        let mut m = sample(0.1 + 0.2, Some(f64::from_bits(1.06f64.to_bits() + 1)));
        m.mean_power_kw = 1.0 / 3.0;
        m.energy_mwh = f64::MIN_POSITIVE; // subnormal-adjacent extreme
        m.avg_wait_secs = 9_007_199_254_740_993.0; // > 2^53
        m.p99_wait_secs = 1e-308;
        let back: CellMetrics =
            serde_json::from_str(&serde_json::to_string_pretty(&m).unwrap()).unwrap();
        for (a, b) in [
            (m.mean_utilization, back.mean_utilization),
            (m.mean_power_kw, back.mean_power_kw),
            (m.energy_mwh, back.energy_mwh),
            (m.avg_wait_secs, back.avg_wait_secs),
            (m.p99_wait_secs, back.p99_wait_secs),
            (m.run_pue.unwrap(), back.run_pue.unwrap()),
        ] {
            assert_eq!(a.to_bits(), b.to_bits(), "{a} drifted to {b}");
        }
    }
}
