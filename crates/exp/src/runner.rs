//! [`SweepRunner`]: multi-threaded, work-stealing execution of an
//! [`ExperimentMatrix`].
//!
//! Two properties drive the design:
//!
//! 1. **Determinism** — parallel output must be bit-identical to serial.
//!    Workers pull cell indices from a shared atomic cursor (cheap dynamic
//!    load balancing: a thread that lands a long replay cell doesn't stall
//!    the others), but every result is written into its cell's slot and
//!    the assembled `Vec` is in matrix order. Each cell's simulation is
//!    deterministic given (config, dataset), and datasets are built once
//!    per workload — so thread count and interleaving are unobservable.
//! 2. **Saturation** — cells vary wildly in cost (replay vs backfill,
//!    15-day vs 61 000 s windows), so static chunking would idle threads;
//!    the cursor gives single-cell granularity.
//!
//! Workloads materialize first (also cursor-parallel across unique
//! workloads), then cells run against the shared `Arc<Dataset>`s.

use crate::cell::{CellSpec, MaterializedWorkload};
use crate::matrix::ExperimentMatrix;
use crate::metrics::CellMetrics;
use sraps_core::{Engine, SimOutput};
use sraps_types::{Result, SrapsError};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One finished cell: its spec, its workload's label, the full simulation
/// output, and the scalar metrics reports aggregate.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub spec: CellSpec,
    pub workload_label: String,
    /// Seed-aggregation group of the workload (label minus seed).
    pub workload_group: String,
    /// Workload seed, when synthetic.
    pub seed: Option<u64>,
    pub metrics: CellMetrics,
    pub output: SimOutput,
}

/// Everything a sweep produced, cells in matrix order.
#[derive(Debug)]
pub struct SweepResults {
    pub cells: Vec<CellResult>,
    /// Materialized workload labels, for grouping in reports.
    pub workload_labels: Vec<String>,
    /// Wall-clock cost of the whole sweep (workloads + cells).
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
}

impl SweepResults {
    /// Cells grouped by workload, preserving matrix order inside groups.
    pub fn by_workload(&self) -> Vec<(String, Vec<&CellResult>)> {
        let mut groups: Vec<(String, Vec<&CellResult>)> = self
            .workload_labels
            .iter()
            .map(|l| (l.clone(), Vec::new()))
            .collect();
        for cell in &self.cells {
            groups[cell.spec.workload].1.push(cell);
        }
        groups.retain(|(_, cells)| !cells.is_empty());
        groups
    }

    /// Find a cell by its unique label.
    pub fn cell(&self, label: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.spec.label == label)
    }

    /// The outputs alone, in matrix order (for figure-style consumers).
    pub fn outputs(&self) -> Vec<&SimOutput> {
        self.cells.iter().map(|c| &c.output).collect()
    }
}

/// Work-stealing sweep executor.
#[derive(Debug, Clone)]
pub struct SweepRunner {
    jobs: usize,
    progress: bool,
}

impl SweepRunner {
    /// Run with exactly `jobs` worker threads (`0` ⇒ 1).
    pub fn new(jobs: usize) -> Self {
        SweepRunner {
            jobs: jobs.max(1),
            progress: false,
        }
    }

    /// Use every available core.
    pub fn auto() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Print per-cell progress lines to stderr (CLI mode).
    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Execute the matrix: expand, materialize workloads, run every cell.
    ///
    /// On cell failure the error of the *lowest-indexed* failing cell is
    /// returned (already-running cells finish first), keeping even the
    /// error path independent of thread count.
    pub fn run(&self, matrix: &ExperimentMatrix) -> Result<SweepResults> {
        let started = Instant::now();
        let (plans, cells) = matrix.expand()?;

        // Phase 1: datasets, cursor-parallel over unique workloads.
        let workloads: Vec<MaterializedWorkload> = {
            let results = run_indexed(self.jobs.min(plans.len().max(1)), plans.len(), |i| {
                plans[i].materialize()
            });
            collect_ordered(results)?
        };

        // Phase 2: cells, cursor-parallel, collected by index.
        let total = cells.len();
        let counter = AtomicUsize::new(0);
        let results = run_indexed(self.jobs.min(total.max(1)), total, |i| {
            let cell = &cells[i];
            let workload = &workloads[cell.workload];
            let cell_started = Instant::now();
            let sim = cell.build_sim(workload)?;
            let output = Engine::new(sim, &workload.dataset)?.run()?;
            if self.progress {
                let done = counter.fetch_add(1, Ordering::Relaxed) + 1;
                eprintln!(
                    "  [{done:>3}/{total}] {:<40} {:>6} jobs  util {:>5.1}%  {:>8.2}s",
                    cell.label,
                    output.stats.jobs_completed,
                    output.mean_utilization() * 100.0,
                    cell_started.elapsed().as_secs_f64(),
                );
            }
            Ok(CellResult {
                spec: cell.clone(),
                workload_label: workload.label.clone(),
                workload_group: workload.group.clone(),
                seed: workload.seed,
                metrics: CellMetrics::from_output(&output),
                output,
            })
        });
        let cells = collect_ordered(results)?;

        Ok(SweepResults {
            cells,
            workload_labels: workloads.iter().map(|w| w.label.clone()).collect(),
            wall: started.elapsed(),
            jobs: self.jobs,
        })
    }
}

/// Run `task(i)` for `i in 0..total` on `jobs` threads pulling indices
/// from a shared cursor; slot results by index. After any task fails, no
/// *new* indices are dispatched (in-flight tasks finish), so a failing
/// matrix doesn't burn through its remaining cells.
fn run_indexed<T, F>(jobs: usize, total: usize, task: F) -> Vec<Option<Result<T>>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let slots: Mutex<Vec<Option<Result<T>>>> = Mutex::new((0..total).map(|_| None).collect());
    if total == 0 {
        return slots.into_inner().unwrap();
    }
    let cursor = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let workers = jobs.clamp(1, total);
    if workers == 1 {
        // Serial fast path: no thread spawn overhead for tiny sweeps.
        let mut out = slots.into_inner().unwrap();
        for (i, slot) in out.iter_mut().enumerate() {
            let result = task(i);
            let stop = result.is_err();
            *slot = Some(result);
            if stop {
                break;
            }
        }
        return out;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                if failed.load(Ordering::Relaxed) {
                    break;
                }
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                let result = task(i);
                if result.is_err() {
                    failed.store(true, Ordering::Relaxed);
                }
                slots.lock().unwrap()[i] = Some(result);
            });
        }
    });
    slots.into_inner().unwrap()
}

/// Unwrap slotted results in index order; first (lowest-index) error wins.
fn collect_ordered<T>(slots: Vec<Option<Result<T>>>) -> Result<Vec<T>> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(SrapsError::Config(format!(
                    "internal: sweep cell {i} was never executed"
                )))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ExperimentMatrix;
    use sraps_types::SimDuration;

    fn small_matrix() -> ExperimentMatrix {
        ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(2))
            .loads([0.5])
            .seed_count(1)
            .pairs([("fcfs", "none"), ("fcfs", "easy"), ("sjf", "easy")])
    }

    #[test]
    fn runs_cells_in_matrix_order() {
        let results = SweepRunner::new(2).run(&small_matrix()).unwrap();
        assert_eq!(results.cells.len(), 3);
        let labels: Vec<&str> = results
            .cells
            .iter()
            .map(|c| c.spec.label.as_str())
            .collect();
        assert_eq!(labels, vec!["fcfs-none", "fcfs-easy", "sjf-easy"]);
        for c in &results.cells {
            assert!(
                c.metrics.jobs_completed > 0,
                "{} completed nothing",
                c.spec.label
            );
        }
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = SweepRunner::new(1).run(&small_matrix()).unwrap();
        let parallel = SweepRunner::new(4).run(&small_matrix()).unwrap();
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.spec.label, p.spec.label);
            assert_eq!(s.metrics, p.metrics, "cell {} diverged", s.spec.label);
            assert_eq!(s.output.times, p.output.times);
            assert_eq!(s.output.utilization, p.output.utilization);
        }
    }

    #[test]
    fn run_indexed_covers_every_slot() {
        let out = run_indexed(8, 100, |i| Ok(i * i));
        let vals = collect_ordered(out).unwrap();
        assert_eq!(vals, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn work_is_spread_across_worker_threads() {
        // Wall-clock speedup needs multiple hardware cores, but the
        // executor property we can assert anywhere is that >1 OS thread
        // actually executes tasks when jobs > 1 (work stealing, not a
        // serial loop behind a flag). A short sleep keeps the first
        // worker from draining the cursor before the others start.
        let out = run_indexed(4, 16, |i| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok((i, std::thread::current().id()))
        });
        let vals = collect_ordered(out).unwrap();
        let distinct: std::collections::HashSet<_> = vals.iter().map(|(_, tid)| *tid).collect();
        assert!(
            distinct.len() > 1,
            "expected multiple worker threads, saw {}",
            distinct.len()
        );
        // And the serial fast path stays on the caller's thread.
        let here = std::thread::current().id();
        let out = run_indexed(1, 4, |i| Ok((i, std::thread::current().id())));
        assert!(collect_ordered(out)
            .unwrap()
            .iter()
            .all(|(_, tid)| *tid == here));
    }

    #[test]
    fn first_error_is_deterministic() {
        for jobs in [1, 4] {
            let out = run_indexed(jobs, 10, |i| {
                if i % 3 == 1 {
                    Err(SrapsError::Config(format!("cell {i} boom")))
                } else {
                    Ok(i)
                }
            });
            let err = collect_ordered(out).unwrap_err();
            assert_eq!(err, SrapsError::Config("cell 1 boom".into()));
        }
    }

    #[test]
    fn by_workload_groups_cells() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(1))
            .loads([0.4])
            .seed_count(2)
            .pairs([("fcfs", "none")]);
        let results = SweepRunner::new(2).run(&m).unwrap();
        let groups = results.by_workload();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 1);
        assert!(results.cell("lassen-s42/fcfs-none").is_some());
    }
}
