//! [`SweepRunner`]: multi-threaded, work-stealing execution of an
//! [`ExperimentMatrix`], with optional content-addressed caching and a
//! bounded-memory metrics-only mode.
//!
//! Three properties drive the design:
//!
//! 1. **Determinism** — parallel output must be bit-identical to serial.
//!    Workers pull cell indices from a shared atomic cursor (cheap dynamic
//!    load balancing: a thread that lands a long replay cell doesn't stall
//!    the others), but every result is written into its cell's slot and
//!    the assembled `Vec` is in matrix order. Each cell's simulation is
//!    deterministic given (config, dataset), and datasets are built once
//!    per workload — so thread count and interleaving are unobservable.
//!    Caching preserves this: cached metrics roundtrip bit-exactly, so a
//!    warm run's reports are byte-identical to the cold run's.
//! 2. **Saturation** — cells vary wildly in cost (replay vs backfill,
//!    15-day vs 61 000 s windows), so static chunking would idle threads;
//!    the cursor gives single-cell granularity.
//! 3. **Bounded memory** — a full [`SimOutput`] holds tick-resolution
//!    histories; 100k-cell matrices cannot retain them all.
//!    [`SweepRunner::metrics_only`] folds each output into
//!    [`CellMetrics`] and drops it, making [`SweepResults`] O(cells ×
//!    metrics); [`SweepRunner::spill_histories`] optionally parks the
//!    power/util histories in the cache directory on the way down.
//!
//! Workloads materialize first (also cursor-parallel across unique
//! workloads), then cells run against the shared `Arc<Dataset>`s,
//! consulting the [`CellCache`] before simulating when one is configured.
//!
//! A fourth property rides on top of the original three —
//! **crash-safety**: with a cache directory configured, every miss is
//! guarded by a [`ClaimSet`] lease so N cooperating processes partition
//! one matrix without duplicating simulation; each cell simulates
//! inside `catch_unwind` with bounded, jittered retry, so a poisoned
//! cell (or an injected [`crate::faults`] fault) degrades to a
//! [`CellFailure`] row instead of tearing down the sweep; and cache
//! write-back errors degrade to a warning plus counter while the result
//! still flows to the report.

use crate::cache::CellCache;
use crate::cell::{CellSpec, MaterializedWorkload, WorkloadPlan};
use crate::claims::{ClaimOutcome, ClaimSet, Lease};
use crate::faults;
use crate::matrix::ExperimentMatrix;
use crate::metrics::CellMetrics;
use sraps_core::{
    BatchedEngine, Engine, EngineSnapshot, Fingerprint, SimConfig, SimOutput, SimWindow,
};
use sraps_obs::{Counter, Phase as ObsPhase, Profile};
use sraps_types::{Result, SimDuration, SrapsError};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Duration;

/// A workload materialized at most once, on demand. In a cached sweep
/// the dataset is only built when some cell actually misses — a fully
/// warm re-run of a 100k-cell matrix synthesizes nothing at all.
struct LazyWorkload<'a> {
    plan: &'a WorkloadPlan,
    slot: OnceLock<Result<MaterializedWorkload>>,
}

impl<'a> LazyWorkload<'a> {
    fn new(plan: &'a WorkloadPlan) -> Self {
        LazyWorkload {
            plan,
            slot: OnceLock::new(),
        }
    }

    /// Materialize (once; concurrent callers block on the first).
    fn get(&self) -> Result<&MaterializedWorkload> {
        self.slot
            .get_or_init(|| self.plan.materialize())
            .as_ref()
            .map_err(Clone::clone)
    }
}

/// Why a cell's result is a placeholder: it panicked or errored on
/// every attempt. Failed cells are excluded from report rows and listed
/// in the failed-cells table instead; any failure makes `sraps sweep`
/// exit nonzero.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CellFailure {
    /// Rendered error of the *last* attempt.
    pub error: String,
    /// Total attempts made (1 + retries).
    pub attempts: u32,
}

/// One finished cell: its spec, its workload's label, the scalar metrics
/// reports aggregate, and — in full-retention cold runs — the simulation
/// output.
#[derive(Debug, Clone)]
pub struct CellResult {
    pub spec: CellSpec,
    pub workload_label: String,
    /// Seed-aggregation group of the workload (label minus seed).
    pub workload_group: String,
    /// Workload seed, when synthetic.
    pub seed: Option<u64>,
    pub metrics: CellMetrics,
    /// Full simulation output. `None` on cache hits (the cache stores
    /// metrics, not histories) and in metrics-only mode.
    pub output: Option<SimOutput>,
    /// Content-addressed key, when caching was enabled.
    pub cache_key: Option<String>,
    /// True when the metrics were deserialized from the cache instead of
    /// simulated.
    pub from_cache: bool,
    /// This cell's observability delta when profiling was enabled: for a
    /// miss, the engine's phases and counters; for a hit, the cache-read
    /// span and hit counter (never zeroed engine phases). Each cell runs
    /// wholly on one worker thread, so the delta is deterministic for any
    /// `--jobs` value.
    pub profile: Option<Profile>,
    /// `Some` when the cell exhausted its retries: `metrics` is the
    /// all-zero placeholder and the cell is excluded from report rows.
    pub failure: Option<CellFailure>,
}

/// Everything a sweep produced, cells in matrix order.
#[derive(Debug)]
pub struct SweepResults {
    pub cells: Vec<CellResult>,
    /// Materialized workload labels, for grouping in reports.
    pub workload_labels: Vec<String>,
    /// Wall-clock cost of the whole sweep (workloads + cells).
    pub wall: Duration,
    /// Worker threads used.
    pub jobs: usize,
    /// Cache directory consulted, when caching was enabled.
    pub cache_dir: Option<PathBuf>,
    /// Work items (workloads + cells) claimed off the shared cursor by
    /// *spawned* worker threads — 0 on the serial fast path.
    pub worker_steals: u64,
    /// Shared-prefix groups formed when prefix sharing was enabled.
    pub prefix_groups: usize,
    /// Cells that ran as forks of a shared prefix.
    pub prefix_forks: usize,
}

impl SweepResults {
    /// Cells grouped by workload, preserving matrix order inside groups.
    pub fn by_workload(&self) -> Vec<(String, Vec<&CellResult>)> {
        let mut groups: Vec<(String, Vec<&CellResult>)> = self
            .workload_labels
            .iter()
            .map(|l| (l.clone(), Vec::new()))
            .collect();
        for cell in &self.cells {
            groups[cell.spec.workload].1.push(cell);
        }
        groups.retain(|(_, cells)| !cells.is_empty());
        groups
    }

    /// Find a cell by its unique label.
    pub fn cell(&self, label: &str) -> Option<&CellResult> {
        self.cells.iter().find(|c| c.spec.label == label)
    }

    /// The retained outputs, in matrix order. In a full-retention
    /// uncached sweep this is every cell (what figure-style consumers
    /// run); cache hits and metrics-only cells are skipped.
    pub fn outputs(&self) -> Vec<&SimOutput> {
        self.cells
            .iter()
            .filter_map(|c| c.output.as_ref())
            .collect()
    }

    /// Cells whose metrics came from the cache.
    pub fn cache_hits(&self) -> usize {
        self.cells.iter().filter(|c| c.from_cache).count()
    }

    /// Cells that were simulated (and, when caching, written back).
    pub fn cache_misses(&self) -> usize {
        self.cells.len() - self.cache_hits()
    }

    /// Cells that exhausted their retries, in matrix order.
    pub fn failed_cells(&self) -> Vec<&CellResult> {
        self.cells.iter().filter(|c| c.failure.is_some()).collect()
    }

    /// The per-cell profiles merged in matrix order — deterministic
    /// counters regardless of `--jobs` (phase *timings* are wall-clock
    /// and naturally vary). `None` when profiling was disabled.
    pub fn merged_profile(&self) -> Option<Profile> {
        let mut merged: Option<Profile> = None;
        for cell in &self.cells {
            if let Some(p) = &cell.profile {
                merged.get_or_insert_with(Profile::default).merge(p);
            }
        }
        merged
    }

    /// The display profile `--profile` renders: the merged per-cell
    /// deltas plus the sweep-level wall clock and worker-steal count
    /// (which depend on thread scheduling and so stay out of
    /// [`SweepResults::merged_profile`]).
    pub fn profile(&self) -> Profile {
        let mut p = self.merged_profile().unwrap_or_default();
        p.record_phase(
            ObsPhase::SweepRun.name(),
            1,
            self.wall.as_nanos().min(u64::MAX as u128) as u64,
        );
        p.add_counter(Counter::SweepWorkerSteals.name(), self.worker_steals);
        p
    }
}

/// Default lane cap for batched sweeps (`--batch-max-lanes`).
pub const DEFAULT_BATCH_MAX_LANES: usize = 32;

/// Everything a sweep can be configured with, in one builder-style
/// bundle shared by [`SweepRunner`] and both CLI paths. Construct with
/// [`SweepOptions::new`] (or `default()`), chain setters, hand to
/// [`SweepRunner::with_options`].
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Print per-cell progress lines to stderr (CLI mode).
    pub progress: bool,
    /// Memoize cells under this directory: hits skip simulation, misses
    /// simulate and write back atomically. Cached cells return no
    /// [`SimOutput`], so enable for metrics/report consumers, not figure
    /// replays.
    pub cache_dir: Option<PathBuf>,
    /// Drop each [`SimOutput`] after folding it into [`CellMetrics`]:
    /// sweep memory becomes O(cells × metrics) instead of O(cells ×
    /// history length). Reports are unchanged (they are pure functions
    /// of the metrics).
    pub metrics_only: bool,
    /// Spill each simulated cell's power/util history CSVs into the
    /// cache directory (requires `cache_dir`), and require them on hits
    /// — how `--write-histories` survives metrics-only and cached
    /// sweeps.
    pub spill_histories: bool,
    /// Batched execution: group cache-missing cells of the same workload
    /// into lanes and drive each group through one [`BatchedEngine`],
    /// amortizing window construction and running step-4 physics as one
    /// pass per chunk. Output is bit-identical to the unbatched sweep
    /// (the engine's batch-parity suite pins it); only wall time and
    /// profile attribution change.
    pub batch: bool,
    /// Cap on lanes per batched group. Larger groups amortize more but
    /// keep more simulations' histories live at once.
    pub batch_max_lanes: usize,
    /// Prefix sharing: cells that differ only in late-binding axes (a
    /// power cap deferred by [`crate::ExperimentMatrix::power_cap_at`])
    /// simulate their common pre-switch prefix once, snapshot it, and
    /// fork one resumed engine per cell. With a cache directory the
    /// prefix snapshot is also stored content-addressed
    /// ([`crate::CellSpec::prefix_fingerprint`]), so later sweeps fork
    /// without re-simulating the prefix at all. Output is bit-identical
    /// to unshared runs: the unshared path executes the same
    /// snapshot/restore sequence privately.
    pub prefix_share: bool,
    /// Lease each cache miss via a `<key>.claim` file before simulating
    /// (requires `cache_dir`; on by default) so cooperating processes
    /// sharing one cache directory never simulate the same cell twice.
    /// Contended cells are deferred, then served from the cache once
    /// the lease holder completes — or reclaimed if it died.
    pub claims: bool,
    /// Retries per cell after a panic or transient I/O failure before
    /// the cell lands in the failed-cells table (total attempts =
    /// `retries + 1`).
    pub retries: u32,
    /// Abort the sweep on the first *permanent* cell failure instead of
    /// degrading it to a failed-cells row.
    pub fail_fast: bool,
}

impl Default for SweepOptions {
    fn default() -> Self {
        SweepOptions {
            progress: false,
            cache_dir: None,
            metrics_only: false,
            spill_histories: false,
            batch: false,
            batch_max_lanes: DEFAULT_BATCH_MAX_LANES,
            prefix_share: false,
            claims: true,
            retries: 2,
            fail_fast: false,
        }
    }
}

impl SweepOptions {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn progress(mut self, on: bool) -> Self {
        self.progress = on;
        self
    }

    pub fn cache_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.cache_dir = Some(dir.into());
        self
    }

    pub fn metrics_only(mut self, on: bool) -> Self {
        self.metrics_only = on;
        self
    }

    pub fn spill_histories(mut self, on: bool) -> Self {
        self.spill_histories = on;
        self
    }

    pub fn batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    pub fn batch_max_lanes(mut self, lanes: usize) -> Self {
        self.batch_max_lanes = lanes.max(1);
        self
    }

    pub fn prefix_share(mut self, on: bool) -> Self {
        self.prefix_share = on;
        self
    }

    pub fn claims(mut self, on: bool) -> Self {
        self.claims = on;
        self
    }

    pub fn retries(mut self, retries: u32) -> Self {
        self.retries = retries;
        self
    }

    pub fn fail_fast(mut self, on: bool) -> Self {
        self.fail_fast = on;
        self
    }
}

/// Work-stealing sweep executor: a thread count plus a [`SweepOptions`].
#[derive(Debug, Clone)]
pub struct SweepRunner {
    jobs: usize,
    opts: SweepOptions,
}

impl SweepRunner {
    /// Run with exactly `jobs` worker threads (`0` ⇒ 1), default options.
    pub fn new(jobs: usize) -> Self {
        Self::with_options(jobs, SweepOptions::default())
    }

    /// Run with exactly `jobs` worker threads (`0` ⇒ 1) and `opts`.
    pub fn with_options(jobs: usize, opts: SweepOptions) -> Self {
        SweepRunner {
            jobs: jobs.max(1),
            opts: SweepOptions {
                batch_max_lanes: opts.batch_max_lanes.max(1),
                ..opts
            },
        }
    }

    /// Use every available core, default options.
    pub fn auto() -> Self {
        Self::auto_with(SweepOptions::default())
    }

    /// Use every available core with `opts`.
    pub fn auto_with(opts: SweepOptions) -> Self {
        Self::with_options(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            opts,
        )
    }

    pub fn jobs(&self) -> usize {
        self.jobs
    }

    pub fn options(&self) -> &SweepOptions {
        &self.opts
    }

    /// Execute the matrix: expand, materialize workloads, run every cell
    /// (consulting the cache first when one is configured).
    ///
    /// On cell failure the error of the *lowest-indexed* failing cell is
    /// returned (already-running cells finish first), keeping even the
    /// error path independent of thread count.
    pub fn run(&self, matrix: &ExperimentMatrix) -> Result<SweepResults> {
        // The one timing pathway for the sweep wall clock (records into
        // the profile/trace only when obs is enabled, measures always).
        let sweep_watch = sraps_obs::stopwatch(ObsPhase::SweepRun);
        let steals = AtomicU64::new(0);
        let (plans, cells) = matrix.expand()?;
        if self.opts.spill_histories && self.opts.cache_dir.is_none() {
            return Err(SrapsError::Config(
                "spill_histories needs a cache directory (SweepOptions::cache_dir)".into(),
            ));
        }
        let cache = match &self.opts.cache_dir {
            Some(dir) => Some(CellCache::open(dir)?),
            None => None,
        };

        // Phase 1, cursor-parallel over unique workloads. Uncached:
        // materialize every dataset up front (cells saturate phase 2
        // immediately). Cached: compute only the plan fingerprints —
        // synthetic plans fingerprint without building their dataset, so
        // a fully warm sweep synthesizes nothing; datasets materialize
        // lazily when a cell actually misses. (Prefix sharing needs the
        // fingerprints too — they key the shared-prefix groups.)
        let workloads: Vec<LazyWorkload> = plans.iter().map(LazyWorkload::new).collect();
        let need_fps = cache.is_some() || self.opts.prefix_share;
        let fingerprints: Vec<Option<Fingerprint>> = {
            let phase1_jobs = self.jobs.min(plans.len().max(1));
            let results = run_indexed(phase1_jobs, plans.len(), &steals, |i| {
                let fp = if need_fps {
                    Some(plans[i].fingerprint()?)
                } else {
                    None
                };
                if cache.is_none() {
                    workloads[i].get()?;
                }
                Ok(fp)
            });
            collect_ordered(results)?
        };

        // Prefix-sharing plan: group late-cap cells by their shared
        // prefix key, in matrix order. A pure function of the expanded
        // matrix, so grouping is identical for any `--jobs` value; the
        // snapshot itself is computed (or loaded) lazily, at most once
        // per group, by whichever worker reaches the group first.
        let (prefix_of, prefix_slots) = if self.opts.prefix_share {
            plan_prefixes(&cells, &fingerprints, cache.is_some())
        } else {
            (vec![None; cells.len()], Vec::new())
        };

        // Claim leases guard misses when both a cache and the (default
        // on) claims option are configured: cooperating processes
        // sharing the cache directory partition the matrix instead of
        // simulating cells twice.
        let claims = match (&cache, self.opts.claims) {
            (Some(c), true) => Some(ClaimSet::open(c.dir())?),
            _ => None,
        };

        // Phase 2: cells, collected by index — either per-cell
        // (cursor-parallel over cells) or batched (cursor-parallel over
        // same-workload lane groups). Both orders of execution assemble
        // into matrix order, and the engine pins batched lane outputs
        // bit-identical to solo runs, so the two paths produce
        // byte-identical reports and cache entries. Cells whose claim is
        // held by another process are *skipped* in this pass (the worker
        // thread moves on) and resolved afterwards by polling the cache.
        let total = cells.len();
        let counter = AtomicUsize::new(0);
        let prefix_groups = prefix_slots.len();
        let prefix_forks = prefix_of.iter().flatten().count();
        let exec = CellExec {
            runner: self,
            cells: &cells,
            workloads: &workloads,
            fingerprints: &fingerprints,
            prefix_of: &prefix_of,
            prefix_slots: &prefix_slots,
            cache: cache.as_ref(),
            claims: claims.as_ref(),
            counter: &counter,
            total,
        };
        let mut tries = if self.opts.batch {
            self.run_cells_batched(&exec, &steals)?
        } else {
            let results = run_indexed(self.jobs.min(total.max(1)), total, &steals, |i| {
                exec.run_cell(i)
            });
            collect_ordered(results)?
        };
        exec.resolve_deferred(&mut tries)?;
        let cells = tries
            .into_iter()
            .enumerate()
            .map(|(i, t)| match t {
                CellTry::Done(r) => Ok(*r),
                CellTry::Deferred => Err(SrapsError::Config(format!(
                    "internal: deferred sweep cell {i} was never resolved"
                ))),
            })
            .collect::<Result<Vec<_>>>()?;

        Ok(SweepResults {
            cells,
            workload_labels: plans.iter().map(|p| p.label()).collect(),
            wall: sweep_watch.finish(),
            jobs: self.jobs,
            cache_dir: self.opts.cache_dir.clone(),
            worker_steals: steals.into_inner(),
            prefix_groups,
            prefix_forks,
        })
    }

    /// Assemble one finished [`CellResult`] (and print the progress line
    /// in CLI mode). Shared by the per-cell and batched paths so both
    /// produce identical result rows.
    #[allow(clippy::too_many_arguments)]
    fn finish_cell(
        &self,
        cell: &CellSpec,
        plan: &WorkloadPlan,
        cache_key: Option<String>,
        progress: (&AtomicUsize, usize),
        metrics: CellMetrics,
        output: Option<SimOutput>,
        from_cache: bool,
        elapsed: Duration,
        profile: Option<Profile>,
        failure: Option<CellFailure>,
    ) -> CellResult {
        if self.opts.progress {
            let (counter, total) = progress;
            let done = counter.fetch_add(1, Ordering::Relaxed) + 1;
            eprintln!(
                "  [{done:>3}/{total}] {:<40} {:>6} jobs  util {:>5.1}%  {}",
                cell.label,
                metrics.jobs_completed,
                metrics.mean_utilization * 100.0,
                if failure.is_some() {
                    "  FAILED".to_string()
                } else if from_cache {
                    "  cached".to_string()
                } else {
                    format!("{:>8.2}s", elapsed.as_secs_f64())
                },
            );
        }
        CellResult {
            spec: cell.clone(),
            // Plan-derived metadata is identical to what materialization
            // would record, so hit and miss paths produce the same
            // result rows.
            workload_label: plan.label(),
            workload_group: plan.group(),
            seed: plan.seed(),
            metrics,
            output,
            cache_key,
            from_cache,
            profile,
            failure,
        }
    }

    /// Batched phase 2, in three stages:
    ///
    /// * **A — consult**: every cell checks the cache (cursor-parallel).
    ///   Hits finish immediately and never enter a lane; misses carry
    ///   their cache-read profile forward.
    /// * **B — lane formation**: miss indices in matrix order, bucketed
    ///   by workload (one workload ⇒ one system, tick grid, and window —
    ///   the lane-compatibility key), each bucket chunked to
    ///   `batch_max_lanes`. A pure function of the consult outcomes, so
    ///   grouping is identical for any `--jobs` value.
    /// * **C — execute**: groups run cursor-parallel; each builds one
    ///   shared [`SimWindow`], one engine per lane via
    ///   [`Engine::with_window`], and drives them through a
    ///   [`BatchedEngine`]. Cache write-back and metrics folding happen
    ///   inside the group's capture, so the group profile (attached to
    ///   the group's first lane; other lanes keep only their consult
    ///   delta) accounts for all work, exactly once.
    ///
    /// Crash-safety composes with batching: consult-stage misses are
    /// claim-leased (contended cells are deferred, never entering a
    /// lane), and a panic or error anywhere in a group falls back to
    /// per-cell execution of its members — the full retry/isolation
    /// machinery then quarantines the poisoned lane on its own.
    fn run_cells_batched(&self, exec: &CellExec, steals: &AtomicU64) -> Result<Vec<CellTry>> {
        let (cells, workloads) = (exec.cells, exec.workloads);
        let (prefix_of, prefix_slots) = (exec.prefix_of, exec.prefix_slots);
        let cache = exec.cache;
        struct Consult {
            /// Finished result for a cache hit; `None` ⇒ lane candidate.
            result: Option<CellResult>,
            key: Option<String>,
            /// A miss's cache-read delta, merged into its lane result.
            profile: Option<Profile>,
            /// The miss's claim lease, taken by whichever stage installs
            /// (or permanently fails) the cell.
            lease: Mutex<Option<Lease>>,
            /// Leased by another process: excluded from lanes, resolved
            /// by the deferral loop.
            deferred: bool,
        }
        let total = cells.len();

        let consults = run_indexed(self.jobs.min(total.max(1)), total, steals, |i| {
            let cell = &cells[i];
            let key = exec.fingerprints[cell.workload].map(|fp| cell.fingerprint(fp).hex());
            if let (Some(cache), Some(k)) = (cache, &key) {
                let capture = sraps_obs::capture();
                let watch = sraps_obs::stopwatch(ObsPhase::SweepCell);
                if let Some(hit) = cache.load(k, self.opts.spill_histories) {
                    let elapsed = watch.finish();
                    let profile = capture.finish();
                    return Ok(Consult {
                        result: Some(self.finish_cell(
                            cell,
                            workloads[cell.workload].plan,
                            key.clone(),
                            (exec.counter, total),
                            hit.metrics,
                            None,
                            true,
                            elapsed,
                            profile,
                            None,
                        )),
                        key,
                        profile: None,
                        lease: Mutex::new(None),
                        deferred: false,
                    });
                }
                let _ = watch.finish();
                let profile = capture.finish();
                return match exec.claim(k) {
                    ClaimDecision::Own(lease) => Ok(Consult {
                        result: None,
                        key,
                        profile,
                        lease: Mutex::new(lease),
                        deferred: false,
                    }),
                    ClaimDecision::Defer => Ok(Consult {
                        result: None,
                        key,
                        profile: None,
                        lease: Mutex::new(None),
                        deferred: true,
                    }),
                };
            }
            Ok(Consult {
                result: None,
                key,
                profile: None,
                lease: Mutex::new(None),
                deferred: false,
            })
        });
        let consults = collect_ordered(consults)?;

        let mut buckets: Vec<Vec<usize>> = vec![Vec::new(); workloads.len()];
        for (i, consult) in consults.iter().enumerate() {
            if consult.result.is_none() && !consult.deferred {
                buckets[cells[i].workload].push(i);
            }
        }
        let groups: Vec<&[usize]> = buckets
            .iter()
            .flat_map(|bucket| bucket.chunks(self.opts.batch_max_lanes))
            .collect();

        let group_results = run_indexed(
            self.jobs.min(groups.len().max(1)),
            groups.len(),
            steals,
            |g| {
                let group = groups[g];
                // The whole group runs on this thread: one `sweep.cell`
                // span and one capture cover window construction, all K
                // lanes' simulation, metrics folding, and write-back.
                let group_capture = sraps_obs::capture();
                let group_watch = sraps_obs::stopwatch(ObsPhase::SweepCell);
                type Lanes = Vec<(usize, CellMetrics, Option<SimOutput>)>;
                let attempt = catch_unwind(AssertUnwindSafe(|| -> Result<Lanes> {
                    let workload = workloads[cells[group[0]].workload].get()?;
                    for &i in group {
                        faults::panic_point(i);
                    }
                    let sims = group
                        .iter()
                        .map(|&i| cells[i].build_sim(workload))
                        .collect::<Result<Vec<_>>>()?;
                    let window = SimWindow::new(&sims[0], &workload.dataset)?;
                    // Lanes need not share a current instant — the batched
                    // core advances each lane from its own cursor — so fresh
                    // lanes and prefix-resumed lanes mix freely in one group.
                    let engines = group
                        .iter()
                        .zip(sims)
                        .map(|(&i, sim)| {
                            let cell = &cells[i];
                            match cell.late_cap() {
                                None => Engine::with_window(sim, &window),
                                Some(switch) => match prefix_of[i].map(|s| &prefix_slots[s]) {
                                    Some(slot) => {
                                        let (_, snap) = slot.get(cell, workload, switch, cache)?;
                                        Engine::builder(sim).resume(snap).build_in_window(&window)
                                    }
                                    None => {
                                        let snap = compute_prefix(
                                            cell.prefix_spec().build_sim(workload)?,
                                            &window,
                                            switch,
                                        )?;
                                        Engine::builder(sim).resume(&snap).build_in_window(&window)
                                    }
                                },
                            }
                        })
                        .collect::<Result<Vec<_>>>()?;
                    let outputs = BatchedEngine::new(engines)?.run()?;
                    let mut lanes = Vec::with_capacity(group.len());
                    for (&i, output) in group.iter().zip(outputs) {
                        let metrics = CellMetrics::from_output(&output);
                        if let (Some(cache), Some(key)) = (cache, &consults[i].key) {
                            exec.store_degraded(i, cache, key, &cells[i], &metrics, &output);
                        }
                        lanes.push((i, metrics, (!self.opts.metrics_only).then_some(output)));
                    }
                    Ok(lanes)
                }));
                let lanes = match attempt {
                    Ok(Ok(lanes)) => lanes,
                    // A panic or error anywhere in the group: discard the
                    // group capture and re-run each member cell solo with
                    // the full retry/isolation machinery — the poisoned
                    // lane degrades to a failed-cells row on its own, and
                    // healthy lanes still complete.
                    Ok(Err(_)) | Err(_) => {
                        let _ = group_watch.finish();
                        let _ = group_capture.finish();
                        let mut out = Vec::with_capacity(group.len());
                        for &i in group {
                            let lease = consults[i].lease.lock().unwrap().take();
                            out.push((
                                i,
                                exec.run_cell_isolated(i, consults[i].key.clone(), lease)?,
                            ));
                        }
                        return Ok(out);
                    }
                };
                // Entries installed: the leases have done their job.
                for &i in group {
                    if let Some(lease) = consults[i].lease.lock().unwrap().take() {
                        lease.release();
                    }
                }
                let elapsed = group_watch.finish();
                let mut group_profile = group_capture.finish();
                Ok(lanes
                    .into_iter()
                    .enumerate()
                    .map(|(k, (i, metrics, output))| {
                        let mut profile = consults[i].profile.clone();
                        if k == 0 {
                            if let Some(gp) = group_profile.take() {
                                profile.get_or_insert_with(Profile::default).merge(&gp);
                            }
                        }
                        let result = self.finish_cell(
                            &cells[i],
                            workloads[cells[i].workload].plan,
                            consults[i].key.clone(),
                            (exec.counter, total),
                            metrics,
                            output,
                            false,
                            elapsed,
                            profile,
                            None,
                        );
                        (i, result)
                    })
                    .collect::<Vec<_>>())
            },
        );
        let group_results = collect_ordered(group_results)?;

        let deferred: Vec<bool> = consults.iter().map(|c| c.deferred).collect();
        let mut slots: Vec<Option<CellResult>> = consults.into_iter().map(|c| c.result).collect();
        for lanes in group_results {
            for (i, result) in lanes {
                slots[i] = Some(result);
            }
        }
        slots
            .into_iter()
            .zip(deferred)
            .enumerate()
            .map(|(i, (slot, deferred))| match (slot, deferred) {
                (Some(r), _) => Ok(CellTry::Done(Box::new(r))),
                (None, true) => Ok(CellTry::Deferred),
                (None, false) => Err(SrapsError::Config(format!(
                    "internal: batched sweep cell {i} was never run"
                ))),
            })
            .collect()
    }
}

/// Outcome of one pass over a cell: finished, or skipped because another
/// process holds its claim (resolved later by [`CellExec::resolve_deferred`]).
enum CellTry {
    Done(Box<CellResult>),
    Deferred,
}

/// What to do with a cache miss after consulting the claim set.
enum ClaimDecision {
    /// Simulate here, releasing the lease (when one exists) afterwards.
    Own(Option<Lease>),
    /// A live foreign lease: skip for now, poll the cache later.
    Defer,
}

/// Everything phase 2 needs to execute one cell, bundled so the per-cell,
/// batched, and deferred-resolution paths share identical logic (and
/// therefore identical results, counters, and failure semantics).
struct CellExec<'a> {
    runner: &'a SweepRunner,
    cells: &'a [CellSpec],
    workloads: &'a [LazyWorkload<'a>],
    fingerprints: &'a [Option<Fingerprint>],
    prefix_of: &'a [Option<usize>],
    prefix_slots: &'a [PrefixSlot],
    cache: Option<&'a CellCache>,
    claims: Option<&'a ClaimSet>,
    counter: &'a AtomicUsize,
    total: usize,
}

impl CellExec<'_> {
    /// One main-pass attempt at cell `i`: cache hit → done; miss → claim,
    /// simulate when owned, defer when another process is on it.
    fn run_cell(&self, i: usize) -> Result<CellTry> {
        let cell = &self.cells[i];
        // Per-cell observability: a `sweep.cell` span plus a thread-local
        // capture of everything the cell does (cache probe included).
        let capture = sraps_obs::capture();
        let watch = sraps_obs::stopwatch(ObsPhase::SweepCell);
        let key = self.fingerprints[cell.workload].map(|fp| cell.fingerprint(fp).hex());
        if let (Some(cache), Some(k)) = (self.cache, &key) {
            if let Some(hit) = cache.load(k, self.runner.opts.spill_histories) {
                let elapsed = watch.finish();
                let profile = capture.finish();
                return Ok(CellTry::Done(Box::new(self.runner.finish_cell(
                    cell,
                    self.workloads[cell.workload].plan,
                    key,
                    (self.counter, self.total),
                    hit.metrics,
                    None,
                    true,
                    elapsed,
                    profile,
                    None,
                ))));
            }
            return match self.claim(k) {
                ClaimDecision::Defer => {
                    // Skip, don't block: the worker thread moves on to
                    // other cells; the deferral loop picks this one up
                    // afterwards.
                    let _ = watch.finish();
                    let _ = capture.finish();
                    Ok(CellTry::Deferred)
                }
                ClaimDecision::Own(lease) => Ok(CellTry::Done(Box::new(
                    self.simulate_claimed(i, cell, key, lease, capture, watch)?,
                ))),
            };
        }
        self.simulate_claimed(i, cell, key, None, capture, watch)
            .map(|r| CellTry::Done(Box::new(r)))
    }

    /// Classify a miss against the claim set. Transient claim-I/O errors
    /// get a short bounded retry; a persistently failing claim layer
    /// degrades to running unclaimed (correctness never depends on
    /// claims — only duplicate-work avoidance does).
    fn claim(&self, key: &str) -> ClaimDecision {
        let Some(claims) = self.claims else {
            return ClaimDecision::Own(None);
        };
        let mut last_err = None;
        for attempt in 0..3u32 {
            if attempt > 0 {
                std::thread::sleep(claims.backoff(key, attempt));
                sraps_obs::bump(Counter::CellRetries);
            }
            match claims.try_acquire(key) {
                Ok(ClaimOutcome::Acquired(lease)) => return ClaimDecision::Own(Some(lease)),
                Ok(ClaimOutcome::Contended) => return ClaimDecision::Defer,
                Err(e) => last_err = Some(e),
            }
        }
        eprintln!(
            "warning: claim layer unavailable for cell {key}: {} (running unclaimed)",
            last_err.expect("loop ran")
        );
        ClaimDecision::Own(None)
    }

    /// Simulate cell `i` under an (optional) held lease: re-validate the
    /// cache, run inside `catch_unwind` with bounded jittered retries,
    /// write back with degradation, release the lease, and fold permanent
    /// failures into a [`CellFailure`] row (unless `fail_fast`).
    fn simulate_claimed(
        &self,
        i: usize,
        cell: &CellSpec,
        key: Option<String>,
        lease: Option<Lease>,
        capture: sraps_obs::Capture,
        watch: sraps_obs::Stopwatch,
    ) -> Result<CellResult> {
        let opts = &self.runner.opts;
        // Between our miss and our claim, the previous owner may have
        // finished the cell. Counter-free peek keeps single-process
        // cache.hits/misses counters deterministic.
        if lease.is_some() {
            if let (Some(cache), Some(k)) = (self.cache, key.as_deref()) {
                if let Some(hit) = cache.peek(k, opts.spill_histories) {
                    if let Some(lease) = lease {
                        lease.release();
                    }
                    let elapsed = watch.finish();
                    let profile = capture.finish();
                    return Ok(self.runner.finish_cell(
                        cell,
                        self.workloads[cell.workload].plan,
                        key,
                        (self.counter, self.total),
                        hit.metrics,
                        None,
                        true,
                        elapsed,
                        profile,
                        None,
                    ));
                }
            }
        }
        // Workload materialization failures are configuration errors
        // (bad scenario path, malformed plan): they abort the sweep
        // rather than masquerade as per-cell failures.
        let workload = self.workloads[cell.workload].get()?;
        let prefix = self.prefix_of[i].map(|s| &self.prefix_slots[s]);
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                faults::panic_point(i);
                simulate_cell(cell, workload, prefix, self.cache)
            }));
            let err = match attempt {
                Ok(Ok(output)) => break Ok(output),
                Ok(Err(e)) => e,
                Err(payload) => SrapsError::Panic(panic_message(payload)),
            };
            if attempts > opts.retries || !retryable(&err) {
                break Err(err);
            }
            sraps_obs::bump(Counter::CellRetries);
            std::thread::sleep(retry_backoff(attempts, i));
        };
        match outcome {
            Ok(output) => {
                let metrics = CellMetrics::from_output(&output);
                if let (Some(cache), Some(k)) = (self.cache, key.as_deref()) {
                    self.store_degraded(i, cache, k, cell, &metrics, &output);
                }
                if let Some(lease) = lease {
                    lease.release();
                }
                let elapsed = watch.finish();
                let profile = capture.finish();
                Ok(self.runner.finish_cell(
                    cell,
                    self.workloads[cell.workload].plan,
                    key,
                    (self.counter, self.total),
                    metrics,
                    (!opts.metrics_only).then_some(output),
                    false,
                    elapsed,
                    profile,
                    None,
                ))
            }
            Err(e) => {
                sraps_obs::bump(Counter::CellsFailed);
                // Release so a cooperating process (or a rerun) can take
                // another swing at the cell.
                if let Some(lease) = lease {
                    lease.release();
                }
                if opts.fail_fast {
                    return Err(e);
                }
                let elapsed = watch.finish();
                let profile = capture.finish();
                Ok(self.runner.finish_cell(
                    cell,
                    self.workloads[cell.workload].plan,
                    key,
                    (self.counter, self.total),
                    CellMetrics::failed(),
                    None,
                    false,
                    elapsed,
                    profile,
                    Some(CellFailure {
                        error: e.to_string(),
                        attempts,
                    }),
                ))
            }
        }
    }

    /// Batched-path fallback: run cell `i` solo, with its already-held
    /// lease, under the full retry/isolation machinery.
    fn run_cell_isolated(
        &self,
        i: usize,
        key: Option<String>,
        lease: Option<Lease>,
    ) -> Result<CellResult> {
        let capture = sraps_obs::capture();
        let watch = sraps_obs::stopwatch(ObsPhase::SweepCell);
        self.simulate_claimed(i, &self.cells[i], key, lease, capture, watch)
    }

    /// Cache write-back that *degrades* instead of failing: transient
    /// errors get the bounded retry/backoff treatment, and exhaustion
    /// surfaces as a warning plus `cache.write_errors` bump while the
    /// cell result still flows to the report.
    fn store_degraded(
        &self,
        i: usize,
        cache: &CellCache,
        key: &str,
        cell: &CellSpec,
        metrics: &CellMetrics,
        output: &SimOutput,
    ) {
        store_with_retries(
            cache,
            key,
            cell,
            metrics,
            output,
            self.runner.opts.spill_histories,
            self.runner.opts.retries,
            i,
        );
    }

    /// Serial post-pass for cells the main pass deferred: poll each one's
    /// cache entry (the other process usually finishes and installs it),
    /// re-attempting the claim between polls so a crashed owner's stale
    /// lease is reclaimed and the cell simulated here. Jittered sleeps
    /// between rounds keep N pollers from stampeding.
    fn resolve_deferred(&self, slots: &mut [CellTry]) -> Result<()> {
        let (Some(cache), Some(claims)) = (self.cache, self.claims) else {
            return Ok(());
        };
        let mut pending: Vec<usize> = slots
            .iter()
            .enumerate()
            .filter_map(|(i, t)| matches!(t, CellTry::Deferred).then_some(i))
            .collect();
        let mut round = 0u32;
        while !pending.is_empty() {
            let mut still = Vec::with_capacity(pending.len());
            for &i in &pending {
                let cell = &self.cells[i];
                let key = self.fingerprints[cell.workload]
                    .map(|fp| cell.fingerprint(fp).hex())
                    .expect("deferred cells always have a cache key");
                let capture = sraps_obs::capture();
                let watch = sraps_obs::stopwatch(ObsPhase::SweepCell);
                if let Some(hit) = cache.peek(&key, self.runner.opts.spill_histories) {
                    let elapsed = watch.finish();
                    let profile = capture.finish();
                    slots[i] = CellTry::Done(Box::new(self.runner.finish_cell(
                        cell,
                        self.workloads[cell.workload].plan,
                        Some(key),
                        (self.counter, self.total),
                        hit.metrics,
                        None,
                        true,
                        elapsed,
                        profile,
                        None,
                    )));
                    continue;
                }
                match self.claim(&key) {
                    ClaimDecision::Own(lease) => {
                        slots[i] = CellTry::Done(Box::new(self.simulate_claimed(
                            i,
                            cell,
                            Some(key),
                            lease,
                            capture,
                            watch,
                        )?));
                    }
                    ClaimDecision::Defer => {
                        let _ = watch.finish();
                        let _ = capture.finish();
                        still.push(i);
                    }
                }
            }
            if !still.is_empty() {
                round = round.wrapping_add(1);
                std::thread::sleep(claims.backoff("deferred", round));
            }
            pending = still;
        }
        Ok(())
    }
}

/// Degrading cache write-back shared by the sweep path
/// ([`CellExec::store_degraded`]) and the daemon's single-cell path
/// ([`execute_single`]): transient errors retry with jittered backoff,
/// exhaustion warns + bumps `cache.write_errors` while the result still
/// flows to the caller.
#[allow(clippy::too_many_arguments)]
fn store_with_retries(
    cache: &CellCache,
    key: &str,
    cell: &CellSpec,
    metrics: &CellMetrics,
    output: &SimOutput,
    spill_histories: bool,
    retries: u32,
    salt: usize,
) {
    let histories = spill_histories.then(|| (output.power_csv(), output.util_csv()));
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        let wrote = faults::before_cache_write(salt).and_then(|()| {
            cache.store(
                key,
                &cell.label,
                metrics,
                histories.as_ref().map(|(p, u)| (p.as_str(), u.as_str())),
            )
        });
        match wrote {
            Ok(()) => {
                faults::after_cache_write(salt, &cache.entry_path(key));
                return;
            }
            Err(_) if attempts <= retries => {
                sraps_obs::bump(Counter::CellRetries);
                std::thread::sleep(retry_backoff(attempts, salt));
            }
            Err(e) => {
                sraps_obs::bump(Counter::CacheWriteErrors);
                eprintln!("warning: cache write failed for cell {key}: {e}");
                return;
            }
        }
    }
}

/// Outcome of [`execute_single`] — one cell driven to a terminal state
/// outside a sweep (the resident daemon's cold-query path).
#[derive(Debug)]
pub enum CellOutcome {
    /// Metrics are available: simulated here, or installed by a peer
    /// process (`from_cache`).
    Done {
        metrics: CellMetrics,
        from_cache: bool,
    },
    /// The simulation exhausted its retries (or hit a non-retryable
    /// error) — a structured per-cell failure, not a process error.
    Failed { error: String, attempts: u32 },
    /// `cancel` fired (deadline expiry, drain) before a terminal state.
    Canceled,
}

/// Drive one cell to a terminal state under the full claim/retry
/// protocol, exactly as a sweep worker would — so a resident daemon and
/// external `sraps sweep` processes on the same cache directory
/// cooperate (and produce byte-identical cache entries) by construction.
///
/// The loop: peek the cache → done on hit; claim the cell → on a live
/// foreign lease, sleep a jittered backoff and re-poll (the peer usually
/// installs the entry; a `kill -9`'d peer's claim goes stale and is
/// reclaimed here); when owned, peek-revalidate then simulate inside
/// `catch_unwind` with the sweep's bounded jittered retries, install the
/// entry, release. `cancel` is consulted between claim rounds and retry
/// attempts — a canceled request never abandons a held lease.
#[allow(clippy::too_many_arguments)]
pub fn execute_single(
    cell: &CellSpec,
    key: &str,
    workload: &MaterializedWorkload,
    cache: &CellCache,
    claims: &ClaimSet,
    retries: u32,
    cancel: &(dyn Fn() -> bool + Sync),
    salt: usize,
) -> Result<CellOutcome> {
    let mut round = 0u32;
    let mut claim_errors = 0u32;
    loop {
        if let Some(hit) = cache.peek(key, false) {
            return Ok(CellOutcome::Done {
                metrics: hit.metrics,
                from_cache: true,
            });
        }
        if cancel() {
            return Ok(CellOutcome::Canceled);
        }
        let lease = match claims.try_acquire(key) {
            Ok(ClaimOutcome::Acquired(lease)) => lease,
            Ok(ClaimOutcome::Contended) => {
                round = round.wrapping_add(1);
                std::thread::sleep(claims.backoff(key, round));
                continue;
            }
            Err(e) => {
                // Transient claim-layer I/O gets a short bounded retry;
                // persistent failure is a real error (the daemon turns
                // it into a structured response, not a crash).
                claim_errors += 1;
                if claim_errors >= 3 {
                    return Err(e);
                }
                std::thread::sleep(claims.backoff(key, claim_errors));
                continue;
            }
        };
        // Between our miss and our claim the previous owner may have
        // installed the entry.
        if let Some(hit) = cache.peek(key, false) {
            lease.release();
            return Ok(CellOutcome::Done {
                metrics: hit.metrics,
                from_cache: true,
            });
        }
        let mut attempts = 0u32;
        let outcome = loop {
            attempts += 1;
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                faults::panic_point(salt);
                simulate_cell(cell, workload, None, Some(cache))
            }));
            let err = match attempt {
                Ok(Ok(output)) => break Ok(output),
                Ok(Err(e)) => e,
                Err(payload) => SrapsError::Panic(panic_message(payload)),
            };
            if attempts > retries || !retryable(&err) {
                break Err(err);
            }
            sraps_obs::bump(Counter::CellRetries);
            if cancel() {
                lease.release();
                return Ok(CellOutcome::Canceled);
            }
            std::thread::sleep(retry_backoff(attempts, salt));
        };
        return match outcome {
            Ok(output) => {
                let metrics = CellMetrics::from_output(&output);
                store_with_retries(cache, key, cell, &metrics, &output, false, retries, salt);
                lease.release();
                Ok(CellOutcome::Done {
                    metrics,
                    from_cache: false,
                })
            }
            Err(e) => {
                sraps_obs::bump(Counter::CellsFailed);
                // Release so a peer (or a retry from the client) can
                // take another swing at the cell.
                lease.release();
                Ok(CellOutcome::Failed {
                    error: e.to_string(),
                    attempts,
                })
            }
        };
    }
}

/// Errors worth a bounded in-process retry: transient I/O hiccups and
/// worker panics (which injected faults model as fire-once). Config and
/// simulation-semantics errors are deterministic — retrying re-fails.
fn retryable(e: &SrapsError) -> bool {
    matches!(e, SrapsError::Io(_) | SrapsError::Panic(_))
}

/// Render a `catch_unwind` payload into the `SrapsError::Panic` message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    match payload.downcast::<String>() {
        Ok(s) => *s,
        Err(payload) => match payload.downcast::<&'static str>() {
            Ok(s) => (*s).to_string(),
            Err(_) => "non-string panic payload".to_string(),
        },
    }
}

/// Exponential backoff before retry `attempt` (1-based), jittered per
/// cell so simultaneous retries across workers don't re-collide:
/// ~10 ms · 2^(attempt−1), capped at ~500 ms, ±50% deterministic jitter.
fn retry_backoff(attempt: u32, salt: usize) -> Duration {
    let base = 10u64
        .saturating_mul(1 << attempt.saturating_sub(1).min(6))
        .min(500);
    let jitter = faults::splitmix64(0x9e37_79b9_7f4a_7c15 ^ attempt as u64 ^ (salt as u64) << 32)
        % base.max(1);
    Duration::from_millis(base / 2 + jitter / 2 + 1)
}

/// One shared-prefix group: its content key (when a cache is configured)
/// and the lazily obtained (window, snapshot) pair every member cell
/// forks from. The [`SimWindow`] rides along because it is the expensive
/// part of engine construction (cloning and sorting the in-window jobs,
/// telemetry included) — forks reuse its `Arc`-shared job storage.
struct PrefixSlot {
    key: Option<String>,
    slot: OnceLock<Result<(SimWindow, EngineSnapshot)>>,
}

impl PrefixSlot {
    /// The group's window + snapshot — the snapshot loaded from the
    /// cache's snapshot store, else computed (and stored) — at most once
    /// per sweep; concurrent member cells block on the first.
    fn get(
        &self,
        cell: &CellSpec,
        workload: &MaterializedWorkload,
        switch: SimDuration,
        cache: Option<&CellCache>,
    ) -> Result<(&SimWindow, &EngineSnapshot)> {
        self.slot
            .get_or_init(|| {
                let sim = cell.prefix_spec().build_sim(workload)?;
                let window = SimWindow::new(&sim, &workload.dataset)?;
                if let (Some(cache), Some(key)) = (cache, self.key.as_deref()) {
                    if let Some(snap) = cache.load_snapshot(key) {
                        return Ok((window, snap));
                    }
                    let snap = compute_prefix(sim, &window, switch)?;
                    cache.store_snapshot(key, &snap)?;
                    return Ok((window, snap));
                }
                let snap = compute_prefix(sim, &window, switch)?;
                Ok((window, snap))
            })
            .as_ref()
            .map(|(window, snap)| (window, snap))
            .map_err(Clone::clone)
    }
}

/// Group late-cap cells by shared prefix key, in matrix order. Pure, so
/// the plan — and therefore which cells fork — is independent of thread
/// count and interleaving.
fn plan_prefixes(
    cells: &[CellSpec],
    fingerprints: &[Option<Fingerprint>],
    cached: bool,
) -> (Vec<Option<usize>>, Vec<PrefixSlot>) {
    let mut prefix_of = vec![None; cells.len()];
    let mut slots: Vec<PrefixSlot> = Vec::new();
    let mut by_key: std::collections::HashMap<String, usize> = std::collections::HashMap::new();
    for (i, cell) in cells.iter().enumerate() {
        let Some(switch) = cell.late_cap() else {
            continue;
        };
        let Some(wfp) = fingerprints[cell.workload] else {
            continue;
        };
        let key = cell.prefix_fingerprint(wfp, switch).hex();
        let slot = *by_key.entry(key.clone()).or_insert_with(|| {
            slots.push(PrefixSlot {
                key: cached.then_some(key),
                slot: OnceLock::new(),
            });
            slots.len() - 1
        });
        prefix_of[i] = Some(slot);
    }
    (prefix_of, slots)
}

/// Simulate an uncapped prefix config up to the switch instant and
/// snapshot it there. `sim` must be a [`CellSpec::prefix_spec`] config
/// and `window` its selected window.
fn compute_prefix(
    sim: SimConfig,
    window: &SimWindow,
    switch: SimDuration,
) -> Result<EngineSnapshot> {
    let mut engine = Engine::with_window(sim, window)?;
    let at = engine.sim_start() + switch;
    engine.run_until(at)?;
    engine.snapshot()
}

/// Run one cell to completion. A late-cap cell *always* goes through
/// the same snapshot-at-switch → resume-under-cap sequence, whether its
/// prefix is shared or private — which is what makes prefix sharing
/// bit-identical to the unshared sweep by construction.
fn simulate_cell(
    cell: &CellSpec,
    workload: &MaterializedWorkload,
    prefix: Option<&PrefixSlot>,
    cache: Option<&CellCache>,
) -> Result<SimOutput> {
    let Some(switch) = cell.late_cap() else {
        let sim = cell.build_sim(workload)?;
        return Engine::new(sim, &workload.dataset)?.run();
    };
    let sim = cell.build_sim(workload)?;
    match prefix {
        Some(slot) => {
            let (window, snap) = slot.get(cell, workload, switch, cache)?;
            Engine::builder(sim)
                .resume(snap)
                .build_in_window(window)?
                .run()
        }
        None => {
            let window = SimWindow::new(&sim, &workload.dataset)?;
            let snap = compute_prefix(cell.prefix_spec().build_sim(workload)?, &window, switch)?;
            Engine::builder(sim)
                .resume(&snap)
                .build_in_window(&window)?
                .run()
        }
    }
}

/// Run `task(i)` for `i in 0..total` on `jobs` threads pulling indices
/// from a shared cursor; slot results by index. After any task fails, no
/// *new* indices are dispatched (in-flight tasks finish), so a failing
/// matrix doesn't burn through its remaining cells. Every index a
/// *spawned* worker claims bumps `steals` (the serial fast path never
/// does).
fn run_indexed<T, F>(
    jobs: usize,
    total: usize,
    steals: &AtomicU64,
    task: F,
) -> Vec<Option<Result<T>>>
where
    T: Send,
    F: Fn(usize) -> Result<T> + Sync,
{
    let slots: Mutex<Vec<Option<Result<T>>>> = Mutex::new((0..total).map(|_| None).collect());
    if total == 0 {
        return slots.into_inner().unwrap();
    }
    let cursor = AtomicUsize::new(0);
    let failed = std::sync::atomic::AtomicBool::new(false);
    let workers = jobs.clamp(1, total);
    if workers == 1 {
        // Serial fast path: no thread spawn overhead for tiny sweeps.
        let mut out = slots.into_inner().unwrap();
        for (i, slot) in out.iter_mut().enumerate() {
            let result = task(i);
            let stop = result.is_err();
            *slot = Some(result);
            if stop {
                break;
            }
        }
        return out;
    }
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                loop {
                    if failed.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= total {
                        break;
                    }
                    steals.fetch_add(1, Ordering::Relaxed);
                    let result = task(i);
                    if result.is_err() {
                        failed.store(true, Ordering::Relaxed);
                    }
                    slots.lock().unwrap()[i] = Some(result);
                }
                // Scoped threads signal completion before their TLS
                // destructors run; flush any buffered trace events now so
                // a `--trace-out` write after this scope sees them.
                sraps_obs::flush_thread_trace();
            });
        }
    });
    slots.into_inner().unwrap()
}

/// Unwrap slotted results in index order; first (lowest-index) error wins.
fn collect_ordered<T>(slots: Vec<Option<Result<T>>>) -> Result<Vec<T>> {
    slots
        .into_iter()
        .enumerate()
        .map(|(i, slot)| {
            slot.unwrap_or_else(|| {
                Err(SrapsError::Config(format!(
                    "internal: sweep cell {i} was never executed"
                )))
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matrix::ExperimentMatrix;
    use crate::report::Report;
    use sraps_types::SimDuration;

    fn small_matrix() -> ExperimentMatrix {
        ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(2))
            .loads([0.5])
            .seed_count(1)
            .pairs([("fcfs", "none"), ("fcfs", "easy"), ("sjf", "easy")])
    }

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sraps-runner-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn runs_cells_in_matrix_order() {
        let results = SweepRunner::new(2).run(&small_matrix()).unwrap();
        assert_eq!(results.cells.len(), 3);
        let labels: Vec<&str> = results
            .cells
            .iter()
            .map(|c| c.spec.label.as_str())
            .collect();
        assert_eq!(labels, vec!["fcfs-none", "fcfs-easy", "sjf-easy"]);
        for c in &results.cells {
            assert!(
                c.metrics.jobs_completed > 0,
                "{} completed nothing",
                c.spec.label
            );
            assert!(c.output.is_some(), "full retention is the default");
            assert!(!c.from_cache);
            assert!(c.cache_key.is_none(), "no cache configured");
        }
        assert_eq!(results.cache_hits(), 0);
        assert_eq!(results.cache_misses(), 3);
    }

    #[test]
    fn parallel_equals_serial() {
        let serial = SweepRunner::new(1).run(&small_matrix()).unwrap();
        let parallel = SweepRunner::new(4).run(&small_matrix()).unwrap();
        for (s, p) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(s.spec.label, p.spec.label);
            assert_eq!(s.metrics, p.metrics, "cell {} diverged", s.spec.label);
            let (so, po) = (s.output.as_ref().unwrap(), p.output.as_ref().unwrap());
            assert_eq!(so.times, po.times);
            assert_eq!(so.utilization, po.utilization);
        }
    }

    #[test]
    fn warm_cache_skips_every_simulation_and_reports_identically() {
        let dir = temp_dir("warm");
        let runner = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir));
        let cold = runner.run(&small_matrix()).unwrap();
        assert_eq!(cold.cache_hits(), 0);
        assert_eq!(cold.cache_misses(), 3);
        assert!(cold.cells.iter().all(|c| c.cache_key.is_some()));

        let warm = runner.run(&small_matrix()).unwrap();
        assert_eq!(warm.cache_hits(), 3, "identical matrix ⇒ 100% hits");
        assert_eq!(warm.cache_misses(), 0);
        for (c, w) in cold.cells.iter().zip(&warm.cells) {
            assert_eq!(c.metrics, w.metrics, "cached metrics must be bit-exact");
            assert_eq!(c.cache_key, w.cache_key);
            assert!(w.output.is_none(), "hits carry no SimOutput");
        }
        // Reports are byte-identical between the cold and warm runs.
        let (rc, rw) = (Report::from_results(&cold), Report::from_results(&warm));
        assert_eq!(rc.to_csv(), rw.to_csv());
        assert_eq!(rc.to_json(), rw.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn cold_parallel_equals_warm_serial_with_cache() {
        let dir = temp_dir("jobs-mix");
        let cold = SweepRunner::with_options(4, SweepOptions::new().cache_dir(&dir))
            .run(&small_matrix())
            .unwrap();
        let warm = SweepRunner::with_options(1, SweepOptions::new().cache_dir(&dir))
            .run(&small_matrix())
            .unwrap();
        assert_eq!(warm.cache_hits(), 3);
        assert_eq!(
            Report::from_results(&cold).to_csv(),
            Report::from_results(&warm).to_csv(),
            "mixing --jobs with caching must stay deterministic"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncated_entry_is_recomputed_and_rewritten() {
        let dir = temp_dir("truncate");
        let runner = SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir));
        let cold = runner.run(&small_matrix()).unwrap();
        let key = cold.cells[1].cache_key.clone().unwrap();
        let path = dir.join(format!("{key}.json"));
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 3]).unwrap();

        let rerun = runner.run(&small_matrix()).unwrap();
        assert_eq!(rerun.cache_hits(), 2, "only the truncated entry misses");
        assert_eq!(rerun.cache_misses(), 1);
        assert!(rerun.cells[1].output.is_some(), "the miss re-simulated");
        assert_eq!(rerun.cells[1].metrics, cold.cells[1].metrics);
        // …and the entry was rewritten: a third run is all hits.
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            full,
            "rewritten entry matches the original bytes"
        );
        assert_eq!(runner.run(&small_matrix()).unwrap().cache_hits(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_only_retains_no_outputs_and_reports_identically() {
        let full = SweepRunner::new(2).run(&small_matrix()).unwrap();
        let lean = SweepRunner::with_options(2, SweepOptions::new().metrics_only(true))
            .run(&small_matrix())
            .unwrap();
        assert!(lean.cells.iter().all(|c| c.output.is_none()));
        assert!(lean.outputs().is_empty());
        for (f, l) in full.cells.iter().zip(&lean.cells) {
            assert_eq!(f.metrics, l.metrics);
        }
        let (rf, rl) = (Report::from_results(&full), Report::from_results(&lean));
        assert_eq!(rf.to_csv(), rl.to_csv());
        assert_eq!(rf.to_json(), rl.to_json());
        assert_eq!(rf.render_table(), rl.render_table());
    }

    #[test]
    fn spilled_histories_survive_cache_hits() {
        let dir = temp_dir("spill");
        let runner = SweepRunner::with_options(
            2,
            SweepOptions::new()
                .cache_dir(&dir)
                .metrics_only(true)
                .spill_histories(true),
        );
        let cold = runner.run(&small_matrix()).unwrap();
        let cache = CellCache::open(&dir).unwrap();
        for cell in &cold.cells {
            let (power, util) = cache.history_paths(cell.cache_key.as_ref().unwrap());
            let power = std::fs::read_to_string(power).unwrap();
            assert!(power.starts_with("t_secs,it_kw"), "spilled power CSV");
            assert!(util.is_file(), "spilled util CSV");
        }
        let warm = runner.run(&small_matrix()).unwrap();
        assert_eq!(warm.cache_hits(), 3, "hits satisfied from spill");
        // Spill without a cache dir is a configuration error.
        assert!(
            SweepRunner::with_options(1, SweepOptions::new().spill_histories(true))
                .run(&small_matrix())
                .is_err()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    fn capped_matrix() -> ExperimentMatrix {
        ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(2))
            .loads([0.5])
            .seed_count(1)
            .pairs([("fcfs", "easy")])
            .power_caps_kw([None, Some(900.0), Some(1100.0), Some(1300.0)])
            .power_cap_at(SimDuration::minutes(60))
    }

    #[test]
    fn prefix_sharing_is_bit_identical_to_unshared() {
        let unshared = SweepRunner::new(2).run(&capped_matrix()).unwrap();
        assert_eq!(unshared.prefix_groups, 0, "sharing off forms no groups");
        let shared = SweepRunner::with_options(2, SweepOptions::new().prefix_share(true))
            .run(&capped_matrix())
            .unwrap();
        assert_eq!(shared.prefix_groups, 1, "three capped cells, one prefix");
        assert_eq!(shared.prefix_forks, 3);
        assert_eq!(
            Report::from_results(&unshared).to_csv(),
            Report::from_results(&shared).to_csv(),
            "forked cells must be byte-identical to privately resumed ones"
        );
        // …and in batched mode, where resumed lanes join the lane groups.
        let batched =
            SweepRunner::with_options(2, SweepOptions::new().prefix_share(true).batch(true))
                .run(&capped_matrix())
                .unwrap();
        assert_eq!(
            Report::from_results(&unshared).to_csv(),
            Report::from_results(&batched).to_csv(),
            "batched + prefix-shared sweep diverged"
        );
    }

    #[test]
    fn cap_at_zero_equals_cap_from_start() {
        // A cap switched in at t=0 must reproduce the always-capped run
        // exactly: the fork sequence (snapshot at the boundary, resume
        // under the cap) adds nothing at offset zero.
        let from_start = ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(2))
            .loads([0.5])
            .pairs([("fcfs", "easy")])
            .power_caps_kw([Some(1000.0)]);
        let at_zero = from_start.clone().power_cap_at(SimDuration::seconds(0));
        let a = SweepRunner::new(1).run(&from_start).unwrap();
        let b = SweepRunner::new(1).run(&at_zero).unwrap();
        assert_eq!(a.cells[0].metrics, b.cells[0].metrics);
        let (ao, bo) = (
            a.cells[0].output.as_ref().unwrap(),
            b.cells[0].output.as_ref().unwrap(),
        );
        assert_eq!(ao.power_csv(), bo.power_csv());
        assert_eq!(ao.util_csv(), bo.util_csv());
    }

    #[test]
    fn prefix_snapshots_are_cached_and_reused() {
        let dir = temp_dir("prefix-cache");
        let runner =
            SweepRunner::with_options(2, SweepOptions::new().cache_dir(&dir).prefix_share(true));
        let cold = runner.run(&capped_matrix()).unwrap();
        assert_eq!(cold.cache_misses(), 4);
        let cache = CellCache::open(&dir).unwrap();
        // The shared prefix was stored under its own content key…
        let snaps: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().ends_with(".snap.json"))
            .collect();
        assert_eq!(snaps.len(), 1, "one prefix group ⇒ one stored snapshot");
        let key = snaps[0]
            .file_name()
            .to_string_lossy()
            .trim_end_matches(".snap.json")
            .to_string();
        assert!(cache.load_snapshot(&key).is_some());
        // …and a truncated snapshot self-heals: the sweep still succeeds
        // (recomputing the prefix) and rewrites the entry.
        let path = cache.snapshot_path(&key);
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        let _ = std::fs::remove_file(dir.join(format!(
            "{}.json",
            cold.cells[1].cache_key.as_ref().unwrap()
        )));
        let healed = runner.run(&capped_matrix()).unwrap();
        assert_eq!(healed.cache_hits(), 3, "only the deleted cell re-runs");
        assert_eq!(healed.cells[1].metrics, cold.cells[1].metrics);
        assert!(
            cache.load_snapshot(&key).is_some(),
            "defective snapshot was recomputed and rewritten"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_indexed_covers_every_slot() {
        let steals = AtomicU64::new(0);
        let out = run_indexed(8, 100, &steals, |i| Ok(i * i));
        let vals = collect_ordered(out).unwrap();
        assert_eq!(vals, (0..100).map(|i| i * i).collect::<Vec<_>>());
        assert_eq!(
            steals.into_inner(),
            100,
            "every index is claimed by a spawned worker"
        );
    }

    #[test]
    fn work_is_spread_across_worker_threads() {
        // Wall-clock speedup needs multiple hardware cores, but the
        // executor property we can assert anywhere is that >1 OS thread
        // actually executes tasks when jobs > 1 (work stealing, not a
        // serial loop behind a flag). A short sleep keeps the first
        // worker from draining the cursor before the others start.
        let out = run_indexed(4, 16, &AtomicU64::new(0), |i| {
            std::thread::sleep(std::time::Duration::from_millis(5));
            Ok((i, std::thread::current().id()))
        });
        let vals = collect_ordered(out).unwrap();
        let distinct: std::collections::HashSet<_> = vals.iter().map(|(_, tid)| *tid).collect();
        assert!(
            distinct.len() > 1,
            "expected multiple worker threads, saw {}",
            distinct.len()
        );
        // And the serial fast path stays on the caller's thread — and
        // counts no steals.
        let here = std::thread::current().id();
        let steals = AtomicU64::new(0);
        let out = run_indexed(1, 4, &steals, |i| Ok((i, std::thread::current().id())));
        assert!(collect_ordered(out)
            .unwrap()
            .iter()
            .all(|(_, tid)| *tid == here));
        assert_eq!(steals.into_inner(), 0, "serial path steals nothing");
    }

    #[test]
    fn first_error_is_deterministic() {
        for jobs in [1, 4] {
            let out = run_indexed(jobs, 10, &AtomicU64::new(0), |i| {
                if i % 3 == 1 {
                    Err(SrapsError::Config(format!("cell {i} boom")))
                } else {
                    Ok(i)
                }
            });
            let err = collect_ordered(out).unwrap_err();
            assert_eq!(err, SrapsError::Config("cell 1 boom".into()));
        }
    }

    #[test]
    fn by_workload_groups_cells() {
        let m = ExperimentMatrix::synthetic(["lassen"])
            .span(SimDuration::hours(1))
            .loads([0.4])
            .seed_count(2)
            .pairs([("fcfs", "none")]);
        let results = SweepRunner::new(2).run(&m).unwrap();
        let groups = results.by_workload();
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0].1.len(), 1);
        assert!(results.cell("lassen-s42/fcfs-none").is_some());
    }
}
