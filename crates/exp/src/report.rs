//! [`Report`]: aggregation of sweep results into comparison tables.
//!
//! A report has one row per cell, each carrying the cell's
//! [`CellMetrics`] plus deltas against a **baseline cell of the same
//! workload** (by default the workload's first cell — for the figure
//! studies that is the replay run, matching how the paper reports
//! "vs. replay" numbers). When the matrix swept multiple seeds, a
//! seed-aggregated summary (mean over seeds, grouped by workload group ×
//! cell kind) is appended.
//!
//! Export formats:
//! * [`Report::render_table`] — aligned text for terminals;
//! * [`Report::to_csv`] — one row per cell (+ summary rows);
//! * [`Report::to_json`] — the full structure via the serde shim.
//!
//! Every number is simulation-derived (never wall clock), so report text
//! is bit-identical across `--jobs` settings.

use crate::metrics::CellMetrics;
use crate::runner::SweepResults;
use serde::Serialize;

/// One comparison row.
#[derive(Debug, Clone, Serialize)]
pub struct ReportRow {
    pub workload: String,
    pub cell: String,
    pub metrics: CellMetrics,
    /// Relative mean-wait change vs the baseline cell, percent.
    pub d_wait_pct: Option<f64>,
    /// Utilization change vs baseline, percentage points.
    pub d_util_pp: Option<f64>,
    /// Relative mean-power change vs baseline, percent.
    pub d_power_pct: Option<f64>,
    /// Relative energy change vs baseline, percent.
    pub d_energy_pct: Option<f64>,
    /// True for the row the deltas are measured against.
    pub is_baseline: bool,
}

/// Seed-aggregated summary row (only present for multi-seed sweeps).
#[derive(Debug, Clone, Serialize)]
pub struct SummaryRow {
    pub group: String,
    pub cell_kind: String,
    pub seeds: usize,
    pub metrics: CellMetrics,
}

/// A cell that exhausted its retries. Kept out of [`Report::rows`] (its
/// placeholder metrics would poison baselines and seed means) and listed
/// here instead.
#[derive(Debug, Clone, Serialize)]
pub struct FailedRow {
    pub workload: String,
    pub cell: String,
    pub attempts: u32,
    pub error: String,
}

#[derive(Debug, Clone, Serialize)]
pub struct Report {
    pub rows: Vec<ReportRow>,
    pub summary: Vec<SummaryRow>,
    /// Cells that failed permanently (empty on a healthy sweep).
    pub failed: Vec<FailedRow>,
    /// The `<policy>-<backfill>` kind deltas are measured against, when
    /// one applied.
    pub baseline: Option<String>,
}

/// `<policy>-<backfill>` plus the cooling/cap suffixes — the cell's
/// identity with the workload prefix stripped.
fn cell_kind(label: &str) -> String {
    match label.rsplit_once('/') {
        Some((_, kind)) => kind.to_string(),
        None => label.to_string(),
    }
}

fn pct(new: f64, base: f64) -> Option<f64> {
    (base.abs() > 1e-12).then(|| (new - base) / base * 100.0)
}

impl Report {
    /// Deltas against each workload's first cell.
    pub fn from_results(results: &SweepResults) -> Report {
        Self::build(results, None)
    }

    /// Deltas against the cell whose kind (label minus workload prefix)
    /// matches `baseline` in each workload group, e.g. `"replay-none"`.
    pub fn with_baseline(results: &SweepResults, baseline: &str) -> Report {
        Self::build(results, Some(baseline))
    }

    fn build(results: &SweepResults, baseline: Option<&str>) -> Report {
        let mut rows = Vec::with_capacity(results.cells.len());
        let mut resolved_baseline: Option<String> = baseline.map(str::to_string);
        for (_, cells) in results.by_workload() {
            // Failed cells never become rows, baselines, or summary
            // members — their all-zero placeholder metrics would poison
            // every delta they touch.
            let cells: Vec<_> = cells.into_iter().filter(|c| c.failure.is_none()).collect();
            let base = match baseline {
                Some(kind) => cells
                    .iter()
                    .copied()
                    .find(|c| cell_kind(&c.spec.label) == kind),
                None => cells.first().copied(),
            };
            if baseline.is_none() {
                if let Some(b) = base {
                    // Record the implicit baseline kind (first cell).
                    resolved_baseline.get_or_insert_with(|| cell_kind(&b.spec.label));
                }
            }
            for cell in cells {
                let (m, b) = (&cell.metrics, base.map(|b| &b.metrics));
                let is_baseline = base
                    .map(|b| b.spec.index == cell.spec.index)
                    .unwrap_or(false);
                rows.push(ReportRow {
                    workload: cell.workload_label.clone(),
                    cell: cell.spec.label.clone(),
                    metrics: m.clone(),
                    d_wait_pct: b.and_then(|b| pct(m.avg_wait_secs, b.avg_wait_secs)),
                    d_util_pp: b.map(|b| (m.mean_utilization - b.mean_utilization) * 100.0),
                    d_power_pct: b.and_then(|b| pct(m.mean_power_kw, b.mean_power_kw)),
                    d_energy_pct: b.and_then(|b| pct(m.energy_mwh, b.energy_mwh)),
                    is_baseline,
                });
            }
        }
        Report {
            rows,
            summary: Self::seed_summary(results),
            failed: results
                .failed_cells()
                .into_iter()
                .map(|c| {
                    let f = c.failure.as_ref().expect("failed_cells filters on failure");
                    FailedRow {
                        workload: c.workload_label.clone(),
                        cell: c.spec.label.clone(),
                        attempts: f.attempts,
                        error: f.error.clone(),
                    }
                })
                .collect(),
            baseline: resolved_baseline,
        }
    }

    /// Mean metrics per (workload group, cell kind) across seeds, in first-
    /// appearance order; empty unless some group spans several seeds.
    fn seed_summary(results: &SweepResults) -> Vec<SummaryRow> {
        let mut keys: Vec<(String, String)> = Vec::new();
        for cell in &results.cells {
            let key = (cell.workload_group.clone(), cell_kind(&cell.spec.label));
            if !keys.contains(&key) {
                keys.push(key);
            }
        }
        let mut out = Vec::new();
        let mut multi_seed = false;
        for (group, kind) in keys {
            let members: Vec<&CellMetrics> = results
                .cells
                .iter()
                .filter(|c| {
                    c.failure.is_none()
                        && c.workload_group == group
                        && cell_kind(&c.spec.label) == kind
                })
                .map(|c| &c.metrics)
                .collect();
            if members.len() > 1 {
                multi_seed = true;
            }
            if let Some(mean) = CellMetrics::mean(&members) {
                out.push(SummaryRow {
                    group,
                    cell_kind: kind,
                    seeds: members.len(),
                    metrics: mean,
                });
            }
        }
        if multi_seed {
            out
        } else {
            Vec::new() // summary would duplicate the rows 1:1
        }
    }

    /// Aligned text table (plus the seed summary when present).
    pub fn render_table(&self) -> String {
        let mut s = String::new();
        let header = format!(
            "{:<26} {:>6} {:>7} {:>10} {:>10} {:>9} {:>9} {:>9} {:>8} {:>8} {:>8}\n",
            "cell",
            "jobs",
            "util%",
            "meanP_kW",
            "peakP_kW",
            "MWh",
            "wait_s",
            "p99_s",
            "Δwait%",
            "Δutil",
            "ΔMWh%"
        );
        let mut last_workload: Option<&str> = None;
        for row in &self.rows {
            if last_workload != Some(row.workload.as_str()) {
                s.push_str(&format!("workload {}\n", row.workload));
                s.push_str(&header);
                last_workload = Some(row.workload.as_str());
            }
            let delta = |v: Option<f64>| match v {
                Some(x) => format!("{x:+.1}"),
                None => "-".to_string(),
            };
            s.push_str(&format!(
                "{:<26} {:>6} {:>7.1} {:>10.1} {:>10.1} {:>9.2} {:>9.0} {:>9.0} {:>8} {:>8} {:>8}{}\n",
                cell_kind(&row.cell),
                row.metrics.jobs_completed,
                row.metrics.mean_utilization * 100.0,
                row.metrics.mean_power_kw,
                row.metrics.peak_power_kw,
                row.metrics.energy_mwh,
                row.metrics.avg_wait_secs,
                row.metrics.p99_wait_secs,
                delta(row.d_wait_pct),
                delta(row.d_util_pp),
                delta(row.d_energy_pct),
                if row.is_baseline { "  *base" } else { "" },
            ));
        }
        if !self.summary.is_empty() {
            s.push_str("\nseed-averaged summary\n");
            s.push_str(&format!(
                "{:<20} {:<22} {:>5} {:>7} {:>10} {:>9} {:>9}\n",
                "group", "cell", "seeds", "util%", "meanP_kW", "MWh", "wait_s"
            ));
            for row in &self.summary {
                s.push_str(&format!(
                    "{:<20} {:<22} {:>5} {:>7.1} {:>10.1} {:>9.2} {:>9.0}\n",
                    row.group,
                    row.cell_kind,
                    row.seeds,
                    row.metrics.mean_utilization * 100.0,
                    row.metrics.mean_power_kw,
                    row.metrics.energy_mwh,
                    row.metrics.avg_wait_secs,
                ));
            }
        }
        s
    }

    /// Aligned text table of permanently failed cells; empty string when
    /// the sweep was healthy. The CLI prints this after the main table
    /// (and exits nonzero) whenever it is non-empty.
    pub fn render_failed_table(&self) -> String {
        if self.failed.is_empty() {
            return String::new();
        }
        let mut s = String::from("failed cells\n");
        s.push_str(&format!("{:<26} {:>8}  {}\n", "cell", "attempts", "error"));
        for row in &self.failed {
            s.push_str(&format!(
                "{:<26} {:>8}  {}\n",
                cell_kind(&row.cell),
                row.attempts,
                row.error
            ));
        }
        s
    }

    /// CSV: one row per cell; summary rows carry `kind=summary`.
    pub fn to_csv(&self) -> String {
        let mut s = String::from(
            "kind,workload,cell,seeds,jobs_completed,jobs_censored,mean_utilization,\
             mean_power_kw,peak_power_kw,max_power_swing_kw,energy_mwh,avg_wait_secs,\
             p99_wait_secs,avg_turnaround_secs,run_pue,d_wait_pct,d_util_pp,d_power_pct,\
             d_energy_pct,is_baseline\n",
        );
        let opt = |v: Option<f64>| v.map(|x| format!("{x:.6}")).unwrap_or_default();
        for row in &self.rows {
            let m = &row.metrics;
            s.push_str(&format!(
                "cell,{},{},1,{},{},{:.6},{:.3},{:.3},{:.3},{:.6},{:.3},{:.3},{:.3},{},{},{},{},{},{}\n",
                row.workload,
                row.cell,
                m.jobs_completed,
                m.jobs_censored,
                m.mean_utilization,
                m.mean_power_kw,
                m.peak_power_kw,
                m.max_power_swing_kw,
                m.energy_mwh,
                m.avg_wait_secs,
                m.p99_wait_secs,
                m.avg_turnaround_secs,
                opt(m.run_pue),
                opt(row.d_wait_pct),
                opt(row.d_util_pp),
                opt(row.d_power_pct),
                opt(row.d_energy_pct),
                row.is_baseline,
            ));
        }
        for row in &self.summary {
            let m = &row.metrics;
            s.push_str(&format!(
                "summary,{},{},{},{},{},{:.6},{:.3},{:.3},{:.3},{:.6},{:.3},{:.3},{:.3},{},,,,,\n",
                row.group,
                row.cell_kind,
                row.seeds,
                m.jobs_completed,
                m.jobs_censored,
                m.mean_utilization,
                m.mean_power_kw,
                m.peak_power_kw,
                m.max_power_swing_kw,
                m.energy_mwh,
                m.avg_wait_secs,
                m.p99_wait_secs,
                m.avg_turnaround_secs,
                opt(m.run_pue),
            ));
        }
        s
    }

    /// Pretty JSON of the whole report.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }

    /// The `--profile` view of a sweep: a per-cell breakdown (source and
    /// wall time of each cell, cache hits reporting their cache-read time
    /// rather than zeroed engine phases) followed by the aggregated
    /// phase/counter table from [`SweepResults::profile`].
    ///
    /// Wall-clock numbers vary run to run by nature; the *counters* in
    /// the aggregate table are deterministic for any `--jobs` value.
    pub fn render_profile_table(results: &SweepResults) -> String {
        let mut s = format!(
            "sweep profile: {} cells ({} cached, {} simulated), jobs={}, wall {}\n",
            results.cells.len(),
            results.cache_hits(),
            results.cache_misses(),
            results.jobs,
            sraps_obs::format_ns(results.wall.as_nanos().min(u64::MAX as u128) as u64),
        );
        if results.cells.iter().any(|c| c.profile.is_some()) {
            s.push_str(&format!(
                "\n{:<40} {:>9} {:>10} {:>12} {:>12}\n",
                "cell", "source", "time", "sched_calls", "ticks_skip"
            ));
            for cell in &results.cells {
                let Some(p) = &cell.profile else { continue };
                let cell_ns = p
                    .phase(sraps_obs::Phase::SweepCell.name())
                    .map_or(0, |ph| ph.total_ns);
                s.push_str(&format!(
                    "{:<40} {:>9} {:>10} {:>12} {:>12}\n",
                    cell.spec.label,
                    if cell.from_cache { "cache" } else { "sim" },
                    sraps_obs::format_ns(cell_ns),
                    p.counter(sraps_obs::Counter::SchedInvocations.name()),
                    p.counter(sraps_obs::Counter::EngineTicksSkipped.name()),
                ));
            }
        }
        s.push('\n');
        s.push_str(&results.profile().render_table());
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ExperimentMatrix, SweepRunner};
    use sraps_types::SimDuration;

    fn results(seeds: u64) -> SweepResults {
        SweepRunner::new(2)
            .run(
                &ExperimentMatrix::synthetic(["lassen"])
                    .span(SimDuration::hours(2))
                    .loads([0.6])
                    .seed_count(seeds)
                    .pairs([("replay", "none"), ("fcfs", "easy")]),
            )
            .unwrap()
    }

    #[test]
    fn baseline_defaults_to_first_cell_per_workload() {
        let r = Report::from_results(&results(1));
        assert_eq!(r.rows.len(), 2);
        assert!(r.rows[0].is_baseline);
        assert_eq!(r.rows[0].d_wait_pct.map(|d| d.abs() < 1e-9), Some(true));
        assert!(!r.rows[1].is_baseline);
        assert_eq!(r.baseline.as_deref(), Some("replay-none"));
        assert!(r.summary.is_empty(), "single seed ⇒ no summary");
    }

    #[test]
    fn explicit_baseline_by_kind() {
        let r = Report::with_baseline(&results(1), "fcfs-easy");
        assert!(r.rows[1].is_baseline);
        assert!(!r.rows[0].is_baseline);
        assert_eq!(r.baseline.as_deref(), Some("fcfs-easy"));
    }

    #[test]
    fn seed_summary_appears_for_multi_seed() {
        let r = Report::from_results(&results(2));
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.summary.len(), 2, "one summary row per cell kind");
        assert_eq!(r.summary[0].seeds, 2);
        assert_eq!(r.summary[0].group, "lassen");
    }

    #[test]
    fn exports_are_consistent() {
        let r = Report::from_results(&results(2));
        let csv = r.to_csv();
        assert_eq!(csv.lines().count(), 1 + 4 + 2);
        assert!(csv.starts_with("kind,workload,cell"));
        let json = r.to_json();
        assert!(json.contains("\"baseline\": \"replay-none\""));
        assert!(json.contains("\"summary\""));
        // Deterministic: rebuilding produces identical text.
        let r2 = Report::from_results(&results(2));
        assert_eq!(r2.to_csv(), csv);
        assert_eq!(r2.to_json(), json);
        assert_eq!(r2.render_table(), r.render_table());
    }
}
