//! Deterministic fault injection for crash-safety testing.
//!
//! A [`FaultPlan`] names exactly which sweep cells misbehave and how:
//! worker panics, failed or delayed cache writes, and mid-write
//! truncation of the just-installed cache entry (the on-disk state a
//! `kill -9` between write and rename would leave behind). Plans are
//! armed per process — via `sraps sweep --faults SPEC` or the
//! `SRAPS_FAULTS` environment variable — and checked behind a single
//! relaxed atomic load, so like `sraps-obs` the harness is zero-cost
//! when off.
//!
//! Spec grammar (comma-separated entries):
//!
//! ```text
//! panic@2              panic while simulating cell index 2 (first attempt only)
//! panic@2:persist      …on every attempt (the cell fails permanently)
//! write-fail@1         cache write-back of cell 1 returns an I/O error once
//! write-delay@4:250ms  cache write-back of cell 4 sleeps 250 ms first
//! truncate@0           cell 0's cache entry is truncated right after install
//! panic%25:seed7       seeded selection: each cell panics with p=25%
//! ```
//!
//! Service-path points (the `sraps serve` daemon indexes them by its
//! request sequence number instead of a cell index):
//!
//! ```text
//! accept-fail@3        admission artificially rejects request 3
//! slow-worker%50:200ms half of all requests stall 200 ms on their worker
//! drop-conn@2          the connection is dropped right after request 2
//!                      is read (the client sees EOF, never a torn reply)
//! ```
//!
//! Every fault fires **once** per (entry, cell) unless `:persist` is
//! given, so retry/backoff paths converge deterministically: the retry
//! of a faulted attempt runs clean. Seeded selection hashes
//! `seed ^ cell` through splitmix64, so the same spec hits the same
//! cells on every run, on every machine.

use sraps_types::SrapsError;
use std::collections::HashSet;
use std::path::Path;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// What an armed fault does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Panic inside the worker while the cell simulates.
    Panic,
    /// The cache write-back returns an I/O error.
    WriteFail,
    /// The cache write-back sleeps first (stalls a lease heartbeat
    /// window without killing anything).
    WriteDelay,
    /// The installed cache entry is truncated to half its bytes — the
    /// torn-write state a crash between write and rename would leave.
    Truncate,
    /// `sraps serve` admission artificially rejects the request (the
    /// client sees a structured rejection with retry-after).
    AcceptFail,
    /// A `sraps serve` worker stalls before executing the request —
    /// deterministic queue pressure for deadline/backpressure tests.
    SlowWorker,
    /// The `sraps serve` connection is dropped right after the request
    /// is read, before any reply bytes — clients see EOF, never a torn
    /// response.
    DropConn,
}

impl FaultKind {
    fn parse(s: &str) -> Option<FaultKind> {
        match s {
            "panic" => Some(FaultKind::Panic),
            "write-fail" => Some(FaultKind::WriteFail),
            "write-delay" => Some(FaultKind::WriteDelay),
            "truncate" => Some(FaultKind::Truncate),
            "accept-fail" => Some(FaultKind::AcceptFail),
            "slow-worker" => Some(FaultKind::SlowWorker),
            "drop-conn" => Some(FaultKind::DropConn),
            _ => None,
        }
    }
}

/// Which cells an entry selects.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Select {
    /// One explicit cell index.
    Index(usize),
    /// Seeded Bernoulli over cell indices: fires at cell `i` when
    /// `splitmix64(seed ^ i) % 100 < rate`.
    Seeded { rate: u64, seed: u64 },
}

impl Select {
    fn matches(&self, cell: usize) -> bool {
        match *self {
            Select::Index(i) => i == cell,
            Select::Seeded { rate, seed } => splitmix64(seed ^ cell as u64) % 100 < rate,
        }
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FaultSpec {
    kind: FaultKind,
    select: Select,
    /// Fire on every attempt instead of once per (entry, cell).
    persist: bool,
    /// Sleep duration for [`FaultKind::WriteDelay`].
    delay: Duration,
}

/// A parsed, deterministic fault schedule. Arm with [`arm`]; the sweep
/// runner calls the injection hooks ([`panic_point`],
/// [`before_cache_write`], [`after_cache_write`]) at the matching sites.
#[derive(Debug)]
pub struct FaultPlan {
    specs: Vec<FaultSpec>,
    /// (entry index, cell index) pairs that already fired — the fire-once
    /// ledger that makes retries converge.
    fired: Mutex<HashSet<(usize, usize)>>,
}

impl FaultPlan {
    /// Parse a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut specs = Vec::new();
        for entry in spec.split(',').map(str::trim).filter(|e| !e.is_empty()) {
            specs.push(Self::parse_entry(entry)?);
        }
        if specs.is_empty() {
            return Err(format!("fault spec {spec:?} names no faults"));
        }
        Ok(FaultPlan {
            specs,
            fired: Mutex::new(HashSet::new()),
        })
    }

    fn parse_entry(entry: &str) -> Result<FaultSpec, String> {
        let (head, mods) = match entry.split_once(':') {
            Some((h, m)) => (h, Some(m)),
            None => (entry, None),
        };
        let (kind_s, select) = if let Some((k, idx)) = head.split_once('@') {
            let i = idx
                .parse::<usize>()
                .map_err(|_| format!("bad cell index in fault entry {entry:?}"))?;
            (k, Select::Index(i))
        } else if let Some((k, rate)) = head.split_once('%') {
            let rate = rate
                .parse::<u64>()
                .map_err(|_| format!("bad rate in fault entry {entry:?}"))?;
            if rate > 100 {
                return Err(format!("rate above 100% in fault entry {entry:?}"));
            }
            // Seed arrives as a `seedN` modifier; default 0.
            (k, Select::Seeded { rate, seed: 0 })
        } else {
            return Err(format!(
                "fault entry {entry:?} needs `@index` or `%rate` selection"
            ));
        };
        let kind = FaultKind::parse(kind_s)
            .ok_or_else(|| format!("unknown fault kind {kind_s:?} in entry {entry:?}"))?;
        let mut spec = FaultSpec {
            kind,
            select,
            persist: false,
            delay: Duration::from_millis(100),
        };
        for m in mods.into_iter().flat_map(|m| m.split(':')) {
            if m == "persist" {
                spec.persist = true;
            } else if let Some(seed) = m.strip_prefix("seed") {
                let seed = seed
                    .parse::<u64>()
                    .map_err(|_| format!("bad seed in fault entry {entry:?}"))?;
                match &mut spec.select {
                    Select::Seeded { seed: s, .. } => *s = seed,
                    Select::Index(_) => {
                        return Err(format!("seed modifier on indexed fault entry {entry:?}"))
                    }
                }
            } else if let Some(ms) = m.strip_suffix("ms") {
                let ms = ms
                    .parse::<u64>()
                    .map_err(|_| format!("bad delay in fault entry {entry:?}"))?;
                spec.delay = Duration::from_millis(ms);
            } else {
                return Err(format!("unknown modifier {m:?} in fault entry {entry:?}"));
            }
        }
        Ok(spec)
    }

    /// Whether the entry-`kind` fault at `cell` fires now. Consumes the
    /// (entry, cell) charge unless the entry is persistent.
    fn fire(&self, kind: FaultKind, cell: usize) -> Option<&FaultSpec> {
        for (slot, spec) in self.specs.iter().enumerate() {
            if spec.kind != kind || !spec.select.matches(cell) {
                continue;
            }
            if spec.persist || self.fired.lock().unwrap().insert((slot, cell)) {
                return Some(spec);
            }
        }
        None
    }
}

// ----------------------------------------------------------- global gate

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: Mutex<Option<Arc<FaultPlan>>> = Mutex::new(None);

/// Arm a fault plan process-wide. Replaces any previous plan.
pub fn arm(plan: FaultPlan) {
    *PLAN.lock().unwrap() = Some(Arc::new(plan));
    ARMED.store(true, Ordering::Release);
}

/// Disarm fault injection (hooks return to their zero-cost fast path).
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    *PLAN.lock().unwrap() = None;
}

/// Whether a plan is armed (single relaxed load — the hooks' fast path).
#[inline]
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

fn plan() -> Option<Arc<FaultPlan>> {
    PLAN.lock().unwrap().clone()
}

fn injected() {
    sraps_obs::bump(sraps_obs::Counter::FaultsInjected);
}

// ------------------------------------------------------- injection hooks

/// Panic site: called by the worker inside its `catch_unwind` scope,
/// right before the cell simulates.
#[inline]
pub fn panic_point(cell: usize) {
    if !armed() {
        return;
    }
    if let Some(p) = plan() {
        if p.fire(FaultKind::Panic, cell).is_some() {
            injected();
            panic!("injected fault: worker panic at cell {cell}");
        }
    }
}

/// Cache write-back site, before the write: may sleep (`write-delay`)
/// and may fail (`write-fail`).
#[inline]
pub fn before_cache_write(cell: usize) -> Result<(), SrapsError> {
    if !armed() {
        return Ok(());
    }
    if let Some(p) = plan() {
        if let Some(spec) = p.fire(FaultKind::WriteDelay, cell) {
            injected();
            std::thread::sleep(spec.delay);
        }
        if p.fire(FaultKind::WriteFail, cell).is_some() {
            injected();
            return Err(SrapsError::Io(format!(
                "injected fault: cache write failure at cell {cell}"
            )));
        }
    }
    Ok(())
}

/// Cache write-back site, after the entry installed: `truncate` tears
/// the entry to half its bytes, reproducing on-disk state equivalent to
/// a crash mid-write (the *next* reader self-heals it back to a miss).
#[inline]
pub fn after_cache_write(cell: usize, entry: &Path) {
    if !armed() {
        return;
    }
    if let Some(p) = plan() {
        if p.fire(FaultKind::Truncate, cell).is_some() {
            injected();
            if let Ok(bytes) = std::fs::read(entry) {
                let _ = std::fs::write(entry, &bytes[..bytes.len() / 2]);
            }
        }
    }
}

// --------------------------------------------------- service-path hooks
//
// The `sraps serve` daemon's chaos points. They index by the daemon's
// monotone request sequence number (the service-side analog of a cell
// index), so `accept-fail@3` deterministically names "the 4th request
// this process accepted" regardless of which connection carried it.

/// Admission site: whether the request should be artificially rejected.
#[inline]
pub fn accept_fail(request: usize) -> bool {
    if !armed() {
        return false;
    }
    plan()
        .map(|p| {
            let fired = p.fire(FaultKind::AcceptFail, request).is_some();
            if fired {
                injected();
            }
            fired
        })
        .unwrap_or(false)
}

/// Worker dispatch site: how long the worker must stall before
/// executing the request, when a `slow-worker` entry selects it.
#[inline]
pub fn slow_worker(request: usize) -> Option<Duration> {
    if !armed() {
        return None;
    }
    plan().and_then(|p| {
        let delay = p.fire(FaultKind::SlowWorker, request).map(|s| s.delay);
        if delay.is_some() {
            injected();
        }
        delay
    })
}

/// Connection site: whether to drop the connection right after reading
/// this request (before any reply bytes hit the socket).
#[inline]
pub fn drop_conn(request: usize) -> bool {
    if !armed() {
        return false;
    }
    plan()
        .map(|p| {
            let fired = p.fire(FaultKind::DropConn, request).is_some();
            if fired {
                injected();
            }
            fired
        })
        .unwrap_or(false)
}

/// splitmix64 — the mixing function behind seeded fault selection and
/// claim-backoff jitter. Deterministic, allocation-free, good avalanche.
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_documented_grammar() {
        let p = FaultPlan::parse("panic@2,write-fail@1,write-delay@4:250ms,truncate@0").unwrap();
        assert_eq!(p.specs.len(), 4);
        assert_eq!(p.specs[0].kind, FaultKind::Panic);
        assert_eq!(p.specs[0].select, Select::Index(2));
        assert!(!p.specs[0].persist);
        assert_eq!(p.specs[2].delay, Duration::from_millis(250));

        let p = FaultPlan::parse("panic@3:persist").unwrap();
        assert!(p.specs[0].persist);

        let p = FaultPlan::parse("panic%25:seed7").unwrap();
        assert_eq!(p.specs[0].select, Select::Seeded { rate: 25, seed: 7 });
    }

    #[test]
    fn parses_the_service_path_grammar() {
        let p = FaultPlan::parse("accept-fail@3,slow-worker%50:200ms,drop-conn@2").unwrap();
        assert_eq!(p.specs[0].kind, FaultKind::AcceptFail);
        assert_eq!(p.specs[0].select, Select::Index(3));
        assert_eq!(p.specs[1].kind, FaultKind::SlowWorker);
        assert_eq!(p.specs[1].select, Select::Seeded { rate: 50, seed: 0 });
        assert_eq!(p.specs[1].delay, Duration::from_millis(200));
        assert_eq!(p.specs[2].kind, FaultKind::DropConn);
    }

    #[test]
    fn service_faults_fire_once_like_cell_faults() {
        // Exercised through `FaultPlan::fire` directly — this test
        // binary never arms the global plan (see
        // `hooks_are_inert_when_disarmed`).
        let p = FaultPlan::parse("accept-fail@1,slow-worker@2:50ms,drop-conn@0").unwrap();
        assert!(p.fire(FaultKind::AcceptFail, 0).is_none());
        assert!(p.fire(FaultKind::AcceptFail, 1).is_some());
        assert!(
            p.fire(FaultKind::AcceptFail, 1).is_none(),
            "charge consumed"
        );
        assert_eq!(
            p.fire(FaultKind::SlowWorker, 2).map(|s| s.delay),
            Some(Duration::from_millis(50))
        );
        assert!(p.fire(FaultKind::SlowWorker, 2).is_none());
        assert!(p.fire(FaultKind::DropConn, 0).is_some());
        assert!(p.fire(FaultKind::DropConn, 3).is_none());
        // The hooks themselves are inert while nothing is armed.
        assert!(!armed());
        assert!(!accept_fail(1));
        assert_eq!(slow_worker(2), None);
        assert!(!drop_conn(0));
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "panic",
            "panic@x",
            "explode@1",
            "panic%150",
            "panic@1:seed3",
            "panic@1:wat",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn faults_fire_once_unless_persistent() {
        let p = FaultPlan::parse("panic@5").unwrap();
        assert!(p.fire(FaultKind::Panic, 5).is_some());
        assert!(p.fire(FaultKind::Panic, 5).is_none(), "charge consumed");
        assert!(p.fire(FaultKind::Panic, 4).is_none(), "wrong cell");
        assert!(p.fire(FaultKind::WriteFail, 5).is_none(), "wrong kind");

        let p = FaultPlan::parse("panic@5:persist").unwrap();
        assert!(p.fire(FaultKind::Panic, 5).is_some());
        assert!(p.fire(FaultKind::Panic, 5).is_some(), "persistent refires");
    }

    #[test]
    fn seeded_selection_is_deterministic() {
        let a = FaultPlan::parse("panic%30:seed11").unwrap();
        let b = FaultPlan::parse("panic%30:seed11").unwrap();
        let hits_a: Vec<usize> = (0..64).filter(|&i| a.specs[0].select.matches(i)).collect();
        let hits_b: Vec<usize> = (0..64).filter(|&i| b.specs[0].select.matches(i)).collect();
        assert_eq!(hits_a, hits_b);
        assert!(!hits_a.is_empty(), "30% of 64 cells should hit some");
        assert!(hits_a.len() < 64, "…but not all");
        let other: Vec<usize> = {
            let c = FaultPlan::parse("panic%30:seed12").unwrap();
            (0..64).filter(|&i| c.specs[0].select.matches(i)).collect()
        };
        assert_ne!(hits_a, other, "different seed, different cells");
    }

    #[test]
    fn hooks_are_inert_when_disarmed() {
        // Never armed in this test — every hook must be a no-op.
        assert!(!armed());
        panic_point(0);
        before_cache_write(0).unwrap();
        after_cache_write(0, Path::new("/nonexistent/entry.json"));
    }
}
