//! [`CellCache`]: the content-addressed on-disk memo of finished cells.
//!
//! A sweep cell is a pure function of (workload plan, cell spec), so its
//! scalar [`CellMetrics`] can be stored under the spec's fingerprint
//! ([`crate::CellSpec::fingerprint`]) and reused by any later sweep that
//! expands to the same cell — re-running a matrix after editing one axis
//! only simulates the cells that axis touched.
//!
//! Layout (flat, one entry per cell under the cache directory):
//!
//! ```text
//! <dir>/<32-hex-key>.json         versioned metrics envelope
//! <dir>/<32-hex-key>-power.csv    spilled power history (optional)
//! <dir>/<32-hex-key>-util.csv     spilled util/queue history (optional)
//! ```
//!
//! Guarantees:
//!
//! * **Atomicity** — entries are written to a temp file in the same
//!   directory and `rename`d into place, so concurrent workers (threads
//!   or separate processes sharing `SRAPS_CACHE_DIR`) never observe a
//!   torn entry; at worst two writers race to install identical bytes.
//! * **Self-healing** — *any* defect on read (missing file, truncated or
//!   corrupt JSON, schema or key mismatch, missing required history
//!   spill) is a miss, never an error: the runner recomputes the cell
//!   and rewrites the entry.
//! * **Invalidation** — keys embed
//!   [`sraps_core::ENGINE_SCHEMA_VERSION`], so engine-semantics bumps
//!   orphan old entries wholesale; [`CACHE_SCHEMA_VERSION`] guards the
//!   envelope format itself.

use crate::metrics::CellMetrics;
use serde::{Deserialize, Serialize};
use sraps_core::{EngineSnapshot, ENGINE_SCHEMA_VERSION};
use sraps_types::{Result, SrapsError};
use std::path::{Path, PathBuf};

/// Envelope-format version: bump when the entry layout changes (old
/// entries then read as misses and are rewritten).
pub const CACHE_SCHEMA_VERSION: u32 = 1;

/// One stored entry: the envelope re-checked on read plus the metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct CacheEntry {
    /// [`CACHE_SCHEMA_VERSION`] at write time.
    schema: u32,
    /// The key the entry was stored under (defends against copied files).
    key: String,
    /// Display label at write time — diagnostic only, not verified (the
    /// same simulation may be labelled differently across matrices).
    label: String,
    metrics: CellMetrics,
}

/// What a cache hit returns.
#[derive(Debug, Clone)]
pub struct CachedCell {
    pub metrics: CellMetrics,
}

/// Handle on a cache directory.
#[derive(Debug, Clone)]
pub struct CellCache {
    dir: PathBuf,
}

impl CellCache {
    /// Open (creating if needed) a cache directory.
    pub fn open(dir: impl Into<PathBuf>) -> Result<CellCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SrapsError::Io(format!("create cache dir {}: {e}", dir.display())))?;
        Ok(CellCache { dir })
    }

    /// The cache directory for a sweep writing to `out_dir`:
    /// `$SRAPS_CACHE_DIR` when set, else `<out_dir>/cache`.
    pub fn default_dir(out_dir: &Path) -> PathBuf {
        std::env::var_os("SRAPS_CACHE_DIR")
            .map(PathBuf::from)
            .unwrap_or_else(|| out_dir.join("cache"))
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Path of the metrics envelope for `key` (the fault harness tears
    /// it; the claim protocol leases beside it).
    pub fn entry_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.json"))
    }

    /// Counter-free lookup. Used to revalidate a cell right after its
    /// claim lease is acquired and while polling a deferred cell: the
    /// consult already counted the one real miss, and an entry landing
    /// in between is another worker's completion — not a second consult
    /// — so the hit/miss counters must not move again.
    pub fn peek(&self, key: &str, need_histories: bool) -> Option<CachedCell> {
        self.load_inner(key, need_histories).0
    }

    /// Paths of the spilled history CSVs for `key` (power, util).
    pub fn history_paths(&self, key: &str) -> (PathBuf, PathBuf) {
        (
            self.dir.join(format!("{key}-power.csv")),
            self.dir.join(format!("{key}-util.csv")),
        )
    }

    /// Look up a cell. `need_histories` additionally requires both
    /// spilled history CSVs, so a sweep that will export histories never
    /// hits an entry that cannot supply them. Every failure mode is a
    /// miss (`None`) by design — see the module docs.
    pub fn load(&self, key: &str, need_histories: bool) -> Option<CachedCell> {
        let _s = sraps_obs::span(sraps_obs::Phase::CacheRead);
        let (cell, healed) = self.load_inner(key, need_histories);
        match cell {
            Some(_) => sraps_obs::bump(sraps_obs::Counter::CacheHits),
            None => {
                sraps_obs::bump(sraps_obs::Counter::CacheMisses);
                if healed {
                    sraps_obs::bump(sraps_obs::Counter::CacheSelfHeals);
                }
            }
        }
        cell
    }

    /// The lookup itself, split out so [`CellCache::load`] can distinguish
    /// a plain miss (no entry on disk) from a *self-healing* one (an entry
    /// exists but is defective and will be recomputed and rewritten).
    fn load_inner(&self, key: &str, need_histories: bool) -> (Option<CachedCell>, bool) {
        let text = match std::fs::read_to_string(self.entry_path(key)) {
            Ok(text) => text,
            Err(_) => return (None, false),
        };
        let Ok(entry) = serde_json::from_str::<CacheEntry>(&text) else {
            return (None, true);
        };
        if entry.schema != CACHE_SCHEMA_VERSION || entry.key != key {
            return (None, true);
        }
        if need_histories {
            let (power, util) = self.history_paths(key);
            if !power.is_file() || !util.is_file() {
                return (None, true);
            }
        }
        (
            Some(CachedCell {
                metrics: entry.metrics,
            }),
            false,
        )
    }

    /// Path of the stored prefix snapshot for `key`
    /// ([`crate::CellSpec::prefix_fingerprint`]).
    pub fn snapshot_path(&self, key: &str) -> PathBuf {
        self.dir.join(format!("{key}.snap.json"))
    }

    /// Look up a stored engine snapshot. Same self-healing discipline as
    /// [`CellCache::load`]: a missing file is a plain miss; a truncated,
    /// corrupt, or stale-schema snapshot is demoted to a miss (counted
    /// under `snapshot.self_heals`) so the prefix is recomputed and the
    /// entry rewritten — never an error, never a wrong resume.
    pub fn load_snapshot(&self, key: &str) -> Option<EngineSnapshot> {
        let _s = sraps_obs::span(sraps_obs::Phase::CacheRead);
        let text = match std::fs::read_to_string(self.snapshot_path(key)) {
            Ok(text) => text,
            Err(_) => return None,
        };
        match serde_json::from_str::<EngineSnapshot>(&text) {
            Ok(snap) if snap.schema == ENGINE_SCHEMA_VERSION => Some(snap),
            _ => {
                sraps_obs::bump(sraps_obs::Counter::SnapshotSelfHeals);
                None
            }
        }
    }

    /// Store an engine snapshot under a prefix key (atomic install, like
    /// every other entry).
    pub fn store_snapshot(&self, key: &str, snap: &EngineSnapshot) -> Result<()> {
        let _s = sraps_obs::span(sraps_obs::Phase::CacheWrite);
        let json = serde_json::to_string(snap)
            .map_err(|e| SrapsError::Io(format!("serialize snapshot {key}: {e}")))?;
        self.write_atomic(&self.snapshot_path(key), json.as_bytes())
    }

    /// Store a finished cell, optionally spilling its history CSVs.
    /// Histories are installed before the envelope so a reader that sees
    /// the entry is guaranteed to see its histories too.
    pub fn store(
        &self,
        key: &str,
        label: &str,
        metrics: &CellMetrics,
        histories: Option<(&str, &str)>,
    ) -> Result<()> {
        let _s = sraps_obs::span(sraps_obs::Phase::CacheWrite);
        if let Some((power_csv, util_csv)) = histories {
            let (power, util) = self.history_paths(key);
            self.write_atomic(&power, power_csv.as_bytes())?;
            self.write_atomic(&util, util_csv.as_bytes())?;
        }
        let entry = CacheEntry {
            schema: CACHE_SCHEMA_VERSION,
            key: key.to_string(),
            label: label.to_string(),
            metrics: metrics.clone(),
        };
        let json = serde_json::to_string_pretty(&entry)
            .map_err(|e| SrapsError::Io(format!("serialize cache entry {key}: {e}")))?;
        self.write_atomic(&self.entry_path(key), json.as_bytes())
    }

    /// Temp file + rename in the same directory (the workspace-wide
    /// [`sraps_types::fsio::write_atomic`] idiom); the temp name carries
    /// the pid (processes sharing a cache dir) plus a process-wide
    /// counter (threads storing the same key — possible when two
    /// workloads share content under different labels, since labels are
    /// excluded from keys), so concurrent writers never collide on the
    /// temp path and at worst race identical bytes through `rename`.
    fn write_atomic(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        sraps_types::fsio::write_atomic(path, bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics() -> CellMetrics {
        CellMetrics {
            jobs_completed: 12,
            jobs_censored: 1,
            mean_utilization: 0.5625,
            mean_power_kw: 123.456789,
            peak_power_kw: 222.2,
            max_power_swing_kw: 17.0,
            energy_mwh: 1.0 / 3.0, // awkward float: exercises roundtrip
            avg_wait_secs: 0.1 + 0.2,
            p99_wait_secs: 1234.0,
            avg_turnaround_secs: 4321.5,
            // One ULP above 1.06: prints with full precision digits.
            run_pue: Some(f64::from_bits(1.06f64.to_bits() + 1)),
        }
    }

    fn temp_cache(tag: &str) -> CellCache {
        let dir = std::env::temp_dir().join(format!("sraps-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        CellCache::open(dir).unwrap()
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let cache = temp_cache("roundtrip");
        let m = metrics();
        assert!(cache.load("k0", false).is_none(), "cold cache misses");
        cache.store("k0", "fcfs-easy", &m, None).unwrap();
        let back = cache.load("k0", false).expect("warm cache hits");
        assert_eq!(back.metrics, m);
        // Bit-exact floats: the report CSVs of a warm run must be
        // byte-identical to the cold run's.
        assert_eq!(
            back.metrics.energy_mwh.to_bits(),
            m.energy_mwh.to_bits(),
            "f64 JSON roundtrip must be exact"
        );
        assert_eq!(
            back.metrics.run_pue.map(f64::to_bits),
            m.run_pue.map(f64::to_bits)
        );
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn histories_gate_hits_when_required() {
        let cache = temp_cache("hist");
        cache.store("k1", "cell", &metrics(), None).unwrap();
        assert!(cache.load("k1", false).is_some());
        assert!(
            cache.load("k1", true).is_none(),
            "entry without spilled histories must miss when they are required"
        );
        cache
            .store("k1", "cell", &metrics(), Some(("p,csv\n", "u,csv\n")))
            .unwrap();
        assert!(cache.load("k1", true).is_some());
        let (power, util) = cache.history_paths("k1");
        assert_eq!(std::fs::read_to_string(power).unwrap(), "p,csv\n");
        assert_eq!(std::fs::read_to_string(util).unwrap(), "u,csv\n");
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn corrupt_entries_read_as_misses() {
        let cache = temp_cache("corrupt");
        cache.store("k2", "cell", &metrics(), None).unwrap();
        let path = cache.dir().join("k2.json");

        // Truncation (the CI scenario): a torn/partial entry misses.
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load("k2", false).is_none());

        // Not JSON at all.
        std::fs::write(&path, "garbage").unwrap();
        assert!(cache.load("k2", false).is_none());

        // A valid entry copied under the wrong key.
        std::fs::write(&path, full.replace("\"k2\"", "\"other\"")).unwrap();
        assert!(cache.load("k2", false).is_none());

        // Recompute-and-rewrite restores it.
        cache.store("k2", "cell", &metrics(), None).unwrap();
        assert!(cache.load("k2", false).is_some());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn snapshot_roundtrip_self_heals_on_defects() {
        use crate::cell::WorkloadPlan;
        use sraps_core::{Engine, SimConfig};
        use sraps_types::SimDuration;

        let plan = WorkloadPlan::Synthetic {
            label: "adastra".into(),
            group: "adastra".into(),
            system: "adastra".into(),
            load: 0.4,
            seed: 3,
            span: SimDuration::hours(1),
            scale: 1.0,
        };
        let w = plan.materialize().unwrap();
        let sim = SimConfig::new(w.config.clone(), "fcfs", "easy").unwrap();
        let mut engine = Engine::new(sim, &w.dataset).unwrap();
        let mid = engine.sim_start() + SimDuration::minutes(30);
        engine.run_until(mid).unwrap();
        let snap = engine.snapshot().unwrap();

        let cache = temp_cache("snap");
        sraps_obs::set_profile(true);
        let cap = sraps_obs::capture();
        assert!(cache.load_snapshot("p0").is_none(), "cold store misses");
        cache.store_snapshot("p0", &snap).unwrap();
        let back = cache.load_snapshot("p0").expect("warm store hits");
        assert_eq!(back.now, snap.now);
        assert_eq!(back.remaining, snap.remaining);

        // Truncated payload: demoted to a miss, counted as a self-heal.
        let path = cache.snapshot_path("p0");
        let full = std::fs::read_to_string(&path).unwrap();
        std::fs::write(&path, &full[..full.len() / 2]).unwrap();
        assert!(cache.load_snapshot("p0").is_none());

        // Stale engine schema: same demotion — a snapshot written by an
        // older engine must recompute, never resume wrong.
        let mut stale = snap.clone();
        stale.schema += 1;
        cache.store_snapshot("p0", &stale).unwrap();
        assert!(cache.load_snapshot("p0").is_none());

        let prof = cap.finish().unwrap();
        assert_eq!(prof.counter("snapshot.self_heals"), 2);
        sraps_obs::set_profile(false);
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn default_dir_falls_back_under_the_results_dir() {
        // The SRAPS_CACHE_DIR branch is covered by the CLI smoke tests,
        // which set the variable on a child process — mutating process
        // env here would race the parallel test harness.
        if std::env::var_os("SRAPS_CACHE_DIR").is_none() {
            let out = PathBuf::from("results/run");
            assert_eq!(CellCache::default_dir(&out), out.join("cache"));
        }
    }
}
