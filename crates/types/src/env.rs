//! Hardened environment-knob parsing.
//!
//! Every `SRAPS_*` environment variable used to be read through ad-hoc
//! `var(..).ok().and_then(|v| v.parse().ok())` chains, which silently
//! fall back to the default when the value is malformed — a typo like
//! `SRAPS_CLAIM_TTL_MS=30s` would quietly run with a 30 *second* TTL
//! instead of failing. These helpers make a set-but-malformed knob a
//! [`SrapsError::Config`] at startup: unset stays `None`, well-formed
//! parses, anything else is an error naming the variable and the value.

use crate::error::{Result, SrapsError};
use std::str::FromStr;
use std::time::Duration;

/// Read and parse the environment variable `var` as a `T`.
///
/// * unset ⇒ `Ok(None)`
/// * set and parseable ⇒ `Ok(Some(value))`
/// * set but malformed (or not unicode) ⇒ `Err(SrapsError::Config)`
pub fn parse_env<T: FromStr>(var: &str) -> Result<Option<T>> {
    parse_env_value(var, string_env(var)?.as_deref())
}

/// Read `var` as a millisecond count and wrap it in a [`Duration`].
pub fn parse_env_ms(var: &str) -> Result<Option<Duration>> {
    Ok(parse_env::<u64>(var)?.map(Duration::from_millis))
}

/// Read `var` as a plain string. Unset ⇒ `None`; set but not unicode is
/// a config error (the silent-skip `std::env::var(..).ok()` would hide).
pub fn string_env(var: &str) -> Result<Option<String>> {
    match std::env::var(var) {
        Ok(v) => Ok(Some(v)),
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(raw)) => Err(SrapsError::Config(format!(
            "environment variable {var} is not valid unicode: {raw:?}"
        ))),
    }
}

/// The pure core of [`parse_env`]: parse an already-read value. Split
/// out so unit tests exercise every branch without mutating the process
/// environment (which races parallel tests).
pub fn parse_env_value<T: FromStr>(var: &str, value: Option<&str>) -> Result<Option<T>> {
    match value {
        None => Ok(None),
        Some(raw) => raw.trim().parse::<T>().map(Some).map_err(|_| {
            SrapsError::Config(format!(
                "environment variable {var} has malformed value {raw:?} \
                 (expected {})",
                std::any::type_name::<T>()
            ))
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unset_is_none() {
        assert_eq!(parse_env_value::<u64>("X", None).unwrap(), None);
        assert_eq!(
            parse_env::<u64>("SRAPS_TEST_KNOB_THAT_IS_NEVER_SET").unwrap(),
            None
        );
    }

    #[test]
    fn well_formed_values_parse() {
        assert_eq!(parse_env_value::<u64>("X", Some("250")).unwrap(), Some(250));
        assert_eq!(
            parse_env_value::<u64>("X", Some("  42 ")).unwrap(),
            Some(42),
            "surrounding whitespace is tolerated"
        );
        assert_eq!(parse_env_value::<f64>("X", Some("0.5")).unwrap(), Some(0.5));
    }

    #[test]
    fn malformed_values_are_config_errors_naming_the_variable() {
        for bad in ["30s", "", "0x10", "12.5", "-1"] {
            let err = parse_env_value::<u64>("SRAPS_CLAIM_TTL_MS", Some(bad)).unwrap_err();
            match err {
                SrapsError::Config(msg) => {
                    assert!(
                        msg.contains("SRAPS_CLAIM_TTL_MS") && msg.contains(bad.trim()),
                        "error must name variable and value: {msg}"
                    );
                }
                other => panic!("expected Config error, got {other:?}"),
            }
        }
    }

    #[test]
    fn ms_helper_wraps_in_duration() {
        let d = parse_env_value::<u64>("X", Some("75"))
            .unwrap()
            .map(Duration::from_millis);
        assert_eq!(d, Some(Duration::from_millis(75)));
    }
}
