//! Jobs and their lifecycle.
//!
//! A [`Job`] carries everything a dataloader extracts for scheduling
//! (§3.2.2: submit/start/end time, time limit, requested node count or the
//! exact recorded node set) plus the telemetry used by the digital-twin
//! replay, and bookkeeping the engine fills in as the job moves through
//! [`JobState`].

use crate::node::NodeSet;
use crate::telemetry::JobTelemetry;
use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Unique job identifier within one dataset.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "j{}", self.0)
    }
}

/// Identifier of the submitting user (anonymized in the open datasets).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct UserId(pub u32);

/// Identifier of the charged account/project; the unit of the incentive
/// structures of §4.3.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct AccountId(pub u32);

impl fmt::Display for AccountId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "acct{}", self.0)
    }
}

/// Where a job is in its lifecycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum JobState {
    /// Known to the dataset, not yet submitted in simulation time. The
    /// scheduler must not see these (§3.2.3: "the digital twin observes the
    /// jobs as they are submitted, just like a real system").
    Unsubmitted,
    /// Submitted and waiting in the scheduler queue.
    Queued,
    /// Placed on nodes and executing.
    Running,
    /// Finished (ran to completion of its recorded/estimated duration).
    Completed,
    /// Outside the simulation window (ended before start or submitted after
    /// end) and therefore never simulated (§3.2.2: "dismissed").
    Dismissed,
}

/// A batch job as loaded from a dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Job {
    pub id: JobId,
    pub user: UserId,
    pub account: AccountId,

    /// When the user submitted the job.
    pub submit: SimTime,
    /// Recorded start time in the source telemetry (replay uses it; a
    /// rescheduler is free to start anywhere ≥ `submit`).
    pub recorded_start: SimTime,
    /// Recorded end time in the source telemetry.
    pub recorded_end: SimTime,
    /// The user-requested wall-time limit. Schedulers use this as the
    /// runtime *estimate* (EASY backfill reservations are computed from it).
    pub walltime_limit: SimDuration,
    /// Number of whole nodes requested.
    pub nodes_requested: u32,
    /// Exact recorded placement, when the dataset provides it. Replay mode
    /// enforces this placement (§3.2.3); reschedule ignores it.
    pub recorded_nodes: Option<NodeSet>,
    /// Dataset- or site-assigned priority (higher = more urgent). For
    /// Frontier this encodes the node-count-boosted FIFO of \[16\].
    pub priority: f64,
    /// Telemetry for the digital-twin models.
    pub telemetry: JobTelemetry,
    /// Score attached by the ML inference pipeline (§4.4); consumed by the
    /// `ml` policy. Lower score = schedule earlier.
    pub ml_score: Option<f64>,
}

impl Job {
    /// The recorded duration — what the job will actually run for when
    /// re-scheduled (the application does the same work regardless of when
    /// it starts).
    pub fn duration(&self) -> SimDuration {
        (self.recorded_end - self.recorded_start).clamp_non_negative()
    }

    /// Runtime estimate available to the scheduler *before* the job runs:
    /// the wall-time limit when present, otherwise the recorded duration.
    pub fn estimate(&self) -> SimDuration {
        if self.walltime_limit.is_positive() {
            self.walltime_limit
        } else {
            self.duration()
        }
    }

    /// Node-hours of the recorded execution.
    pub fn node_hours(&self) -> f64 {
        self.nodes_requested as f64 * self.duration().as_hours_f64()
    }
}

/// Builder for [`Job`] — dataloaders assemble jobs field by field from
/// heterogeneous dataset schemas, so a builder keeps call sites readable.
#[derive(Debug, Clone)]
pub struct JobBuilder {
    job: Job,
}

impl JobBuilder {
    pub fn new(id: u64) -> Self {
        JobBuilder {
            job: Job {
                id: JobId(id),
                user: UserId(0),
                account: AccountId(0),
                submit: SimTime::ZERO,
                recorded_start: SimTime::ZERO,
                recorded_end: SimTime::ZERO,
                walltime_limit: SimDuration::ZERO,
                nodes_requested: 1,
                recorded_nodes: None,
                priority: 0.0,
                telemetry: JobTelemetry::default(),
                ml_score: None,
            },
        }
    }

    pub fn user(mut self, u: u32) -> Self {
        self.job.user = UserId(u);
        self
    }

    pub fn account(mut self, a: u32) -> Self {
        self.job.account = AccountId(a);
        self
    }

    pub fn submit(mut self, t: SimTime) -> Self {
        self.job.submit = t;
        self
    }

    pub fn window(mut self, start: SimTime, end: SimTime) -> Self {
        self.job.recorded_start = start;
        self.job.recorded_end = end;
        self
    }

    pub fn walltime(mut self, d: SimDuration) -> Self {
        self.job.walltime_limit = d;
        self
    }

    pub fn nodes(mut self, n: u32) -> Self {
        self.job.nodes_requested = n;
        self
    }

    pub fn placement(mut self, nodes: NodeSet) -> Self {
        self.job.recorded_nodes = Some(nodes);
        self
    }

    pub fn priority(mut self, p: f64) -> Self {
        self.job.priority = p;
        self
    }

    pub fn telemetry(mut self, t: JobTelemetry) -> Self {
        self.job.telemetry = t;
        self
    }

    pub fn ml_score(mut self, s: f64) -> Self {
        self.job.ml_score = Some(s);
        self
    }

    /// Finish the builder. Panics (debug) if times are inconsistent, which
    /// signals a dataloader bug rather than bad data — loaders must repair
    /// or reject malformed records before building.
    pub fn build(self) -> Job {
        debug_assert!(
            self.job.submit <= self.job.recorded_start || self.job.recorded_start == SimTime::ZERO,
            "job {}: submit after recorded start",
            self.job.id
        );
        self.job
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn job() -> Job {
        JobBuilder::new(1)
            .submit(SimTime::seconds(100))
            .window(SimTime::seconds(200), SimTime::seconds(500))
            .walltime(SimDuration::seconds(600))
            .nodes(4)
            .build()
    }

    #[test]
    fn duration_from_recorded_window() {
        assert_eq!(job().duration(), SimDuration::seconds(300));
    }

    #[test]
    fn duration_clamps_inverted_window() {
        let j = JobBuilder::new(2)
            .window(SimTime::seconds(500), SimTime::seconds(400))
            .build();
        assert_eq!(j.duration(), SimDuration::ZERO);
    }

    #[test]
    fn estimate_prefers_walltime_limit() {
        assert_eq!(job().estimate(), SimDuration::seconds(600));
        let j = JobBuilder::new(3)
            .window(SimTime::ZERO, SimTime::seconds(120))
            .build();
        assert_eq!(j.estimate(), SimDuration::seconds(120));
    }

    #[test]
    fn node_hours() {
        // 4 nodes for 300 s = 4 * 300/3600 node-hours.
        assert!((job().node_hours() - 4.0 * 300.0 / 3600.0).abs() < 1e-12);
    }

    #[test]
    fn builder_sets_all_fields() {
        let j = JobBuilder::new(9)
            .user(3)
            .account(7)
            .priority(42.0)
            .placement(NodeSet::contiguous(0, 2))
            .ml_score(1.5)
            .build();
        assert_eq!(j.user, UserId(3));
        assert_eq!(j.account, AccountId(7));
        assert_eq!(j.priority, 42.0);
        assert_eq!(j.recorded_nodes.as_ref().unwrap().len(), 2);
        assert_eq!(j.ml_score, Some(1.5));
    }
}
