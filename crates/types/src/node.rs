//! Node identity and node sets.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifier of one compute node, an index into the system's node array.
///
/// `u32` comfortably covers the largest system in the study (Fugaku,
/// 158 976 nodes) while keeping `NodeSet`s half the size of `usize` ids
/// (see the type-size guidance in the Rust performance guide).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub u32);

impl NodeId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// A set of nodes assigned to a job, stored as a sorted, deduplicated list.
///
/// Jobs in the studied datasets allocate whole nodes (shared-node jobs are
/// filtered by the PM100 loader, matching the paper), so a job's allocation
/// is exactly a set of node ids. Sorted storage gives O(log n) membership
/// and cheap set-difference during release.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct NodeSet(Vec<u32>);

impl NodeSet {
    pub fn new() -> Self {
        NodeSet(Vec::new())
    }

    /// Build from raw indices; sorts and deduplicates.
    pub fn from_indices(mut ids: Vec<u32>) -> Self {
        ids.sort_unstable();
        ids.dedup();
        NodeSet(ids)
    }

    /// Build from indices already in strictly ascending order (the shape
    /// every bitset scan produces), skipping the sort+dedup of
    /// [`NodeSet::from_indices`].
    pub fn from_sorted(ids: Vec<u32>) -> Self {
        debug_assert!(
            ids.windows(2).all(|w| w[0] < w[1]),
            "from_sorted requires strictly ascending indices"
        );
        NodeSet(ids)
    }

    /// Build from a contiguous range `[start, start+count)`.
    pub fn contiguous(start: u32, count: u32) -> Self {
        NodeSet((start..start + count).collect())
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    pub fn contains(&self, id: NodeId) -> bool {
        self.0.binary_search(&id.0).is_ok()
    }

    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.0.iter().map(|&i| NodeId(i))
    }

    pub fn as_slice(&self) -> &[u32] {
        &self.0
    }

    /// True when `self` and `other` share no node.
    pub fn is_disjoint(&self, other: &NodeSet) -> bool {
        // Merge-walk over the two sorted lists.
        let (mut a, mut b) = (0usize, 0usize);
        while a < self.0.len() && b < other.0.len() {
            match self.0[a].cmp(&other.0[b]) {
                std::cmp::Ordering::Less => a += 1,
                std::cmp::Ordering::Greater => b += 1,
                std::cmp::Ordering::Equal => return false,
            }
        }
        true
    }

    /// Union of two sets.
    pub fn union(&self, other: &NodeSet) -> NodeSet {
        let mut v = Vec::with_capacity(self.0.len() + other.0.len());
        v.extend_from_slice(&self.0);
        v.extend_from_slice(&other.0);
        NodeSet::from_indices(v)
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<T: IntoIterator<Item = NodeId>>(iter: T) -> Self {
        NodeSet::from_indices(iter.into_iter().map(|n| n.0).collect())
    }
}

impl fmt::Display for NodeSet {
    /// Render as compact ranges, e.g. `n[0-3,7,9-10]`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n[")?;
        let mut first = true;
        let mut i = 0;
        while i < self.0.len() {
            let start = self.0[i];
            let mut end = start;
            while i + 1 < self.0.len() && self.0[i + 1] == end + 1 {
                i += 1;
                end = self.0[i];
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            if start == end {
                write!(f, "{start}")?;
            } else {
                write!(f, "{start}-{end}")?;
            }
            i += 1;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_indices_sorts_and_dedups() {
        let s = NodeSet::from_indices(vec![5, 1, 3, 1, 5]);
        assert_eq!(s.as_slice(), &[1, 3, 5]);
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn contiguous_builds_range() {
        let s = NodeSet::contiguous(10, 4);
        assert_eq!(s.as_slice(), &[10, 11, 12, 13]);
    }

    #[test]
    fn contains_uses_membership() {
        let s = NodeSet::from_indices(vec![2, 4, 6]);
        assert!(s.contains(NodeId(4)));
        assert!(!s.contains(NodeId(5)));
    }

    #[test]
    fn disjoint_detection() {
        let a = NodeSet::from_indices(vec![1, 3, 5]);
        let b = NodeSet::from_indices(vec![2, 4, 6]);
        let c = NodeSet::from_indices(vec![5, 7]);
        assert!(a.is_disjoint(&b));
        assert!(!a.is_disjoint(&c));
    }

    #[test]
    fn union_merges() {
        let a = NodeSet::from_indices(vec![1, 3]);
        let b = NodeSet::from_indices(vec![2, 3]);
        assert_eq!(a.union(&b).as_slice(), &[1, 2, 3]);
    }

    #[test]
    fn display_compacts_ranges() {
        let s = NodeSet::from_indices(vec![0, 1, 2, 3, 7, 9, 10]);
        assert_eq!(s.to_string(), "n[0-3,7,9-10]");
        assert_eq!(NodeSet::new().to_string(), "n[]");
    }
}
