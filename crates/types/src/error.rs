//! The common error type for the workspace.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T> = std::result::Result<T, SrapsError>;

/// Errors shared across the simulator crates.
#[derive(Debug, Clone, PartialEq)]
pub enum SrapsError {
    /// A scheduler asked for an allocation the resource manager cannot grant
    /// (e.g. more nodes than exist, or a node that is already busy). The
    /// paper reports exactly this class of error from the ScheduleFlow
    /// integration ("scheduleflow may schedule even if nodes are
    /// unavailable, which we report as error").
    Allocation(String),
    /// Configuration is inconsistent (bad window, unknown policy, …).
    Config(String),
    /// A dataset record could not be parsed or violates its documented schema.
    Data(String),
    /// Telemetry is missing where the simulation requires it and no
    /// substitution rule applies.
    Telemetry(String),
    /// An external scheduler returned a state S-RAPS cannot interpret.
    ExternalScheduler(String),
    /// An engine snapshot cannot be taken or restored (schema mismatch,
    /// wrong workload, or a backend without snapshot support).
    Snapshot(String),
    /// I/O error carrying the rendered message (keeps the type `Clone`).
    Io(String),
    /// A worker panicked while simulating; the payload is the rendered
    /// panic message. Produced by `catch_unwind` isolation in the sweep
    /// runner so one poisoned cell cannot tear down a whole sweep.
    Panic(String),
}

impl fmt::Display for SrapsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SrapsError::Allocation(m) => write!(f, "allocation error: {m}"),
            SrapsError::Config(m) => write!(f, "configuration error: {m}"),
            SrapsError::Data(m) => write!(f, "data error: {m}"),
            SrapsError::Telemetry(m) => write!(f, "telemetry error: {m}"),
            SrapsError::ExternalScheduler(m) => write!(f, "external scheduler error: {m}"),
            SrapsError::Snapshot(m) => write!(f, "snapshot error: {m}"),
            SrapsError::Io(m) => write!(f, "io error: {m}"),
            SrapsError::Panic(m) => write!(f, "worker panic: {m}"),
        }
    }
}

impl std::error::Error for SrapsError {}

impl From<std::io::Error> for SrapsError {
    fn from(e: std::io::Error) -> Self {
        SrapsError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_kind_and_message() {
        let e = SrapsError::Allocation("17 nodes requested, 3 free".into());
        assert_eq!(
            e.to_string(),
            "allocation error: 17 nodes requested, 3 free"
        );
        let e = SrapsError::Config("end before start".into());
        assert!(e.to_string().starts_with("configuration error"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "nope");
        let e: SrapsError = io.into();
        assert!(matches!(e, SrapsError::Io(_)));
    }
}
