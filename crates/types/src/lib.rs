//! Shared vocabulary types for the `sraps` digital-twin simulator.
//!
//! This crate holds the types that every other `sraps` crate speaks:
//! simulation time ([`SimTime`], [`SimDuration`]), jobs and their lifecycle
//! ([`Job`], [`JobState`]), node identity and sets ([`NodeId`], [`NodeSet`]),
//! recorded telemetry traces ([`Trace`], [`JobTelemetry`]), and the common
//! error type ([`SrapsError`]).
//!
//! Nothing here depends on any model or policy — it is the bottom layer of
//! the workspace so that schedulers, power/cooling models, dataloaders and
//! the engine can interoperate without cyclic dependencies.

pub mod bitset;
pub mod env;
pub mod error;
pub mod fsio;
pub mod job;
pub mod node;
pub mod signals;
pub mod telemetry;
pub mod time;

pub use bitset::Bitset;
pub use env::{parse_env, parse_env_ms, parse_env_value, string_env};
pub use error::{Result, SrapsError};
pub use job::{AccountId, Job, JobId, JobState, UserId};
pub use node::{NodeId, NodeSet};
pub use telemetry::{CaptureFlags, JobTelemetry, Trace, TraceSegment, TraceSegments};
pub use time::{SimDuration, SimTime};
