//! Simulation time.
//!
//! Time is represented as whole seconds since an arbitrary epoch (usually
//! the start of a dataset's capture window). Whole seconds are sufficient:
//! the datasets in the paper sample telemetry at 15 s or 20 s, and all
//! scheduler decisions in S-RAPS happen on the engine's tick boundary.
//! Integer seconds also keep simulations exactly reproducible — no float
//! drift in the main loop.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulation time, in seconds since the simulation epoch.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(pub i64);

/// A span of simulation time, in seconds. May be negative for differences.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(pub i64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never" sentinel.
    pub const MAX: SimTime = SimTime(i64::MAX);

    pub fn seconds(s: i64) -> Self {
        SimTime(s)
    }

    pub fn as_secs(self) -> i64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    /// Saturating addition that never overflows past `SimTime::MAX`.
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    pub fn min(self, other: SimTime) -> SimTime {
        SimTime(self.0.min(other.0))
    }

    pub fn max(self, other: SimTime) -> SimTime {
        SimTime(self.0.max(other.0))
    }
}

impl SimDuration {
    pub const ZERO: SimDuration = SimDuration(0);

    pub fn seconds(s: i64) -> Self {
        SimDuration(s)
    }

    pub fn minutes(m: i64) -> Self {
        SimDuration(m * 60)
    }

    pub fn hours(h: i64) -> Self {
        SimDuration(h * 3600)
    }

    pub fn days(d: i64) -> Self {
        SimDuration(d * 86_400)
    }

    pub fn as_secs(self) -> i64 {
        self.0
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64
    }

    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3600.0
    }

    pub fn is_positive(self) -> bool {
        self.0 > 0
    }

    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Clamp negative spans to zero (e.g. wait times from quantized clocks).
    pub fn clamp_non_negative(self) -> SimDuration {
        SimDuration(self.0.max(0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl fmt::Display for SimTime {
    /// Render as `d+hh:mm:ss` for readable logs and figure axes.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.0;
        let sign = if total < 0 { "-" } else { "" };
        let total = total.abs();
        let days = total / 86_400;
        let hours = (total % 86_400) / 3600;
        let mins = (total % 3600) / 60;
        let secs = total % 60;
        write!(f, "{sign}{days}+{hours:02}:{mins:02}:{secs:02}")
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}s", self.0)
    }
}

/// Parse a human duration like `61000`, `1h`, `15d`, `30m`, `45s`.
///
/// This mirrors the `-t`/`-ff` CLI options of the paper's artifact, which
/// accept both raw seconds and suffixed values.
pub fn parse_duration(s: &str) -> Option<SimDuration> {
    let s = s.trim();
    if s.is_empty() {
        return None;
    }
    let (num, mult) = match s.as_bytes()[s.len() - 1] {
        b'd' => (&s[..s.len() - 1], 86_400),
        b'h' => (&s[..s.len() - 1], 3600),
        b'm' => (&s[..s.len() - 1], 60),
        b's' => (&s[..s.len() - 1], 1),
        _ => (s, 1),
    };
    num.trim()
        .parse::<i64>()
        .ok()
        .map(|n| SimDuration(n * mult))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t = SimTime::seconds(100);
        let d = SimDuration::seconds(40);
        assert_eq!((t + d) - t, d);
        assert_eq!((t + d) - d, t);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::minutes(2).as_secs(), 120);
        assert_eq!(SimDuration::hours(1).as_secs(), 3600);
        assert_eq!(SimDuration::days(15).as_secs(), 15 * 86_400);
    }

    #[test]
    fn display_formats_days_and_hours() {
        let t = SimTime::seconds(86_400 + 3 * 3600 + 5 * 60 + 7);
        assert_eq!(t.to_string(), "1+03:05:07");
        assert_eq!(SimTime::seconds(-30).to_string(), "-0+00:00:30");
    }

    #[test]
    fn parse_duration_suffixes() {
        assert_eq!(parse_duration("61000"), Some(SimDuration::seconds(61_000)));
        assert_eq!(parse_duration("1h"), Some(SimDuration::hours(1)));
        assert_eq!(parse_duration("15d"), Some(SimDuration::days(15)));
        assert_eq!(parse_duration("30m"), Some(SimDuration::minutes(30)));
        assert_eq!(parse_duration("45s"), Some(SimDuration::seconds(45)));
        assert_eq!(parse_duration(""), None);
        assert_eq!(parse_duration("abc"), None);
    }

    #[test]
    fn saturating_add_does_not_overflow() {
        let t = SimTime::MAX;
        assert_eq!(t.saturating_add(SimDuration::hours(1)), SimTime::MAX);
    }

    #[test]
    fn clamp_non_negative() {
        assert_eq!(SimDuration(-5).clamp_non_negative(), SimDuration::ZERO);
        assert_eq!(SimDuration(5).clamp_non_negative(), SimDuration(5));
    }
}
