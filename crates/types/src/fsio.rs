//! Crash-safe file installation shared by every crate that writes
//! artifacts (cache entries, report exports, checkpoints, profiles).
//!
//! The idiom is always the same: write the full payload to a uniquely
//! named temp file *in the destination directory* and `rename` it into
//! place. POSIX rename is atomic within a filesystem, so a reader — or
//! a process restarted after `kill -9` — either sees the previous
//! version of the file or the complete new one, never a truncated
//! intermediate.

use crate::error::{Result, SrapsError};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide sequence for temp-file names: threads writing the same
/// destination concurrently never collide on the temp path.
static WRITE_SEQ: AtomicU64 = AtomicU64::new(0);

/// A unique temp path in the same directory as `path`. The name carries
/// the pid (processes sharing a directory) plus a process-wide counter
/// (threads racing the same destination) and a leading dot so partial
/// temp files from killed processes are recognizable litter, never
/// mistaken for real artifacts.
pub fn temp_sibling(path: &Path) -> PathBuf {
    let seq = WRITE_SEQ.fetch_add(1, Ordering::Relaxed);
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    let file_name = path.file_name().and_then(|n| n.to_str()).unwrap_or("out");
    dir.join(format!(".{file_name}.tmp.{}.{seq}", std::process::id()))
}

/// Write `bytes` to `path` atomically (temp file + rename in the same
/// directory). At worst, concurrent writers race identical-or-complete
/// payloads through `rename`; a killed writer leaves only a dot-prefixed
/// temp file behind, never a torn `path`.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = temp_sibling(path);
    std::fs::write(&tmp, bytes)
        .map_err(|e| SrapsError::Io(format!("write {}: {e}", tmp.display())))?;
    std::fs::rename(&tmp, path).map_err(|e| {
        let _ = std::fs::remove_file(&tmp);
        SrapsError::Io(format!("install {}: {e}", path.display()))
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_land_complete_and_replace_previous_content() {
        let dir = std::env::temp_dir().join(format!("sraps-fsio-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("report.csv");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v1");
        write_atomic(&path, b"version-two").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"version-two");
        // No temp litter after successful installs.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().starts_with('.'))
            .collect();
        assert!(leftovers.is_empty(), "temp files must be renamed away");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn temp_siblings_are_unique_and_hidden() {
        let path = Path::new("cache/abc.json");
        let a = temp_sibling(path);
        let b = temp_sibling(path);
        assert_ne!(a, b, "sequence must make concurrent temp names unique");
        assert!(a.file_name().unwrap().to_string_lossy().starts_with('.'));
        assert_eq!(a.parent(), Some(Path::new("cache")));
    }

    #[test]
    fn bare_file_names_write_into_the_current_directory() {
        let t = temp_sibling(Path::new("solo.json"));
        assert_eq!(t.parent(), Some(Path::new(".")));
    }
}
