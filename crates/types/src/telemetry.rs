//! Recorded telemetry traces and their resampling rules.
//!
//! The datasets in the study fall into two fidelity classes (Table 1):
//! *trace* datasets (Frontier at 15 s, Marconi100/PM100 at 20 s) carry a
//! time series per job and metric, while *summary* datasets (Fugaku,
//! Lassen, Adastra) carry one scalar per job and metric. [`JobTelemetry`]
//! models both; [`Trace::sample`] implements the paper's missing-data rule:
//! "we treat such occurrence as missing data, using the last known value"
//! (§3.2.2).

use crate::time::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A uniformly-sampled time series for one metric of one job.
///
/// `t0` is the timestamp of `values[0]` in the *job's own* timeline — by
/// convention relative to the job's recorded start, so a rescheduled job
/// carries its profile with it (the trace describes what the application
/// does, not when the system ran it).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// Offset of the first sample from job start.
    pub t0: SimDuration,
    /// Sampling interval (15 s on Frontier, 20 s on Marconi100).
    pub dt: SimDuration,
    /// Samples. `f32` halves memory for million-sample runs with ample
    /// precision for power/utilization telemetry.
    pub values: Vec<f32>,
}

impl Trace {
    pub fn new(t0: SimDuration, dt: SimDuration, values: Vec<f32>) -> Self {
        debug_assert!(dt.is_positive(), "trace dt must be positive");
        Trace { t0, dt, values }
    }

    /// A constant trace: one sample covering the whole job (what summary
    /// datasets degenerate to).
    pub fn constant(value: f32) -> Self {
        Trace {
            t0: SimDuration::ZERO,
            dt: SimDuration::seconds(1),
            values: vec![value],
        }
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Duration covered by recorded samples (from `t0` to the last sample).
    pub fn covered(&self) -> SimDuration {
        if self.values.is_empty() {
            SimDuration::ZERO
        } else {
            SimDuration::seconds(
                self.t0.as_secs() + self.dt.as_secs() * (self.values.len() as i64 - 1),
            )
        }
    }

    /// Sample the trace at `offset` from job start, applying the paper's
    /// missing-data rule: before the first sample, the first value holds;
    /// after the last, the last known value holds. Empty traces sample 0.
    pub fn sample(&self, offset: SimDuration) -> f32 {
        if self.values.is_empty() {
            return 0.0;
        }
        let rel = offset.as_secs() - self.t0.as_secs();
        if rel <= 0 {
            return self.values[0];
        }
        let idx = (rel / self.dt.as_secs()) as usize;
        if idx >= self.values.len() {
            *self.values.last().expect("non-empty checked above")
        } else {
            self.values[idx]
        }
    }

    /// Walk the trace as piecewise-constant segments over a tick grid:
    /// `count` ticks at offsets `start + k·step` (`k = 0..count`) from job
    /// start. Yields maximal runs of consecutive ticks that [`Trace::sample`]
    /// maps to the same stored sample — including the before-`t0` /
    /// after-last regions of the missing-data rule — in ascending tick
    /// order, covering every tick exactly once.
    ///
    /// This is the engine's segment-wise physics walk: per *segment* work
    /// replaces per-tick `sample()` calls, while the yielded values are
    /// exactly what `sample()` would have returned at each tick.
    pub fn segments(
        &self,
        start: SimDuration,
        step: SimDuration,
        count: usize,
    ) -> TraceSegments<'_> {
        TraceSegments::new(self, start, step, count)
    }

    /// Mean of the recorded samples (0 for empty traces).
    pub fn mean(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().sum::<f32>() / self.values.len() as f32
        }
    }

    /// Maximum recorded sample (0 for empty traces).
    pub fn max(&self) -> f32 {
        self.values.iter().copied().fold(0.0, f32::max)
    }

    /// Minimum recorded sample (0 for empty traces).
    pub fn min(&self) -> f32 {
        if self.values.is_empty() {
            0.0
        } else {
            self.values.iter().copied().fold(f32::INFINITY, f32::min)
        }
    }

    /// Population standard deviation of the samples.
    pub fn std_dev(&self) -> f32 {
        if self.values.len() < 2 {
            return 0.0;
        }
        let m = self.mean();
        let var =
            self.values.iter().map(|v| (v - m) * (v - m)).sum::<f32>() / self.values.len() as f32;
        var.sqrt()
    }
}

/// One maximal run of consecutive ticks sampling to the same value.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSegment {
    /// Tick indices `k` (offsets `start + k·step`) covered by this run.
    pub ticks: std::ops::Range<usize>,
    /// The value [`Trace::sample`] returns at every tick in the run.
    pub value: f32,
}

/// Iterator produced by [`Trace::segments`]. An *empty* trace yields one
/// all-zero segment, mirroring [`Trace::sample`]'s 0-for-empty rule.
#[derive(Debug, Clone)]
pub struct TraceSegments<'a> {
    /// `None` once constructed from an empty trace: one constant-0 run.
    trace: Option<&'a Trace>,
    start_secs: i64,
    step_secs: i64,
    count: usize,
    /// Next tick index to cover.
    k: usize,
}

impl<'a> TraceSegments<'a> {
    fn new(trace: &'a Trace, start: SimDuration, step: SimDuration, count: usize) -> Self {
        debug_assert!(step.is_positive(), "segment step must be positive");
        TraceSegments {
            trace: (!trace.is_empty()).then_some(trace),
            start_secs: start.as_secs(),
            step_secs: step.as_secs(),
            count,
            k: 0,
        }
    }
}

impl Iterator for TraceSegments<'_> {
    type Item = TraceSegment;

    fn next(&mut self) -> Option<TraceSegment> {
        if self.k >= self.count {
            return None;
        }
        let k = self.k;
        let Some(t) = self.trace else {
            self.k = self.count;
            return Some(TraceSegment {
                ticks: k..self.count,
                value: 0.0,
            });
        };
        let dt = t.dt.as_secs();
        let t0 = t.t0.as_secs();
        let n = t.values.len();
        let offset = self.start_secs + self.step_secs * k as i64;
        let rel = offset - t0;
        // Region boundaries mirror `sample()`: offsets before `t0 + dt`
        // (missing leading data *and* interval 0) read `values[0]`;
        // interval `i ≥ 1` covers `[t0 + i·dt, t0 + (i+1)·dt)`; the last
        // interval extends forever (last known value holds).
        let (value, region_end) = if rel < dt {
            (t.values[0], (n > 1).then(|| t0 + dt))
        } else {
            let idx = ((rel / dt) as usize).min(n - 1);
            (
                t.values[idx],
                (idx < n - 1).then(|| t0 + (idx as i64 + 1) * dt),
            )
        };
        let k_end = match region_end {
            None => self.count,
            Some(end) => {
                // First tick at or past the region end; `end > offset`
                // guarantees progress (`k_end ≥ k + 1`).
                let d = end - self.start_secs;
                (((d + self.step_secs - 1) / self.step_secs) as usize).min(self.count)
            }
        };
        self.k = k_end;
        Some(TraceSegment {
            ticks: k..k_end,
            value,
        })
    }
}

/// Flags for the capture-window edge cases of §3.2.2 footnote 1: jobs whose
/// execution extends past the telemetry capture window have no ground truth
/// there, and S-RAPS must flag them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CaptureFlags {
    /// Job started before the telemetry capture window opened (Fig 3, Job 1).
    pub started_before_capture: bool,
    /// Job ended after the capture window closed (Fig 3, Jobs 6-8).
    pub ended_after_capture: bool,
}

impl CaptureFlags {
    pub fn any(&self) -> bool {
        self.started_before_capture || self.ended_after_capture
    }
}

/// Per-job telemetry: whichever metrics the source dataset provides.
///
/// All traces are in job-relative time. Power is per *node* in watts;
/// utilizations in `[0, 1]`.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct JobTelemetry {
    /// CPU utilization in \[0,1\], if recorded.
    pub cpu_util: Option<Trace>,
    /// GPU utilization in \[0,1\], if recorded (GPU systems only).
    pub gpu_util: Option<Trace>,
    /// Memory utilization in \[0,1\], if recorded.
    pub mem_util: Option<Trace>,
    /// Per-node power in watts, if the dataset records power directly.
    pub node_power_w: Option<Trace>,
    /// Network transmit rate in MB/s (recorded in the Lassen LAST dataset).
    pub net_tx_mbs: Option<Trace>,
    /// Network receive rate in MB/s (recorded in the Lassen LAST dataset).
    pub net_rx_mbs: Option<Trace>,
    /// Capture-window flags for this job.
    pub flags: CaptureFlags,
}

impl JobTelemetry {
    /// Telemetry consisting of scalar summaries only — the Fugaku / Lassen /
    /// Adastra fidelity class.
    pub fn from_scalars(cpu_util: f32, gpu_util: Option<f32>, node_power_w: f32) -> Self {
        JobTelemetry {
            cpu_util: Some(Trace::constant(cpu_util)),
            gpu_util: gpu_util.map(Trace::constant),
            mem_util: None,
            node_power_w: Some(Trace::constant(node_power_w)),
            net_tx_mbs: None,
            net_rx_mbs: None,
            flags: CaptureFlags::default(),
        }
    }

    /// Sample per-node power at a job-relative offset, if power telemetry
    /// exists. The engine falls back to the utilization→power model when
    /// this returns `None`.
    pub fn power_at(&self, offset: SimDuration) -> Option<f32> {
        self.node_power_w.as_ref().map(|t| t.sample(offset))
    }

    /// Sample CPU utilization at a job-relative offset (0 if not recorded).
    pub fn cpu_util_at(&self, offset: SimDuration) -> f32 {
        self.cpu_util.as_ref().map_or(0.0, |t| t.sample(offset))
    }

    /// Sample GPU utilization at a job-relative offset (0 if not recorded).
    pub fn gpu_util_at(&self, offset: SimDuration) -> f32 {
        self.gpu_util.as_ref().map_or(0.0, |t| t.sample(offset))
    }
}

/// Compute capture flags for a job interval against a capture window.
pub fn capture_flags(
    job_start: SimTime,
    job_end: SimTime,
    capture_start: SimTime,
    capture_end: SimTime,
) -> CaptureFlags {
    CaptureFlags {
        started_before_capture: job_start < capture_start,
        ended_after_capture: job_end > capture_end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> Trace {
        Trace::new(
            SimDuration::ZERO,
            SimDuration::seconds(10),
            vec![1.0, 2.0, 3.0],
        )
    }

    #[test]
    fn sample_within_window_picks_interval_value() {
        let t = trace();
        assert_eq!(t.sample(SimDuration::seconds(0)), 1.0);
        assert_eq!(t.sample(SimDuration::seconds(9)), 1.0);
        assert_eq!(t.sample(SimDuration::seconds(10)), 2.0);
        assert_eq!(t.sample(SimDuration::seconds(25)), 3.0);
    }

    #[test]
    fn sample_uses_last_known_value_outside_window() {
        let t = trace();
        // Before first sample → first value; after last → last value.
        assert_eq!(t.sample(SimDuration::seconds(-100)), 1.0);
        assert_eq!(t.sample(SimDuration::seconds(10_000)), 3.0);
    }

    #[test]
    fn sample_respects_t0_offset() {
        let t = Trace::new(
            SimDuration::seconds(30),
            SimDuration::seconds(10),
            vec![5.0, 6.0],
        );
        assert_eq!(t.sample(SimDuration::seconds(0)), 5.0); // before t0 → first
        assert_eq!(t.sample(SimDuration::seconds(35)), 5.0);
        assert_eq!(t.sample(SimDuration::seconds(45)), 6.0);
    }

    #[test]
    fn empty_trace_samples_zero() {
        let t = Trace::new(SimDuration::ZERO, SimDuration::seconds(1), vec![]);
        assert_eq!(t.sample(SimDuration::seconds(5)), 0.0);
        assert_eq!(t.mean(), 0.0);
        assert_eq!(t.covered(), SimDuration::ZERO);
    }

    #[test]
    fn summary_statistics() {
        let t = trace();
        assert!((t.mean() - 2.0).abs() < 1e-6);
        assert_eq!(t.max(), 3.0);
        assert_eq!(t.min(), 1.0);
        assert!(t.std_dev() > 0.0);
        assert_eq!(Trace::constant(4.0).std_dev(), 0.0);
    }

    #[test]
    fn covered_duration() {
        assert_eq!(trace().covered(), SimDuration::seconds(20));
    }

    /// Reference check: segments must reproduce per-tick `sample`.
    fn assert_segments_match_sample(t: &Trace, start: i64, step: i64, count: usize) {
        let start = SimDuration::seconds(start);
        let step = SimDuration::seconds(step);
        let mut covered = 0;
        for seg in t.segments(start, step, count) {
            assert_eq!(seg.ticks.start, covered, "segments must be contiguous");
            assert!(
                seg.ticks.end > seg.ticks.start,
                "segments must be non-empty"
            );
            for k in seg.ticks.clone() {
                let offset = start + SimDuration::seconds(step.as_secs() * k as i64);
                assert_eq!(
                    seg.value,
                    t.sample(offset),
                    "tick {k} (offset {offset}) in segment {:?}",
                    seg.ticks
                );
            }
            covered = seg.ticks.end;
        }
        assert_eq!(covered, count, "segments must cover every tick");
    }

    #[test]
    fn segments_match_sample_on_aligned_grid() {
        // step == dt, aligned: one segment per stored value, plus the
        // held-last-value tail.
        let t = trace(); // dt=10, values [1,2,3]
        assert_segments_match_sample(&t, 0, 10, 6);
        let segs: Vec<_> = t
            .segments(SimDuration::ZERO, SimDuration::seconds(10), 6)
            .collect();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[2].ticks, 2..6, "last value held to span end");
        assert_eq!(segs[2].value, 3.0);
    }

    #[test]
    fn segments_match_sample_on_misaligned_and_oversampled_grids() {
        let t = Trace::new(
            SimDuration::seconds(30),
            SimDuration::seconds(10),
            vec![5.0, 6.0, 7.0],
        );
        // Ticks finer than dt (oversampling), starting before t0.
        assert_segments_match_sample(&t, 0, 3, 40);
        // Ticks coarser than dt (skipping samples).
        assert_segments_match_sample(&t, 0, 25, 10);
        // Misaligned start, negative offsets.
        assert_segments_match_sample(&t, -17, 7, 30);
    }

    #[test]
    fn segments_handle_degenerate_traces() {
        let constant = Trace::constant(4.5);
        let segs: Vec<_> = constant
            .segments(SimDuration::ZERO, SimDuration::seconds(60), 100)
            .collect();
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].ticks, 0..100);
        assert_eq!(segs[0].value, 4.5);

        let empty = Trace::new(SimDuration::ZERO, SimDuration::seconds(1), vec![]);
        let segs: Vec<_> = empty
            .segments(SimDuration::ZERO, SimDuration::seconds(60), 5)
            .collect();
        assert_eq!(
            segs,
            vec![TraceSegment {
                ticks: 0..5,
                value: 0.0
            }]
        );

        // Zero ticks → no segments.
        assert_eq!(
            trace()
                .segments(SimDuration::ZERO, SimDuration::seconds(1), 0)
                .count(),
            0
        );
    }

    #[test]
    fn capture_flags_detect_edges() {
        let f = capture_flags(
            SimTime::seconds(-10),
            SimTime::seconds(50),
            SimTime::ZERO,
            SimTime::seconds(100),
        );
        assert!(f.started_before_capture && !f.ended_after_capture && f.any());
        let f = capture_flags(
            SimTime::seconds(10),
            SimTime::seconds(150),
            SimTime::ZERO,
            SimTime::seconds(100),
        );
        assert!(!f.started_before_capture && f.ended_after_capture);
        let f = capture_flags(
            SimTime::seconds(10),
            SimTime::seconds(90),
            SimTime::ZERO,
            SimTime::seconds(100),
        );
        assert!(!f.any());
    }

    #[test]
    fn scalar_telemetry_samples_constant() {
        let tel = JobTelemetry::from_scalars(0.7, Some(0.9), 550.0);
        assert_eq!(tel.cpu_util_at(SimDuration::seconds(12_345)), 0.7);
        assert_eq!(tel.gpu_util_at(SimDuration::seconds(1)), 0.9);
        assert_eq!(tel.power_at(SimDuration::seconds(99)), Some(550.0));
    }
}
