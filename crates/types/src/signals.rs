//! A minimal, dependency-free SIGINT/SIGTERM latch.
//!
//! Long-lived `sraps` processes (an interrupted `sraps sweep`, the
//! resident `sraps serve` daemon) need to observe termination requests
//! so they can release claim leases and drain gracefully instead of
//! vanishing mid-protocol. The standard library exposes no signal API
//! and the build environment has no registry access for a `signal-hook`
//! style crate, so this module declares the two libc entry points it
//! needs (`signal`, `_exit`) directly — libc is already linked into
//! every binary on the supported platforms.
//!
//! Semantics:
//!
//! * [`arm`] installs one handler for SIGINT and SIGTERM (idempotent).
//! * The **first** signal sets a process-global latch ([`requested`]
//!   flips to `true`) and returns — the application polls the latch and
//!   performs its own orderly shutdown.
//! * A **second** signal bypasses the latch and `_exit(130)`s
//!   immediately, so a wedged drain can always be cut short from the
//!   keyboard.
//!
//! The handler body is async-signal-safe: one atomic swap, and on the
//! escalation path one `_exit` call. On non-unix targets [`arm`] is a
//! no-op and [`requested`] stays `false`.

use std::sync::atomic::{AtomicBool, Ordering};

/// Latched by the first SIGINT/SIGTERM after [`arm`].
static REQUESTED: AtomicBool = AtomicBool::new(false);
static ARMED: AtomicBool = AtomicBool::new(false);

/// Whether a termination signal has been received since [`arm`].
#[inline]
pub fn requested() -> bool {
    REQUESTED.load(Ordering::Relaxed)
}

/// Install the latching handler for SIGINT and SIGTERM. Idempotent;
/// a no-op on platforms without unix signals.
pub fn arm() {
    if ARMED.swap(true, Ordering::SeqCst) {
        return;
    }
    imp::install();
}

/// Test/drain helper: mark a shutdown as requested without a signal
/// (lets in-process tests drive the same code path a SIGTERM would).
pub fn request() {
    REQUESTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
mod imp {
    use super::REQUESTED;
    use std::sync::atomic::Ordering;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    type Handler = extern "C" fn(i32);

    extern "C" {
        fn signal(signum: i32, handler: Handler) -> isize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn on_signal(_sig: i32) {
        // First signal: latch and let the application drain. Second:
        // the drain is wedged (or the user is insistent) — exit now
        // with the conventional 128+SIGINT status.
        if REQUESTED.swap(true, Ordering::SeqCst) {
            unsafe { _exit(130) }
        }
    }

    pub fn install() {
        unsafe {
            signal(SIGINT, on_signal);
            signal(SIGTERM, on_signal);
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub fn install() {}
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;

    extern "C" {
        fn raise(sig: i32) -> i32;
    }

    #[test]
    fn sigterm_latches_instead_of_killing() {
        arm();
        arm(); // idempotent
        assert!(!requested());
        // With the handler installed, a real SIGTERM must latch the
        // flag and leave the process alive. (Raised exactly once in
        // this test binary: a second signal escalates to _exit.)
        unsafe { raise(15) };
        assert!(requested(), "signal latches the shutdown flag");
    }
}
