//! A compact fixed-capacity bitset used for node-allocation masks.
//!
//! The resource manager needs "which of the N nodes are free" queries and
//! first-fit scans over systems as large as Fugaku (158 976 nodes). A
//! `Vec<u64>` word bitset keeps those scans cache-friendly and lets us skip
//! fully-allocated regions 64 nodes at a time.

use serde::{Deserialize, Serialize};

/// Fixed-capacity bitset backed by 64-bit words.
#[derive(Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitset {
    len: usize,
    words: Vec<u64>,
    ones: usize,
}

impl Clone for Bitset {
    fn clone(&self) -> Self {
        Bitset {
            len: self.len,
            words: self.words.clone(),
            ones: self.ones,
        }
    }

    /// Reuses `self`'s word buffer (a plain memcpy when capacities match)
    /// — mirror-state holders like the power-cap scheduler's shadow
    /// resource manager refresh their copy every call.
    fn clone_from(&mut self, source: &Self) {
        self.len = source.len;
        self.words.clone_from(&source.words);
        self.ones = source.ones;
    }
}

impl Bitset {
    /// Create a bitset of `len` bits, all clear.
    pub fn new(len: usize) -> Self {
        Bitset {
            len,
            words: vec![0; len.div_ceil(64)],
            ones: 0,
        }
    }

    /// Create a bitset of `len` bits, all set.
    pub fn full(len: usize) -> Self {
        let mut b = Bitset::new(len);
        for w in b.words.iter_mut() {
            *w = u64::MAX;
        }
        // Clear bits past `len` in the final word so counts stay exact.
        let spare = b.words.len() * 64 - len;
        if spare > 0 {
            if let Some(last) = b.words.last_mut() {
                *last >>= spare;
                *last <<= 0; // no-op for clarity; mask already applied by shift
            }
        }
        b.ones = len;
        b
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.ones
    }

    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Set bit `i`; returns whether the bit changed.
    pub fn set(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask == 0 {
            *w |= mask;
            self.ones += 1;
            true
        } else {
            false
        }
    }

    /// Clear bit `i`; returns whether the bit changed.
    pub fn clear(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let w = &mut self.words[i / 64];
        let mask = 1u64 << (i % 64);
        if *w & mask != 0 {
            *w &= !mask;
            self.ones -= 1;
            true
        } else {
            false
        }
    }

    /// Index of the first set bit at or after `from`, if any.
    pub fn first_set_from(&self, from: usize) -> Option<usize> {
        if from >= self.len {
            return None;
        }
        let mut wi = from / 64;
        let mut word = self.words[wi] & (u64::MAX << (from % 64));
        loop {
            if word != 0 {
                let bit = wi * 64 + word.trailing_zeros() as usize;
                return (bit < self.len).then_some(bit);
            }
            wi += 1;
            if wi >= self.words.len() {
                return None;
            }
            word = self.words[wi];
        }
    }

    /// Take (set→clear is caller's choice) the first `n` set bits, in
    /// ascending order. Returns `None` without modification if fewer than
    /// `n` bits are set.
    pub fn collect_first_set(&self, n: usize) -> Option<Vec<u32>> {
        if n > self.ones {
            return None;
        }
        let mut out = Vec::with_capacity(n);
        let mut i = 0;
        while out.len() < n {
            match self.first_set_from(i) {
                Some(bit) => {
                    out.push(bit as u32);
                    i = bit + 1;
                }
                None => return None, // unreachable given ones check; defensive
            }
        }
        Some(out)
    }

    /// Claim (clear) the first `n` set bits in one word-level pass,
    /// appending their indices in ascending order to `out`. Returns
    /// `false` without modification if fewer than `n` bits are set.
    ///
    /// This is the resource manager's first-fit hot path: one sweep that
    /// reads each word once and clears bits as it collects them, instead
    /// of a scan ([`Bitset::collect_first_set`]) followed by a second
    /// per-index [`Bitset::clear`] pass.
    pub fn take_first_set(&mut self, n: usize, out: &mut Vec<u32>) -> bool {
        if n > self.ones {
            return false;
        }
        let mut remaining = n;
        for (wi, w) in self.words.iter_mut().enumerate() {
            while *w != 0 {
                if remaining == 0 {
                    self.ones -= n;
                    return true;
                }
                let bit = w.trailing_zeros() as usize;
                *w &= *w - 1; // clear the lowest set bit
                out.push((wi * 64 + bit) as u32);
                remaining -= 1;
            }
        }
        debug_assert_eq!(remaining, 0, "ones said {n} bits were available");
        self.ones -= n;
        true
    }

    /// Iterate over all set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        let mut next = 0usize;
        std::iter::from_fn(move || {
            let bit = self.first_set_from(next)?;
            next = bit + 1;
            Some(bit)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_is_all_clear_and_full_is_all_set() {
        let b = Bitset::new(130);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.get(0) && !b.get(129));
        let f = Bitset::full(130);
        assert_eq!(f.count_ones(), 130);
        assert!(f.get(0) && f.get(129));
    }

    #[test]
    fn full_does_not_set_bits_past_len() {
        let f = Bitset::full(70);
        // Direct word inspection: second word must have only 6 low bits set.
        assert_eq!(f.words[1], (1u64 << 6) - 1);
        assert_eq!(f.iter_ones().count(), 70);
    }

    #[test]
    fn set_clear_tracks_ones() {
        let mut b = Bitset::new(100);
        assert!(b.set(3));
        assert!(!b.set(3));
        assert_eq!(b.count_ones(), 1);
        assert!(b.clear(3));
        assert!(!b.clear(3));
        assert_eq!(b.count_ones(), 0);
    }

    #[test]
    fn first_set_from_scans_across_words() {
        let mut b = Bitset::new(200);
        b.set(5);
        b.set(64);
        b.set(199);
        assert_eq!(b.first_set_from(0), Some(5));
        assert_eq!(b.first_set_from(6), Some(64));
        assert_eq!(b.first_set_from(65), Some(199));
        assert_eq!(b.first_set_from(200), None);
    }

    #[test]
    fn collect_first_set_ascending_or_none() {
        let mut b = Bitset::new(128);
        for i in [7usize, 70, 100] {
            b.set(i);
        }
        assert_eq!(b.collect_first_set(2), Some(vec![7, 70]));
        assert_eq!(b.collect_first_set(3), Some(vec![7, 70, 100]));
        assert_eq!(b.collect_first_set(4), None);
    }

    #[test]
    fn take_first_set_claims_in_one_pass() {
        let mut b = Bitset::full(130);
        let mut out = Vec::new();
        assert!(b.take_first_set(3, &mut out));
        assert_eq!(out, vec![0, 1, 2]);
        assert_eq!(b.count_ones(), 127);
        assert!(!b.get(0) && !b.get(2) && b.get(3));
        // Spans a word boundary.
        out.clear();
        assert!(b.take_first_set(70, &mut out));
        assert_eq!(out.first(), Some(&3));
        assert_eq!(out.len(), 70);
        assert_eq!(b.count_ones(), 57);
        // Appends without clearing the output buffer.
        let mut acc = vec![999];
        assert!(b.take_first_set(1, &mut acc));
        assert_eq!(acc, vec![999, 73]);
    }

    #[test]
    fn take_first_set_fails_atomically() {
        let mut b = Bitset::new(64);
        b.set(5);
        let mut out = Vec::new();
        assert!(!b.take_first_set(2, &mut out));
        assert!(out.is_empty());
        assert_eq!(b.count_ones(), 1);
        assert!(b.get(5));
    }

    #[test]
    fn take_first_set_matches_collect_then_clear() {
        let mut a = Bitset::new(200);
        for i in [0usize, 1, 63, 64, 65, 127, 128, 199] {
            a.set(i);
        }
        let mut b = a.clone();
        let picked = a.collect_first_set(5).unwrap();
        for &i in &picked {
            a.clear(i as usize);
        }
        let mut taken = Vec::new();
        assert!(b.take_first_set(5, &mut taken));
        assert_eq!(picked, taken);
        assert_eq!(a, b);
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut b = Bitset::new(300);
        let set: Vec<usize> = vec![0, 63, 64, 65, 128, 299];
        for &i in &set {
            b.set(i);
        }
        assert_eq!(b.iter_ones().collect::<Vec<_>>(), set);
    }
}
