//! The five systems of Table 1, expressed as [`SystemConfig`] values.
//!
//! Component power envelopes are set from public architecture facts (node
//! counts and accelerator models from Table 1; per-component wattages from
//! vendor envelopes) so that facility-level power lands in the bands the
//! paper's figures show: Marconi100 ≈ 750–900 kW at high load (Fig 4),
//! Adastra ≈ 300–700 kW (Fig 5), Frontier ≈ 10–25 MW (Fig 6). Absolute
//! watts are *calibration*, not measurement — the experiments compare
//! policies on the same model, so shapes and ratios are what carry over.

use crate::config::{
    CoolingSpec, LossSpec, NodePowerSpec, Partition, SchedulerDefaults, SystemConfig,
    TelemetryFidelity,
};
use sraps_types::SimDuration;

/// Names accepted by [`system_by_name`] (the `--system` option).
pub const ALL_SYSTEMS: &[&str] = &["frontier", "marconi100", "fugaku", "lassen", "adastra"];

/// Look a preset up by its CLI name.
pub fn system_by_name(name: &str) -> Option<SystemConfig> {
    match name {
        "frontier" => Some(frontier()),
        "marconi100" => Some(marconi100()),
        "fugaku" => Some(fugaku()),
        "lassen" => Some(lassen()),
        "adastra" | "adastraMI250" => Some(adastra()),
        _ => None,
    }
}

fn default_loss() -> LossSpec {
    LossSpec {
        rectifier_peak_eff: 0.975,
        rectifier_peak_load: 0.6,
        rectifier_curvature: 0.06,
        distribution_eff: 0.99,
    }
}

fn cooling_for(design_load_kw: f64) -> CoolingSpec {
    CoolingSpec {
        design_load_kw,
        supply_setpoint_c: 24.0,
        ambient_wetbulb_c: 20.0,
        tower_approach_c: 4.0,
        // ~75 s of design load worth of thermal inertia in the loops: big
        // enough that tower temperature lags power swings visibly (Fig 6),
        // small enough that a day-long run reaches quasi-steady state.
        loop_thermal_capacity_kj_per_c: design_load_kw * 75.0 / 4.0,
        design_flow_kg_s: design_load_kw / (4.186 * 6.0), // sized for 6 °C ΔT
        hx_effectiveness: 0.92,
        pump_frac_of_design: 0.02,
        fan_design_kw: design_load_kw * 0.015,
    }
}

/// Frontier (OLCF): HPE/Cray EX, 9 600 nodes, 1× EPYC + 4× MI250X per node,
/// Slurm with node-count-boosted FIFO priority \[16\]; 15 s power/temp traces.
pub fn frontier() -> SystemConfig {
    let node_power = NodePowerSpec {
        cpus_per_node: 1,
        gpus_per_node: 4,
        cpu_idle_w: 100.0,
        cpu_peak_w: 280.0,
        gpu_idle_w: 360.0,
        gpu_peak_w: 2240.0,
        mem_w: 150.0,
        static_w: 120.0,
    };
    let peak_kw = 9600.0 * (280.0 + 2240.0 + 150.0 + 120.0) / 1000.0;
    SystemConfig {
        name: "frontier".into(),
        architecture: "HPE/Cray EX".into(),
        total_nodes: 9600,
        partitions: vec![Partition {
            name: "batch".into(),
            first_node: 0,
            node_count: 9600,
            has_gpus: true,
        }],
        node_power,
        loss: default_loss(),
        cooling: CoolingSpec {
            supply_setpoint_c: 28.0, // warm-water cooled
            ..cooling_for(peak_kw)
        },
        scheduler: SchedulerDefaults {
            site_scheduler: "Slurm".into(),
            policy: "priority".into(),
            backfill: "firstfit".into(),
        },
        trace_dt: SimDuration::seconds(15),
        fidelity: TelemetryFidelity::Traces,
        tick: SimDuration::seconds(15),
    }
}

/// Marconi100 (CINECA): IBM POWER9 + 4× V100, 980 nodes, Slurm; PM100
/// dataset with 20 s CPU/node power traces (shared-node jobs filtered).
pub fn marconi100() -> SystemConfig {
    let node_power = NodePowerSpec {
        cpus_per_node: 2,
        gpus_per_node: 4,
        cpu_idle_w: 120.0,
        cpu_peak_w: 380.0,
        gpu_idle_w: 160.0,
        gpu_peak_w: 1200.0,
        mem_w: 80.0,
        static_w: 100.0,
    };
    let peak_kw = 980.0 * node_power.peak_node_w() / 1000.0;
    SystemConfig {
        name: "marconi100".into(),
        architecture: "IBM POWER9".into(),
        total_nodes: 980,
        partitions: vec![Partition {
            name: "batch".into(),
            first_node: 0,
            node_count: 980,
            has_gpus: true,
        }],
        node_power,
        loss: default_loss(),
        cooling: cooling_for(peak_kw),
        scheduler: SchedulerDefaults {
            site_scheduler: "Slurm".into(),
            policy: "fcfs".into(),
            backfill: "easy".into(),
        },
        trace_dt: SimDuration::seconds(20),
        fidelity: TelemetryFidelity::Traces,
        tick: SimDuration::seconds(20),
    }
}

/// Fugaku (RIKEN): Fujitsu A64FX, 158 976 nodes, Fujitsu TCS; F-Data gives
/// job summaries (node power min/max/avg) only.
pub fn fugaku() -> SystemConfig {
    let node_power = NodePowerSpec {
        cpus_per_node: 1,
        gpus_per_node: 0,
        cpu_idle_w: 60.0,
        cpu_peak_w: 145.0,
        gpu_idle_w: 0.0,
        gpu_peak_w: 0.0,
        mem_w: 25.0,
        static_w: 20.0,
    };
    let peak_kw = 158_976.0 * node_power.peak_node_w() / 1000.0;
    SystemConfig {
        name: "fugaku".into(),
        architecture: "Fujitsu A64FX".into(),
        total_nodes: 158_976,
        partitions: vec![Partition {
            name: "compute".into(),
            first_node: 0,
            node_count: 158_976,
            has_gpus: false,
        }],
        node_power,
        loss: default_loss(),
        cooling: cooling_for(peak_kw),
        scheduler: SchedulerDefaults {
            site_scheduler: "Fujitsu TCS".into(),
            policy: "fcfs".into(),
            backfill: "firstfit".into(),
        },
        trace_dt: SimDuration::seconds(60),
        fidelity: TelemetryFidelity::Summary,
        tick: SimDuration::seconds(60),
    }
}

/// Lassen (LLNL): IBM POWER9 + 4× V100, 792 nodes, LSF; LAST dataset gives
/// job summaries with accumulated energy and network tx/rx.
pub fn lassen() -> SystemConfig {
    let node_power = NodePowerSpec {
        cpus_per_node: 2,
        gpus_per_node: 4,
        cpu_idle_w: 110.0,
        cpu_peak_w: 340.0,
        gpu_idle_w: 170.0,
        gpu_peak_w: 1240.0,
        mem_w: 90.0,
        static_w: 110.0,
    };
    let peak_kw = 792.0 * node_power.peak_node_w() / 1000.0;
    SystemConfig {
        name: "lassen".into(),
        architecture: "IBM POWER9".into(),
        total_nodes: 792,
        partitions: vec![Partition {
            name: "batch".into(),
            first_node: 0,
            node_count: 792,
            has_gpus: true,
        }],
        node_power,
        loss: default_loss(),
        cooling: cooling_for(peak_kw),
        scheduler: SchedulerDefaults {
            site_scheduler: "LSF".into(),
            policy: "fcfs".into(),
            backfill: "easy".into(),
        },
        trace_dt: SimDuration::seconds(60),
        fidelity: TelemetryFidelity::Summary,
        tick: SimDuration::seconds(60),
    }
}

/// Adastra (CINES): HPE/Cray EX, 356 nodes across a 4× MI250X GPU partition
/// and a CPU partition, Slurm; Cirou's 15-day dataset gives per-job average
/// component power (GPU power derivable from node minus components).
pub fn adastra() -> SystemConfig {
    let node_power = NodePowerSpec {
        cpus_per_node: 1,
        gpus_per_node: 4,
        cpu_idle_w: 90.0,
        cpu_peak_w: 250.0,
        gpu_idle_w: 320.0,
        gpu_peak_w: 1800.0,
        mem_w: 120.0,
        static_w: 100.0,
    };
    let peak_kw = 356.0 * node_power.peak_node_w() / 1000.0;
    SystemConfig {
        name: "adastra".into(),
        architecture: "HPE/Cray EX".into(),
        total_nodes: 356,
        partitions: vec![
            Partition {
                name: "mi250".into(),
                first_node: 0,
                node_count: 300,
                has_gpus: true,
            },
            Partition {
                name: "genoa".into(),
                first_node: 300,
                node_count: 56,
                has_gpus: false,
            },
        ],
        node_power,
        loss: default_loss(),
        cooling: cooling_for(peak_kw),
        scheduler: SchedulerDefaults {
            site_scheduler: "Slurm".into(),
            policy: "fcfs".into(),
            backfill: "firstfit".into(),
        },
        trace_dt: SimDuration::seconds(60),
        fidelity: TelemetryFidelity::Summary,
        tick: SimDuration::seconds(60),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_presets_validate() {
        for name in ALL_SYSTEMS {
            let cfg = system_by_name(name).unwrap();
            cfg.validate().unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(&cfg.name, name);
        }
    }

    #[test]
    fn table1_node_counts() {
        assert_eq!(frontier().total_nodes, 9600);
        assert_eq!(marconi100().total_nodes, 980);
        assert_eq!(fugaku().total_nodes, 158_976);
        assert_eq!(lassen().total_nodes, 792);
        assert_eq!(adastra().total_nodes, 356);
    }

    #[test]
    fn table1_fidelity_classes() {
        assert_eq!(frontier().fidelity, TelemetryFidelity::Traces);
        assert_eq!(marconi100().fidelity, TelemetryFidelity::Traces);
        assert_eq!(fugaku().fidelity, TelemetryFidelity::Summary);
        assert_eq!(lassen().fidelity, TelemetryFidelity::Summary);
        assert_eq!(adastra().fidelity, TelemetryFidelity::Summary);
    }

    #[test]
    fn power_bands_match_paper_figures() {
        // Fig 4: Marconi100 high load shows 750-900 kW → peak must exceed
        // 900 kW and idle sit well below 750 kW.
        let m = marconi100();
        assert!(m.peak_it_power_kw() > 900.0, "{}", m.peak_it_power_kw());
        assert!(m.idle_it_power_kw() < 750.0);
        // Fig 5: Adastra swings 300-700 kW.
        let a = adastra();
        assert!(a.peak_it_power_kw() > 700.0);
        assert!(a.idle_it_power_kw() < 300.0);
        // Fig 6: Frontier 10-25 MW.
        let f = frontier();
        assert!(f.peak_it_power_kw() > 25_000.0);
        assert!(f.idle_it_power_kw() < 10_000.0);
    }

    #[test]
    fn adastra_has_cpu_and_gpu_partitions() {
        let a = adastra();
        assert_eq!(a.partitions.len(), 2);
        assert!(a.partitions[0].has_gpus && !a.partitions[1].has_gpus);
    }

    #[test]
    fn unknown_system_is_none_and_alias_works() {
        assert!(system_by_name("summit").is_none());
        assert!(system_by_name("adastraMI250").is_some());
    }
}
