//! The declarative system description consumed by engine and models.

use serde::{Deserialize, Serialize};
use sraps_types::SimDuration;

/// Which fidelity class the system's public dataset provides (Table 1,
/// "Characteristics" column).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TelemetryFidelity {
    /// Per-job time series (Frontier 15 s, Marconi100 20 s).
    Traces,
    /// One scalar summary per job and metric (Fugaku, Lassen, Adastra).
    Summary,
}

/// A named slice of the machine (e.g. Adastra's CPU and GPU partitions).
/// Nodes `[first, first+count)` belong to the partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    pub name: String,
    pub first_node: u32,
    pub node_count: u32,
    /// Whether nodes in this partition carry GPUs.
    pub has_gpus: bool,
}

/// Per-node component power envelope. The power model interpolates each
/// component between idle and peak with its utilization, following the
/// component-behaviour computation of Wojda et al. \[42\].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NodePowerSpec {
    pub cpus_per_node: u32,
    pub gpus_per_node: u32,
    /// Idle power of all CPUs in one node, watts.
    pub cpu_idle_w: f64,
    /// Peak power of all CPUs in one node, watts.
    pub cpu_peak_w: f64,
    /// Idle power of all GPUs in one node, watts (0 for CPU-only systems).
    pub gpu_idle_w: f64,
    /// Peak power of all GPUs in one node, watts.
    pub gpu_peak_w: f64,
    /// Memory subsystem power per node, watts (modeled constant).
    pub mem_w: f64,
    /// Everything else per node (NIC, fans, board), watts.
    pub static_w: f64,
}

impl NodePowerSpec {
    /// Node power at full load, watts.
    pub fn peak_node_w(&self) -> f64 {
        self.cpu_peak_w + self.gpu_peak_w + self.mem_w + self.static_w
    }

    /// Node power when idle, watts.
    pub fn idle_node_w(&self) -> f64 {
        self.cpu_idle_w + self.gpu_idle_w + self.mem_w + self.static_w
    }
}

/// Electrical-loss chain parameters (rectification + distribution), after
/// the dynamic conversion-stage model of Wojda et al. \[42\]. Rectifier
/// efficiency is a concave quadratic of load fraction peaking at
/// `rectifier_peak_load`:
/// `η(l) = η_peak − curvature · (l − l_peak)²`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossSpec {
    /// Peak rectifier efficiency (e.g. 0.975).
    pub rectifier_peak_eff: f64,
    /// Load fraction at which the rectifier is most efficient (e.g. 0.6).
    pub rectifier_peak_load: f64,
    /// Quadratic fall-off of efficiency away from the peak-load point.
    pub rectifier_curvature: f64,
    /// Fixed distribution efficiency (transformers, busbars), e.g. 0.99.
    pub distribution_eff: f64,
}

/// Cooling-plant design parameters for the lumped thermo-fluid model
/// (substituting the Modelica model of Kumar et al. \[25\]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CoolingSpec {
    /// Design IT heat load the plant was sized for, kW.
    pub design_load_kw: f64,
    /// Facility supply-water temperature setpoint, °C.
    pub supply_setpoint_c: f64,
    /// Ambient wet-bulb temperature used when no weather trace is given, °C.
    pub ambient_wetbulb_c: f64,
    /// Cooling-tower approach at design load, °C above wet bulb.
    pub tower_approach_c: f64,
    /// Total water-side thermal capacitance, kJ/°C (loop mass × c_p).
    pub loop_thermal_capacity_kj_per_c: f64,
    /// Secondary (facility) loop mass flow at design, kg/s.
    pub design_flow_kg_s: f64,
    /// CDU heat-exchanger effectiveness in (0,1].
    pub hx_effectiveness: f64,
    /// Pump power as a fraction of design load (constant-speed baseline).
    pub pump_frac_of_design: f64,
    /// Tower-fan power at design load, kW (scales ~cubically with demand).
    pub fan_design_kw: f64,
}

/// Default scheduler selections for the system (`--scheduler` /
/// `--policy` / `--backfill` defaults of the artifact).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SchedulerDefaults {
    /// Site batch system named in Table 1 ("Slurm", "Fujitsu TCS", "LSF").
    pub site_scheduler: String,
    /// Default policy name for reschedule studies.
    pub policy: String,
    /// Default backfill name.
    pub backfill: String,
}

/// Full description of one system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// CLI name (`--system frontier`).
    pub name: String,
    /// Human-readable architecture (Table 1, "Architecture").
    pub architecture: String,
    pub total_nodes: u32,
    pub partitions: Vec<Partition>,
    pub node_power: NodePowerSpec,
    pub loss: LossSpec,
    pub cooling: CoolingSpec,
    pub scheduler: SchedulerDefaults,
    /// Telemetry sampling interval of the source dataset.
    pub trace_dt: SimDuration,
    pub fidelity: TelemetryFidelity,
    /// Engine tick. Defaults to the trace interval so replay consumes every
    /// sample; coarser ticks trade temporal resolution for speed.
    pub tick: SimDuration,
}

impl SystemConfig {
    /// Peak facility IT power if every node ran flat out, kW.
    pub fn peak_it_power_kw(&self) -> f64 {
        self.total_nodes as f64 * self.node_power.peak_node_w() / 1000.0
    }

    /// Idle facility IT power, kW.
    pub fn idle_it_power_kw(&self) -> f64 {
        self.total_nodes as f64 * self.node_power.idle_node_w() / 1000.0
    }

    /// Whether any partition carries GPUs.
    pub fn has_gpus(&self) -> bool {
        self.node_power.gpus_per_node > 0
    }

    /// Return a copy scaled to `nodes` nodes (partitions scaled
    /// proportionally, cooling plant re-sized). Tests use this to run
    /// Fugaku-shaped systems at tractable sizes; the workload generators
    /// scale job widths with the same factor.
    pub fn scaled_to(&self, nodes: u32) -> SystemConfig {
        assert!(nodes > 0, "cannot scale a system to zero nodes");
        let f = nodes as f64 / self.total_nodes as f64;
        let mut out = self.clone();
        out.total_nodes = nodes;
        let mut first = 0u32;
        let n_parts = self.partitions.len() as u32;
        out.partitions = self
            .partitions
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let count = if i as u32 == n_parts - 1 {
                    nodes - first // last partition absorbs rounding
                } else {
                    ((p.node_count as f64 * f).round() as u32).clamp(1, nodes.saturating_sub(first))
                };
                let scaled = Partition {
                    name: p.name.clone(),
                    first_node: first,
                    node_count: count,
                    has_gpus: p.has_gpus,
                };
                first += count;
                scaled
            })
            .collect();
        out.cooling.design_load_kw *= f;
        out.cooling.loop_thermal_capacity_kj_per_c *= f;
        out.cooling.design_flow_kg_s *= f;
        out.cooling.fan_design_kw *= f;
        out
    }

    /// Validate internal consistency; called by the builder and useful for
    /// configs loaded from files.
    pub fn validate(&self) -> sraps_types::Result<()> {
        use sraps_types::SrapsError::Config;
        if self.total_nodes == 0 {
            return Err(Config(format!("{}: zero nodes", self.name)));
        }
        let part_sum: u32 = self.partitions.iter().map(|p| p.node_count).sum();
        if !self.partitions.is_empty() && part_sum != self.total_nodes {
            return Err(Config(format!(
                "{}: partitions cover {} of {} nodes",
                self.name, part_sum, self.total_nodes
            )));
        }
        for w in self.partitions.windows(2) {
            if w[0].first_node + w[0].node_count != w[1].first_node {
                return Err(Config(format!(
                    "{}: partitions not contiguous at {}",
                    self.name, w[1].name
                )));
            }
        }
        if self.node_power.peak_node_w() <= self.node_power.idle_node_w() {
            return Err(Config(format!("{}: peak power not above idle", self.name)));
        }
        if !(0.0..=1.0).contains(&self.cooling.hx_effectiveness) {
            return Err(Config(format!(
                "{}: hx effectiveness out of range",
                self.name
            )));
        }
        if !self.tick.is_positive() || !self.trace_dt.is_positive() {
            return Err(Config(format!("{}: non-positive tick", self.name)));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {

    use crate::presets;

    #[test]
    fn peak_and_idle_power_order() {
        for sys in presets::ALL_SYSTEMS {
            let cfg = presets::system_by_name(sys).unwrap();
            assert!(
                cfg.peak_it_power_kw() > cfg.idle_it_power_kw(),
                "{sys}: peak must exceed idle"
            );
        }
    }

    #[test]
    fn scaled_to_preserves_partition_cover() {
        let cfg = presets::fugaku().scaled_to(1024);
        assert_eq!(cfg.total_nodes, 1024);
        cfg.validate().unwrap();
        let sum: u32 = cfg.partitions.iter().map(|p| p.node_count).sum();
        assert_eq!(sum, 1024);
    }

    #[test]
    fn validate_rejects_bad_partitions() {
        let mut cfg = presets::adastra();
        cfg.partitions[0].node_count += 1;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_inverted_power() {
        let mut cfg = presets::lassen();
        cfg.node_power.cpu_peak_w = 0.0;
        cfg.node_power.gpu_peak_w = 0.0;
        assert!(cfg.validate().is_err());
    }
}
