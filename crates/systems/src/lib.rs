//! System configurations for the five HPC systems of the study (Table 1).
//!
//! A [`SystemConfig`] captures everything the engine and the physical
//! models need to represent one machine: node inventory and partitions,
//! per-component power envelopes, the electrical-loss chain, the cooling
//! plant, and telemetry cadence. The five constructors mirror the paper's
//! `--system` CLI option: [`frontier`], [`marconi100`], [`fugaku`],
//! [`lassen`], [`adastra`].
//!
//! Configurations are plain data — the paper implements them as plugins
//! selectable at simulation start (§3.2.1), and keeping them declarative
//! preserves that: a site can describe its machine with
//! [`SystemConfigBuilder`] without touching engine code.

pub mod builder;
pub mod config;
pub mod presets;

pub use builder::SystemConfigBuilder;
pub use config::{
    CoolingSpec, LossSpec, NodePowerSpec, Partition, SchedulerDefaults, SystemConfig,
    TelemetryFidelity,
};
pub use presets::{adastra, frontier, fugaku, lassen, marconi100, system_by_name, ALL_SYSTEMS};
