//! Builder for custom systems — the extension path the paper emphasizes
//! ("administrators can easily represent their systems", §3.2.1).

use crate::config::{
    CoolingSpec, LossSpec, NodePowerSpec, Partition, SchedulerDefaults, SystemConfig,
    TelemetryFidelity,
};
use sraps_types::{Result, SimDuration};

/// Fluent builder producing a validated [`SystemConfig`].
///
/// ```
/// use sraps_systems::SystemConfigBuilder;
/// let sys = SystemConfigBuilder::new("mysite", 128)
///     .cpu_power(80.0, 200.0)
///     .gpus(4, 300.0, 1600.0)
///     .tick_seconds(30)
///     .build()
///     .unwrap();
/// assert_eq!(sys.total_nodes, 128);
/// assert!(sys.has_gpus());
/// ```
#[derive(Debug, Clone)]
pub struct SystemConfigBuilder {
    cfg: SystemConfig,
}

impl SystemConfigBuilder {
    pub fn new(name: &str, nodes: u32) -> Self {
        let node_power = NodePowerSpec {
            cpus_per_node: 1,
            gpus_per_node: 0,
            cpu_idle_w: 80.0,
            cpu_peak_w: 250.0,
            gpu_idle_w: 0.0,
            gpu_peak_w: 0.0,
            mem_w: 60.0,
            static_w: 60.0,
        };
        let design_kw = nodes as f64 * node_power.peak_node_w() / 1000.0;
        SystemConfigBuilder {
            cfg: SystemConfig {
                name: name.into(),
                architecture: "custom".into(),
                total_nodes: nodes,
                partitions: vec![Partition {
                    name: "batch".into(),
                    first_node: 0,
                    node_count: nodes,
                    has_gpus: false,
                }],
                node_power,
                loss: LossSpec {
                    rectifier_peak_eff: 0.975,
                    rectifier_peak_load: 0.6,
                    rectifier_curvature: 0.06,
                    distribution_eff: 0.99,
                },
                cooling: CoolingSpec {
                    design_load_kw: design_kw,
                    supply_setpoint_c: 24.0,
                    ambient_wetbulb_c: 20.0,
                    tower_approach_c: 4.0,
                    loop_thermal_capacity_kj_per_c: design_kw * 18.75,
                    design_flow_kg_s: design_kw / (4.186 * 6.0),
                    hx_effectiveness: 0.92,
                    pump_frac_of_design: 0.02,
                    fan_design_kw: design_kw * 0.015,
                },
                scheduler: SchedulerDefaults {
                    site_scheduler: "Slurm".into(),
                    policy: "fcfs".into(),
                    backfill: "firstfit".into(),
                },
                trace_dt: SimDuration::seconds(60),
                fidelity: TelemetryFidelity::Summary,
                tick: SimDuration::seconds(60),
            },
        }
    }

    /// Set CPU idle/peak watts per node.
    pub fn cpu_power(mut self, idle_w: f64, peak_w: f64) -> Self {
        self.cfg.node_power.cpu_idle_w = idle_w;
        self.cfg.node_power.cpu_peak_w = peak_w;
        self
    }

    /// Add GPUs: count per node and aggregate idle/peak watts per node.
    pub fn gpus(mut self, per_node: u32, idle_w: f64, peak_w: f64) -> Self {
        self.cfg.node_power.gpus_per_node = per_node;
        self.cfg.node_power.gpu_idle_w = idle_w;
        self.cfg.node_power.gpu_peak_w = peak_w;
        for p in &mut self.cfg.partitions {
            p.has_gpus = per_node > 0;
        }
        self.resize_cooling()
    }

    /// Memory + static (board/NIC) watts per node.
    pub fn overheads(mut self, mem_w: f64, static_w: f64) -> Self {
        self.cfg.node_power.mem_w = mem_w;
        self.cfg.node_power.static_w = static_w;
        self.resize_cooling()
    }

    /// Replace the partition layout. Partitions must tile `[0, nodes)`;
    /// `build` validates.
    pub fn partitions(mut self, parts: Vec<Partition>) -> Self {
        self.cfg.partitions = parts;
        self
    }

    pub fn loss(mut self, loss: LossSpec) -> Self {
        self.cfg.loss = loss;
        self
    }

    pub fn cooling(mut self, cooling: CoolingSpec) -> Self {
        self.cfg.cooling = cooling;
        self
    }

    pub fn scheduler_defaults(mut self, policy: &str, backfill: &str) -> Self {
        self.cfg.scheduler.policy = policy.into();
        self.cfg.scheduler.backfill = backfill.into();
        self
    }

    pub fn tick_seconds(mut self, s: i64) -> Self {
        self.cfg.tick = SimDuration::seconds(s);
        self.cfg.trace_dt = SimDuration::seconds(s);
        self
    }

    pub fn fidelity(mut self, f: TelemetryFidelity) -> Self {
        self.cfg.fidelity = f;
        self
    }

    fn resize_cooling(mut self) -> Self {
        let design_kw = self.cfg.total_nodes as f64 * self.cfg.node_power.peak_node_w() / 1000.0;
        self.cfg.cooling.design_load_kw = design_kw;
        self.cfg.cooling.loop_thermal_capacity_kj_per_c = design_kw * 18.75;
        self.cfg.cooling.design_flow_kg_s = design_kw / (4.186 * 6.0);
        self.cfg.cooling.fan_design_kw = design_kw * 0.015;
        self
    }

    /// Validate and return the config.
    pub fn build(self) -> Result<SystemConfig> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_validate() {
        let cfg = SystemConfigBuilder::new("t", 64).build().unwrap();
        assert_eq!(cfg.total_nodes, 64);
        assert_eq!(cfg.partitions.len(), 1);
    }

    #[test]
    fn gpus_update_partitions_and_cooling() {
        let cfg = SystemConfigBuilder::new("t", 10)
            .gpus(4, 200.0, 1600.0)
            .build()
            .unwrap();
        assert!(cfg.partitions[0].has_gpus);
        // Cooling plant re-sized for the GPU-augmented peak.
        let expected = 10.0 * cfg.node_power.peak_node_w() / 1000.0;
        assert!((cfg.cooling.design_load_kw - expected).abs() < 1e-9);
    }

    #[test]
    fn bad_partitions_rejected_at_build() {
        let r = SystemConfigBuilder::new("t", 10)
            .partitions(vec![Partition {
                name: "half".into(),
                first_node: 0,
                node_count: 5,
                has_gpus: false,
            }])
            .build();
        assert!(r.is_err());
    }
}
